// dlproj_served: the campaign projection service daemon.  Binds a unix
// socket, recovers the artifact store from any crashed predecessor, and
// serves projection/campaign requests until SIGINT/SIGTERM or a
// `shutdown` op — then drains gracefully (src/service/server.h).
//
//   dlproj_served [options]
//
//   --socket=PATH       listen socket (default: $DLPROJ_SERVE_SOCKET)
//   --workers=N         executor threads (default: $DLPROJ_SERVE_WORKERS)
//   --queue-max=N       admission-queue bound ($DLPROJ_SERVE_QUEUE_MAX)
//   --drain-ms=N        shutdown grace period ($DLPROJ_SERVE_DRAIN_MS)
//   --deadline-ms=N     max per-request deadline ($DLPROJ_SERVE_DEADLINE_MS)
//   --retry-after-ms=N  backpressure hint in shed replies
//   --cache-dir=PATH    artifact cache root (default: $DLPROJ_CACHE)
//   --engine=NAME       default fault-sim engine for requests without one
//   --threads=N         per-run worker threads (0 = library default)
//   --quiet             suppress startup/shutdown stderr lines
//
// Exit status: 0 clean shutdown, 2 usage or startup failure.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "gatesim/engine.h"
#include "service/server.h"
#include "support/env.h"

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--socket=PATH] [--workers=N] [--queue-max=N]"
                 " [--drain-ms=N] [--deadline-ms=N] [--retry-after-ms=N]"
                 " [--cache-dir=PATH] [--engine=NAME] [--threads=N]"
                 " [--quiet]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dlp;

    service::ServiceConfig config;
    try {
        config = service::config_from_env();
    } catch (const support::EnvError& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
    }
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* flag) {
            return arg.substr(std::strlen(flag));
        };
        try {
            if (arg.rfind("--socket=", 0) == 0)
                config.socket_path = value("--socket=");
            else if (arg.rfind("--workers=", 0) == 0)
                config.workers = std::stoi(value("--workers="));
            else if (arg.rfind("--queue-max=", 0) == 0)
                config.queue_max =
                    static_cast<std::size_t>(std::stoull(value("--queue-max=")));
            else if (arg.rfind("--drain-ms=", 0) == 0)
                config.drain_ms = std::stoll(value("--drain-ms="));
            else if (arg.rfind("--deadline-ms=", 0) == 0)
                config.max_deadline_ms = std::stoll(value("--deadline-ms="));
            else if (arg.rfind("--retry-after-ms=", 0) == 0)
                config.retry_after_ms = std::stoll(value("--retry-after-ms="));
            else if (arg.rfind("--cache-dir=", 0) == 0)
                config.cache_dir = value("--cache-dir=");
            else if (arg.rfind("--engine=", 0) == 0)
                config.engine = value("--engine=");
            else if (arg.rfind("--threads=", 0) == 0)
                config.cell_threads = std::stoi(value("--threads="));
            else if (arg == "--quiet")
                quiet = true;
            else {
                std::cerr << argv[0] << ": unknown option " << arg << "\n";
                return usage(argv[0]);
            }
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": bad value in " << arg << ": "
                      << e.what() << "\n";
            return usage(argv[0]);
        }
    }
    if (config.socket_path.empty()) {
        std::cerr << argv[0]
                  << ": no socket path (--socket= or DLPROJ_SERVE_SOCKET)\n";
        return usage(argv[0]);
    }
    if (!config.engine.empty() && !sim::find_engine(config.engine)) {
        std::cerr << argv[0] << ": unknown engine '" << config.engine << "'\n";
        return 2;
    }

    // Block SIGINT/SIGTERM in every thread (service threads inherit the
    // mask); a dedicated sigwait thread turns them into a graceful
    // shutdown request.  No async-signal-safety gymnastics required.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    service::Service service(config);
    try {
        service.start();
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
    }
    if (!quiet) {
        const auto& rec = service.recovery();
        if (rec.intents || rec.quarantined || rec.stale_tmps)
            std::cerr << argv[0] << ": store recovery: "
                      << campaign::recovery_summary(rec) << "\n";
        std::cerr << argv[0] << ": listening on " << config.socket_path
                  << " (" << config.workers << " workers, queue "
                  << config.queue_max << ")\n";
    }

    std::atomic<bool> sig_thread_done{false};
    std::thread sig_thread([&] {
        while (true) {
            int sig = 0;
            if (sigwait(&sigs, &sig) != 0) continue;
            if (sig_thread_done.load(std::memory_order_relaxed)) return;
            service.request_shutdown();
        }
    });

    service.wait_shutdown_requested();
    if (!quiet) std::cerr << argv[0] << ": draining...\n";
    service.stop();

    sig_thread_done.store(true, std::memory_order_relaxed);
    kill(getpid(), SIGTERM);  // blocked: consumed by sigwait, wakes the thread
    sig_thread.join();

    if (!quiet) {
        const service::ServiceStats s = service.stats();
        std::cerr << argv[0] << ": served " << s.completed << " request(s), "
                  << s.shed << " shed, " << s.errors << " error(s)\n";
    }
    return 0;
}
