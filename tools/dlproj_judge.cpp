// dlproj_judge: golden-corpus digest producer for the cross-engine judge
// harness (scripts/judge.sh, ROADMAP #5).
//
//   dlproj_judge [options] <circuit>
//   dlproj_judge --list-engines
//
//   --engine=NAME     fault-sim engine to run (default: every registered
//                     engine must produce the same bytes, so any works;
//                     defaults to the registry default)
//   --vectors=N       random vectors to apply (default 1024); in --switch
//                     mode, the switch-level vector cap instead
//   --seed=N          pattern-generator seed (default 7; --switch mode
//                     uses the flow's ATPG seed default instead)
//   --switch          run the full physical flow (layout -> extraction ->
//                     switch-level fault simulation) and emit the
//                     realistic-fault detection table instead of the
//                     gate-level stuck-at table
//   --list-engines    print the registered engine names, one per line
//
// <circuit> is a builders.h name (c17, c432, adder3, ...) or a .bench
// path — the same resolver the campaign grid uses.
//
// stdout gets a canonical, deterministic detection table: the collapsed
// fault universe in collapsing order with each fault's first-detecting
// vector index (in --switch mode: the extracted realistic faults with
// their weights and voltage/IDDQ first-detection indices).
// scripts/judge.sh hashes these bytes (SHA-256) and compares them against
// the pinned digests under data/golden/ — any engine drifting from the
// recorded behavior, or any semantic change to parsing/collapsing/
// simulation/extraction, flips the digest.  Wall time goes to stderr so
// timing never perturbs the digest.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "campaign/artifacts.h"
#include "campaign/spec.h"
#include "flow/experiment.h"
#include "gatesim/engine.h"
#include "gatesim/faults.h"
#include "gatesim/patterns.h"

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--engine=NAME] [--vectors=N] [--seed=N] [--switch]"
                 " <circuit>\n"
                 "       "
              << argv0 << " --list-engines\n";
    return 2;
}

/// The --switch table: extracted realistic faults (extraction order) with
/// bit-exact weights and both detection verdicts.  first/iddq indices are
/// 1-based vector positions, -1 = never detected — the exact semantics of
/// flow::ExperimentResult::first_detected_at.
int judge_switch(const std::string& circuit_name, int vectors,
                 const std::string& engine_name) {
    using namespace dlp;
    flow::ExperimentOptions opt;
    opt.engine = engine_name;
    opt.budget.max_vectors = vectors;
    const auto start = std::chrono::steady_clock::now();
    const flow::ExperimentResult r = flow::run_experiment(
        campaign::resolve_circuit(circuit_name), opt);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::cout << "dlproj-judge-switch 1\n"
              << "circuit " << circuit_name << " gates " << r.mapped_gates
              << " transistors " << r.transistors << "\n"
              << "faults " << r.fault_weights.size() << " vectors "
              << r.vector_count << " cap " << vectors << "\n";
    std::size_t detected = 0;
    for (std::size_t i = 0; i < r.fault_weights.size(); ++i) {
        std::cout << i << " " << campaign::double_hex(r.fault_weights[i])
                  << " " << r.first_detected_at[i] << " "
                  << r.iddq_detected_at[i] << "\n";
        detected += r.first_detected_at[i] >= 1;
    }
    std::cout << "detected " << detected << "/" << r.fault_weights.size()
              << "\n";
    std::cerr << "judge: " << circuit_name << " switch-level "
              << r.fault_weights.size() << " faults " << r.vector_count
              << " vectors in " << seconds << " s\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dlp;

    std::string engine_name;
    int vectors = 1024;
    std::uint64_t seed = 7;
    bool switch_level = false;
    std::string circuit_name;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        try {
            if (arg == "--list-engines") {
                for (const auto name : sim::engine_names())
                    std::cout << name << "\n";
                return 0;
            } else if (arg.rfind("--engine=", 0) == 0) {
                engine_name = arg.substr(std::strlen("--engine="));
            } else if (arg.rfind("--vectors=", 0) == 0) {
                vectors = std::stoi(arg.substr(std::strlen("--vectors=")));
            } else if (arg.rfind("--seed=", 0) == 0) {
                seed = std::stoull(arg.substr(std::strlen("--seed=")));
            } else if (arg == "--switch") {
                switch_level = true;
            } else if (arg.rfind("--", 0) == 0) {
                std::cerr << argv[0] << ": unknown option " << arg << "\n";
                return usage(argv[0]);
            } else if (circuit_name.empty()) {
                circuit_name = arg;
            } else {
                std::cerr << argv[0] << ": more than one circuit\n";
                return usage(argv[0]);
            }
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": bad value in " << arg << ": "
                      << e.what() << "\n";
            return usage(argv[0]);
        }
    }
    if (circuit_name.empty()) return usage(argv[0]);
    if (vectors <= 0) {
        std::cerr << argv[0] << ": --vectors must be positive\n";
        return 2;
    }

    try {
        if (switch_level)
            return judge_switch(circuit_name, vectors, engine_name);
        const netlist::Circuit circuit =
            campaign::resolve_circuit(circuit_name);
        const auto faults = gatesim::collapse_faults(
            circuit, gatesim::full_fault_universe(circuit));
        gatesim::RandomPatternGenerator rng(seed);
        const auto patterns = rng.vectors(circuit, vectors);

        const sim::Engine& engine = engine_name.empty()
                                        ? sim::engine(sim::kDefaultEngine)
                                        : sim::engine(engine_name);
        const auto start = std::chrono::steady_clock::now();
        const auto session = engine.open(circuit, faults);
        session->apply(patterns);
        const auto first = session->first_detected_at();
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();

        std::cout << "dlproj-judge 1\n"
                  << "circuit " << circuit_name << " inputs "
                  << circuit.inputs().size() << " gates "
                  << circuit.gate_count() << "\n"
                  << "faults " << faults.size() << " vectors " << vectors
                  << " seed " << seed << "\n";
        std::size_t detected = 0;
        for (std::size_t i = 0; i < faults.size(); ++i) {
            std::cout << gatesim::fault_name(circuit, faults[i]) << " "
                      << first[i] << "\n";
            detected += first[i] >= 0;
        }
        std::cout << "detected " << detected << "/" << faults.size() << "\n";

        std::cerr << "judge: " << circuit_name << " engine "
                  << engine.name() << " " << faults.size() << " faults "
                  << vectors << " vectors in " << seconds << " s\n";
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
    }
    return 0;
}
