// dlproj_client: command-line client for the campaign projection service
// (dlproj_served).  Wraps service::call_service — retries with backoff on
// transport faults and shed replies, carries an idempotency key so a
// retry never re-runs work the server already finished.
//
//   dlproj_client [options] ping
//   dlproj_client [options] stats
//   dlproj_client [options] shutdown
//   dlproj_client [options] campaign <spec.campaign>
//   dlproj_client [options] project <circuit> <rules>
//
//   --socket=PATH          service socket (default: $DLPROJ_SERVE_SOCKET)
//   --timeout-ms=N         request deadline (envelope deadline_ms)
//   --io-timeout-ms=N      per-frame read/write bound (default 30000)
//   --retries=N            total attempts incl. the first (default 5)
//   --idempotency-key=K    explicit key (default: derived per call)
//   --engine=NAME          fault-sim engine override
//   --threads=N            worker threads inside the run
//   --max-vectors=N        per-cell vector budget override
//   --seed=N               project op: ATPG seed (default 1)
//   --ndetect=N            project op: n-detection target 1..64
//                          (default 1 = classic single detection)
//   --analysis             project op: run the static untestability
//                          analysis for the cell
//   --defect-stats=DESC    project op: defect-statistics backend
//                          ("poisson" | "negbin:A" | "hier[:...]";
//                          default poisson)
//   --linger-ms=N          ping diagnostic: hold the worker N ms
//   --no-retry-shed        report shed to the caller instead of retrying
//   --quiet                suppress stderr progress lines
//
// The result body JSON goes to stdout.  Exit status: 0 ok, 1 cancelled or
// server-side error, 2 usage, 3 shed (final), 4 unreachable.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/client.h"

namespace {

int usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0
        << " [--socket=PATH] [--timeout-ms=N] [--io-timeout-ms=N]"
           " [--retries=N] [--idempotency-key=K] [--engine=NAME]"
           " [--threads=N] [--max-vectors=N] [--seed=N] [--ndetect=N]"
           " [--analysis] [--defect-stats=DESC] [--linger-ms=N]"
           " [--no-retry-shed] [--quiet]"
           " ping|stats|shutdown|campaign <spec>|project <circuit> <rules>\n";
    return 2;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dlp;

    service::ClientOptions options;
    if (const char* sock = std::getenv("DLPROJ_SERVE_SOCKET"))
        options.socket_path = sock;
    service::Request request;
    std::vector<std::string> positional;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* flag) {
            return arg.substr(std::strlen(flag));
        };
        try {
            if (arg.rfind("--socket=", 0) == 0)
                options.socket_path = value("--socket=");
            else if (arg.rfind("--timeout-ms=", 0) == 0)
                request.deadline_ms = std::stoll(value("--timeout-ms="));
            else if (arg.rfind("--io-timeout-ms=", 0) == 0)
                options.io_timeout_ms = std::stoi(value("--io-timeout-ms="));
            else if (arg.rfind("--retries=", 0) == 0)
                options.max_attempts = std::stoi(value("--retries="));
            else if (arg.rfind("--idempotency-key=", 0) == 0)
                request.idempotency_key = value("--idempotency-key=");
            else if (arg.rfind("--engine=", 0) == 0)
                request.engine = value("--engine=");
            else if (arg.rfind("--threads=", 0) == 0)
                request.threads = std::stoi(value("--threads="));
            else if (arg.rfind("--max-vectors=", 0) == 0)
                request.max_vectors = std::stoll(value("--max-vectors="));
            else if (arg.rfind("--seed=", 0) == 0)
                request.seed = std::stoull(value("--seed="));
            else if (arg.rfind("--ndetect=", 0) == 0)
                request.ndetect = std::stoi(value("--ndetect="));
            else if (arg == "--analysis")
                request.analysis = true;
            else if (arg.rfind("--defect-stats=", 0) == 0)
                request.defect_stats = value("--defect-stats=");
            else if (arg.rfind("--linger-ms=", 0) == 0)
                request.linger_ms = std::stoll(value("--linger-ms="));
            else if (arg == "--no-retry-shed")
                options.retry_on_shed = false;
            else if (arg == "--quiet")
                quiet = true;
            else if (arg.rfind("--", 0) == 0) {
                std::cerr << argv[0] << ": unknown option " << arg << "\n";
                return usage(argv[0]);
            } else
                positional.push_back(arg);
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": bad value in " << arg << ": "
                      << e.what() << "\n";
            return usage(argv[0]);
        }
    }
    if (positional.empty()) return usage(argv[0]);
    if (options.socket_path.empty()) {
        std::cerr << argv[0]
                  << ": no socket path (--socket= or DLPROJ_SERVE_SOCKET)\n";
        return usage(argv[0]);
    }

    const std::string& op = positional[0];
    try {
        if (op == "ping" && positional.size() == 1) {
            request.op = service::Op::Ping;
        } else if (op == "stats" && positional.size() == 1) {
            request.op = service::Op::Stats;
        } else if (op == "shutdown" && positional.size() == 1) {
            request.op = service::Op::Shutdown;
        } else if (op == "campaign" && positional.size() == 2) {
            request.op = service::Op::Campaign;
            request.spec = slurp(positional[1]);
        } else if (op == "project" && positional.size() == 3) {
            request.op = service::Op::Project;
            request.circuit = positional[1];
            request.rules = positional[2];
        } else {
            std::cerr << argv[0] << ": bad operation/arity\n";
            return usage(argv[0]);
        }
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
    }
    request.progress = !quiet;
    if (!quiet)
        options.on_progress = [](const std::string& stage, std::size_t done,
                                 std::size_t total) {
            std::cerr << "progress: " << stage << " " << done << "/" << total
                      << "\n";
        };

    service::CallResult result;
    try {
        result = service::call_service(request, options);
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
    }

    if (!result.body.empty()) std::cout << result.body << "\n";
    if (!quiet && !result.stats.empty())
        std::cerr << "stats: " << result.stats << "\n";
    if (result.status == "ok") {
        if (!quiet && result.attempts > 1)
            std::cerr << argv[0] << ": ok after " << result.attempts
                      << " attempt(s)\n";
        return 0;
    }
    if (result.status == "cancelled") {
        std::cerr << argv[0] << ": cancelled (" << result.stop << ")\n";
        return 1;
    }
    if (result.status == "shed") {
        std::cerr << argv[0] << ": shed (retry after "
                  << result.retry_after_ms << " ms): " << result.error
                  << "\n";
        return 3;
    }
    if (result.status == "unreachable") {
        std::cerr << argv[0] << ": unreachable after " << result.attempts
                  << " attempt(s): " << result.error << "\n";
        return 4;
    }
    std::cerr << argv[0] << ": error: " << result.error << "\n";
    return 1;
}
