// dlproj_campaign: batched experiment campaigns over a declarative grid
// (circuits × rule decks × seeds × ATPG configs), backed by the
// content-addressed artifact cache in src/campaign.
//
//   dlproj_campaign [options] <spec.campaign>
//
//   --cache-dir=PATH  artifact cache root (default: $DLPROJ_CACHE, else
//                     the cache is disabled)
//   --no-cache        disable the artifact cache for this run
//   --shard=I/N       run only shard I of a deterministic N-way partition
//                     of the grid (CI fan-out); reports stay mergeable
//   --json=PATH       write the JSON report to PATH ("-" = stdout, the
//                     default when neither --json nor --csv is given)
//   --csv=PATH        write the CSV report to PATH ("-" = stdout)
//   --stats=PATH      write cache/run accounting JSON (with wall_ms) to
//                     PATH ("-" = stderr summary is always printed)
//   --engine=NAME     fault-sim engine for every cell, overriding the
//                     spec's `engine =` key (naive, serial, ppsfp,
//                     levelized; default: $DLPROJ_ENGINE, else levelized).
//                     Engines are bit-identical — this is a performance
//                     knob and never affects results or cache keys
//   --threads=N       worker count within each cell (0 = default)
//   --max-vectors=N   override the spec's per-cell vector budget
//   --ndetect=LIST    override the spec's [grid] ndetect axis with a
//                     comma-separated list of targets in [1, 64]
//                     (e.g. --ndetect=1,2,4,8)
//   --analysis=LIST   override the spec's [grid] analysis axis with a
//                     comma-separated list of on/off settings
//                     (e.g. --analysis=off,on)
//   --defect-stats=LIST  override the spec's [grid] defect_stats axis
//                     with a comma-separated list of backend descriptors
//                     ("poisson" | "negbin:A" | "hier[:...]"; e.g.
//                     --defect-stats=poisson,negbin:0.5,negbin:2)
//   --timeout-ms=N    wall-clock budget for the whole campaign; on expiry
//                     the run stops at the next cell/stage boundary and
//                     the partial report (an exact prefix) is emitted
//   --no-recover      skip the startup artifact-store crash recovery
//                     (required when other writers share the cache
//                     concurrently, e.g. CI shard fan-out)
//   --list            print the grid cells (index, identity) and exit
//   --quiet           suppress the stderr progress/summary lines
//
// SIGINT trips the campaign's cancel token: the run stops at the next
// boundary, everything completed so far is committed to the cache and
// emitted as a partial report, and the exit status is 130.  A second
// SIGINT kills the process immediately (the handler is one-shot).
//
// Exit status: 0 success, 1 campaign failure (lint gate, bad inputs),
// 2 usage or I/O error, 130 interrupted (SIGINT).  A run stopped by
// --timeout-ms / DLPROJ_DEADLINE_MS budgets exits 0 with the stop
// recorded in the stats document.
#include <signal.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "support/cancel.h"

#include "campaign/report.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "flow/report.h"
#include "gatesim/engine.h"
#include "model/defect_stats_model.h"

namespace {

// SIGINT handler state: CancelToken::request() is a lock-free atomic
// store, which is async-signal-safe.  SA_RESETHAND makes the handler
// one-shot, so a second SIGINT falls back to the default (kill).
dlp::support::CancelToken g_interrupt;

extern "C" void on_interrupt(int) { g_interrupt.request(); }

void install_interrupt_handler() {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = on_interrupt;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    sigaction(SIGINT, &sa, nullptr);
}

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--cache-dir=PATH] [--no-cache] [--shard=I/N]"
                 " [--json=PATH] [--csv=PATH] [--stats=PATH] [--engine=NAME]"
                 " [--threads=N] [--max-vectors=N] [--ndetect=LIST]"
                 " [--analysis=LIST] [--defect-stats=LIST] [--timeout-ms=N]"
                 " [--no-recover] [--list] [--quiet] <spec.campaign>\n";
    return 2;
}

void emit(const std::string& path, const std::string& contents) {
    if (path == "-")
        std::cout << contents;
    else
        dlp::flow::write_file(path, contents);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dlp;

    std::string cache_dir = campaign::env_cache_dir();
    bool no_cache = false;
    bool list = false;
    bool quiet = false;
    std::string json_path;
    std::string csv_path;
    std::string stats_path;
    std::string spec_path;
    std::string engine;
    campaign::Shard shard;
    int threads = 0;
    long long max_vectors = -1;  // <0: keep the spec's value
    long long timeout_ms = 0;    // 0: no campaign-level deadline
    bool no_recover = false;
    std::string ndetect_list;   // empty: keep the spec's axis
    std::string analysis_list;  // empty: keep the spec's axis
    std::string defect_stats_list;  // empty: keep the spec's axis

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* flag) {
            return arg.substr(std::strlen(flag));
        };
        try {
            if (arg.rfind("--cache-dir=", 0) == 0)
                cache_dir = value("--cache-dir=");
            else if (arg == "--no-cache")
                no_cache = true;
            else if (arg.rfind("--shard=", 0) == 0)
                shard = campaign::parse_shard(value("--shard="));
            else if (arg.rfind("--json=", 0) == 0)
                json_path = value("--json=");
            else if (arg.rfind("--csv=", 0) == 0)
                csv_path = value("--csv=");
            else if (arg.rfind("--stats=", 0) == 0)
                stats_path = value("--stats=");
            else if (arg.rfind("--engine=", 0) == 0)
                engine = value("--engine=");
            else if (arg.rfind("--threads=", 0) == 0)
                threads = std::stoi(value("--threads="));
            else if (arg.rfind("--max-vectors=", 0) == 0)
                max_vectors = std::stoll(value("--max-vectors="));
            else if (arg.rfind("--ndetect=", 0) == 0)
                ndetect_list = value("--ndetect=");
            else if (arg.rfind("--analysis=", 0) == 0)
                analysis_list = value("--analysis=");
            else if (arg.rfind("--defect-stats=", 0) == 0)
                defect_stats_list = value("--defect-stats=");
            else if (arg.rfind("--timeout-ms=", 0) == 0)
                timeout_ms = std::stoll(value("--timeout-ms="));
            else if (arg == "--no-recover")
                no_recover = true;
            else if (arg == "--list")
                list = true;
            else if (arg == "--quiet")
                quiet = true;
            else if (arg.rfind("--", 0) == 0) {
                std::cerr << argv[0] << ": unknown option " << arg << "\n";
                return usage(argv[0]);
            } else if (spec_path.empty())
                spec_path = arg;
            else {
                std::cerr << argv[0] << ": extra argument " << arg << "\n";
                return usage(argv[0]);
            }
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": bad value in " << arg << ": "
                      << e.what() << "\n";
            return usage(argv[0]);
        }
    }
    if (spec_path.empty()) return usage(argv[0]);

    campaign::CampaignSpec spec;
    try {
        spec = campaign::load_campaign_spec(spec_path);
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
    }
    if (max_vectors >= 0) spec.max_vectors = max_vectors;
    if (!ndetect_list.empty()) {
        spec.ndetect.clear();
        std::istringstream in(ndetect_list);
        std::string item;
        try {
            while (std::getline(in, item, ',')) {
                if (item.empty()) continue;
                const int n = std::stoi(item);
                if (n < 1 || n > 64)
                    throw std::runtime_error("target out of range [1, 64]");
                spec.ndetect.push_back(n);
            }
            if (spec.ndetect.empty())
                throw std::runtime_error("empty target list");
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": bad --ndetect list '" << ndetect_list
                      << "': " << e.what() << "\n";
            return 2;
        }
    }
    if (!analysis_list.empty()) {
        spec.analysis.clear();
        std::istringstream in(analysis_list);
        std::string item;
        try {
            while (std::getline(in, item, ',')) {
                if (item.empty()) continue;
                if (item == "on" || item == "true" || item == "1")
                    spec.analysis.push_back(1);
                else if (item == "off" || item == "false" || item == "0")
                    spec.analysis.push_back(0);
                else
                    throw std::runtime_error("expected on/off, got '" + item +
                                             "'");
            }
            if (spec.analysis.empty())
                throw std::runtime_error("empty setting list");
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": bad --analysis list '" << analysis_list
                      << "': " << e.what() << "\n";
            return 2;
        }
    }

    if (!defect_stats_list.empty()) {
        spec.defect_stats.clear();
        std::istringstream in(defect_stats_list);
        std::string item;
        try {
            while (std::getline(in, item, ',')) {
                if (item.empty()) continue;
                spec.defect_stats.push_back(
                    model::parse_defect_stats(item).describe());
            }
            if (spec.defect_stats.empty())
                throw std::runtime_error("empty backend list");
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": bad --defect-stats list '"
                      << defect_stats_list << "': " << e.what() << "\n";
            return 2;
        }
    }

    if (list) {
        // The ndetect/analysis/defect_stats columns appear only for grids
        // that sweep them, so the listing of a classic spec keeps its
        // exact bytes.
        const bool show_ndetect = spec.has_ndetect_axis();
        const bool show_analysis = spec.has_analysis_axis();
        const bool show_stats = spec.has_defect_stats_axis();
        for (std::size_t i = 0; i < spec.cell_count(); ++i) {
            const campaign::Cell c = campaign::cell_at(spec, i);
            std::cout << i << " " << c.circuit << " " << c.rules << " seed="
                      << c.seed << " atpg=" << c.atpg;
            if (show_ndetect) std::cout << " ndetect=" << c.ndetect;
            if (show_analysis)
                std::cout << " analysis=" << (c.analysis ? "on" : "off");
            if (show_stats)
                std::cout << " defect_stats=" << c.defect_stats;
            std::cout << "\n";
        }
        return 0;
    }

    if (!engine.empty() && !dlp::sim::find_engine(engine)) {
        std::cerr << argv[0] << ": unknown engine '" << engine
                  << "' (registered:";
        for (const auto n : dlp::sim::engine_names()) std::cerr << " " << n;
        std::cerr << ")\n";
        return 2;
    }

    campaign::CampaignOptions opt;
    opt.cache_dir = cache_dir;
    opt.use_cache = !no_cache && !cache_dir.empty();
    opt.shard = shard;
    opt.engine = engine;
    opt.parallel.threads = threads;
    opt.budget.cancel = g_interrupt;
    if (timeout_ms > 0)
        opt.budget.deadline = support::Deadline::after_ms(timeout_ms);

    if (opt.use_cache && !no_recover) {
        // Heal any torn commit a crashed/killed predecessor left behind
        // before this run trusts the cache.  Single-writer assumption:
        // concurrent shards must pass --no-recover (recovery would see
        // their live intents as orphans).
        try {
            const campaign::RecoveryReport rec =
                campaign::recover_store(cache_dir);
            if (!quiet && (rec.intents || rec.quarantined || rec.stale_tmps))
                std::cerr << "store recovery: "
                          << campaign::recovery_summary(rec) << "\n";
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": store recovery failed: " << e.what()
                      << "\n";
            return 2;
        }
    }

    install_interrupt_handler();
    if (!quiet)
        opt.progress = [](std::string_view stage, std::size_t done,
                          std::size_t total) {
            if (stage == "campaign")
                std::cerr << "campaign: " << done << "/" << total
                          << " cells\n";
        };

    const auto t0 = std::chrono::steady_clock::now();
    campaign::CampaignReport report;
    try {
        report = campaign::run_campaign(spec, opt);
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 1;
    }
    const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    try {
        if (json_path.empty() && csv_path.empty()) json_path = "-";
        if (!json_path.empty())
            emit(json_path, campaign::report_json(report));
        if (!csv_path.empty()) emit(csv_path, campaign::report_csv(report));
        if (!stats_path.empty()) {
            // Splice wall_ms into the accounting document (the library
            // keeps timing out of its deterministic output on purpose).
            std::string stats = campaign::stats_json(report.stats);
            const std::string needle = "{\n";
            stats.insert(needle.size(), "  \"wall_ms\": " +
                                            std::to_string(wall_ms) + ",\n");
            emit(stats_path, stats);
        }
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
    }

    if (!quiet) {
        const auto& s = report.stats;
        std::cerr << "campaign '" << report.name << "': " << s.cells_completed
                  << "/" << s.cells_selected << " cells (of "
                  << s.cells_total << " in the grid), cache " << s.cell_hits
                  << " hit / " << s.cell_misses << " miss";
        if (s.tests_hits || s.sim_hits || s.faults_hits || s.analysis_hits) {
            std::cerr << " (stage hits: " << s.tests_hits << " tests, "
                      << s.sim_hits << " sim, " << s.faults_hits << " faults";
            if (s.analysis_hits)
                std::cerr << ", " << s.analysis_hits << " analysis";
            std::cerr << ")";
        }
        if (s.store_corrupt)
            std::cerr << ", " << s.store_corrupt << " corrupt object(s)";
        std::cerr << ", " << wall_ms << " ms";
        if (s.stop != dlp::support::StopReason::None)
            std::cerr << ", stopped: "
                      << dlp::support::stop_reason_name(s.stop);
        std::cerr << "\n";
    }
    // Conventional interrupted-by-SIGINT status; the partial report above
    // is still valid (exact prefix of the uninterrupted run).
    if (report.stats.stop == support::StopReason::Cancelled) return 130;
    return 0;
}
