// dlproj_lint: standalone front end for the src/lint static analyzer.
//
//   dlproj_lint [options] <file.bench|file.rules>...
//
//   --json            emit the findings as a JSON document instead of text
//   --suppress=IDS    suppression config (comma/whitespace-separated check
//                     ids, trailing '*' wildcard; see docs/LINT.md)
//   --max-fanin=N     fanin-excessive threshold (default 10)
//   --werror          exit nonzero on warnings too, not just errors
//   --testability     additionally run the redundant-logic sweep
//                     (circuit-redundant-logic): prove faults untestable
//                     with the static implication engine and warn on each
//                     proof.  Much deeper than the SCOAP sweep and
//                     correspondingly slower, hence opt-in.
//
// Exit status: 0 clean, 1 findings at the failing severity, 2 usage or I/O
// error.  `.bench` files get the lenient text scan first; only when that
// finds no errors is the strict parser run so the circuit- and fault-level
// sweeps can see the in-memory design.  `.rules` files are parsed (a parse
// failure becomes a `rules-syntax` error diagnostic) and the deck sweep run.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "extract/rules_parser.h"
#include "gatesim/faults.h"
#include "lint/checks.h"
#include "lint/diagnostics.h"
#include "netlist/bench_parser.h"

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--json] [--suppress=IDS] [--max-fanin=N] [--werror]"
                 " [--testability] <file.bench|file.rules>...\n";
    return 2;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream in(path);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool ends_with(const std::string& s, const char* suffix) {
    const size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Extracts the line number from a parser message of the form
/// "prefix:N: ..." so the failure still renders with a location.
dlp::lint::SourceLoc loc_from_parse_error(const std::string& file,
                                          const std::string& what) {
    dlp::lint::SourceLoc loc{file, 0};
    const size_t colon = what.find(':');
    if (colon == std::string::npos) return loc;
    const size_t end = what.find(':', colon + 1);
    if (end == std::string::npos) return loc;
    try {
        loc.line = std::stoi(what.substr(colon + 1, end - colon - 1));
    } catch (...) {
        loc.line = 0;
    }
    return loc;
}

void lint_bench_file(const std::string& path, const std::string& text,
                     dlp::lint::DiagnosticEngine& engine,
                     const dlp::lint::LintOptions& options,
                     bool testability) {
    const std::size_t errors_before = engine.errors();
    dlp::lint::lint_bench_text(text, path, engine);
    // The strict parser (and the sweeps that need an in-memory circuit)
    // only run on text the lenient scan passed: every parse failure is
    // already reported above with better coverage.
    if (engine.errors() != errors_before) return;
    try {
        const dlp::netlist::Circuit circuit =
            dlp::netlist::parse_bench(text, path);
        dlp::lint::lint_circuit(circuit, engine, options);
        const auto collapsed = dlp::gatesim::collapse_faults(
            circuit, dlp::gatesim::full_fault_universe(circuit));
        dlp::lint::lint_faults(circuit, collapsed, engine);
        if (testability)
            dlp::lint::lint_redundant_logic(circuit, collapsed, engine);
    } catch (const std::runtime_error& e) {
        engine.report(dlp::lint::Severity::Error, "bench-syntax", e.what(),
                      loc_from_parse_error(path, e.what()));
    }
}

void lint_rules_file(const std::string& path, const std::string& text,
                     dlp::lint::DiagnosticEngine& engine) {
    dlp::extract::DefectStatistics stats;
    try {
        stats = dlp::extract::parse_defect_rules(text);
    } catch (const std::runtime_error& e) {
        engine.report(dlp::lint::Severity::Error, "rules-syntax", e.what(),
                      loc_from_parse_error(path, e.what()));
        return;
    }
    dlp::lint::lint_rules(stats, engine, path);
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    bool werror = false;
    bool testability = false;
    dlp::lint::LintOptions options;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--testability") {
            testability = true;
        } else if (arg.rfind("--suppress=", 0) == 0) {
            options.suppress = arg.substr(std::strlen("--suppress="));
        } else if (arg.rfind("--max-fanin=", 0) == 0) {
            try {
                options.max_fanin =
                    std::stoi(arg.substr(std::strlen("--max-fanin=")));
            } catch (...) {
                std::cerr << argv[0] << ": bad --max-fanin value\n";
                return usage(argv[0]);
            }
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << argv[0] << ": unknown option " << arg << "\n";
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) return usage(argv[0]);

    dlp::lint::DiagnosticEngine engine{
        dlp::lint::SuppressionSet(options.suppress)};
    for (const std::string& path : files) {
        std::string text;
        if (!read_file(path, text)) {
            std::cerr << argv[0] << ": cannot open " << path << "\n";
            return 2;
        }
        if (ends_with(path, ".rules"))
            lint_rules_file(path, text, engine);
        else if (ends_with(path, ".bench"))
            lint_bench_file(path, text, engine, options, testability);
        else {
            std::cerr << argv[0] << ": " << path
                      << ": unknown file type (expected .bench or .rules)\n";
            return 2;
        }
    }

    if (json) {
        std::cout << dlp::lint::render_json(engine.diagnostics()) << "\n";
    } else {
        std::cout << dlp::lint::render_text(engine.diagnostics())
                  << dlp::lint::summary_line(engine) << "\n";
    }

    if (engine.errors() > 0) return 1;
    if (werror && engine.warnings() > 0) return 1;
    return 0;
}
