// dlproj_gencircuit: deterministic synthetic benchmark circuits for the
// fault-sim engine corpus (the committed data/synth_*.bench fixtures and
// ad-hoc scaling experiments).
//
//   dlproj_gencircuit [--inputs=N] [--gates=N] [--seed=S] [--out=PATH]
//
//   --inputs=N   primary inputs (default 64)
//   --gates=N    logic gates (default 2000)
//   --seed=S     generator seed (default 1); same arguments => same netlist
//   --out=PATH   write the .bench netlist to PATH (default: stdout)
//
// The netlist comes from netlist::build_random_circuit (splitmix64-seeded,
// recent-net fanin bias for realistic logic depth); a summary line with the
// gate count, depth, and I/O widths goes to stderr.
#include <cstring>
#include <iostream>
#include <string>

#include "gatesim/levelized.h"
#include "netlist/bench_parser.h"
#include "netlist/builders.h"

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--inputs=N] [--gates=N] [--seed=S] [--out=PATH]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dlp;

    int inputs = 64;
    int gates = 2000;
    std::uint64_t seed = 1;
    std::string out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char* flag) {
            return arg.substr(std::strlen(flag));
        };
        try {
            if (arg.rfind("--inputs=", 0) == 0)
                inputs = std::stoi(value("--inputs="));
            else if (arg.rfind("--gates=", 0) == 0)
                gates = std::stoi(value("--gates="));
            else if (arg.rfind("--seed=", 0) == 0)
                seed = std::stoull(value("--seed="));
            else if (arg.rfind("--out=", 0) == 0)
                out = value("--out=");
            else {
                std::cerr << argv[0] << ": unknown option " << arg << "\n";
                return usage(argv[0]);
            }
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": bad value in " << arg << ": "
                      << e.what() << "\n";
            return usage(argv[0]);
        }
    }

    try {
        const netlist::Circuit c =
            netlist::build_random_circuit(inputs, gates, seed);
        const gatesim::LevelizedCircuit lc = gatesim::levelize(c);
        if (out.empty())
            std::cout << netlist::to_bench(c);
        else
            netlist::write_bench(c, out);
        std::cerr << c.name() << ": " << lc.logic_gate_count() << " gates, "
                  << lc.inputs.size() << " inputs, " << lc.outputs.size()
                  << " outputs, depth " << lc.depth << "\n";
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 2;
    }
    return 0;
}
