# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_model "/root/repo/build/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_netlist "/root/repo/build/tests/test_netlist")
set_tests_properties(test_netlist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gatesim "/root/repo/build/tests/test_gatesim")
set_tests_properties(test_gatesim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_atpg "/root/repo/build/tests/test_atpg")
set_tests_properties(test_atpg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cell "/root/repo/build/tests/test_cell")
set_tests_properties(test_cell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_layout "/root/repo/build/tests/test_layout")
set_tests_properties(test_layout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extract "/root/repo/build/tests/test_extract")
set_tests_properties(test_extract PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_switchsim "/root/repo/build/tests/test_switchsim")
set_tests_properties(test_switchsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_flow "/root/repo/build/tests/test_flow")
set_tests_properties(test_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;dlp_test;/root/repo/tests/CMakeLists.txt;0;")
