# Empty compiler generated dependencies file for dl_projection_c432.
# This may be replaced when dependencies are built.
