file(REMOVE_RECURSE
  "CMakeFiles/dl_projection_c432.dir/dl_projection_c432.cpp.o"
  "CMakeFiles/dl_projection_c432.dir/dl_projection_c432.cpp.o.d"
  "dl_projection_c432"
  "dl_projection_c432.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_projection_c432.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
