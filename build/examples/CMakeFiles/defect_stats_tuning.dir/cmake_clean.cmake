file(REMOVE_RECURSE
  "CMakeFiles/defect_stats_tuning.dir/defect_stats_tuning.cpp.o"
  "CMakeFiles/defect_stats_tuning.dir/defect_stats_tuning.cpp.o.d"
  "defect_stats_tuning"
  "defect_stats_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defect_stats_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
