# Empty compiler generated dependencies file for defect_stats_tuning.
# This may be replaced when dependencies are built.
