
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/atpg_flow.cpp" "examples/CMakeFiles/atpg_flow.dir/atpg_flow.cpp.o" "gcc" "examples/CMakeFiles/atpg_flow.dir/atpg_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/dlp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/dlp_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/gatesim/CMakeFiles/dlp_gatesim.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/dlp_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dlp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/dlp_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/dlp_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/dlp_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dlp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
