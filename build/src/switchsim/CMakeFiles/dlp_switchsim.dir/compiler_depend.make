# Empty compiler generated dependencies file for dlp_switchsim.
# This may be replaced when dependencies are built.
