file(REMOVE_RECURSE
  "libdlp_switchsim.a"
)
