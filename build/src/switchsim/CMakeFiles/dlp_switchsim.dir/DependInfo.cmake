
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchsim/switch_fault_sim.cpp" "src/switchsim/CMakeFiles/dlp_switchsim.dir/switch_fault_sim.cpp.o" "gcc" "src/switchsim/CMakeFiles/dlp_switchsim.dir/switch_fault_sim.cpp.o.d"
  "/root/repo/src/switchsim/switch_netlist.cpp" "src/switchsim/CMakeFiles/dlp_switchsim.dir/switch_netlist.cpp.o" "gcc" "src/switchsim/CMakeFiles/dlp_switchsim.dir/switch_netlist.cpp.o.d"
  "/root/repo/src/switchsim/switch_sim.cpp" "src/switchsim/CMakeFiles/dlp_switchsim.dir/switch_sim.cpp.o" "gcc" "src/switchsim/CMakeFiles/dlp_switchsim.dir/switch_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/dlp_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dlp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
