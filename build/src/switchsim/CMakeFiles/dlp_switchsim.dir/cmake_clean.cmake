file(REMOVE_RECURSE
  "CMakeFiles/dlp_switchsim.dir/switch_fault_sim.cpp.o"
  "CMakeFiles/dlp_switchsim.dir/switch_fault_sim.cpp.o.d"
  "CMakeFiles/dlp_switchsim.dir/switch_netlist.cpp.o"
  "CMakeFiles/dlp_switchsim.dir/switch_netlist.cpp.o.d"
  "CMakeFiles/dlp_switchsim.dir/switch_sim.cpp.o"
  "CMakeFiles/dlp_switchsim.dir/switch_sim.cpp.o.d"
  "libdlp_switchsim.a"
  "libdlp_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
