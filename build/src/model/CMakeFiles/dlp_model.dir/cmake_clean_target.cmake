file(REMOVE_RECURSE
  "libdlp_model.a"
)
