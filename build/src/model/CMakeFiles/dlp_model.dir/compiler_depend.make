# Empty compiler generated dependencies file for dlp_model.
# This may be replaced when dependencies are built.
