
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/coverage_laws.cpp" "src/model/CMakeFiles/dlp_model.dir/coverage_laws.cpp.o" "gcc" "src/model/CMakeFiles/dlp_model.dir/coverage_laws.cpp.o.d"
  "/root/repo/src/model/delay_model.cpp" "src/model/CMakeFiles/dlp_model.dir/delay_model.cpp.o" "gcc" "src/model/CMakeFiles/dlp_model.dir/delay_model.cpp.o.d"
  "/root/repo/src/model/dl_models.cpp" "src/model/CMakeFiles/dlp_model.dir/dl_models.cpp.o" "gcc" "src/model/CMakeFiles/dlp_model.dir/dl_models.cpp.o.d"
  "/root/repo/src/model/fit.cpp" "src/model/CMakeFiles/dlp_model.dir/fit.cpp.o" "gcc" "src/model/CMakeFiles/dlp_model.dir/fit.cpp.o.d"
  "/root/repo/src/model/planning.cpp" "src/model/CMakeFiles/dlp_model.dir/planning.cpp.o" "gcc" "src/model/CMakeFiles/dlp_model.dir/planning.cpp.o.d"
  "/root/repo/src/model/stats.cpp" "src/model/CMakeFiles/dlp_model.dir/stats.cpp.o" "gcc" "src/model/CMakeFiles/dlp_model.dir/stats.cpp.o.d"
  "/root/repo/src/model/yield.cpp" "src/model/CMakeFiles/dlp_model.dir/yield.cpp.o" "gcc" "src/model/CMakeFiles/dlp_model.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
