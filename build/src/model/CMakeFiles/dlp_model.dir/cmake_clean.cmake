file(REMOVE_RECURSE
  "CMakeFiles/dlp_model.dir/coverage_laws.cpp.o"
  "CMakeFiles/dlp_model.dir/coverage_laws.cpp.o.d"
  "CMakeFiles/dlp_model.dir/delay_model.cpp.o"
  "CMakeFiles/dlp_model.dir/delay_model.cpp.o.d"
  "CMakeFiles/dlp_model.dir/dl_models.cpp.o"
  "CMakeFiles/dlp_model.dir/dl_models.cpp.o.d"
  "CMakeFiles/dlp_model.dir/fit.cpp.o"
  "CMakeFiles/dlp_model.dir/fit.cpp.o.d"
  "CMakeFiles/dlp_model.dir/planning.cpp.o"
  "CMakeFiles/dlp_model.dir/planning.cpp.o.d"
  "CMakeFiles/dlp_model.dir/stats.cpp.o"
  "CMakeFiles/dlp_model.dir/stats.cpp.o.d"
  "CMakeFiles/dlp_model.dir/yield.cpp.o"
  "CMakeFiles/dlp_model.dir/yield.cpp.o.d"
  "libdlp_model.a"
  "libdlp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
