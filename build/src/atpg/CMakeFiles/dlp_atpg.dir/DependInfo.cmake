
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/compaction.cpp" "src/atpg/CMakeFiles/dlp_atpg.dir/compaction.cpp.o" "gcc" "src/atpg/CMakeFiles/dlp_atpg.dir/compaction.cpp.o.d"
  "/root/repo/src/atpg/generate.cpp" "src/atpg/CMakeFiles/dlp_atpg.dir/generate.cpp.o" "gcc" "src/atpg/CMakeFiles/dlp_atpg.dir/generate.cpp.o.d"
  "/root/repo/src/atpg/podem.cpp" "src/atpg/CMakeFiles/dlp_atpg.dir/podem.cpp.o" "gcc" "src/atpg/CMakeFiles/dlp_atpg.dir/podem.cpp.o.d"
  "/root/repo/src/atpg/scoap.cpp" "src/atpg/CMakeFiles/dlp_atpg.dir/scoap.cpp.o" "gcc" "src/atpg/CMakeFiles/dlp_atpg.dir/scoap.cpp.o.d"
  "/root/repo/src/atpg/transition_tpg.cpp" "src/atpg/CMakeFiles/dlp_atpg.dir/transition_tpg.cpp.o" "gcc" "src/atpg/CMakeFiles/dlp_atpg.dir/transition_tpg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gatesim/CMakeFiles/dlp_gatesim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dlp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
