file(REMOVE_RECURSE
  "libdlp_atpg.a"
)
