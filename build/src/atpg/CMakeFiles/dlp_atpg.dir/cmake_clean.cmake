file(REMOVE_RECURSE
  "CMakeFiles/dlp_atpg.dir/compaction.cpp.o"
  "CMakeFiles/dlp_atpg.dir/compaction.cpp.o.d"
  "CMakeFiles/dlp_atpg.dir/generate.cpp.o"
  "CMakeFiles/dlp_atpg.dir/generate.cpp.o.d"
  "CMakeFiles/dlp_atpg.dir/podem.cpp.o"
  "CMakeFiles/dlp_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/dlp_atpg.dir/scoap.cpp.o"
  "CMakeFiles/dlp_atpg.dir/scoap.cpp.o.d"
  "CMakeFiles/dlp_atpg.dir/transition_tpg.cpp.o"
  "CMakeFiles/dlp_atpg.dir/transition_tpg.cpp.o.d"
  "libdlp_atpg.a"
  "libdlp_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
