# Empty dependencies file for dlp_atpg.
# This may be replaced when dependencies are built.
