# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("model")
subdirs("netlist")
subdirs("gatesim")
subdirs("atpg")
subdirs("cell")
subdirs("layout")
subdirs("extract")
subdirs("switchsim")
subdirs("flow")
