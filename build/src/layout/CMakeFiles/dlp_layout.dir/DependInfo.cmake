
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/chip.cpp" "src/layout/CMakeFiles/dlp_layout.dir/chip.cpp.o" "gcc" "src/layout/CMakeFiles/dlp_layout.dir/chip.cpp.o.d"
  "/root/repo/src/layout/drc.cpp" "src/layout/CMakeFiles/dlp_layout.dir/drc.cpp.o" "gcc" "src/layout/CMakeFiles/dlp_layout.dir/drc.cpp.o.d"
  "/root/repo/src/layout/place_route.cpp" "src/layout/CMakeFiles/dlp_layout.dir/place_route.cpp.o" "gcc" "src/layout/CMakeFiles/dlp_layout.dir/place_route.cpp.o.d"
  "/root/repo/src/layout/svg.cpp" "src/layout/CMakeFiles/dlp_layout.dir/svg.cpp.o" "gcc" "src/layout/CMakeFiles/dlp_layout.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/dlp_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dlp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
