file(REMOVE_RECURSE
  "libdlp_layout.a"
)
