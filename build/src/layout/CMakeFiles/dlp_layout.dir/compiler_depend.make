# Empty compiler generated dependencies file for dlp_layout.
# This may be replaced when dependencies are built.
