file(REMOVE_RECURSE
  "CMakeFiles/dlp_layout.dir/chip.cpp.o"
  "CMakeFiles/dlp_layout.dir/chip.cpp.o.d"
  "CMakeFiles/dlp_layout.dir/drc.cpp.o"
  "CMakeFiles/dlp_layout.dir/drc.cpp.o.d"
  "CMakeFiles/dlp_layout.dir/place_route.cpp.o"
  "CMakeFiles/dlp_layout.dir/place_route.cpp.o.d"
  "CMakeFiles/dlp_layout.dir/svg.cpp.o"
  "CMakeFiles/dlp_layout.dir/svg.cpp.o.d"
  "libdlp_layout.a"
  "libdlp_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
