# Empty dependencies file for dlp_netlist.
# This may be replaced when dependencies are built.
