file(REMOVE_RECURSE
  "CMakeFiles/dlp_netlist.dir/bench_parser.cpp.o"
  "CMakeFiles/dlp_netlist.dir/bench_parser.cpp.o.d"
  "CMakeFiles/dlp_netlist.dir/builders.cpp.o"
  "CMakeFiles/dlp_netlist.dir/builders.cpp.o.d"
  "CMakeFiles/dlp_netlist.dir/circuit.cpp.o"
  "CMakeFiles/dlp_netlist.dir/circuit.cpp.o.d"
  "CMakeFiles/dlp_netlist.dir/optimize.cpp.o"
  "CMakeFiles/dlp_netlist.dir/optimize.cpp.o.d"
  "CMakeFiles/dlp_netlist.dir/techmap.cpp.o"
  "CMakeFiles/dlp_netlist.dir/techmap.cpp.o.d"
  "libdlp_netlist.a"
  "libdlp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
