file(REMOVE_RECURSE
  "libdlp_netlist.a"
)
