
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_parser.cpp" "src/netlist/CMakeFiles/dlp_netlist.dir/bench_parser.cpp.o" "gcc" "src/netlist/CMakeFiles/dlp_netlist.dir/bench_parser.cpp.o.d"
  "/root/repo/src/netlist/builders.cpp" "src/netlist/CMakeFiles/dlp_netlist.dir/builders.cpp.o" "gcc" "src/netlist/CMakeFiles/dlp_netlist.dir/builders.cpp.o.d"
  "/root/repo/src/netlist/circuit.cpp" "src/netlist/CMakeFiles/dlp_netlist.dir/circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/dlp_netlist.dir/circuit.cpp.o.d"
  "/root/repo/src/netlist/optimize.cpp" "src/netlist/CMakeFiles/dlp_netlist.dir/optimize.cpp.o" "gcc" "src/netlist/CMakeFiles/dlp_netlist.dir/optimize.cpp.o.d"
  "/root/repo/src/netlist/techmap.cpp" "src/netlist/CMakeFiles/dlp_netlist.dir/techmap.cpp.o" "gcc" "src/netlist/CMakeFiles/dlp_netlist.dir/techmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
