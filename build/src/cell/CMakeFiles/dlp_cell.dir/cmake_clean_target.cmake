file(REMOVE_RECURSE
  "libdlp_cell.a"
)
