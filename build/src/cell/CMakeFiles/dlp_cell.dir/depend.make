# Empty dependencies file for dlp_cell.
# This may be replaced when dependencies are built.
