file(REMOVE_RECURSE
  "CMakeFiles/dlp_cell.dir/cell.cpp.o"
  "CMakeFiles/dlp_cell.dir/cell.cpp.o.d"
  "CMakeFiles/dlp_cell.dir/geom.cpp.o"
  "CMakeFiles/dlp_cell.dir/geom.cpp.o.d"
  "CMakeFiles/dlp_cell.dir/library.cpp.o"
  "CMakeFiles/dlp_cell.dir/library.cpp.o.d"
  "libdlp_cell.a"
  "libdlp_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
