# Empty dependencies file for dlp_flow.
# This may be replaced when dependencies are built.
