file(REMOVE_RECURSE
  "CMakeFiles/dlp_flow.dir/experiment.cpp.o"
  "CMakeFiles/dlp_flow.dir/experiment.cpp.o.d"
  "CMakeFiles/dlp_flow.dir/report.cpp.o"
  "CMakeFiles/dlp_flow.dir/report.cpp.o.d"
  "CMakeFiles/dlp_flow.dir/wafer.cpp.o"
  "CMakeFiles/dlp_flow.dir/wafer.cpp.o.d"
  "libdlp_flow.a"
  "libdlp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
