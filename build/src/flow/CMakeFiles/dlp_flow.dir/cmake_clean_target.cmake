file(REMOVE_RECURSE
  "libdlp_flow.a"
)
