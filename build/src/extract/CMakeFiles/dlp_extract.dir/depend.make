# Empty dependencies file for dlp_extract.
# This may be replaced when dependencies are built.
