file(REMOVE_RECURSE
  "CMakeFiles/dlp_extract.dir/critical_area.cpp.o"
  "CMakeFiles/dlp_extract.dir/critical_area.cpp.o.d"
  "CMakeFiles/dlp_extract.dir/defect_stats.cpp.o"
  "CMakeFiles/dlp_extract.dir/defect_stats.cpp.o.d"
  "CMakeFiles/dlp_extract.dir/extractor.cpp.o"
  "CMakeFiles/dlp_extract.dir/extractor.cpp.o.d"
  "CMakeFiles/dlp_extract.dir/monte_carlo.cpp.o"
  "CMakeFiles/dlp_extract.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/dlp_extract.dir/rules_parser.cpp.o"
  "CMakeFiles/dlp_extract.dir/rules_parser.cpp.o.d"
  "libdlp_extract.a"
  "libdlp_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
