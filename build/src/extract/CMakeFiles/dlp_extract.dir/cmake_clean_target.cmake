file(REMOVE_RECURSE
  "libdlp_extract.a"
)
