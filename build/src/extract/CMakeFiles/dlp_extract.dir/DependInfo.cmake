
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/critical_area.cpp" "src/extract/CMakeFiles/dlp_extract.dir/critical_area.cpp.o" "gcc" "src/extract/CMakeFiles/dlp_extract.dir/critical_area.cpp.o.d"
  "/root/repo/src/extract/defect_stats.cpp" "src/extract/CMakeFiles/dlp_extract.dir/defect_stats.cpp.o" "gcc" "src/extract/CMakeFiles/dlp_extract.dir/defect_stats.cpp.o.d"
  "/root/repo/src/extract/extractor.cpp" "src/extract/CMakeFiles/dlp_extract.dir/extractor.cpp.o" "gcc" "src/extract/CMakeFiles/dlp_extract.dir/extractor.cpp.o.d"
  "/root/repo/src/extract/monte_carlo.cpp" "src/extract/CMakeFiles/dlp_extract.dir/monte_carlo.cpp.o" "gcc" "src/extract/CMakeFiles/dlp_extract.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/extract/rules_parser.cpp" "src/extract/CMakeFiles/dlp_extract.dir/rules_parser.cpp.o" "gcc" "src/extract/CMakeFiles/dlp_extract.dir/rules_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/dlp_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dlp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/dlp_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dlp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
