file(REMOVE_RECURSE
  "libdlp_gatesim.a"
)
