file(REMOVE_RECURSE
  "CMakeFiles/dlp_gatesim.dir/bist.cpp.o"
  "CMakeFiles/dlp_gatesim.dir/bist.cpp.o.d"
  "CMakeFiles/dlp_gatesim.dir/bridge_sim.cpp.o"
  "CMakeFiles/dlp_gatesim.dir/bridge_sim.cpp.o.d"
  "CMakeFiles/dlp_gatesim.dir/fault_sim.cpp.o"
  "CMakeFiles/dlp_gatesim.dir/fault_sim.cpp.o.d"
  "CMakeFiles/dlp_gatesim.dir/faults.cpp.o"
  "CMakeFiles/dlp_gatesim.dir/faults.cpp.o.d"
  "CMakeFiles/dlp_gatesim.dir/logic_sim.cpp.o"
  "CMakeFiles/dlp_gatesim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/dlp_gatesim.dir/patterns.cpp.o"
  "CMakeFiles/dlp_gatesim.dir/patterns.cpp.o.d"
  "CMakeFiles/dlp_gatesim.dir/timing.cpp.o"
  "CMakeFiles/dlp_gatesim.dir/timing.cpp.o.d"
  "CMakeFiles/dlp_gatesim.dir/transition.cpp.o"
  "CMakeFiles/dlp_gatesim.dir/transition.cpp.o.d"
  "libdlp_gatesim.a"
  "libdlp_gatesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_gatesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
