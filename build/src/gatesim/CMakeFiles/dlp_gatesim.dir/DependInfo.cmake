
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gatesim/bist.cpp" "src/gatesim/CMakeFiles/dlp_gatesim.dir/bist.cpp.o" "gcc" "src/gatesim/CMakeFiles/dlp_gatesim.dir/bist.cpp.o.d"
  "/root/repo/src/gatesim/bridge_sim.cpp" "src/gatesim/CMakeFiles/dlp_gatesim.dir/bridge_sim.cpp.o" "gcc" "src/gatesim/CMakeFiles/dlp_gatesim.dir/bridge_sim.cpp.o.d"
  "/root/repo/src/gatesim/fault_sim.cpp" "src/gatesim/CMakeFiles/dlp_gatesim.dir/fault_sim.cpp.o" "gcc" "src/gatesim/CMakeFiles/dlp_gatesim.dir/fault_sim.cpp.o.d"
  "/root/repo/src/gatesim/faults.cpp" "src/gatesim/CMakeFiles/dlp_gatesim.dir/faults.cpp.o" "gcc" "src/gatesim/CMakeFiles/dlp_gatesim.dir/faults.cpp.o.d"
  "/root/repo/src/gatesim/logic_sim.cpp" "src/gatesim/CMakeFiles/dlp_gatesim.dir/logic_sim.cpp.o" "gcc" "src/gatesim/CMakeFiles/dlp_gatesim.dir/logic_sim.cpp.o.d"
  "/root/repo/src/gatesim/patterns.cpp" "src/gatesim/CMakeFiles/dlp_gatesim.dir/patterns.cpp.o" "gcc" "src/gatesim/CMakeFiles/dlp_gatesim.dir/patterns.cpp.o.d"
  "/root/repo/src/gatesim/timing.cpp" "src/gatesim/CMakeFiles/dlp_gatesim.dir/timing.cpp.o" "gcc" "src/gatesim/CMakeFiles/dlp_gatesim.dir/timing.cpp.o.d"
  "/root/repo/src/gatesim/transition.cpp" "src/gatesim/CMakeFiles/dlp_gatesim.dir/transition.cpp.o" "gcc" "src/gatesim/CMakeFiles/dlp_gatesim.dir/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/dlp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
