# Empty dependencies file for dlp_gatesim.
# This may be replaced when dependencies are built.
