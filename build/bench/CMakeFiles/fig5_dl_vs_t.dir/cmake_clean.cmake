file(REMOVE_RECURSE
  "CMakeFiles/fig5_dl_vs_t.dir/fig5_dl_vs_t.cpp.o"
  "CMakeFiles/fig5_dl_vs_t.dir/fig5_dl_vs_t.cpp.o.d"
  "fig5_dl_vs_t"
  "fig5_dl_vs_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dl_vs_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
