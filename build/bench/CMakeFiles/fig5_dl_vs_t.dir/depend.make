# Empty dependencies file for fig5_dl_vs_t.
# This may be replaced when dependencies are built.
