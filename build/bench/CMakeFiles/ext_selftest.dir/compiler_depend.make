# Empty compiler generated dependencies file for ext_selftest.
# This may be replaced when dependencies are built.
