file(REMOVE_RECURSE
  "CMakeFiles/ext_selftest.dir/ext_selftest.cpp.o"
  "CMakeFiles/ext_selftest.dir/ext_selftest.cpp.o.d"
  "ext_selftest"
  "ext_selftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_selftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
