file(REMOVE_RECURSE
  "CMakeFiles/validation_wafer.dir/validation_wafer.cpp.o"
  "CMakeFiles/validation_wafer.dir/validation_wafer.cpp.o.d"
  "validation_wafer"
  "validation_wafer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_wafer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
