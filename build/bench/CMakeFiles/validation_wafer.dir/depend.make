# Empty dependencies file for validation_wafer.
# This may be replaced when dependencies are built.
