# Empty compiler generated dependencies file for fig4_coverage_curves.
# This may be replaced when dependencies are built.
