file(REMOVE_RECURSE
  "CMakeFiles/fig4_coverage_curves.dir/fig4_coverage_curves.cpp.o"
  "CMakeFiles/fig4_coverage_curves.dir/fig4_coverage_curves.cpp.o.d"
  "fig4_coverage_curves"
  "fig4_coverage_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_coverage_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
