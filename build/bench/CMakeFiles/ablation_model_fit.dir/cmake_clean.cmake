file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_fit.dir/ablation_model_fit.cpp.o"
  "CMakeFiles/ablation_model_fit.dir/ablation_model_fit.cpp.o.d"
  "ablation_model_fit"
  "ablation_model_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
