# Empty dependencies file for ablation_model_fit.
# This may be replaced when dependencies are built.
