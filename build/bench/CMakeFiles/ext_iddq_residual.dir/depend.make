# Empty dependencies file for ext_iddq_residual.
# This may be replaced when dependencies are built.
