file(REMOVE_RECURSE
  "CMakeFiles/ext_iddq_residual.dir/ext_iddq_residual.cpp.o"
  "CMakeFiles/ext_iddq_residual.dir/ext_iddq_residual.cpp.o.d"
  "ext_iddq_residual"
  "ext_iddq_residual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_iddq_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
