# Empty dependencies file for fig1_coverage_laws.
# This may be replaced when dependencies are built.
