file(REMOVE_RECURSE
  "CMakeFiles/fig1_coverage_laws.dir/fig1_coverage_laws.cpp.o"
  "CMakeFiles/fig1_coverage_laws.dir/fig1_coverage_laws.cpp.o.d"
  "fig1_coverage_laws"
  "fig1_coverage_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_coverage_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
