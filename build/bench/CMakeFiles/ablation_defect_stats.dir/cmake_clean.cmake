file(REMOVE_RECURSE
  "CMakeFiles/ablation_defect_stats.dir/ablation_defect_stats.cpp.o"
  "CMakeFiles/ablation_defect_stats.dir/ablation_defect_stats.cpp.o.d"
  "ablation_defect_stats"
  "ablation_defect_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_defect_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
