# Empty compiler generated dependencies file for ablation_defect_stats.
# This may be replaced when dependencies are built.
