# Empty compiler generated dependencies file for table_examples.
# This may be replaced when dependencies are built.
