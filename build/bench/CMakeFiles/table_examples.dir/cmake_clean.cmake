file(REMOVE_RECURSE
  "CMakeFiles/table_examples.dir/table_examples.cpp.o"
  "CMakeFiles/table_examples.dir/table_examples.cpp.o.d"
  "table_examples"
  "table_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
