file(REMOVE_RECURSE
  "CMakeFiles/ablation_workloads.dir/ablation_workloads.cpp.o"
  "CMakeFiles/ablation_workloads.dir/ablation_workloads.cpp.o.d"
  "ablation_workloads"
  "ablation_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
