# Empty compiler generated dependencies file for fig3_weight_histogram.
# This may be replaced when dependencies are built.
