# Empty compiler generated dependencies file for fig2_dl_models.
# This may be replaced when dependencies are built.
