file(REMOVE_RECURSE
  "CMakeFiles/fig2_dl_models.dir/fig2_dl_models.cpp.o"
  "CMakeFiles/fig2_dl_models.dir/fig2_dl_models.cpp.o.d"
  "fig2_dl_models"
  "fig2_dl_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dl_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
