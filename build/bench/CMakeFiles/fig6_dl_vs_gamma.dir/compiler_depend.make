# Empty compiler generated dependencies file for fig6_dl_vs_gamma.
# This may be replaced when dependencies are built.
