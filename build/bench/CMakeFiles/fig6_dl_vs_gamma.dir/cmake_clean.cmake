file(REMOVE_RECURSE
  "CMakeFiles/fig6_dl_vs_gamma.dir/fig6_dl_vs_gamma.cpp.o"
  "CMakeFiles/fig6_dl_vs_gamma.dir/fig6_dl_vs_gamma.cpp.o.d"
  "fig6_dl_vs_gamma"
  "fig6_dl_vs_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dl_vs_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
