file(REMOVE_RECURSE
  "CMakeFiles/ext_delay_test.dir/ext_delay_test.cpp.o"
  "CMakeFiles/ext_delay_test.dir/ext_delay_test.cpp.o.d"
  "ext_delay_test"
  "ext_delay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
