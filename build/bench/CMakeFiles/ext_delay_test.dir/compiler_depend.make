# Empty compiler generated dependencies file for ext_delay_test.
# This may be replaced when dependencies are built.
