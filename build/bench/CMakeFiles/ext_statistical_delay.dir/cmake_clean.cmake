file(REMOVE_RECURSE
  "CMakeFiles/ext_statistical_delay.dir/ext_statistical_delay.cpp.o"
  "CMakeFiles/ext_statistical_delay.dir/ext_statistical_delay.cpp.o.d"
  "ext_statistical_delay"
  "ext_statistical_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_statistical_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
