# Empty compiler generated dependencies file for ext_statistical_delay.
# This may be replaced when dependencies are built.
