#!/usr/bin/env bash
# Refreshes BENCH_analysis.json (written to the repo root) via the
# perf_analysis harness: static untestability-analysis throughput
# (proofs/sec, implications) and untestable-fault counts per corpus
# circuit, plus the independent proof-checker pass over every emitted
# proof (see bench/perf_analysis.cpp for what each row measures).
#
# The enforced bars are correctness properties, not performance numbers:
# every row's proofs re-certify under the independent checker, and the
# redundancy-rich fixtures (c432, synth_2k) yield at least one proof —
# a silent drop to zero would mean the pass stopped finding anything.
#
# Usage: scripts/bench_analysis.sh [path/to/perf_analysis]
set -eu
root=$(cd "$(dirname "$0")/.." && pwd)

BIN=${1:-$root/build/bench/perf_analysis}
[ -x "$BIN" ] || { echo "bench_analysis: $BIN not built" >&2; exit 1; }

cd "$root"
"$BIN" "$root/data"

[ -f BENCH_analysis.json ] || {
    echo "bench_analysis: BENCH_analysis.json not written" >&2; exit 1; }

# One row per line; pull a named field out of a row.
field() { sed "s/.*\"$2\": \([a-z0-9.e+-]*\).*/\1/" <<< "$1"; }

rows=$(grep '"circuit"' BENCH_analysis.json)
[ "$(wc -l <<< "$rows")" -eq 6 ] || {
    echo "bench_analysis: expected 6 corpus rows" >&2; exit 1; }

fail=0
while IFS= read -r row; do
    [ "$(field "$row" all_proofs_check)" = "true" ] || {
        echo "bench_analysis: proof check failed: $row" >&2
        fail=1
    }
    case "$row" in
        *c432*|*synth_2k*)
            [ "$(field "$row" untestable)" -gt 0 ] || {
                echo "bench_analysis: no proofs on a redundant fixture:" \
                     "$row" >&2
                fail=1
            }
            ;;
    esac
done <<< "$rows"

[ "$fail" -eq 0 ] || { echo "bench_analysis FAILED" >&2; exit 1; }
echo "bench_analysis OK"
