#!/usr/bin/env bash
# Overload bench for the campaign projection service: starts a daemon
# with a deliberately small admission queue, saturates its workers with
# lingering requests, fires a burst of clients at the full queue, and
# checks that the server sheds the excess *while staying responsive*
# (a retrying client still gets through).  Then a concurrent campaign
# burst measures served throughput over a shared artifact cache.
# Accounting goes to BENCH_service.json in the current directory.
#
# Usage: scripts/bench_service.sh [path/to/dlproj_served [path/to/dlproj_client]]
set -eu
root=$(cd "$(dirname "$0")/.." && pwd)

SERVED=${1:-$root/build/tools/dlproj_served}
CLIENT=${2:-$root/build/tools/dlproj_client}
SPEC=$root/data/demo.campaign
[ -x "$SERVED" ] || { echo "bench_service: $SERVED not built" >&2; exit 1; }
[ -x "$CLIENT" ] || { echo "bench_service: $CLIENT not built" >&2; exit 1; }

work=$(mktemp -d)
sock="$work/served.sock"
server_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null && \
        wait "$server_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT

"$SERVED" --socket="$sock" --workers=2 --queue-max=2 --retry-after-ms=5 \
    --cache-dir="$work/cache" --quiet &
server_pid=$!

for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.05; done
[ -S "$sock" ] || { echo "bench_service: daemon never bound $sock" >&2; exit 1; }

field() { sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"; }

# --- overload: fill workers + queue with lingering pings, then burst ---
# Capacity is workers + queue_max = 4 concurrent requests; 8 fillers make
# sure both workers and both queue slots stay occupied for the full
# linger, so the burst below deterministically finds the queue full.
for _ in $(seq 1 8); do
    "$CLIENT" --socket="$sock" --linger-ms=1500 --retries=1 ping \
        >/dev/null 2>&1 &
done
sleep 0.3   # let the linger requests occupy both workers and the queue
burst_shed=0
for _ in $(seq 1 8); do
    if ! "$CLIENT" --socket="$sock" --no-retry-shed --retries=1 ping \
        >/dev/null 2>&1; then
        burst_shed=$((burst_shed + 1))
    fi
done
# A *retrying* client must still get through the overload.
"$CLIENT" --socket="$sock" --retries=40 ping >/dev/null 2>&1 \
    || { echo "bench_service: retrying ping failed under overload" >&2; exit 1; }
wait_jobs=$(jobs -p | grep -v "^$server_pid\$" || true)
[ -n "$wait_jobs" ] && wait $wait_jobs 2>/dev/null || true

# --- throughput: concurrent campaign burst over the shared cache -------
clients=8
t0=$(date +%s%N)
pids=
for _ in $(seq 1 "$clients"); do
    "$CLIENT" --socket="$sock" --retries=40 campaign "$SPEC" \
        >/dev/null 2>&1 &
    pids="$pids $!"
done
failed=0
for p in $pids; do wait "$p" || failed=$((failed + 1)); done
t1=$(date +%s%N)
burst_wall_ms=$(( (t1 - t0) / 1000000 ))

stats=$("$CLIENT" --socket="$sock" stats 2>/dev/null)
completed=$(printf '%s' "$stats" | field completed)
shed=$(printf '%s' "$stats" | field shed)
replays=$(printf '%s' "$stats" | field replays)

"$CLIENT" --socket="$sock" shutdown >/dev/null 2>&1 || true
wait "$server_pid" 2>/dev/null || true
server_pid=

cat > BENCH_service.json <<EOF
{
  "bench": "service_overload",
  "spec": "data/demo.campaign",
  "workers": 2,
  "queue_max": 2,
  "overload_burst": 8,
  "overload_shed": $burst_shed,
  "campaign_clients": $clients,
  "campaign_failures": $failed,
  "campaign_burst_wall_ms": $burst_wall_ms,
  "server_completed": $completed,
  "server_shed": $shed,
  "server_replays": $replays
}
EOF
cat BENCH_service.json

[ "$failed" -eq 0 ] || {
    echo "bench_service: $failed campaign client(s) failed" >&2; exit 1; }
[ "$burst_shed" -gt 0 ] && [ "$shed" -gt 0 ] || {
    echo "bench_service: overload never shed a request" >&2; exit 1; }
echo "bench_service OK (shed $shed, ${clients} campaigns in ${burst_wall_ms} ms)"
