#!/usr/bin/env bash
# Golden-corpus judge (ROADMAP #5 seed): runs every registered fault-sim
# engine over the corpus circuits and compares the SHA-256 of each
# canonical detection table (tools/dlproj_judge) against the digests
# pinned under data/golden/.  All engines are bit-identical by contract,
# so every <circuit>.<engine>.sha256 for one circuit pins the *same*
# digest — an engine drifting from the others, or any semantic change to
# parsing/collapsing/simulation, fails the judge.
#
# Usage: scripts/judge.sh [--update] [--engine=NAME] [path/to/dlproj_judge]
#
#   --update        re-pin the digests from the current build instead of
#                   comparing (commit the diff under data/golden/)
#   --engine=NAME   judge only one engine (default: all registered)
#
# Exit status: 0 all digests match, 1 any mismatch, 2 usage/build error.
set -eu
root=$(cd "$(dirname "$0")/.." && pwd)

update=0
only_engine=""
BIN=""
for arg in "$@"; do
    case "$arg" in
        --update) update=1 ;;
        --engine=*) only_engine=${arg#--engine=} ;;
        --*) echo "judge: unknown option $arg" >&2; exit 2 ;;
        *) BIN=$arg ;;
    esac
done
BIN=${BIN:-$root/build/tools/dlproj_judge}
[ -x "$BIN" ] || { echo "judge: $BIN not built" >&2; exit 2; }

# The corpus: builder circuits plus the synthetic 2k-gate .bench fixture.
# Names must stay shell- and filename-safe.
corpus="c17 c432 adder3 parity4 synth_2k"
bench_for() {
    case "$1" in
        synth_2k) echo "$root/data/synth_2k.bench" ;;
        *) echo "$1" ;;
    esac
}
# synth_2k gets fewer vectors so the vector-serial naive oracle stays
# CI-friendly; the count is part of the digested bytes, so it is pinned
# along with the detection table.
vectors_for() {
    case "$1" in
        synth_2k) echo 256 ;;
        *) echo 1024 ;;
    esac
}

if [ -n "$only_engine" ]; then
    engines=$only_engine
else
    engines=$("$BIN" --list-engines)
fi

golden="$root/data/golden"
mkdir -p "$golden"

fail=0
total=0
start=$(date +%s)
for circuit in $corpus; do
    for engine in $engines; do
        total=$((total + 1))
        digest=$("$BIN" --engine="$engine" \
                 --vectors="$(vectors_for "$circuit")" \
                 "$(bench_for "$circuit")" | sha256sum | cut -d' ' -f1)
        pin="$golden/$circuit.$engine.sha256"
        if [ "$update" -eq 1 ]; then
            echo "$digest" > "$pin"
            echo "judge: pinned $circuit/$engine $digest"
            continue
        fi
        if [ ! -f "$pin" ]; then
            echo "judge: MISSING $pin (run scripts/judge.sh --update)" >&2
            fail=1
            continue
        fi
        want=$(cat "$pin")
        if [ "$digest" = "$want" ]; then
            echo "judge: ok $circuit/$engine"
        else
            echo "judge: MISMATCH $circuit/$engine" >&2
            echo "  pinned  $want" >&2
            echo "  current $digest" >&2
            fail=1
        fi
    done
done
elapsed=$(($(date +%s) - start))

[ "$update" -eq 1 ] && { echo "judge: pinned $total digests in ${elapsed}s"; exit 0; }
[ "$fail" -eq 0 ] || { echo "judge FAILED (${elapsed}s)" >&2; exit 1; }
echo "judge OK: $total digests matched in ${elapsed}s"
