#!/usr/bin/env bash
# Golden-corpus judge (ROADMAP #5 seed): runs every registered fault-sim
# engine over the corpus circuits and compares the SHA-256 of each
# canonical detection table (tools/dlproj_judge) against the digests
# pinned under data/golden/.  All engines are bit-identical by contract,
# so every <circuit>.<engine>.sha256 for one circuit pins the *same*
# digest — an engine drifting from the others, or any semantic change to
# parsing/collapsing/simulation, fails the judge.
#
# The c432 switch-level table (dlproj_judge --switch: the full physical
# flow's realistic-fault verdicts) is judged as pseudo-engine "switch" —
# one digest, engine-independent by the same bit-identity contract.
#
# Each run also writes BENCH_judge.json next to the cwd: per-(circuit,
# engine) wall seconds, so the judge doubles as the committed per-circuit
# perf trajectory.  Timing never enters any digest.
#
# Usage: scripts/judge.sh [--update] [--engine=NAME] [path/to/dlproj_judge]
#
#   --update        re-pin the digests from the current build instead of
#                   comparing (commit the diff under data/golden/)
#   --engine=NAME   judge only one engine (default: all registered; the
#                   switch-level table is judged regardless)
#
# Exit status: 0 all digests match, 1 any mismatch, 2 usage/build error.
set -eu
root=$(cd "$(dirname "$0")/.." && pwd)

update=0
only_engine=""
BIN=""
for arg in "$@"; do
    case "$arg" in
        --update) update=1 ;;
        --engine=*) only_engine=${arg#--engine=} ;;
        --*) echo "judge: unknown option $arg" >&2; exit 2 ;;
        *) BIN=$arg ;;
    esac
done
BIN=${BIN:-$root/build/tools/dlproj_judge}
case "$BIN" in /*) ;; *) BIN=$PWD/$BIN ;; esac
[ -x "$BIN" ] || { echo "judge: $BIN not built" >&2; exit 2; }
# The circuit argument is part of the digested table header, so fixture
# paths must be repo-relative for the pins to be machine-independent.
cd "$root"

# The corpus: builder circuits plus the synthetic .bench fixtures.
# Names must stay shell- and filename-safe.
corpus="c17 c432 adder3 parity4 synth_2k synth_5k synth_10k"
bench_for() {
    case "$1" in
        synth_*) echo "data/$1.bench" ;;
        *) echo "$1" ;;
    esac
}
# The synthetic fixtures get fewer vectors so the vector-serial naive
# oracle stays CI-friendly; the count is part of the digested bytes, so it
# is pinned along with the detection table.
vectors_for() {
    case "$1" in
        synth_2k) echo 256 ;;
        synth_5k) echo 16 ;;
        synth_10k) echo 4 ;;
        *) echo 1024 ;;
    esac
}

if [ -n "$only_engine" ]; then
    engines=$only_engine
else
    engines=$("$BIN" --list-engines)
fi

golden="$root/data/golden"
mkdir -p "$golden"

# Per-(circuit, engine) wall-millisecond rows for BENCH_judge.json.
bench_rows=""
now_ms() { date +%s%3N; }

fail=0
total=0
start=$(date +%s)

# one_digest <circuit> <pin-label> <cmd...>: digests stdout of <cmd...>,
# compares or re-pins $golden/<circuit>.<pin-label>.sha256, and records
# the timing row.
one_digest() {
    circuit=$1; label=$2; shift 2
    total=$((total + 1))
    t0=$(now_ms)
    digest=$("$@" | sha256sum | cut -d' ' -f1)
    t1=$(now_ms)
    [ -n "$bench_rows" ] && bench_rows="$bench_rows,
"
    bench_rows="$bench_rows    {\"circuit\": \"$circuit\", \"engine\": \"$label\", \"wall_ms\": $((t1 - t0))}"
    pin="$golden/$circuit.$label.sha256"
    if [ "$update" -eq 1 ]; then
        echo "$digest" > "$pin"
        echo "judge: pinned $circuit/$label $digest"
        return 0
    fi
    if [ ! -f "$pin" ]; then
        echo "judge: MISSING $pin (run scripts/judge.sh --update)" >&2
        fail=1
        return 0
    fi
    want=$(cat "$pin")
    if [ "$digest" = "$want" ]; then
        echo "judge: ok $circuit/$label"
    else
        echo "judge: MISMATCH $circuit/$label" >&2
        echo "  pinned  $want" >&2
        echo "  current $digest" >&2
        fail=1
    fi
}

for circuit in $corpus; do
    for engine in $engines; do
        one_digest "$circuit" "$engine" \
            "$BIN" --engine="$engine" \
            --vectors="$(vectors_for "$circuit")" \
            "$(bench_for "$circuit")"
    done
done

# Switch-level table: the full physical flow on c432 (engine-independent).
one_digest c432 switch "$BIN" --switch --vectors=256 c432

elapsed=$(($(date +%s) - start))

{
    echo "{"
    echo "  \"bench\": \"judge\","
    echo "  \"total_digests\": $total,"
    echo "  \"wall_s\": $elapsed,"
    echo "  \"circuits\": ["
    printf '%s\n' "$bench_rows"
    echo "  ]"
    echo "}"
} > BENCH_judge.json
echo "judge: wrote BENCH_judge.json"

[ "$update" -eq 1 ] && { echo "judge: pinned $total digests in ${elapsed}s"; exit 0; }
[ "$fail" -eq 0 ] || { echo "judge FAILED (${elapsed}s)" >&2; exit 1; }
echo "judge OK: $total digests matched in ${elapsed}s"
