#!/usr/bin/env bash
# Documentation lint, run by the `docs_check` CTest entry and the CI docs
# job.  Three checks:
#   1. every relative markdown link in the repo's *.md files points at a
#      file or directory that exists (external URLs and pure #anchors are
#      skipped, as are targets that don't look like paths);
#   2. docs/CONFIGURATION.md mentions every DLPROJ_* identifier that
#      appears in src/ or tools/ (the env.cpp helpers are called with the
#      variable name at the consuming site) — new knobs must be
#      documented to land;
#   3. every CLI flag a tool accepts (the "--flag" literals in its source,
#      which is also what its usage()/--help prints) appears in
#      docs/CONFIGURATION.md or the tool's own doc page.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative link targets exist -----------------------------------
while IFS= read -r md; do
    dir=$(dirname "$md")
    # Extract the (target) of every [text](target) link in this file.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target=${target%%#*}          # drop an anchor fragment
        [ -n "$target" ] || continue
        # Heuristic: only validate plain path-looking targets.
        case "$target" in
            *[!A-Za-z0-9_./-]*) continue ;;
        esac
        case "$target" in
            */*|*.*) ;;               # has a slash or extension: a path
            *) continue ;;
        esac
        if [ ! -e "$dir/$target" ]; then
            echo "BROKEN LINK: $md -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//')
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*')

# --- 2. every DLPROJ_* knob in src/ or tools/ is documented ------------
conf=docs/CONFIGURATION.md
if [ ! -f "$conf" ]; then
    echo "MISSING: $conf"
    fail=1
else
    while IFS= read -r knob; do
        if ! grep -q "$knob" "$conf"; then
            echo "UNDOCUMENTED KNOB: $knob (found in src/ or tools/," \
                 "absent from $conf)"
            fail=1
        fi
    done < <(grep -rhoE 'DLPROJ_[A-Z_]*[A-Z]' src tools | sort -u)
fi

# --- 3. every tool CLI flag is documented ------------------------------
# A tool's usage()/--help text and its argument parser both spell flags as
# "--name" string literals, so the literals are the full flag inventory.
# Each must appear in CONFIGURATION.md or the tool's own doc page.
doc_pages_for() {
    case "$1" in
        dlproj_lint)     echo "docs/LINT.md" ;;
        dlproj_client|dlproj_served) echo "docs/SERVICE.md" ;;
        dlproj_campaign) echo "docs/NDETECT.md" ;;
        *)               echo "" ;;
    esac
}
if [ -f "$conf" ]; then
    for tool_src in tools/dlproj_*.cpp; do
        tool=$(basename "$tool_src" .cpp)
        pages="$conf $(doc_pages_for "$tool")"
        while IFS= read -r flag; do
            # shellcheck disable=SC2086
            if ! grep -qF -- "$flag" $pages; then
                echo "UNDOCUMENTED FLAG: $tool $flag (absent from $pages)"
                fail=1
            fi
        done < <(grep -ohE '"--[a-z][a-z-]*' "$tool_src" | tr -d '"' |
                 sort -u)
    done
fi

if [ "$fail" -ne 0 ]; then
    echo "docs check FAILED"
    exit 1
fi
echo "docs check OK"
