#!/usr/bin/env bash
# Documentation lint, run by the `docs_check` CTest entry and the CI docs
# job.  Two checks:
#   1. every relative markdown link in the repo's *.md files points at a
#      file or directory that exists (external URLs and pure #anchors are
#      skipped, as are targets that don't look like paths);
#   2. docs/CONFIGURATION.md mentions every DLPROJ_* identifier that
#      appears in src/ — new knobs must be documented to land.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative link targets exist -----------------------------------
while IFS= read -r md; do
    dir=$(dirname "$md")
    # Extract the (target) of every [text](target) link in this file.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target=${target%%#*}          # drop an anchor fragment
        [ -n "$target" ] || continue
        # Heuristic: only validate plain path-looking targets.
        case "$target" in
            *[!A-Za-z0-9_./-]*) continue ;;
        esac
        case "$target" in
            */*|*.*) ;;               # has a slash or extension: a path
            *) continue ;;
        esac
        if [ ! -e "$dir/$target" ]; then
            echo "BROKEN LINK: $md -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//')
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*')

# --- 2. every DLPROJ_* knob in src/ is documented ----------------------
conf=docs/CONFIGURATION.md
if [ ! -f "$conf" ]; then
    echo "MISSING: $conf"
    fail=1
else
    while IFS= read -r knob; do
        if ! grep -q "$knob" "$conf"; then
            echo "UNDOCUMENTED KNOB: $knob (found in src/, absent from $conf)"
            fail=1
        fi
    done < <(grep -rhoE 'DLPROJ_[A-Z_]*[A-Z]' src | sort -u)
fi

if [ "$fail" -ne 0 ]; then
    echo "docs check FAILED"
    exit 1
fi
echo "docs check OK"
