#!/usr/bin/env bash
# Refreshes BENCH_faultsim.json (written to the repo root) via the
# perf_faultsim harness: one row per (engine, circuit) over the synthetic
# corpus, each with items/s and a speedup_vs_serial.  The acceptance bar for
# the levelized engine is >= 10x the serial engine on a >= 2k-gate synthetic
# circuit; this script enforces it so CI catches a regression.
#
# Usage: scripts/bench_faultsim.sh [path/to/perf_faultsim]
set -eu
root=$(cd "$(dirname "$0")/.." && pwd)

BIN=${1:-$root/build/bench/perf_faultsim}
[ -x "$BIN" ] || { echo "bench_faultsim: $BIN not built" >&2; exit 1; }

# The registered google-benchmarks are the interactive view; the JSON
# emitter runs after them regardless of the filter, so skip them here.
cd "$root"
"$BIN" --benchmark_filter='^$' >/dev/null

[ -f BENCH_faultsim.json ] || {
    echo "bench_faultsim: BENCH_faultsim.json not written" >&2; exit 1; }

# Best levelized speedup over the synthetic (>= 2k-gate) circuits.  The
# emitter writes one engine row per line, so line-oriented tools suffice.
best=$(grep '"engine": "levelized"' BENCH_faultsim.json \
    | grep '"circuit": "synth_' \
    | sed 's/.*"speedup_vs_serial": \([0-9.]*\).*/\1/' \
    | sort -g | tail -1)
[ -n "$best" ] || {
    echo "bench_faultsim: no levelized synth rows in BENCH_faultsim.json" >&2
    exit 1
}

grep -E '"(engine|circuit)"' BENCH_faultsim.json || true
awk -v b="$best" 'BEGIN { exit !(b >= 10.0) }' || {
    echo "bench_faultsim: levelized speedup ${best}x < 10x on the" \
         "synthetic corpus" >&2
    exit 1
}
echo "bench_faultsim OK (levelized ${best}x vs serial)"
