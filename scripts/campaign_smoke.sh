#!/usr/bin/env bash
# Campaign smoke test, run by the `campaign_cli` CTest entry and the CI
# campaign job.  Exercises the dlproj_campaign CLI end to end against
# data/demo.campaign (a 12-cell grid) and asserts the cache and sharding
# guarantees that the campaign subsystem makes:
#   1. a cold run completes every cell (all misses);
#   2. a warm re-run is served 100% from the artifact cache and its
#      JSON/CSV reports are byte-identical to the cold run's;
#   3. merging the CSVs of a --shard=0/2 + --shard=1/2 fan-out (numeric
#      sort on the leading index column) reproduces the unsharded CSV
#      byte for byte.
#
# Usage: scripts/campaign_smoke.sh [path/to/dlproj_campaign [spec]]
set -eu
cd "$(dirname "$0")/.."

BIN=${1:-build/tools/dlproj_campaign}
SPEC=${2:-data/demo.campaign}
[ -x "$BIN" ] || { echo "campaign smoke: $BIN not built" >&2; exit 1; }

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cache="$work/cache"

stat_of() { # stat_of <key> <file>
    sed -n "s/^  \"$1\": \([0-9]*\),*\$/\1/p" "$2"
}

# --- 1. cold run -------------------------------------------------------
"$BIN" --quiet --cache-dir="$cache" --json="$work/cold.json" \
    --csv="$work/cold.csv" --stats="$work/cold.stats" "$SPEC"
cells=$(stat_of cells_selected "$work/cold.stats")
hits=$(stat_of cell_hits "$work/cold.stats")
[ "$cells" -gt 0 ] || { echo "campaign smoke: no cells ran" >&2; exit 1; }
[ "$hits" -eq 0 ] || {
    echo "campaign smoke: cold run hit the cache ($hits)" >&2; exit 1; }

# --- 2. warm run: all hits, byte-identical reports ---------------------
"$BIN" --quiet --cache-dir="$cache" --json="$work/warm.json" \
    --csv="$work/warm.csv" --stats="$work/warm.stats" "$SPEC"
hits=$(stat_of cell_hits "$work/warm.stats")
misses=$(stat_of cell_misses "$work/warm.stats")
[ "$hits" -eq "$cells" ] && [ "$misses" -eq 0 ] || {
    echo "campaign smoke: warm run not fully cached ($hits/$cells hits," \
         "$misses misses)" >&2; exit 1; }
cmp -s "$work/cold.json" "$work/warm.json" || {
    echo "campaign smoke: warm JSON differs from cold JSON" >&2; exit 1; }
cmp -s "$work/cold.csv" "$work/warm.csv" || {
    echo "campaign smoke: warm CSV differs from cold CSV" >&2; exit 1; }

# --- 3. sharded fan-out merges to the unsharded report -----------------
cache2="$work/cache2"
"$BIN" --quiet --cache-dir="$cache2" --shard=0/2 --json=/dev/null \
    --csv="$work/s0.csv" "$SPEC"
"$BIN" --quiet --cache-dir="$cache2" --shard=1/2 --json=/dev/null \
    --csv="$work/s1.csv" "$SPEC"
head -n 1 "$work/s0.csv" > "$work/merged.csv"
tail -n +2 -q "$work/s0.csv" "$work/s1.csv" | sort -t, -k1 -n \
    >> "$work/merged.csv"
cmp -s "$work/cold.csv" "$work/merged.csv" || {
    echo "campaign smoke: merged shard CSV differs from unsharded CSV" >&2
    diff "$work/cold.csv" "$work/merged.csv" >&2 || true
    exit 1; }

echo "campaign smoke OK ($cells cells; warm run 100% cached;" \
     "2-way shard merge byte-identical)"
