#!/usr/bin/env bash
# Measures the artifact-cache speedup on data/demo.campaign: one cold run
# (empty cache) and one warm run (same cache), both wall-clocked by the
# CLI itself, written to BENCH_campaign.json in the current directory.
# The acceptance bar for the cache is warm >= 5x faster than cold.
#
# Usage: scripts/bench_campaign.sh [path/to/dlproj_campaign [spec]]
set -eu
root=$(cd "$(dirname "$0")/.." && pwd)

BIN=${1:-$root/build/tools/dlproj_campaign}
SPEC=${2:-$root/data/demo.campaign}
[ -x "$BIN" ] || { echo "bench_campaign: $BIN not built" >&2; exit 1; }

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

wall_of() { sed -n 's/^  "wall_ms": \([0-9]*\),*$/\1/p' "$1"; }

"$BIN" --quiet --cache-dir="$work/cache" --json=/dev/null \
    --stats="$work/cold.stats" "$SPEC"
"$BIN" --quiet --cache-dir="$work/cache" --json=/dev/null \
    --stats="$work/warm.stats" "$SPEC"

cold=$(wall_of "$work/cold.stats")
warm=$(wall_of "$work/warm.stats")
cells=$(sed -n 's/^  "cells_selected": \([0-9]*\),*$/\1/p' "$work/cold.stats")
hits=$(sed -n 's/^  "cell_hits": \([0-9]*\),*$/\1/p' "$work/warm.stats")
[ "$warm" -gt 0 ] || warm=1   # sub-millisecond warm runs round to 0
speedup=$((cold / warm))

cat > BENCH_campaign.json <<EOF
{
  "bench": "campaign_cache",
  "spec": "data/demo.campaign",
  "cells": $cells,
  "cold_wall_ms": $cold,
  "warm_wall_ms": $warm,
  "warm_cell_hits": $hits,
  "speedup_x": $speedup
}
EOF
cat BENCH_campaign.json

[ "$hits" -eq "$cells" ] || {
    echo "bench_campaign: warm run not fully cached" >&2; exit 1; }
[ "$speedup" -ge 5 ] || {
    echo "bench_campaign: cache speedup ${speedup}x < 5x" >&2; exit 1; }
echo "bench_campaign OK (${speedup}x)"
