#!/usr/bin/env bash
# Refreshes BENCH_ndetect.json (written to the repo root) via the
# perf_ndetect harness: time and theta/DL versus the n-detection target
# n in {1, 2, 4, 8}, on the c432 full flow and the synth_5k gate-level
# workload (see bench/perf_ndetect.cpp for what each row measures).
#
# The enforced bars are the laws the n-detection suite guarantees, not
# performance numbers: every row's average-case coverage dominates its
# worst case, the synth worst case is non-increasing in n (fixed vector
# set), and the c432 n-detect sets are at least as long as the n=1 set
# (the top-up phase only appends).
#
# Usage: scripts/bench_ndetect.sh [path/to/perf_ndetect]
set -eu
root=$(cd "$(dirname "$0")/.." && pwd)

BIN=${1:-$root/build/bench/perf_ndetect}
[ -x "$BIN" ] || { echo "bench_ndetect: $BIN not built" >&2; exit 1; }

cd "$root"
"$BIN"

[ -f BENCH_ndetect.json ] || {
    echo "bench_ndetect: BENCH_ndetect.json not written" >&2; exit 1; }

# One row per line; pull a named numeric field out of a row.
field() { sed "s/.*\"$2\": \([0-9.e+-]*\).*/\1/" <<< "$1"; }

rows=$(grep '"workload"' BENCH_ndetect.json)
[ "$(wc -l <<< "$rows")" -eq 8 ] || {
    echo "bench_ndetect: expected 8 rows (2 workloads x 4 targets)" >&2
    exit 1
}

fail=0
prev_synth_wc=""
c432_n1_vectors=""
while IFS= read -r row; do
    wc_cov=$(field "$row" worst_case_coverage)
    ac_cov=$(field "$row" avg_case_coverage)
    awk -v a="$ac_cov" -v w="$wc_cov" 'BEGIN { exit !(a >= w) }' || {
        echo "bench_ndetect: avg case $ac_cov < worst case $wc_cov: $row" >&2
        fail=1
    }
    case "$row" in
        *synth_5k*)
            if [ -n "$prev_synth_wc" ]; then
                awk -v p="$prev_synth_wc" -v w="$wc_cov" \
                    'BEGIN { exit !(w <= p) }' || {
                    echo "bench_ndetect: synth worst case rose with n" >&2
                    fail=1
                }
            fi
            prev_synth_wc=$wc_cov
            ;;
        *c432*)
            vectors=$(field "$row" vectors)
            [ -n "$c432_n1_vectors" ] || c432_n1_vectors=$vectors
            [ "$vectors" -ge "$c432_n1_vectors" ] || {
                echo "bench_ndetect: c432 n-detect set shorter than n=1" >&2
                fail=1
            }
            ;;
    esac
done <<< "$rows"

grep -E '"(workload|ndetect)"' BENCH_ndetect.json >/dev/null || true
[ "$fail" -eq 0 ] || { echo "bench_ndetect FAILED" >&2; exit 1; }
echo "bench_ndetect OK"
