// The paper's full flow on the c432 benchmark: netlist -> standard-cell
// layout -> layout fault extraction -> stuck-at ATPG -> switch-level fault
// simulation -> defect-level projection and model fit.
//
// Runs through the staged flow::ExperimentRunner with a progress callback,
// so each stage (and the long switch-level simulation) reports as it goes.
//
// With an output directory argument it also writes the artifacts:
//   dl_projection_c432 out/   ->  out/curves.csv, out/weights.csv,
//                                 out/c432_layout.svg, out/summary.txt
#include <cstdio>
#include <exception>
#include <string>

#include "flow/experiment.h"
#include "flow/report.h"
#include "layout/svg.h"
#include "model/dl_models.h"
#include "netlist/builders.h"
#include "obs/telemetry.h"

int main(int argc, char** argv) try {
    using namespace dlp;

    flow::ExperimentOptions opt;
    opt.target_yield = 0.75;  // scale like the paper ("same testability")
    std::printf("Running the full physical-to-logical flow on c432...\n");

    flow::ExperimentRunner runner(netlist::build_c432(), opt);
    runner.set_progress([](std::string_view stage, std::size_t done,
                           std::size_t total) {
        // Stage transitions once; switch-sim every vector batch.
        if (done == total || done % 256 == 0)
            std::fprintf(stderr, "  [%.*s] %zu/%zu\n",
                         static_cast<int>(stage.size()), stage.data(), done,
                         total);
    });
    const flow::ExperimentResult& r = runner.run();

    if (argc >= 2) {
        const std::string dir = argv[1];
        flow::write_file(dir + "/curves.csv", flow::curves_csv(r));
        flow::write_file(dir + "/weights.csv", flow::weight_histogram_csv(r));
        flow::write_file(dir + "/summary.txt", flow::summary_text(r));
        // The layout is already cached in the runner's prepared design.
        layout::write_svg(runner.prepare().chip, dir + "/c432_layout.svg");
        std::printf("artifacts written to %s/\n", dir.c_str());
    }

    std::printf("\n-- workload --\n");
    std::printf("mapped gates:        %zu\n", r.mapped_gates);
    std::printf("transistors:         %zu\n", r.transistors);
    std::printf("die area:            %lld lambda^2\n",
                static_cast<long long>(r.die_area));
    std::printf("collapsed SA faults: %zu\n", r.stuck_faults);
    std::printf("realistic faults:    %zu (weighted, layout-extracted)\n",
                r.realistic_faults);
    std::printf("test vectors:        %d (%d random + %d deterministic)\n",
                r.vector_count, r.random_vectors,
                r.vector_count - r.random_vectors);

    std::printf("\n-- extraction weight by mechanism --\n");
    for (const auto& [cls, w] : r.weight_by_class)
        std::printf("  %-18s %8.4f (%.1f%%)\n", cls.c_str(), w,
                    100 * w / r.raw_total_weight);

    std::printf("\n-- coverage at end of test --\n");
    std::printf("T      = %6.2f%% (stuck-at)\n", 100 * r.t_curve.final());
    std::printf("theta  = %6.2f%% (weighted realistic)\n",
                100 * r.theta_curve.final());
    std::printf("Gamma  = %6.2f%% (unweighted realistic)\n",
                100 * r.gamma_curve.final());

    std::printf("\n-- defect-level projection (Y = %.2f) --\n", r.yield);
    const double dl = model::weighted_dl(r.yield, r.theta_curve.final());
    std::printf("projected DL after full test: %.0f ppm\n", model::to_ppm(dl));
    std::printf("Williams-Brown would claim:   %.0f ppm\n",
                model::to_ppm(model::williams_brown_dl(r.yield,
                                                       r.t_curve.final())));
    std::printf("fitted eq.(11): R = %.2f, theta_max = %.3f, residual floor "
                "= %.0f ppm\n",
                r.fit.r, r.fit.theta_max,
                model::to_ppm(model::ProposedModel{r.yield, r.fit.r,
                                                   r.fit.theta_max}
                                  .residual_dl()));

    // With DLPROJ_TELEMETRY/DLPROJ_TRACE set, show where the time went
    // (the trace file itself is written at exit).
    if (obs::enabled())
        std::fprintf(stderr, "\n%s", obs::summary_text().c_str());
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "dl_projection_c432: %s\n", e.what());
    return 2;
}
