// ATPG example: generate a compact stuck-at test set for a circuit
// (random-pattern phase + PODEM), report coverage growth, redundant
// faults, and the Williams test-length law fitted to the random phase.
#include <cmath>
#include <cstdio>
#include <exception>

#include "atpg/generate.h"
#include "model/coverage_laws.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"

int main(int argc, char** argv) try {
    using namespace dlp;

    // Pick a workload: default c432, or an N-bit adder via "adder N".
    netlist::Circuit circuit = netlist::build_c432();
    if (argc >= 3 && std::string(argv[1]) == "adder")
        circuit = netlist::build_ripple_adder(std::atoi(argv[2]));
    const netlist::Circuit mapped = netlist::techmap(circuit);

    auto faults = gatesim::collapse_faults(
        mapped, gatesim::full_fault_universe(mapped));
    std::printf("circuit %s: %zu gates, %zu collapsed stuck-at faults\n",
                mapped.name().c_str(), mapped.logic_gate_count(),
                faults.size());

    atpg::TestGenOptions opt;
    opt.seed = 2;
    const atpg::TestGenResult res =
        atpg::generate_test_set(mapped, faults, opt);

    std::printf("vectors: %zu (%d random + %d PODEM)\n", res.vectors.size(),
                res.random_count, res.deterministic_count);
    std::printf("coverage: %.2f%% of testable (%zu detected, %zu redundant, "
                "%zu aborted)\n",
                100 * res.coverage(), res.detected, res.redundant,
                res.aborted);

    // Coverage growth through the random phase, and the fitted
    // susceptibility (Williams' test-length model, paper eq. 7).
    std::vector<model::CoveragePoint> pts;
    std::vector<int> hits(static_cast<size_t>(res.random_count) + 1, 0);
    for (int at : res.first_detected_at)
        if (at >= 1 && at <= res.random_count)
            ++hits[static_cast<size_t>(at)];
    double cum = 0;
    std::printf("\n%8s %12s\n", "k", "T(k)%");
    for (int k = 1; k <= res.random_count; ++k) {
        cum += hits[static_cast<size_t>(k)];
        const double cov = cum / static_cast<double>(faults.size());
        if ((k & (k - 1)) == 0 || k == res.random_count) {  // powers of two
            std::printf("%8d %12.2f\n", k, 100 * cov);
        }
        if (cov > 0 && cov < 1) pts.push_back({static_cast<double>(k), cov});
    }
    if (pts.size() >= 2) {
        const auto law = model::fit_coverage_law(pts, false);
        std::printf("\nfitted stuck-at susceptibility: ln(s_T) = %.2f  "
                    "(test length for 99%%: %.0f vectors)\n",
                    std::log(law.susceptibility), law.vectors_for(0.99));
    }
    return 0;
} catch (const std::exception& e) {
    // Misconfiguration (e.g. a garbage DLPROJ_* value) diagnoses cleanly
    // instead of aborting through an unhandled exception.
    std::fprintf(stderr, "atpg_flow: %s\n", e.what());
    return 2;
}
