// The paper's closing suggestion, run in reverse: use measured DL(T)
// fallout to tune assumed defect statistics for a process line.  We
// synthesize "measured" fallout with one defect profile, then score
// candidate profiles by how well their simulated fallout matches.
#include <cmath>
#include <cstdio>
#include <exception>

#include "extract/rules_parser.h"
#include "flow/experiment.h"
#include "netlist/builders.h"

int main() try {
    using namespace dlp;

    const auto run = [](const extract::DefectStatistics& stats) {
        flow::ExperimentOptions opt;
        opt.atpg.seed = 9;
        opt.defects = stats;
        return flow::run_experiment(netlist::build_ripple_adder(8), opt);
    };

    std::printf("Synthesizing 'measured' fallout with a bridging-dominant "
                "line...\n");
    const auto measured =
        run(extract::DefectStatistics::cmos_bridging_dominant());

    const auto score = [&](const flow::ExperimentResult& cand) {
        // Compare DL(T) point clouds on the common T grid.
        double sum = 0.0;
        size_t n = std::min(cand.dl_vs_t.size(), measured.dl_vs_t.size());
        for (size_t i = 0; i < n; ++i) {
            const double d = cand.dl_vs_t[i].defect_level -
                             measured.dl_vs_t[i].defect_level;
            sum += d * d;
        }
        return std::sqrt(sum / static_cast<double>(n));
    };

    struct Candidate {
        const char* name;
        extract::DefectStatistics stats;
    };
    // Candidate profiles come from lift-style rules text, the same format a
    // process engineer would maintain (see data/cmos_bridging.rules).
    const Candidate candidates[] = {
        {"bridging-dominant", extract::parse_defect_rules(
                                  extract::to_rules(
                                      extract::DefectStatistics::
                                          cmos_bridging_dominant()))},
        {"open-dominant", extract::DefectStatistics::open_dominant()},
        {"uniform", extract::DefectStatistics::uniform()},
    };

    std::printf("\n%-22s %14s %8s %11s\n", "candidate profile", "DL rms(ppm)",
                "R", "theta_max");
    const char* best = nullptr;
    double best_rms = 1e300;
    for (const auto& c : candidates) {
        const auto r = run(c.stats);
        const double rms = score(r);
        std::printf("%-22s %14.0f %8.2f %11.3f\n", c.name, 1e6 * rms, r.fit.r,
                    r.fit.theta_max);
        if (rms < best_rms) {
            best_rms = rms;
            best = c.name;
        }
    }
    std::printf("\nBest match: %s (as constructed).  In production use, the "
                "measured curve comes from the tester and the candidates "
                "from assumed line statistics.\n", best);
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "defect_stats_tuning: %s\n", e.what());
    return 2;
}
