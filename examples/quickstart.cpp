// Quickstart: the defect-level models on their own.
//
// Answers the practical question the paper opens with: "how much stuck-at
// coverage is enough for a target defect level?" - first with the classic
// Williams-Brown equation, then with the proposed model once you know your
// process's susceptibility ratio R and test-method ceiling theta_max.
#include <cstdio>
#include <exception>

#include "flow/experiment.h"
#include "model/dl_models.h"
#include "netlist/builders.h"

int main() try {
    using namespace dlp::model;

    const double yield = 0.75;
    const double target_dl = from_ppm(200);

    // Classic Williams-Brown: DL = 1 - Y^(1-T).
    const double t_wb = williams_brown_required_coverage(yield, target_dl);
    std::printf("Williams-Brown: need T = %.3f%% for %.0f ppm at Y = %.2f\n",
                100 * t_wb, to_ppm(target_dl), yield);

    // The proposed model: realistic (layout-extracted, weighted) faults are
    // easier to detect than stuck-ats (R > 1), but voltage testing cannot
    // cover everything (theta_max < 1).
    const ProposedModel model{yield, /*r=*/1.9, /*theta_max=*/0.96};
    std::printf("Proposed model (R=1.9, theta_max=0.96):\n");
    std::printf("  residual DL floor: %.0f ppm - unreachable below this "
                "with static voltage testing alone\n",
                to_ppm(model.residual_dl()));
    if (target_dl >= model.residual_dl()) {
        std::printf("  need T = %.3f%% for %.0f ppm\n",
                    100 * model.required_coverage(target_dl),
                    to_ppm(target_dl));
    } else {
        std::printf("  %.0f ppm is below the floor: add IDDQ/delay tests\n",
                    to_ppm(target_dl));
    }

    // A small DL(T) table comparing the two.
    std::printf("\n%8s %14s %14s\n", "T%", "WB DL(ppm)", "model DL(ppm)");
    for (double t : {0.80, 0.90, 0.95, 0.99, 1.00})
        std::printf("%8.1f %14.1f %14.1f\n", 100 * t,
                    to_ppm(williams_brown_dl(yield, t)),
                    to_ppm(model.dl(t)));

    // The experiment pipeline statically checks its inputs before doing
    // any physical-design work (src/lint); prepare() throws
    // lint::LintError when the netlist or rule deck has errors.  On a
    // clean design the report just carries the counts.
    dlp::flow::ExperimentRunner runner(dlp::netlist::build_c17());
    runner.prepare();
    const dlp::lint::LintReport lint = runner.lint_report();
    std::printf("\nlint (c17 + default rule deck): %zu errors, "
                "%zu warnings, %zu infos, %zu suppressed\n",
                lint.errors, lint.warnings, lint.infos, lint.suppressed);
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 2;
}
