// Production test planning with the characterized model: how long a random
// test buys a target defect level, what the detection-method floor is, and
// how defect clustering changes the picture.
#include <cmath>
#include <cstdio>

#include "model/planning.h"
#include "model/yield.h"

int main() {
    using namespace dlp::model;

    // A process characterized per the paper: Y = 0.75, R = 1.9,
    // theta_max = 0.96, stuck-at susceptibility e^3 (fig. 1's value).
    const TestPlanInputs process{0.75, 1.9, 0.96, std::exp(3.0)};

    std::printf("process: Y=%.2f R=%.2f theta_max=%.2f ln(s_T)=%.1f\n\n",
                process.yield, process.r, process.theta_max,
                std::log(process.s_stuck_at));

    std::printf("%12s %16s %18s\n", "target DL", "required T%", "vectors");
    for (double ppm : {50000.0, 20000.0, 15000.0, 12000.0, 11500.0}) {
        const TestPlan plan = plan_test_length(process, from_ppm(ppm));
        if (plan.reachable)
            std::printf("%9.0f ppm %16.2f %18.0f\n", ppm,
                        100 * plan.required_coverage, plan.vectors);
        else
            std::printf("%9.0f ppm %35s\n", ppm,
                        "unreachable: below the residual floor");
    }
    {
        const TestPlan plan = plan_test_length(process, from_ppm(50000.0));
        std::printf("\nresidual floor of this detection method: %.0f ppm "
                    "(add IDDQ/delay tests to go lower)\n",
                    to_ppm(plan.residual_dl));
    }

    // Defect clustering: the same lambda ships fewer bad parts because
    // defects concentrate on dies the test rejects anyway.
    const double lambda = total_weight_for_yield(0.75);
    std::printf("\nclustering (theta = 0.90, lambda = %.3f):\n", lambda);
    std::printf("%12s %12s %12s\n", "alpha", "yield%", "DL(ppm)");
    for (double alpha : {0.5, 1.0, 2.0, 5.0, 1e9}) {
        std::printf("%12.1f %12.2f %12.0f\n", alpha,
                    100 * stapper_yield(lambda, alpha),
                    to_ppm(clustered_dl(lambda, alpha, 0.90)));
    }
    std::printf("(alpha -> infinity is the Poisson limit, eq. 3)\n");
    return 0;
}
