// Unit + property tests for the defect-level models (eqs 1-11).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "model/coverage_laws.h"
#include "model/delay_model.h"
#include "model/dl_models.h"
#include "model/fit.h"
#include "model/planning.h"
#include "model/stats.h"
#include "model/yield.h"

namespace dlp::model {
namespace {

TEST(WilliamsBrown, KnownValues) {
    // DL = 1 - Y^(1-T)
    EXPECT_DOUBLE_EQ(williams_brown_dl(0.5, 0.0), 0.5);
    EXPECT_DOUBLE_EQ(williams_brown_dl(0.5, 1.0), 0.0);
    EXPECT_NEAR(williams_brown_dl(0.75, 0.9), 1.0 - std::pow(0.75, 0.1),
                1e-12);
}

TEST(WilliamsBrown, PerfectYieldShipsNoDefects) {
    EXPECT_DOUBLE_EQ(williams_brown_dl(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(williams_brown_dl(1.0, 0.5), 0.0);
}

TEST(WilliamsBrown, RejectsBadInputs) {
    EXPECT_THROW(williams_brown_dl(0.0, 0.5), std::domain_error);
    EXPECT_THROW(williams_brown_dl(-0.1, 0.5), std::domain_error);
    EXPECT_THROW(williams_brown_dl(1.1, 0.5), std::domain_error);
    EXPECT_THROW(williams_brown_dl(0.5, -0.1), std::domain_error);
    EXPECT_THROW(williams_brown_dl(0.5, 1.1), std::domain_error);
}

TEST(WilliamsBrown, RequiredCoverageInverts) {
    const double y = 0.75;
    for (double t : {0.1, 0.5, 0.9, 0.99}) {
        const double dl = williams_brown_dl(y, t);
        EXPECT_NEAR(williams_brown_required_coverage(y, dl), t, 1e-9);
    }
}

TEST(WilliamsBrown, RequiredCoverageEdges) {
    EXPECT_DOUBLE_EQ(williams_brown_required_coverage(0.75, 0.3), 0.0);
    EXPECT_DOUBLE_EQ(williams_brown_required_coverage(1.0, 0.0), 0.0);
    EXPECT_THROW(williams_brown_required_coverage(0.75, -0.1),
                 std::domain_error);
}

TEST(Agrawal, ReducesTowardWilliamsBrownShape) {
    // At n = 1 the Agrawal formula is DL = (1-T)(1-Y) / (Y + (1-T)(1-Y)).
    const double y = 0.75;
    const double t = 0.9;
    const double esc = (1 - t) * (1 - y);
    EXPECT_NEAR(agrawal_dl(y, t, 1.0), esc / (y + esc), 1e-12);
}

TEST(Agrawal, MonotoneDecreasingInCoverageAndN) {
    const double y = 0.6;
    double prev = 1.0;
    for (double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const double dl = agrawal_dl(y, t, 3.0);
        EXPECT_LE(dl, prev + 1e-15);
        prev = dl;
    }
    EXPECT_GT(agrawal_dl(y, 0.5, 1.0), agrawal_dl(y, 0.5, 5.0));
    EXPECT_THROW(agrawal_dl(y, 0.5, 0.5), std::domain_error);
}

TEST(ProposedModel, ReducesToWilliamsBrown) {
    const ProposedModel m{0.75, 1.0, 1.0};
    for (double t : {0.0, 0.3, 0.7, 0.95, 1.0})
        EXPECT_NEAR(m.dl(t), williams_brown_dl(0.75, t), 1e-12);
}

TEST(ProposedModel, PaperExampleOne) {
    // Paper, section 2, example 1: Y=.75, theta_max=1, R=2.1,
    // DL = 100 ppm  =>  T = 97.7% (Williams-Brown would demand 99.97%).
    const ProposedModel m{0.75, 2.1, 1.0};
    const double t = m.required_coverage(from_ppm(100.0));
    EXPECT_NEAR(t, 0.977, 5e-3);
    const double t_wb =
        williams_brown_required_coverage(0.75, from_ppm(100.0));
    EXPECT_NEAR(t_wb, 0.9997, 5e-5);
    EXPECT_GT(t_wb, t);  // the new model is less stringent
}

TEST(ProposedModel, PaperExampleTwo) {
    // Example 2: Y=.75, T=100%, theta_max=.99, R=1: a residual defect level
    // remains (eq 11 gives ~2.9e-3; Williams-Brown would claim zero).
    const ProposedModel m{0.75, 1.0, 0.99};
    const double dl = m.dl(1.0);
    EXPECT_NEAR(dl, 1.0 - std::pow(0.75, 0.01), 1e-12);
    EXPECT_GT(to_ppm(dl), 1000.0);
    EXPECT_DOUBLE_EQ(williams_brown_dl(0.75, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(m.residual_dl(), dl);
}

TEST(ProposedModel, LiesBelowWilliamsBrownAtHighCoverage) {
    // With R > 1, realistic coverage runs ahead of T, so DL(T) is concave
    // and sits below Williams-Brown in the mid range (fig. 2).
    const ProposedModel m{0.75, 2.0, 1.0};
    for (double t : {0.2, 0.5, 0.8})
        EXPECT_LT(m.dl(t), williams_brown_dl(0.75, t));
}

TEST(ProposedModel, ResidualFloorDominatesNearFullCoverage) {
    const ProposedModel m{0.75, 2.0, 0.96};
    EXPECT_GT(m.dl(1.0), 0.0);
    EXPECT_NEAR(m.dl(1.0), m.residual_dl(), 1e-15);
    EXPECT_GT(m.dl(0.9999), williams_brown_dl(0.75, 0.9999));
}

TEST(ProposedModel, RequiredCoverageUnreachableThrows) {
    const ProposedModel m{0.75, 2.0, 0.96};
    EXPECT_THROW(m.required_coverage(m.residual_dl() / 2), std::domain_error);
}

struct ModelParams {
    double yield;
    double r;
    double theta_max;
};

class ProposedModelProperty : public ::testing::TestWithParam<ModelParams> {};

TEST_P(ProposedModelProperty, MonotoneAndBounded) {
    const auto p = GetParam();
    const ProposedModel m{p.yield, p.r, p.theta_max};
    double prev = 1.0;
    for (int i = 0; i <= 100; ++i) {
        const double t = i / 100.0;
        const double dl = m.dl(t);
        EXPECT_GE(dl, 0.0);
        EXPECT_LE(dl, 1.0 - p.yield + 1e-12);
        EXPECT_LE(dl, prev + 1e-12) << "DL must fall as T rises, t=" << t;
        prev = dl;
    }
    // theta(T) stays within [0, theta_max].
    for (int i = 0; i <= 10; ++i) {
        const double th = m.theta_of_coverage(i / 10.0);
        EXPECT_GE(th, 0.0);
        EXPECT_LE(th, p.theta_max + 1e-12);
    }
}

TEST_P(ProposedModelProperty, RoundTripRequiredCoverage) {
    const auto p = GetParam();
    const ProposedModel m{p.yield, p.r, p.theta_max};
    for (double t : {0.05, 0.3, 0.6, 0.9}) {
        const double dl = m.dl(t);
        if (dl <= m.residual_dl() + 1e-15) continue;
        EXPECT_NEAR(m.required_coverage(dl), t, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProposedModelProperty,
    ::testing::Values(ModelParams{0.9, 1.0, 1.0}, ModelParams{0.75, 2.0, 0.96},
                      ModelParams{0.5, 1.5, 0.99}, ModelParams{0.75, 2.1, 1.0},
                      ModelParams{0.3, 3.0, 0.9},
                      ModelParams{0.95, 1.2, 0.999}));

TEST(CoverageLaws, Figure1Parameters) {
    // Fig 1: s_T = e^3, s_theta = e^{3/2}, theta_max = .96 => R = 2.
    const CoverageLaw t_law{std::exp(3.0), 1.0};
    const CoverageLaw th_law{std::exp(1.5), 0.96};
    EXPECT_DOUBLE_EQ(susceptibility_ratio(std::exp(3.0), std::exp(1.5)), 2.0);
    // T(k) = 1 - k^{-1/3}.
    EXPECT_NEAR(t_law.coverage(8.0), 1.0 - std::pow(8.0, -1.0 / 3.0), 1e-12);
    // theta reaches its saturation fraction faster than T reaches 1.
    const double k = 100.0;
    EXPECT_GT(th_law.coverage(k) / 0.96, t_law.coverage(k));
}

TEST(CoverageLaws, VectorsForInverts) {
    const CoverageLaw law{std::exp(2.0), 1.0};
    for (double cov : {0.1, 0.5, 0.9}) {
        const double k = law.vectors_for(cov);
        EXPECT_NEAR(law.coverage(k), cov, 1e-9);
    }
    EXPECT_THROW(law.vectors_for(1.0), std::domain_error);
    EXPECT_THROW(law.coverage(0.5), std::domain_error);
}

TEST(CoverageLaws, FitRecoversSusceptibility) {
    const CoverageLaw truth{std::exp(2.5), 1.0};
    std::vector<CoveragePoint> pts;
    for (double k = 2; k < 5000; k *= 1.7)
        pts.push_back({k, truth.coverage(k)});
    const CoverageLaw fit = fit_coverage_law(pts, false);
    EXPECT_NEAR(std::log(fit.susceptibility), 2.5, 1e-6);
}

TEST(CoverageLaws, FitRecoversSaturation) {
    const CoverageLaw truth{std::exp(1.8), 0.93};
    std::vector<CoveragePoint> pts;
    for (double k = 2; k < 100000; k *= 1.5)
        pts.push_back({k, truth.coverage(k)});
    const CoverageLaw fit = fit_coverage_law(pts, true);
    EXPECT_NEAR(fit.saturation, 0.93, 0.01);
    EXPECT_NEAR(std::log(fit.susceptibility), 1.8, 0.15);
}

TEST(Yield, WeightArithmetic) {
    EXPECT_DOUBLE_EQ(weight_from_probability(0.0), 0.0);
    EXPECT_NEAR(probability_from_weight(weight_from_probability(0.3)), 0.3,
                1e-12);
    EXPECT_NEAR(poisson_yield(total_weight_for_yield(0.75)), 0.75, 1e-12);
    EXPECT_THROW(weight_from_probability(1.0), std::domain_error);
}

TEST(Yield, StapperLimitsToPoisson) {
    const double lambda = 0.3;
    EXPECT_NEAR(stapper_yield(lambda, 1e9), std::exp(-lambda), 1e-6);
    EXPECT_GT(stapper_yield(lambda, 0.5), std::exp(-lambda));  // clustering helps
}

TEST(Yield, WeightedCoverage) {
    const double w[] = {1.0, 2.0, 7.0};
    const bool d[] = {true, false, true};
    EXPECT_DOUBLE_EQ(weighted_coverage(w, d), 0.8);
    EXPECT_NEAR(unweighted_coverage(d), 2.0 / 3.0, 1e-12);
}

TEST(Yield, ScaleFactorHitsTarget) {
    const double scale = yield_scale_factor(5.0, 0.75);
    EXPECT_NEAR(poisson_yield(5.0 * scale), 0.75, 1e-12);
}

TEST(Fit, RecoversProposedParameters) {
    // Generate clean fallout data from a known model and refit.
    const ProposedModel truth{0.75, 1.9, 0.96};
    std::vector<FalloutPoint> pts;
    for (int i = 1; i <= 40; ++i) {
        const double t = i / 40.0;
        pts.push_back({t, truth.dl(t)});
    }
    const ProposedFit fit = fit_proposed_model(0.75, pts);
    EXPECT_NEAR(fit.r, 1.9, 0.05);
    EXPECT_NEAR(fit.theta_max, 0.96, 0.005);
    EXPECT_LT(fit.rms_error, 1e-4);
}

TEST(Fit, AgrawalFitMatchesItsOwnData) {
    std::vector<FalloutPoint> pts;
    for (int i = 0; i <= 20; ++i) {
        const double t = i / 20.0;
        pts.push_back({t, agrawal_dl(0.8, t, 4.0)});
    }
    const AgrawalFit fit = fit_agrawal_model(0.8, pts);
    EXPECT_NEAR(fit.n_avg, 4.0, 0.1);
}

TEST(Fit, NelderMeadMinimizesQuadratic) {
    const auto f = [](std::span<const double> x) {
        const double a = x[0] - 3.0;
        const double b = x[1] + 2.0;
        return a * a + 2 * b * b + 5.0;
    };
    const double init[] = {0.0, 0.0};
    const auto res = minimize(f, init);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 3.0, 1e-4);
    EXPECT_NEAR(res.x[1], -2.0, 1e-4);
    EXPECT_NEAR(res.value, 5.0, 1e-8);
}

TEST(Fit, EmptyInputsThrow) {
    EXPECT_THROW(fit_proposed_model(0.75, {}), std::invalid_argument);
    EXPECT_THROW(fit_agrawal_model(0.75, {}), std::invalid_argument);
}

TEST(Hardening, NanInputsAreRejectedNotPropagated) {
    // NaN slips through reversed-range comparisons; every entry point must
    // throw the documented domain_error instead of returning NaN.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(williams_brown_dl(nan, 0.5), std::domain_error);
    EXPECT_THROW(williams_brown_dl(0.75, nan), std::domain_error);
    EXPECT_THROW(williams_brown_required_coverage(0.75, nan),
                 std::domain_error);
    EXPECT_THROW(williams_brown_required_coverage(1.0, nan),
                 std::domain_error);
    EXPECT_THROW(agrawal_dl(0.75, 0.5, nan), std::domain_error);
    EXPECT_THROW(weighted_dl(0.75, nan), std::domain_error);
    const ProposedModel m{0.75, 2.0, 0.96};
    EXPECT_THROW(m.theta_of_coverage(nan), std::domain_error);
    EXPECT_THROW(m.dl(nan), std::domain_error);
    EXPECT_THROW(m.required_coverage(nan), std::domain_error);
}

TEST(Hardening, RequiredCoverageStaysInUnitInterval) {
    // Near Y -> 1 the inversion divides by ln(Y) -> -0; the result must
    // still be a finite coverage in [0,1].
    for (double y : {1.0 - 1e-12, 1.0 - 1e-9, 0.999999}) {
        const double max_dl = 1.0 - y;
        for (double dl : {0.0, max_dl * 0.25, max_dl * 0.75}) {
            const double t = williams_brown_required_coverage(y, dl);
            EXPECT_TRUE(std::isfinite(t)) << "y=" << y << " dl=" << dl;
            EXPECT_GE(t, 0.0);
            EXPECT_LE(t, 1.0);
        }
    }
}

TEST(Hardening, ProposedRequiredCoverageLargeTargetsAreFinite) {
    const ProposedModel m{0.75, 2.0, 0.96};
    // Targets at or above the zero-coverage DL (including DL >= 1) need no
    // testing; they must not reach the log and go non-finite.
    EXPECT_DOUBLE_EQ(m.required_coverage(1.0), 0.0);
    EXPECT_DOUBLE_EQ(m.required_coverage(1.5), 0.0);
    EXPECT_DOUBLE_EQ(m.required_coverage(0.3), 0.0);
    const double t = m.required_coverage(m.residual_dl() * 1.5);
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
}

TEST(Hardening, DegenerateFlatCurveFitsFinite) {
    // An interrupted or instantly saturated run can hand the fitter a flat
    // curve; the fit must stay finite and in range rather than NaN.
    std::vector<FalloutPoint> flat(12, FalloutPoint{0.5, 0.01});
    const ProposedFit f = fit_proposed_model(0.75, flat);
    EXPECT_TRUE(std::isfinite(f.r));
    EXPECT_TRUE(std::isfinite(f.theta_max));
    EXPECT_TRUE(std::isfinite(f.rms_error));
    EXPECT_GE(f.r, 1.0);
    EXPECT_GT(f.theta_max, 0.0);
    EXPECT_LE(f.theta_max, 1.0);

    std::vector<FalloutPoint> single{{0.9, 1e-4}};
    const ProposedFit s = fit_proposed_model(0.75, single);
    EXPECT_TRUE(std::isfinite(s.r));
    EXPECT_TRUE(std::isfinite(s.theta_max));
}

TEST(Hardening, NonFinitePointsAreDroppedFromFit) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    const ProposedModel truth{0.75, 1.9, 0.96};
    std::vector<FalloutPoint> pts;
    for (int i = 1; i <= 40; ++i) {
        const double t = i / 40.0;
        pts.push_back({t, truth.dl(t)});
    }
    pts.push_back({nan, 0.5});
    pts.push_back({0.5, inf});
    const ProposedFit fit = fit_proposed_model(0.75, pts);
    EXPECT_NEAR(fit.r, 1.9, 0.1);
    EXPECT_NEAR(fit.theta_max, 0.96, 0.01);

    std::vector<FalloutPoint> bad{{nan, nan}, {inf, 0.1}};
    EXPECT_THROW(fit_proposed_model(0.75, bad), std::invalid_argument);
}

TEST(Planning, TestLengthRoundTrips) {
    const TestPlanInputs in{0.75, 1.9, 0.96, std::exp(3.0)};
    const TestPlan plan = plan_test_length(in, from_ppm(20000));
    ASSERT_TRUE(plan.reachable);
    EXPECT_GT(plan.vectors, 1.0);
    // Running that many vectors must deliver (about) the target DL.
    EXPECT_NEAR(dl_at_test_length(in, plan.vectors), from_ppm(20000), 1e-9);
}

TEST(Planning, UnreachableBelowResidualFloor) {
    const TestPlanInputs in{0.75, 1.9, 0.96, std::exp(3.0)};
    const ProposedModel m{0.75, 1.9, 0.96};
    const TestPlan plan = plan_test_length(in, m.residual_dl() / 2);
    EXPECT_FALSE(plan.reachable);
    EXPECT_NEAR(plan.residual_dl, m.residual_dl(), 1e-15);
}

TEST(Planning, MoreVectorsLowerDl) {
    const TestPlanInputs in{0.75, 1.5, 0.98, std::exp(2.5)};
    double prev = 1.0;
    for (double k : {1.0, 10.0, 100.0, 1000.0, 100000.0}) {
        const double dl = dl_at_test_length(in, k);
        EXPECT_LE(dl, prev + 1e-15);
        prev = dl;
    }
    // ...but never below the residual floor.
    const ProposedModel m{0.75, 1.5, 0.98};
    EXPECT_GE(dl_at_test_length(in, 1e12), m.residual_dl() - 1e-12);
}

TEST(Clustered, LimitsAndOrdering) {
    const double lambda = total_weight_for_yield(0.75);
    // alpha -> infinity reduces to the Poisson eq. (3).
    for (double theta : {0.0, 0.3, 0.7, 0.95, 1.0})
        EXPECT_NEAR(clustered_dl(lambda, 1e9, theta),
                    weighted_dl(0.75, theta), 1e-6);
    // Clustering (small alpha) lowers DL at equal lambda and theta:
    // defects pile onto dies that fail the test anyway.
    for (double theta : {0.3, 0.7, 0.95})
        EXPECT_LT(clustered_dl(lambda, 0.5, theta),
                  clustered_dl(lambda, 1e9, theta));
    EXPECT_DOUBLE_EQ(clustered_dl(lambda, 2.0, 1.0), 0.0);
    EXPECT_NEAR(clustered_dl(lambda, 2.0, 0.0),
                1.0 - stapper_yield(lambda, 2.0), 1e-12);
}

TEST(Clustered, RequiredThetaInverts) {
    const double lambda = 0.4;
    const double alpha = 1.5;
    for (double theta : {0.2, 0.6, 0.9}) {
        const double dl = clustered_dl(lambda, alpha, theta);
        EXPECT_NEAR(clustered_required_theta(lambda, alpha, dl), theta, 1e-9);
    }
    EXPECT_DOUBLE_EQ(clustered_required_theta(0.0, 1.0, 0.001), 0.0);
    EXPECT_THROW(clustered_dl(lambda, 0.0, 0.5), std::domain_error);
}

TEST(DelayModel, SurvivalFunctions) {
    const DelaySizeDistribution expo{
        DelaySizeDistribution::Kind::Exponential, 2.0};
    EXPECT_DOUBLE_EQ(expo.survival(0.0), 1.0);
    EXPECT_NEAR(expo.survival(2.0), std::exp(-1.0), 1e-12);
    EXPECT_DOUBLE_EQ(expo.survival(-1.0), 1.0);  // sizes are nonnegative
    const DelaySizeDistribution uni{DelaySizeDistribution::Kind::Uniform,
                                    4.0};
    EXPECT_DOUBLE_EQ(uni.survival(1.0), 0.75);
    EXPECT_DOUBLE_EQ(uni.survival(4.0), 0.0);
    EXPECT_DOUBLE_EQ(uni.survival(9.0), 0.0);
}

TEST(DelayModel, CoverageBehaviour) {
    const DelaySizeDistribution dist{
        DelaySizeDistribution::Kind::Exponential, 1.0};
    // Two lines: one critical (zero op slack), one relaxed.
    std::vector<DelayLine> lines{{0.0, 0.0, true, 1.0},
                                 {3.0, 3.0, true, 1.0}};
    // At-speed test, everything exercised: full coverage.
    EXPECT_NEAR(delay_defect_coverage(lines, dist), 1.0, 1e-12);

    // Slower test clock (larger test slack): coverage drops strictly.
    std::vector<DelayLine> slow = lines;
    slow[0].slack_test = 2.0;
    slow[1].slack_test = 5.0;
    const double dc_slow = delay_defect_coverage(slow, dist);
    EXPECT_LT(dc_slow, 1.0);
    EXPECT_GT(dc_slow, 0.0);

    // Unexercised lines contribute failures but never detections.
    std::vector<DelayLine> partial = lines;
    partial[0].exercised = false;
    const double dc_partial = delay_defect_coverage(partial, dist);
    EXPECT_LT(dc_partial, 1.0);

    // Failure probability weighs the critical line fully.
    const double pf = delay_failure_probability(lines, dist);
    EXPECT_NEAR(pf, (1.0 + std::exp(-3.0)) / 2.0, 1e-12);
}

TEST(DelayModel, MonotoneInTestSlack) {
    const DelaySizeDistribution dist{
        DelaySizeDistribution::Kind::Exponential, 1.5};
    double prev = 1.1;
    for (double extra : {0.0, 0.5, 1.0, 2.0, 4.0}) {
        std::vector<DelayLine> lines{{0.5, 0.5 + extra, true, 1.0},
                                     {2.0, 2.0 + extra, true, 1.0}};
        const double dc = delay_defect_coverage(lines, dist);
        EXPECT_LT(dc, prev);
        prev = dc;
    }
}

TEST(Stats, LogHistogramBinsAndDispersion) {
    LogHistogram h(1e-9, 1e-5, 8);
    h.add(2e-9);
    h.add(3e-9);
    h.add(5e-6);
    EXPECT_EQ(h.total(), 3);
    EXPECT_GT(h.dispersion_decades(), 2.0);
    EXPECT_THROW(h.add(0.0), std::domain_error);
    // Out-of-range values clamp into the edge bins.
    h.add(1e-12);
    EXPECT_EQ(h.count(0) >= 1, true);
}

TEST(Stats, SummaryAndRegression) {
    const double xs[] = {1.0, 2.0, 3.0, 4.0};
    const double ys[] = {2.1, 4.2, 6.0, 8.1};
    const Summary s = summarize(ys);
    EXPECT_EQ(s.count, 4u);
    EXPECT_NEAR(s.mean, 5.1, 1e-9);
    const LinearFit f = linear_regression(xs, ys);
    EXPECT_NEAR(f.slope, 2.0, 0.05);
    EXPECT_GT(f.r_squared, 0.99);
}

// --- Property / metamorphic sweeps over the eq (11) model ---------------
//
// These complement the point checks above: instead of single known values
// they assert structural invariants over a grid of (Y, R, theta_max)
// parameterizations, which is what the campaign fit consumes.

TEST(ProposedModelProperty, DlMonotoneNonIncreasingInCoverage) {
    // More coverage can never ship more defects: DL(T) is non-increasing
    // in T for every admissible parameterization.
    for (double y : {1e-6, 0.01, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0})
        for (double r : {1.0, 1.5, 3.0, 8.0, 20.0})
            for (double tm : {0.1, 0.5, 0.9, 1.0}) {
                const ProposedModel m{y, r, tm};
                double prev = std::numeric_limits<double>::infinity();
                for (int k = 0; k <= 50; ++k) {
                    const double t = k / 50.0;
                    const double dl = m.dl(t);
                    EXPECT_LE(dl, prev + 1e-15)
                        << "Y=" << y << " R=" << r << " tm=" << tm
                        << " T=" << t;
                    prev = dl;
                }
            }
}

TEST(ProposedModelProperty, ThetaMonotoneAndBoundedByThetaMax) {
    for (double r : {1.0, 2.0, 6.0, 15.0})
        for (double tm : {0.2, 0.7, 1.0}) {
            const ProposedModel m{0.5, r, tm};
            double prev = -1.0;
            for (int k = 0; k <= 40; ++k) {
                const double t = k / 40.0;
                const double th = m.theta_of_coverage(t);
                EXPECT_GE(th, prev - 1e-15);
                EXPECT_GE(th, 0.0);
                EXPECT_LE(th, tm + 1e-15);
                prev = th;
            }
            EXPECT_DOUBLE_EQ(m.theta_of_coverage(0.0), 0.0);
            EXPECT_NEAR(m.theta_of_coverage(1.0), tm, 1e-12);
        }
}

TEST(ProposedModelProperty, CollapsesToWilliamsBrownAtUnitParameters) {
    // R = 1, theta_max = 1 must reduce eq (11) exactly to eq (1), on a
    // dense T grid and across the yield range.
    for (double y : {1e-4, 0.1, 0.5, 0.75, 0.99, 1.0}) {
        const ProposedModel m{y, 1.0, 1.0};
        for (int k = 0; k <= 100; ++k) {
            const double t = k / 100.0;
            EXPECT_NEAR(m.dl(t), williams_brown_dl(y, t), 1e-13)
                << "Y=" << y << " T=" << t;
        }
        EXPECT_DOUBLE_EQ(m.residual_dl(), 0.0);
    }
}

TEST(ProposedModelProperty, BoundaryCoverageIsClampedAndFinite) {
    // T = 0 and T = 1 are exactly the no-test and full-test limits; both
    // must be finite, in [0,1], and NaN-free even at extreme yields.
    for (double y : {1e-12, 1e-6, 0.5, 1.0 - 1e-12, 1.0})
        for (double r : {1.0, 4.0, 50.0})
            for (double tm : {1e-6, 0.5, 1.0}) {
                const ProposedModel m{y, r, tm};
                for (double t : {0.0, 1.0}) {
                    const double dl = m.dl(t);
                    EXPECT_FALSE(std::isnan(dl));
                    EXPECT_GE(dl, 0.0);
                    EXPECT_LE(dl, 1.0);
                }
                EXPECT_NEAR(m.dl(0.0), 1.0 - std::pow(y, 1.0), 1e-12);
                EXPECT_NEAR(m.dl(1.0), m.residual_dl(), 1e-12);
            }
}

TEST(ProposedModelProperty, DlBracketedByResidualAndNoTestLevels) {
    // For any T, residual_dl() <= DL(T) <= DL(0) = 1 - Y.
    for (double y : {0.3, 0.8})
        for (double r : {2.0, 10.0}) {
            const ProposedModel m{y, r, 0.8};
            const double lo = m.residual_dl();
            const double hi = m.dl(0.0);
            for (int k = 0; k <= 20; ++k) {
                const double dl = m.dl(k / 20.0);
                EXPECT_GE(dl, lo - 1e-15);
                EXPECT_LE(dl, hi + 1e-15);
            }
        }
}

TEST(ProposedModelProperty, RequiredCoverageInvertsDl) {
    const ProposedModel m{0.75, 4.0, 0.9};
    for (double t : {0.05, 0.3, 0.6, 0.95}) {
        const double dl = m.dl(t);
        EXPECT_NEAR(m.dl(m.required_coverage(dl)), dl, 1e-9);
    }
    // A target below the residual floor is unreachable.
    EXPECT_THROW(m.required_coverage(m.residual_dl() * 0.5),
                 std::domain_error);
}

TEST(ProposedModelProperty, HigherSusceptibilityCoversFasterEverywhere) {
    // Metamorphic: raising R (realistic faults easier to catch) can only
    // lower DL at every interior coverage point, all else equal.
    const double y = 0.6, tm = 0.95;
    for (int k = 1; k < 20; ++k) {
        const double t = k / 20.0;
        double prev = std::numeric_limits<double>::infinity();
        for (double r : {1.0, 2.0, 4.0, 8.0, 16.0}) {
            const double dl = ProposedModel{y, r, tm}.dl(t);
            EXPECT_LT(dl, prev);
            prev = dl;
        }
    }
}

}  // namespace
}  // namespace dlp::model
