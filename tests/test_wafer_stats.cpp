// Statistical verification of the clustered defect-statistics backend
// (model/defect_stats_model.h) against the wafer Monte Carlo
// (flow/wafer.h), plus the metamorphic laws that tie the backends
// together.  Everything is seeded, so the chi-square/tolerance assertions
// are deterministic: the thresholds are chosen for the pinned seeds, with
// enough margin that they would also pass for almost any other seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "flow/wafer.h"
#include "model/defect_stats_model.h"
#include "model/fit.h"

namespace {

using dlp::flow::WaferOptions;
using dlp::flow::WaferResult;
using dlp::flow::simulate_wafer;
using dlp::model::DefectStatsModel;
using dlp::model::parse_defect_stats;

// std::vector<bool> cannot view as std::span<const bool>.
std::unique_ptr<bool[]> g_bools;
std::span<const bool> bools(const std::vector<char>& v) {
    g_bools = std::make_unique<bool[]>(v.size());
    for (size_t i = 0; i < v.size(); ++i) g_bools[i] = v[i] != 0;
    return {g_bools.get(), v.size()};
}

/// Negative-binomial pmf with shape a and mean mu (the marginal of
/// Poisson(mu * S), S = Gamma(a)/a).
double negbin_pmf(long x, double a, double mu) {
    const double p = mu / (a + mu);  // "success" probability
    return std::exp(std::lgamma(x + a) - std::lgamma(a) -
                    std::lgamma(x + 1.0) + a * std::log1p(-p) +
                    x * std::log(p));
}

double poisson_pmf(long x, double mu) {
    return std::exp(-mu + x * std::log(mu) - std::lgamma(x + 1.0));
}

/// Chi-square statistic of observed per-die defect counts against a pmf,
/// over bins {0, 1, ..., cut-1, >=cut} (cut chosen by the caller so every
/// expected bin count is comfortably >= 5).
double chi_square(const std::vector<long>& counts, long cut,
                  const std::function<double(long)>& pmf) {
    const double n = static_cast<double>(counts.size());
    std::vector<double> observed(static_cast<size_t>(cut) + 1, 0.0);
    for (long c : counts)
        observed[static_cast<size_t>(std::min(c, cut))] += 1.0;
    double chi2 = 0.0;
    double tail = 1.0;
    for (long x = 0; x < cut; ++x) {
        const double e = n * pmf(x);
        tail -= pmf(x);
        EXPECT_GE(e, 5.0) << "bin " << x << " too thin for chi-square";
        const double d = observed[static_cast<size_t>(x)] - e;
        chi2 += d * d / e;
    }
    const double e_tail = n * tail;
    EXPECT_GE(e_tail, 5.0) << "tail bin too thin for chi-square";
    const double d = observed[static_cast<size_t>(cut)] - e_tail;
    chi2 += d * d / e_tail;
    return chi2;
}

/// Samples per-die defect counts only (one unit-weight undetected fault:
/// the fault list is irrelevant to the counts).
std::vector<long> sample_counts(const DefectStatsModel& stats, double lambda,
                                long dies, std::uint64_t seed,
                                long dies_per_wafer = 0) {
    const std::vector<double> w{lambda};
    const std::vector<char> det{0};
    WaferOptions opt;
    opt.dies = dies;
    opt.seed = seed;
    opt.stats = stats;
    opt.dies_per_wafer = dies_per_wafer;
    opt.record_die_counts = true;
    return simulate_wafer(w, bools(det), opt).die_defects;
}

// 99.9% chi-square quantiles by degrees of freedom (bins - 1); generous
// enough that a correct sampler fails ~1 in 1000 reseeds, and the seeds
// here are pinned anyway.
double chi2_crit(int df) {
    static const std::map<int, double> kQ999 = {
        {4, 18.47}, {5, 20.52}, {6, 22.46}, {7, 24.32},
        {8, 26.12}, {9, 27.88}, {10, 29.59}, {11, 31.26}, {12, 32.91}};
    return kQ999.at(df);
}

// ---- goodness of fit -----------------------------------------------------

TEST(NegBinSampler, ChiSquareGoodnessOfFit) {
    const double alpha = 2.0, lambda = 2.0;
    const auto counts =
        sample_counts(parse_defect_stats("negbin:2"), lambda, 200000, 17);
    const long cut = 9;
    const double chi2 = chi_square(
        counts, cut, [&](long x) { return negbin_pmf(x, alpha, lambda); });
    EXPECT_LT(chi2, chi2_crit(static_cast<int>(cut)));
}

TEST(NegBinSampler, LegacyClusteringAlphaSamplesSameLaw) {
    // The clustering_alpha spelling (kept for back-compat) must follow the
    // same negative-binomial law as the stats = negbin:<a> backend.
    const double alpha = 0.8, lambda = 1.5;
    const std::vector<double> w{lambda};
    const std::vector<char> det{0};
    WaferOptions opt;
    opt.dies = 200000;
    opt.seed = 23;
    opt.clustering_alpha = alpha;
    opt.record_die_counts = true;
    const auto counts = simulate_wafer(w, bools(det), opt).die_defects;
    const long cut = 7;
    const double chi2 = chi_square(
        counts, cut, [&](long x) { return negbin_pmf(x, alpha, lambda); });
    EXPECT_LT(chi2, chi2_crit(static_cast<int>(cut)));
}

TEST(HierarchicalSampler, RegionConvolutionGoodnessOfFit) {
    // Two independent regions (one clustered, one Poisson), no shared
    // mixing: the die count is the convolution of a negbin and a Poisson.
    const double lambda = 2.0;
    const auto counts = sample_counts(
        parse_defect_stats("hier:region=0.5@2;region=0.5@0"), lambda,
        200000, 31);
    std::vector<double> pmf_a(32), pmf_b(32);
    for (long x = 0; x < 32; ++x) {
        pmf_a[static_cast<size_t>(x)] = negbin_pmf(x, 2.0, 0.5 * lambda);
        pmf_b[static_cast<size_t>(x)] = poisson_pmf(x, 0.5 * lambda);
    }
    const auto conv = [&](long x) {
        double p = 0.0;
        for (long i = 0; i <= x; ++i)
            p += pmf_a[static_cast<size_t>(i)] *
                 pmf_b[static_cast<size_t>(x - i)];
        return p;
    };
    const long cut = 9;
    const double chi2 = chi_square(counts, cut, conv);
    EXPECT_LT(chi2, chi2_crit(static_cast<int>(cut)));
}

TEST(HierarchicalSampler, SharedMixingMatchesClosedFormMoments) {
    // Wafer- and die-level shared gamma factors: the count marginal has
    // no simple pmf, but mean = lambda and P(0) = the quadrature yield.
    const double lambda = 1.2;
    const DefectStatsModel m =
        parse_defect_stats("hier:wafer=3;die=5;region=0.5@4;region=0.5@0");
    const auto counts = sample_counts(m, lambda, 300000, 41, 64);
    const double n = static_cast<double>(counts.size());
    double sum = 0.0, zeros = 0.0;
    for (long c : counts) {
        sum += static_cast<double>(c);
        zeros += c == 0;
    }
    // Wafer-level mixing correlates 64-die blocks, inflating the standard
    // error well past iid; the tolerances account for the effective sample
    // size of ~300000/64 wafers.
    EXPECT_NEAR(sum / n, lambda, 0.05 * lambda);
    EXPECT_NEAR(zeros / n, m.yield(lambda), 0.02);
}

// ---- metamorphic laws ----------------------------------------------------

TEST(DefectStatsLaws, AlphaToInfinityIsPoisson) {
    const DefectStatsModel poisson = parse_defect_stats("poisson");
    const DefectStatsModel nb = parse_defect_stats("negbin:1000000");
    for (double lambda : {0.1, 0.5, 2.0}) {
        for (double theta : {0.0, 0.3, 0.9}) {
            EXPECT_NEAR(nb.dl(lambda, theta), poisson.dl(lambda, theta),
                        1e-4 * std::max(poisson.dl(lambda, theta), 1e-6));
        }
        EXPECT_NEAR(nb.yield(lambda), poisson.yield(lambda), 1e-5);
    }
    // "negbin:inf" parses straight to the Poisson backend.
    EXPECT_TRUE(parse_defect_stats("negbin:inf").is_poisson());
}

TEST(DefectStatsLaws, DlMonotoneInAlphaAtFixedTheta) {
    // Stronger clustering (smaller alpha) concentrates defects on fewer
    // dies, so at fixed coverage fewer defective dies slip through: DL
    // must increase with alpha toward the Poisson ceiling.
    const double lambda = 0.8, theta = 0.7;
    double prev = 0.0;
    for (double alpha : {0.25, 0.5, 2.0, 10.0, 100.0}) {
        const DefectStatsModel m = parse_defect_stats(
            "negbin:" + std::to_string(alpha));
        const double dl = m.dl(lambda, theta);
        EXPECT_GT(dl, prev) << "alpha " << alpha;
        prev = dl;
    }
    EXPECT_GT(parse_defect_stats("poisson").dl(lambda, theta), prev);
}

TEST(DefectStatsLaws, RegionRefinementPreservesTotalLambda) {
    // Splitting a Poisson region leaves the law identical; splitting any
    // map preserves the total density, so the sampled mean stays lambda.
    const double lambda = 1.0;
    const DefectStatsModel whole = parse_defect_stats("hier:region=1@0");
    const DefectStatsModel split =
        parse_defect_stats("hier:region=0.25@0;region=0.25@0;region=0.5@0");
    for (double l : {0.2, 1.0, 3.0}) {
        // Equal up to the associativity of the per-region factor product.
        EXPECT_NEAR(whole.yield(l), split.yield(l), 1e-12);
        EXPECT_NEAR(whole.dl(l, 0.6), split.dl(l, 0.6), 1e-12);
    }
    const auto counts = sample_counts(
        parse_defect_stats("hier:region=0.5@2;region=0.5@2"), lambda,
        200000, 53);
    const double mean =
        std::accumulate(counts.begin(), counts.end(), 0.0) /
        static_cast<double>(counts.size());
    EXPECT_NEAR(mean, lambda, 0.03 * lambda);
}

// ---- projection vs Monte Carlo -------------------------------------------

namespace differential {

/// A small synthetic fault list with uneven weights; the first half is
/// test-detected.
struct Setup {
    std::vector<double> weights;
    std::vector<char> detected;
    double lambda = 0.0;
    double theta = 0.0;
};

Setup make_setup() {
    Setup s;
    for (int i = 0; i < 40; ++i)
        s.weights.push_back(0.002 * (1 + i % 7));
    s.detected.assign(s.weights.size(), 0);
    double acc = 0.0;
    for (size_t i = 0; i < s.weights.size(); ++i) {
        s.lambda += s.weights[i];
        if (i < s.weights.size() / 2) {
            s.detected[i] = 1;
            acc += s.weights[i];
        }
    }
    s.theta = acc / s.lambda;
    return s;
}

}  // namespace differential

TEST(ProjectionVsMonteCarlo, AlphaByCoverageGrid) {
    // The tentpole acceptance grid: every backend x coverage combination's
    // simulated shipped-defective fraction lands on
    // DefectStatsModel::dl(lambda, theta) within sampling error.
    differential::Setup base = differential::make_setup();
    // Scale to a meaningful defect rate (lambda ~ 0.35).
    for (double& w : base.weights) w *= 2.0;
    base.lambda *= 2.0;
    unsigned salt = 0;
    for (const char* desc : {"negbin:0.5", "negbin:2", "negbin:10",
                             "poisson", "hier:wafer=2;region=0.6@3;"
                                        "region=0.4@0"}) {
        const DefectStatsModel backend = parse_defect_stats(desc);
        for (double frac : {0.3, 0.6, 0.9}) {
            // Re-cut the verdict boundary for this coverage point.
            std::vector<char> det(base.weights.size(), 0);
            double acc = 0.0;
            for (size_t i = 0; i < det.size(); ++i) {
                if (acc / base.lambda >= frac) break;
                det[i] = 1;
                acc += base.weights[i];
            }
            const double theta = acc / base.lambda;
            WaferOptions opt;
            opt.dies = 300000;
            opt.seed = 1000 + ++salt;
            opt.stats = backend;
            const WaferResult mc =
                simulate_wafer(base.weights, bools(det), opt);
            const double projected = backend.dl(base.lambda, theta);
            const double n_pass = static_cast<double>(mc.passing);
            const double sigma =
                std::sqrt(projected * (1.0 - projected) / n_pass);
            EXPECT_NEAR(mc.observed_dl(), projected,
                        5.0 * sigma + 1e-4)
                << desc << " theta " << theta;
        }
    }
}

// ---- fitter recovery -----------------------------------------------------

TEST(FitRecovery, NegBinAlphaFromSampledCounts) {
    const double alpha = 2.0, lambda = 1.5;
    const auto counts =
        sample_counts(parse_defect_stats("negbin:2"), lambda, 100000, 71);
    const double fitted = dlp::model::fit_negbin_alpha(counts);
    EXPECT_NEAR(fitted, alpha, 0.25 * alpha);
}

TEST(FitRecovery, ClusteredModelRecoversCurveParameters) {
    // Generate a noiseless clustered DL-vs-T curve and verify the joint
    // fitter recovers (r, theta_max, alpha) well enough to reproduce it.
    const double lambda = 0.4, r_true = 3.0, theta_max = 0.96,
                 alpha_true = 2.0;
    const DefectStatsModel m = parse_defect_stats("negbin:2");
    std::vector<dlp::model::FalloutPoint> pts;
    for (double t = 0.05; t < 1.0; t += 0.05)
        pts.push_back({t, m.dl_of_coverage(lambda, r_true, theta_max, t)});
    const auto fit = dlp::model::fit_clustered_model(lambda, pts);
    const DefectStatsModel fitted =
        parse_defect_stats("negbin:" + std::to_string(fit.alpha));
    for (const auto& p : pts) {
        EXPECT_NEAR(fitted.dl_of_coverage(lambda, fit.r, fit.theta_max,
                                          p.coverage),
                    p.defect_level, 0.05 * p.defect_level + 1e-5);
    }
    EXPECT_NEAR(fit.alpha, alpha_true, 0.5 * alpha_true);
}

// ---- deterministic regression pins ---------------------------------------

TEST(WaferRegression, LowCoveragePpmPinned) {
    // Pins the exact RNG stream + verdict semantics of simulate_wafer at
    // a bench-like low-coverage point ("detected within k = 8" style cut:
    // the first half of the faults).  Any change to the sampling order,
    // the placement draw, or the pass/ship bookkeeping moves these
    // counts — the same guarantee that keeps the k = 8 row of
    // BENCH_wafer.json reproducible run to run.
    differential::Setup s = differential::make_setup();
    WaferOptions opt;
    opt.dies = 100000;
    opt.seed = 19;
    const WaferResult mc = simulate_wafer(s.weights, bools(s.detected), opt);
    EXPECT_EQ(mc.dies, 100000);
    EXPECT_EQ(mc.defect_free, 73298);
    EXPECT_EQ(mc.passing, 85655);
    EXPECT_EQ(mc.shipped_defective, 12357);
    EXPECT_NEAR(1e6 * mc.observed_dl(), 144264.783142, 1e-3);
}

}  // namespace
