// Tests for the standard-cell library: transistor netlists implement the
// cell's logic function (checked by a tiny network evaluator), geometry is
// well-formed, and extraction tags are present.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cell/library.h"

namespace dlp::cell {
namespace {

/// Evaluates a cell's transistor network for one input assignment by
/// path-tracing: output = 1 if connected to VDD through conducting
/// transistors, 0 if to GND, -1 if floating or shorted.
int eval_cell(const Cell& c, const std::vector<bool>& inputs) {
    std::map<int, bool> value;  // local net -> level
    value[Cell::kGnd] = false;
    value[Cell::kVdd] = true;
    for (size_t i = 0; i + 1 < c.pins.size(); ++i)
        value[c.pins[i].net] = inputs[i];

    // Reachability of `net` from a supply through conducting transistors
    // (transistors with still-unknown gate values do not conduct yet).
    const auto reach = [&](int net, bool from_vdd) {
        std::set<int> seen{from_vdd ? Cell::kVdd : Cell::kGnd};
        bool grew = true;
        while (grew) {
            grew = false;
            for (const Transistor& t : c.transistors) {
                const auto it = value.find(t.gate);
                if (it == value.end()) continue;
                const bool on = t.is_pmos ? !it->second : it->second;
                if (!on) continue;
                const bool s = seen.count(t.source) > 0;
                const bool d = seen.count(t.drain) > 0;
                if (s != d) {
                    seen.insert(s ? t.drain : t.source);
                    grew = true;
                }
            }
        }
        return seen.count(net) > 0;
    };

    // Multi-stage cells (AND/OR/BUF) resolve inner stages first: iterate
    // until no more nets settle.
    bool settled = false;
    while (!settled) {
        settled = true;
        for (size_t n = 0; n < c.nets.size(); ++n) {
            const int net = static_cast<int>(n);
            if (value.count(net)) continue;
            const bool up = reach(net, true);
            const bool dn = reach(net, false);
            if (up && dn) return -2;  // short: must never happen
            if (up || dn) {
                value[net] = up;
                settled = false;
            }
        }
    }
    const int out = c.output_pin().net;
    const auto it = value.find(out);
    return it == value.end() ? -1 : (it->second ? 1 : 0);
}

std::uint64_t expected_output(netlist::GateType type,
                              const std::vector<bool>& in) {
    std::vector<std::uint64_t> words;
    for (bool b : in) words.push_back(b ? ~0ULL : 0ULL);
    return netlist::eval_gate(type, words) & 1ULL;
}

class CellFunction : public ::testing::TestWithParam<const Cell*> {};

TEST_P(CellFunction, TransistorNetworkImplementsFunction) {
    const Cell& c = *GetParam();
    const int arity = c.arity;
    for (int assignment = 0; assignment < (1 << arity); ++assignment) {
        std::vector<bool> in;
        for (int b = 0; b < arity; ++b) in.push_back((assignment >> b) & 1);
        const int got = eval_cell(c, in);
        ASSERT_GE(got, 0) << c.name << " floating/shorted at input "
                          << assignment;
        EXPECT_EQ(static_cast<std::uint64_t>(got),
                  expected_output(c.function, in))
            << c.name << " input " << assignment;
    }
}

TEST_P(CellFunction, GeometryWellFormed) {
    const Cell& c = *GetParam();
    EXPECT_GT(c.width, 0);
    EXPECT_FALSE(c.shapes.empty());
    for (const LocalShape& s : c.shapes) {
        EXPECT_TRUE(s.rect.valid());
        EXPECT_GE(s.rect.x1, 0);
        EXPECT_LE(s.rect.x2, c.width);
        EXPECT_GE(s.rect.y1, 0);
        EXPECT_LE(s.rect.y2, 40);
        EXPECT_GE(s.net, 0);
        EXPECT_LT(static_cast<size_t>(s.net), c.nets.size());
    }
    // No same-layer overlap between different nets inside the cell.
    for (size_t i = 0; i < c.shapes.size(); ++i)
        for (size_t j = i + 1; j < c.shapes.size(); ++j) {
            const auto& a = c.shapes[i];
            const auto& b = c.shapes[j];
            if (a.layer != b.layer || a.net == b.net) continue;
            EXPECT_FALSE(a.rect.intersects(b.rect))
                << c.name << ": " << c.nets[static_cast<size_t>(a.net)]
                << " overlaps " << c.nets[static_cast<size_t>(b.net)]
                << " on " << layer_name(a.layer);
        }
}

TEST_P(CellFunction, ExtractionTagsPresent) {
    const Cell& c = *GetParam();
    // Each transistor has exactly two gate regions... one; and every poly
    // gate column is tagged with a GateFloat.
    EXPECT_EQ(c.gate_regions.size(), c.transistors.size());
    std::set<int> tagged;
    for (const LocalShape& s : c.shapes) {
        if (s.info.open == ShapeInfo::OpenKind::GateFloat) {
            if (s.info.t1 >= 0) tagged.insert(s.info.t1);
            if (s.info.t2 >= 0) tagged.insert(s.info.t2);
        }
        if (s.info.t1 >= 0)
            EXPECT_LT(static_cast<size_t>(s.info.t1), c.transistors.size());
        if (s.info.t2 >= 0)
            EXPECT_LT(static_cast<size_t>(s.info.t2), c.transistors.size());
    }
    EXPECT_EQ(tagged.size(), c.transistors.size())
        << c.name << ": every transistor gate must be float-taggable";
}

TEST_P(CellFunction, PinsAreOnMetal1) {
    const Cell& c = *GetParam();
    ASSERT_EQ(static_cast<int>(c.pins.size()), c.arity + 1);
    for (const Pin& p : c.pins) {
        bool on_m1 = false;
        for (const LocalShape& s : c.shapes)
            if (s.layer == Layer::Metal1 && s.net == p.net &&
                p.x >= s.rect.x1 && p.x < s.rect.x2 && p.y >= s.rect.y1 &&
                p.y < s.rect.y2)
                on_m1 = true;
        EXPECT_TRUE(on_m1) << c.name << " pin " << p.name
                           << " not on its metal1";
    }
}

std::vector<const Cell*> all_cells() {
    std::vector<const Cell*> out;
    for (const Cell& c : standard_library()) out.push_back(&c);
    return out;
}

INSTANTIATE_TEST_SUITE_P(Library, CellFunction,
                         ::testing::ValuesIn(all_cells()),
                         [](const auto& info) { return info.param->name; });

TEST(Library, CoversTechmapTargets) {
    using netlist::GateType;
    EXPECT_TRUE(has_cell(GateType::Not, 1));
    EXPECT_TRUE(has_cell(GateType::Buf, 1));
    for (int a = 2; a <= 4; ++a) {
        EXPECT_TRUE(has_cell(GateType::Nand, a));
        EXPECT_TRUE(has_cell(GateType::Nor, a));
        EXPECT_TRUE(has_cell(GateType::And, a));
        EXPECT_TRUE(has_cell(GateType::Or, a));
    }
    EXPECT_FALSE(has_cell(GateType::Xor, 2));
    EXPECT_THROW(library_cell(GateType::Xor, 2), std::out_of_range);
}

TEST(Library, TransistorCountsMatchTopology) {
    EXPECT_EQ(library_cell(netlist::GateType::Not, 1).transistors.size(), 2u);
    EXPECT_EQ(library_cell(netlist::GateType::Nand, 2).transistors.size(), 4u);
    EXPECT_EQ(library_cell(netlist::GateType::Nand, 4).transistors.size(), 8u);
    EXPECT_EQ(library_cell(netlist::GateType::And, 2).transistors.size(), 6u);
    EXPECT_EQ(library_cell(netlist::GateType::Buf, 1).transistors.size(), 4u);
}

TEST(MakeCell, RejectsBadStrips) {
    EXPECT_THROW(make_cell("BAD", netlist::GateType::Not,
                           {{{"A"}, {"GND"}, {"VDD", "Y"}}}, {"A"}),
                 std::logic_error);
    // Output net must be named Y.
    EXPECT_THROW(make_cell("BAD2", netlist::GateType::Not,
                           {{{"A"}, {"GND", "Z"}, {"VDD", "Z"}}}, {"A"}),
                 std::logic_error);
}

}  // namespace
}  // namespace dlp::cell
