// End-to-end tests of the experiment pipeline, including the paper's
// headline qualitative results on a c432-class circuit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>

#include "flow/experiment.h"
#include "flow/report.h"
#include "flow/wafer.h"
#include "model/dl_models.h"
#include "netlist/builders.h"

namespace dlp::flow {
namespace {

/// The full c432 experiment is expensive; run it once and share.
const ExperimentResult& c432_experiment() {
    static const ExperimentResult r = [] {
        ExperimentOptions opt;
        opt.atpg.seed = 5;
        return run_experiment(netlist::build_c432(), opt);
    }();
    return r;
}

TEST(Flow, WorkloadFacts) {
    const auto& r = c432_experiment();
    EXPECT_GT(r.mapped_gates, 100u);
    EXPECT_GT(r.stuck_faults, 300u);
    EXPECT_GT(r.realistic_faults, 1000u);
    EXPECT_GT(r.transistors, 500u);
    EXPECT_GT(r.vector_count, 32);
    EXPECT_GT(r.die_area, 0);
    EXPECT_NEAR(r.yield, 0.75, 1e-9) << "scaled per the paper";
}

TEST(Flow, CurvesWellFormed) {
    const auto& r = c432_experiment();
    ASSERT_EQ(r.t_curve.size(), static_cast<size_t>(r.vector_count));
    ASSERT_EQ(r.theta_curve.size(), r.t_curve.size());
    ASSERT_EQ(r.gamma_curve.size(), r.t_curve.size());
    for (size_t i = 1; i < r.t_curve.size(); ++i) {
        EXPECT_GE(r.t_curve[i], r.t_curve[i - 1]);
        EXPECT_GE(r.theta_curve[i], r.theta_curve[i - 1]);
        EXPECT_GE(r.gamma_curve[i], r.gamma_curve[i - 1]);
    }
    EXPECT_GT(r.t_curve.final(), 0.95);
}

TEST(Flow, PaperOrderingGammaBelowTAtHighK) {
    // Fig. 4: Gamma(k) < T(k) at high k because unweighted opens are hard;
    // theta(k) saturates below 1 (residual undetected weight).
    const auto& r = c432_experiment();
    EXPECT_LT(r.gamma_curve.final(), r.t_curve.final());
    EXPECT_LT(r.theta_curve.final(), 1.0);
    EXPECT_GT(r.theta_curve.final(), 0.5);
}

TEST(Flow, FittedModelMatchesPaperRegime) {
    // Fig. 5's fit on the authors' layout gave R ~ 1.9, theta_max ~ .96.
    // We require the regime the model needs: R > 1 (realistic weighted
    // faults are easier than the average stuck-at, driven by bridging
    // dominance and multi-node shorts) and theta_max < 1 (static voltage
    // testing is incomplete).  The exact R depends on defect statistics
    // and layout style; see EXPERIMENTS.md for measured values.
    const auto& r = c432_experiment();
    EXPECT_GT(r.fit.r, 1.0);
    EXPECT_LT(r.fit.r, 3.0);
    EXPECT_LT(r.fit.theta_max, 1.0);
    EXPECT_GT(r.fit.theta_max, 0.85);
}

TEST(Flow, DlDeviatesFromWilliamsBrownWithResidualFloor) {
    // The headline deviation (figs. 5-6): the simulated fallout does not
    // follow Williams-Brown.  The strongest and most robust signature is
    // the residual defect level: near full stuck-at coverage the real DL
    // flattens far above the WB prediction, because theta saturates below
    // 1 (static voltage testing cannot cover every realistic fault).
    const auto& r = c432_experiment();
    const double final_dl = model::weighted_dl(r.yield, r.theta_curve.final());
    const double final_wb =
        model::williams_brown_dl(r.yield, r.t_curve.final());
    EXPECT_GT(final_dl, 2.0 * final_wb) << "no residual floor";
    // And the deviation is not a constant offset: relative deviation grows
    // toward full coverage (the curve flattens while WB keeps falling).
    double mid_ratio = 0.0;
    for (const auto& p : r.dl_vs_t)
        if (p.coverage > 0.45 && p.coverage < 0.75)
            mid_ratio = std::max(
                mid_ratio, p.defect_level /
                               model::williams_brown_dl(r.yield, p.coverage));
    EXPECT_GT(final_dl / final_wb, mid_ratio);
}

TEST(Flow, WeightHistogramDispersion) {
    const auto& r = c432_experiment();
    double lo = 1e300;
    double hi = 0.0;
    for (double w : r.fault_weights) {
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    EXPECT_GT(hi / lo, 100.0);
}

TEST(Flow, SmallCircuitSmokeRun) {
    ExperimentOptions opt;
    opt.atpg.max_random = 256;
    const ExperimentResult r =
        run_experiment(netlist::build_ripple_adder(4), opt);
    EXPECT_GT(r.t_curve.final(), 0.9);
    EXPECT_GT(r.theta_curve.final(), 0.4);
    EXPECT_EQ(r.t_curve.size(), static_cast<size_t>(r.vector_count));
}

TEST(Flow, UnweightedAblationChangesTheta) {
    ExperimentOptions opt;
    opt.atpg.max_random = 256;
    opt.weighted = false;
    const ExperimentResult unweighted =
        run_experiment(netlist::build_ripple_adder(4), opt);
    opt.weighted = true;
    const ExperimentResult weighted =
        run_experiment(netlist::build_ripple_adder(4), opt);
    // With equal weights theta == Gamma by construction.
    EXPECT_NEAR(unweighted.theta_curve.final(),
                unweighted.gamma_curve.final(), 1e-9);
    EXPECT_NE(weighted.theta_curve.final(), weighted.gamma_curve.final());
}

TEST(Report, CsvAndSummaryWellFormed) {
    ExperimentOptions opt;
    opt.atpg.max_random = 128;
    const ExperimentResult r =
        run_experiment(netlist::build_ripple_adder(3), opt);

    const std::string csv = curves_csv(r);
    EXPECT_NE(csv.find("k,T,theta,gamma"), std::string::npos);
    // One header + one row per vector.
    const size_t rows = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(rows, static_cast<size_t>(r.vector_count) + 1);

    const std::string hist = weight_histogram_csv(r, 8);
    EXPECT_EQ(std::count(hist.begin(), hist.end(), '\n'), 9);

    const std::string summary = summary_text(r);
    EXPECT_NE(summary.find("theta_end="), std::string::npos);
    EXPECT_NE(summary.find("residual DL floor="), std::string::npos);

    const std::string path = ::testing::TempDir() + "/curves.csv";
    write_file(path, csv);
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
}

TEST(Wafer, MatchesPoissonClosedForm) {
    // Synthetic fault list with known theta; MC must land on eq. (3).
    std::vector<double> w{0.05, 0.03, 0.10, 0.02, 0.08};
    const bool det[] = {true, false, true, true, false};
    double total = 0.0;
    double hit = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
        total += w[i];
        if (det[i]) hit += w[i];
    }
    const double yield = std::exp(-total);
    const double theta = hit / total;
    WaferOptions opt;
    opt.dies = 300000;
    const auto mc = simulate_wafer(w, det, opt);
    EXPECT_NEAR(mc.observed_yield(), yield, 0.01);
    EXPECT_NEAR(mc.observed_dl(), model::weighted_dl(yield, theta), 0.004);
}

TEST(Wafer, ClusteringRaisesYieldLowersDl) {
    std::vector<double> w{0.2, 0.15, 0.1};
    const bool det[] = {true, true, false};
    WaferOptions poisson;
    poisson.dies = 200000;
    const auto p = simulate_wafer(w, det, poisson);
    WaferOptions clustered = poisson;
    clustered.clustering_alpha = 0.5;
    const auto c = simulate_wafer(w, det, clustered);
    EXPECT_GT(c.observed_yield(), p.observed_yield());
    EXPECT_LT(c.observed_dl(), p.observed_dl());
}

TEST(Wafer, RejectsBadInput) {
    std::vector<double> w{0.1};
    const bool det[] = {true, false};
    EXPECT_THROW(simulate_wafer(w, det, {}), std::invalid_argument);
    std::vector<double> neg{-0.1};
    const bool one[] = {true};
    EXPECT_THROW(simulate_wafer(neg, one, {}), std::invalid_argument);
}

TEST(Runner, StagedMatchesMonolithic) {
    ExperimentOptions opt;
    opt.atpg.max_random = 256;
    const netlist::Circuit circuit = netlist::build_ripple_adder(4);
    const ExperimentResult mono = run_experiment(circuit, opt);

    ExperimentRunner runner(circuit, opt);
    const auto& prepared = runner.prepare();
    const auto& tests = runner.generate_tests();
    const auto& sim = runner.simulate();
    const ExperimentResult& staged = runner.fit();

    EXPECT_EQ(prepared.mapped.logic_gate_count(), mono.mapped_gates);
    EXPECT_EQ(tests.stuck.size(), mono.stuck_faults);
    EXPECT_EQ(staged.mapped_gates, mono.mapped_gates);
    EXPECT_EQ(staged.vector_count, mono.vector_count);
    EXPECT_EQ(staged.t_curve.values, mono.t_curve.values);
    EXPECT_EQ(staged.theta_curve.values, mono.theta_curve.values);
    EXPECT_EQ(staged.gamma_curve.values, mono.gamma_curve.values);
    EXPECT_EQ(staged.theta_iddq_curve.values, mono.theta_iddq_curve.values);
    EXPECT_EQ(sim.theta_curve.values, mono.theta_curve.values);
    EXPECT_EQ(staged.fit.r, mono.fit.r);
    EXPECT_EQ(staged.fit.theta_max, mono.fit.theta_max);
    EXPECT_EQ(staged.yield, mono.yield);
}

TEST(Runner, ReuseAcrossSimSweep) {
    ExperimentOptions opt;
    opt.atpg.max_random = 256;
    const netlist::Circuit circuit = netlist::build_ripple_adder(4);

    ExperimentRunner runner(circuit, opt);
    const ExperimentResult weighted = runner.fit();  // copy before mutate
    const std::vector<double> weighted_theta = weighted.theta_curve.values;

    // Sweep point: simulation-stage option changes; layout and ATPG reused.
    runner.options().weighted = false;
    runner.invalidate_simulation();
    const ExperimentResult& unweighted = runner.fit();

    ExperimentOptions fresh_opt = opt;
    fresh_opt.weighted = false;
    const ExperimentResult fresh = run_experiment(circuit, fresh_opt);
    EXPECT_EQ(unweighted.theta_curve.values, fresh.theta_curve.values);
    EXPECT_EQ(unweighted.gamma_curve.values, fresh.gamma_curve.values);
    EXPECT_NE(unweighted.theta_curve.values, weighted_theta);

    // And back: invalidation restores the original results exactly.
    runner.options().weighted = true;
    runner.invalidate_simulation();
    EXPECT_EQ(runner.fit().theta_curve.values, weighted_theta);
}

TEST(Runner, InvalidateExtractionReextracts) {
    ExperimentOptions opt;
    opt.atpg.max_random = 128;
    ExperimentRunner runner(netlist::build_ripple_adder(3), opt);
    const double bridge_yield = runner.fit().yield;
    const auto bridge_weights = runner.fit().weight_by_class;

    runner.options().defects = extract::DefectStatistics::open_dominant();
    runner.invalidate_extraction();
    const ExperimentResult& open_r = runner.fit();
    EXPECT_EQ(open_r.yield, bridge_yield) << "both scaled to target yield";
    EXPECT_NE(open_r.weight_by_class, bridge_weights)
        << "weight_by_class should reflect the new statistics";

    ExperimentOptions fresh_opt = opt;
    fresh_opt.defects = extract::DefectStatistics::open_dominant();
    const ExperimentResult fresh =
        run_experiment(netlist::build_ripple_adder(3), fresh_opt);
    EXPECT_EQ(open_r.realistic_faults, fresh.realistic_faults);
    EXPECT_EQ(open_r.theta_curve.values, fresh.theta_curve.values);
}

TEST(Runner, ProgressCallbackFires) {
    ExperimentOptions opt;
    opt.atpg.max_random = 128;
    ExperimentRunner runner(netlist::build_ripple_adder(3), opt);
    std::vector<std::string> stages;
    std::size_t sim_batches = 0;
    runner.set_progress([&](std::string_view stage, std::size_t done,
                            std::size_t total) {
        EXPECT_LE(done, total);
        if (stage == "switch-sim")
            ++sim_batches;
        else if (stages.empty() || stages.back() != stage)
            stages.emplace_back(stage);
    });
    runner.run();
    EXPECT_EQ(stages, (std::vector<std::string>{"techmap", "layout",
                                                "extract", "atpg", "fit"}));
    EXPECT_GT(sim_batches, 0u);
}

TEST(ParallelDeterminism, ExperimentThreadCountInvariant) {
    ExperimentOptions opt;
    opt.atpg.max_random = 256;
    opt.parallel.threads = 1;
    const netlist::Circuit circuit = netlist::build_ripple_adder(4);
    const ExperimentResult serial = run_experiment(circuit, opt);
    for (int threads : {2, 4, 8}) {
        SCOPED_TRACE(threads);
        opt.parallel.threads = threads;
        const ExperimentResult par = run_experiment(circuit, opt);
        EXPECT_EQ(par.t_curve.values, serial.t_curve.values);
        EXPECT_EQ(par.theta_curve.values, serial.theta_curve.values);
        EXPECT_EQ(par.gamma_curve.values, serial.gamma_curve.values);
        EXPECT_EQ(par.theta_iddq_curve.values,
                  serial.theta_iddq_curve.values);
        EXPECT_EQ(par.vector_count, serial.vector_count);
        EXPECT_EQ(par.fit.r, serial.fit.r) << "fit must be bit-identical";
        EXPECT_EQ(par.fit.theta_max, serial.fit.theta_max);
    }
}

TEST(ToSwitchFaults, MappingShapes) {
    const netlist::Circuit mapped =
        netlist::techmap(netlist::build_c17());
    const auto chip = layout::place_and_route(mapped);
    const auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const auto swnet = switchsim::build_switch_netlist(mapped);
    const auto swfaults = to_switch_faults(extraction, chip, swnet);
    ASSERT_EQ(swfaults.size(), extraction.faults.size());
    for (size_t i = 0; i < swfaults.size(); ++i) {
        const auto& ef = extraction.faults[i];
        const auto& sf = swfaults[i];
        EXPECT_DOUBLE_EQ(sf.weight, ef.weight);
        if (ef.kind == extract::ExtractedFault::Kind::Bridge) {
            EXPECT_EQ(sf.fault.kind, switchsim::SwitchFault::Kind::Bridge);
            EXPECT_GE(sf.fault.a, 0);
            EXPECT_GE(sf.fault.b, 0);
        }
        if (ef.kind == extract::ExtractedFault::Kind::TransistorOpen)
            EXPECT_FALSE(sf.fault.transistors.empty());
    }
}

}  // namespace
}  // namespace dlp::flow
