// Tests for the campaign projection service and the robustness plumbing
// underneath it: strict JSON / protocol parsing, hardened env knobs,
// backoff policy, the artifact store's write-ahead journal + crash
// recovery, the in-process daemon (admission control, deadlines,
// idempotent replay, graceful drain), a multi-client soak through the
// fault-injection proxy, and fork/exec crash tests that SIGKILL the real
// binaries and assert byte-identical resume.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/report.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "lint/checks.h"
#include "parallel/parallel_for.h"
#include "service/chaos.h"
#include "service/client.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/wire.h"
#include "support/backoff.h"
#include "support/cancel.h"
#include "support/env.h"

namespace dlp {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// A fresh per-test scratch directory under the gtest temp dir.  The pid
/// keeps paths (including socket paths) disjoint when ctest runs the
/// label-filtered entries of this binary in parallel.
std::string scratch_dir(const std::string& tag) {
    const std::string path = testing::TempDir() + "dlproj_service_" + tag +
                             "_" + std::to_string(::getpid());
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void spit(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
    ASSERT_TRUE(out.good()) << path;
}

/// Restores (or re-unsets) an environment variable on scope exit.
class EnvGuard {
public:
    EnvGuard(const char* name, const char* value) : name_(name) {
        const char* old = std::getenv(name);
        had_ = old != nullptr;
        if (old) old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvGuard() {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

private:
    const char* name_;
    std::string old_;
    bool had_ = false;
};

const char* kOneCellSpec =
    "[campaign]\n"
    "name = svc\n"
    "target_yield = 0.8\n"
    "[grid]\n"
    "circuits = c17\n"
    "rules = uniform\n"
    "seeds = 1\n";

const char* kSoakSpec =
    "[campaign]\n"
    "name = soak\n"
    "target_yield = 0.75\n"
    "[grid]\n"
    "circuits = c17, parity4\n"
    "rules = bridging, uniform\n"
    "seeds = 1\n";

const char* kCrashSpec =
    "[campaign]\n"
    "name = crash\n"
    "target_yield = 0.75\n"
    "[grid]\n"
    "circuits = c17, parity4\n"
    "rules = bridging, uniform\n"
    "seeds = 1, 2\n";

std::string reference_report(const char* spec_text) {
    campaign::CampaignOptions opt;
    opt.use_cache = false;
    return campaign::report_json(
        campaign::run_campaign(campaign::parse_campaign_spec(spec_text), opt));
}

// --- JSON ----------------------------------------------------------------

TEST(ServiceJson, RoundTripPreservesOrderAndIntegers) {
    const std::string text =
        "{\"b\":1,\"a\":[true,null,\"x\"],\"n\":9007199254740991,"
        "\"s\":\"q\\\"\\\\\\n\"}";
    const service::Json v = service::parse_json(text);
    EXPECT_EQ(service::write_json(v), text);
    EXPECT_EQ(v.int_or("n", 0), 9007199254740991LL);
    EXPECT_EQ(v.str_or("missing", "fb"), "fb");
    ASSERT_NE(v.get("a"), nullptr);
    EXPECT_EQ(v.get("a")->items().size(), 3u);
}

TEST(ServiceJson, DecodesSurrogatePairsToUtf8) {
    const service::Json v = service::parse_json("\"\\ud83d\\ude00\"");
    EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
}

TEST(ServiceJson, RejectsTrailingGarbageWithOffset) {
    try {
        service::parse_json("{} x");
        FAIL() << "expected JsonError";
    } catch (const service::JsonError& e) {
        EXPECT_GE(e.offset(), 2u);
    }
}

TEST(ServiceJson, RejectsExcessNestingAndBadEscapes) {
    std::string deep;
    for (int i = 0; i < 100; ++i) deep += "[";
    EXPECT_THROW(service::parse_json(deep, 64), service::JsonError);
    EXPECT_THROW(service::parse_json("\"\\q\""), service::JsonError);
    EXPECT_THROW(service::parse_json("{\"a\":}"), service::JsonError);
    EXPECT_THROW(service::parse_json("[1,]"), service::JsonError);
}

// --- protocol ------------------------------------------------------------

TEST(ServiceProtocol, FrameHeaderRoundTripAndBounds) {
    const std::string h = service::encode_frame_header(0x01020304u);
    ASSERT_EQ(h.size(), service::kFrameHeader);
    EXPECT_EQ(service::decode_frame_header(
                  reinterpret_cast<const unsigned char*>(h.data())),
              0x01020304u);
    const std::string big =
        service::encode_frame_header(service::kMaxFrame + 1);
    EXPECT_THROW(service::decode_frame_header(
                     reinterpret_cast<const unsigned char*>(big.data())),
                 std::runtime_error);
}

TEST(ServiceProtocol, RequestRoundTrip) {
    service::Request r;
    r.op = service::Op::Campaign;
    r.id = "req-1";
    r.idempotency_key = "k";
    r.deadline_ms = 1500;
    r.max_vectors = 32;
    r.engine = "levelized";
    r.threads = 3;
    r.progress = true;
    r.spec = kOneCellSpec;
    const service::Request p = service::parse_request(service::request_json(r));
    EXPECT_EQ(p.op, service::Op::Campaign);
    EXPECT_EQ(p.id, "req-1");
    EXPECT_EQ(p.idempotency_key, "k");
    EXPECT_EQ(p.deadline_ms, 1500);
    EXPECT_EQ(p.max_vectors, 32);
    EXPECT_EQ(p.engine, "levelized");
    EXPECT_EQ(p.threads, 3);
    EXPECT_TRUE(p.progress);
    EXPECT_EQ(p.spec, kOneCellSpec);
}

TEST(ServiceProtocol, RejectsBadRequests) {
    EXPECT_THROW(service::parse_request("not json"), service::ProtocolError);
    EXPECT_THROW(service::parse_request("{}"), service::ProtocolError);
    EXPECT_THROW(service::parse_request("{\"op\":\"reboot\"}"),
                 service::ProtocolError);
    // campaign without a spec / project without circuit+rules
    EXPECT_THROW(service::parse_request("{\"op\":\"campaign\"}"),
                 service::ProtocolError);
    EXPECT_THROW(
        service::parse_request("{\"op\":\"project\",\"circuit\":\"c17\"}"),
        service::ProtocolError);
}

TEST(ServiceProtocol, ReplyBuildersParseBack) {
    const service::Reply shed =
        service::parse_reply(service::result_shed_json("r", 75, "queue full"));
    EXPECT_EQ(shed.event, "result");
    EXPECT_EQ(shed.status, "shed");
    EXPECT_EQ(shed.retry_after_ms, 75);

    const service::Reply prog =
        service::parse_reply(service::progress_json("r", "campaign", 2, 8));
    EXPECT_EQ(prog.event, "progress");
    EXPECT_EQ(prog.stage, "campaign");
    EXPECT_EQ(prog.done, 2u);
    EXPECT_EQ(prog.total, 8u);

    const service::Reply cancelled = service::parse_reply(
        service::result_cancelled_json("r", "deadline-expired", "{}", "{}"));
    EXPECT_EQ(cancelled.status, "cancelled");
    EXPECT_EQ(cancelled.stop, "deadline-expired");

    const service::Reply err =
        service::parse_reply(service::result_error_json("r", "boom"));
    EXPECT_EQ(err.status, "error");
    EXPECT_EQ(err.error, "boom");
}

// --- hardened env knobs --------------------------------------------------

TEST(EnvKnobs, IntRejectsGarbageTrailingJunkAndOverflow) {
    EnvGuard g("DLPROJ_TEST_KNOB", nullptr);
    EXPECT_EQ(support::env_int("DLPROJ_TEST_KNOB", 7, 0, 100), 7);
    ::setenv("DLPROJ_TEST_KNOB", "42", 1);
    EXPECT_EQ(support::env_int("DLPROJ_TEST_KNOB", 7, 0, 100), 42);
    for (const char* bad :
         {"1O", "4x", " 5", "5 ", "", "-3", "101", "0x10",
          "99999999999999999999999999"}) {
        ::setenv("DLPROJ_TEST_KNOB", bad, 1);
        if (std::string(bad).empty()) {
            EXPECT_EQ(support::env_int("DLPROJ_TEST_KNOB", 7, 0, 100), 7);
            continue;
        }
        try {
            support::env_int("DLPROJ_TEST_KNOB", 7, 0, 100);
            FAIL() << "accepted garbage: \"" << bad << "\"";
        } catch (const support::EnvError& e) {
            // The diagnostic must name the variable so the operator can fix
            // the right knob.
            EXPECT_NE(std::string(e.what()).find("DLPROJ_TEST_KNOB"),
                      std::string::npos);
        }
    }
}

TEST(EnvKnobs, FlagAcceptsDocumentedSpellingsOnly) {
    EnvGuard g("DLPROJ_TEST_FLAG", nullptr);
    EXPECT_TRUE(support::env_flag("DLPROJ_TEST_FLAG", true));
    EXPECT_FALSE(support::env_flag("DLPROJ_TEST_FLAG", false));
    for (const char* yes : {"1", "on", "TRUE", "Yes"}) {
        ::setenv("DLPROJ_TEST_FLAG", yes, 1);
        EXPECT_TRUE(support::env_flag("DLPROJ_TEST_FLAG", false)) << yes;
    }
    for (const char* no : {"0", "off", "False", "NO"}) {
        ::setenv("DLPROJ_TEST_FLAG", no, 1);
        EXPECT_FALSE(support::env_flag("DLPROJ_TEST_FLAG", true)) << no;
    }
    ::setenv("DLPROJ_TEST_FLAG", "maybe", 1);
    EXPECT_THROW(support::env_flag("DLPROJ_TEST_FLAG", true),
                 support::EnvError);
}

TEST(EnvKnobs, DeadlineMsKnobIsHardened) {
    EnvGuard g("DLPROJ_DEADLINE_MS", nullptr);
    EXPECT_EQ(support::env_deadline_ms(), 0);
    ::setenv("DLPROJ_DEADLINE_MS", "250", 1);
    EXPECT_EQ(support::env_deadline_ms(), 250);
    for (const char* bad : {"banana", "-5", "12ms"}) {
        ::setenv("DLPROJ_DEADLINE_MS", bad, 1);
        EXPECT_THROW(support::env_deadline_ms(), support::EnvError) << bad;
    }
}

TEST(EnvKnobs, ThreadsKnobIsHardened) {
    EnvGuard g("DLPROJ_THREADS", nullptr);
    ::setenv("DLPROJ_THREADS", "3", 1);
    EXPECT_EQ(parallel::resolve_threads(0), 3);
    for (const char* bad : {"1O", "-1", "4096", "two"}) {
        ::setenv("DLPROJ_THREADS", bad, 1);
        EXPECT_THROW(parallel::resolve_threads(0), support::EnvError) << bad;
    }
    // An explicit request never consults the environment.
    EXPECT_EQ(parallel::resolve_threads(2), 2);
}

TEST(EnvKnobs, LintKnobIsHardened) {
    EnvGuard g("DLPROJ_LINT", nullptr);
    EXPECT_TRUE(lint::lint_enabled_from_env());
    ::setenv("DLPROJ_LINT", "off", 1);
    EXPECT_FALSE(lint::lint_enabled_from_env());
    ::setenv("DLPROJ_LINT", "on", 1);
    EXPECT_TRUE(lint::lint_enabled_from_env());
    ::setenv("DLPROJ_LINT", "2", 1);
    EXPECT_THROW(lint::lint_enabled_from_env(), support::EnvError);
}

// --- backoff -------------------------------------------------------------

TEST(BackoffPolicy, GrowsExponentiallyToTheCeiling) {
    support::BackoffOptions opt;
    opt.initial_ms = 10;
    opt.factor = 2.0;
    opt.max_ms = 100;
    opt.jitter = 0.0;
    support::Backoff b(opt);
    EXPECT_EQ(b.next_ms(), 10);
    EXPECT_EQ(b.next_ms(), 20);
    EXPECT_EQ(b.next_ms(), 40);
    EXPECT_EQ(b.next_ms(), 80);
    EXPECT_EQ(b.next_ms(), 100);  // capped
    EXPECT_EQ(b.next_ms(), 100);
}

TEST(BackoffPolicy, JitterIsBoundedAndSeedDeterministic) {
    support::BackoffOptions opt;
    opt.initial_ms = 100;
    opt.factor = 1.0;
    opt.jitter = 0.25;
    opt.seed = 42;
    support::Backoff a(opt), b(opt);
    for (int i = 0; i < 16; ++i) {
        const long long da = a.next_ms();
        EXPECT_EQ(da, b.next_ms()) << "same seed, same schedule";
        EXPECT_GE(da, 75);
        EXPECT_LE(da, 125);
    }
}

TEST(BackoffPolicy, RetryAfterHintIsAFloorNotACeiling) {
    support::BackoffOptions opt;
    opt.initial_ms = 5;
    opt.jitter = 0.0;
    support::Backoff b(opt);
    EXPECT_EQ(b.next_ms(500), 500);  // hint dominates a small base
    EXPECT_GE(b.next_ms(1), 10);     // base dominates a small hint
}

// --- store write-ahead journal + crash recovery --------------------------

TEST(StoreJournal, CleanSessionPairsEveryIntent) {
    const std::string root = scratch_dir("journal_clean");
    campaign::ArtifactStore store(root);
    store.put("cell", "key-a", "payload-a");
    store.put("tests", "key-b", "payload-b");
    ASSERT_TRUE(fs::exists(root + "/journal.wal"));

    const campaign::RecoveryReport rep = campaign::recover_store(root);
    EXPECT_EQ(rep.intents, 2u);
    EXPECT_EQ(rep.unpaired, 0u);
    EXPECT_EQ(rep.quarantined, 0u);
    EXPECT_EQ(rep.stale_tmps, 0u);
    EXPECT_TRUE(rep.clean());
    // Recovery settles the journal; a second pass finds nothing.
    EXPECT_EQ(fs::file_size(root + "/journal.wal"), 0u);
    const campaign::RecoveryReport again = campaign::recover_store(root);
    EXPECT_EQ(again.intents, 0u);

    // The objects themselves are untouched and still served.
    campaign::ArtifactStore reopened(root);
    EXPECT_EQ(reopened.get("cell", "key-a").value_or(""), "payload-a");
}

TEST(StoreJournal, TornCommitIsQuarantinedNotServed) {
    const std::string root = scratch_dir("journal_torn");
    campaign::ArtifactStore store(root);
    store.put("cell", "key-torn", "payload");
    const std::string path = store.object_path("cell", "key-torn");

    // Simulate a SIGKILL inside the commit window: the object bytes are
    // torn and the journal ends with an unpaired intent for it.
    std::string bytes = slurp(path);
    bytes.resize(bytes.size() / 2);
    spit(path, bytes);
    ASSERT_FALSE(campaign::verify_object_bytes(bytes));
    const std::string rel =
        fs::path(path).lexically_relative(fs::path(root) / "objects")
            .generic_string();
    std::ofstream(root + "/journal.wal", std::ios::app)
        << "I 99999 1 " << rel << "\n";

    const campaign::RecoveryReport rep = campaign::recover_store(root);
    EXPECT_EQ(rep.unpaired, 1u);
    EXPECT_EQ(rep.quarantined, 1u);
    EXPECT_FALSE(rep.clean());
    EXPECT_FALSE(fs::exists(path)) << "torn object must leave objects/";
    // Quarantined, not deleted: the bytes are evidence.
    EXPECT_FALSE(fs::is_empty(root + "/quarantine"));
    // The store treats the healed slot as a plain miss.
    campaign::ArtifactStore reopened(root);
    EXPECT_FALSE(reopened.get("cell", "key-torn").has_value());
}

TEST(StoreJournal, IntactObjectBehindUnpairedIntentIsKept) {
    const std::string root = scratch_dir("journal_intact");
    campaign::ArtifactStore store(root);
    store.put("cell", "key-ok", "payload");
    const std::string path = store.object_path("cell", "key-ok");
    // Crash after the rename but before the commit record: the object is
    // complete, only the journal is behind.
    const std::string rel =
        fs::path(path).lexically_relative(fs::path(root) / "objects")
            .generic_string();
    std::ofstream(root + "/journal.wal", std::ios::app)
        << "I 99999 7 " << rel << "\n";

    const campaign::RecoveryReport rep = campaign::recover_store(root);
    EXPECT_EQ(rep.unpaired, 1u);
    EXPECT_EQ(rep.verified, 1u);
    EXPECT_EQ(rep.quarantined, 0u);
    campaign::ArtifactStore reopened(root);
    EXPECT_EQ(reopened.get("cell", "key-ok").value_or(""), "payload");
}

TEST(StoreJournal, SweepsAbandonedTempFiles) {
    const std::string root = scratch_dir("journal_tmps");
    campaign::ArtifactStore store(root);
    store.put("cell", "key", "payload");
    const std::string path = store.object_path("cell", "key");
    spit(path + ".tmp.4242.9", "half-written");

    const campaign::RecoveryReport rep = campaign::recover_store(root);
    EXPECT_EQ(rep.stale_tmps, 1u);
    EXPECT_FALSE(fs::exists(path + ".tmp.4242.9"));
    EXPECT_TRUE(fs::exists(path)) << "committed objects survive the sweep";
}

TEST(StoreJournal, RecoveryIgnoresTornJournalLinesAndMissingRoots) {
    EXPECT_EQ(campaign::recover_store("").intents, 0u);
    EXPECT_EQ(campaign::recover_store(testing::TempDir() + "nonexistent_root")
                  .intents,
              0u);
    const std::string root = scratch_dir("journal_torn_lines");
    campaign::ArtifactStore store(root);
    store.put("cell", "key", "payload");
    // A crash can tear the journal line itself; recovery must not trip.
    std::ofstream(root + "/journal.wal", std::ios::app) << "I 12";
    const campaign::RecoveryReport rep = campaign::recover_store(root);
    EXPECT_EQ(rep.quarantined, 0u);
}

// --- the in-process service ----------------------------------------------

service::ServiceConfig test_config(const std::string& dir) {
    service::ServiceConfig cfg;
    cfg.socket_path = dir + "/srv.sock";
    cfg.workers = 2;
    cfg.queue_max = 8;
    cfg.retry_after_ms = 5;
    cfg.io_timeout_ms = 10000;
    cfg.drain_ms = 5000;
    cfg.cache_dir = dir + "/cache";
    return cfg;
}

service::ClientOptions test_client(const service::ServiceConfig& cfg) {
    service::ClientOptions opt;
    opt.socket_path = cfg.socket_path;
    opt.backoff.initial_ms = 2;
    opt.backoff.max_ms = 50;
    return opt;
}

TEST(Service, PingStatsAndCampaignEndToEnd) {
    const std::string dir = scratch_dir("svc_e2e");
    service::Service svc(test_config(dir));
    svc.start();

    service::Request ping;
    ping.op = service::Op::Ping;
    EXPECT_TRUE(service::call_service(ping, test_client(svc.config())).ok());

    service::Request campaign;
    campaign.op = service::Op::Campaign;
    campaign.spec = kOneCellSpec;
    const service::CallResult run =
        service::call_service(campaign, test_client(svc.config()));
    ASSERT_EQ(run.status, "ok") << run.error;
    const service::Json body = service::parse_json(run.body);
    EXPECT_EQ(body.str_or("campaign", ""), "svc");
    ASSERT_NE(body.get("cells"), nullptr);
    EXPECT_EQ(body.get("cells")->items().size(), 1u);
    EXPECT_FALSE(run.stats.empty());

    service::Request stats;
    stats.op = service::Op::Stats;
    const service::CallResult s =
        service::call_service(stats, test_client(svc.config()));
    ASSERT_TRUE(s.ok());
    const service::Json sb = service::parse_json(s.body);
    EXPECT_GE(sb.int_or("completed", 0), 2);
    EXPECT_EQ(sb.int_or("queue_depth", -1), 0);

    svc.stop();
    EXPECT_FALSE(fs::exists(svc.config().socket_path))
        << "stop() unlinks the socket";
}

TEST(Service, RejectsUnknownEngineWithoutRunning) {
    const std::string dir = scratch_dir("svc_engine");
    service::Service svc(test_config(dir));
    svc.start();
    service::Request r;
    r.op = service::Op::Campaign;
    r.spec = kOneCellSpec;
    r.engine = "no-such-engine";
    service::ClientOptions opt = test_client(svc.config());
    opt.max_attempts = 1;
    const service::CallResult res = service::call_service(r, opt);
    EXPECT_EQ(res.status, "error");
    EXPECT_NE(res.error.find("engine"), std::string::npos);
    svc.stop();
}

TEST(Service, FullQueueShedsWithRetryAfterBeforeReadingThePayload) {
    const std::string dir = scratch_dir("svc_shed");
    service::ServiceConfig cfg = test_config(dir);
    cfg.workers = 1;
    cfg.queue_max = 1;
    cfg.retry_after_ms = 30;
    service::Service svc(cfg);
    svc.start();

    // Occupy the worker and the queue slot with lingering pings.
    service::Request linger;
    linger.op = service::Op::Ping;
    linger.linger_ms = 400;
    const std::string payload = service::request_json(linger);
    service::Fd a = service::unix_connect(cfg.socket_path);
    service::write_frame(a.get(), payload, 1000);
    std::this_thread::sleep_for(100ms);
    service::Fd b = service::unix_connect(cfg.socket_path);
    service::write_frame(b.get(), payload, 1000);
    std::this_thread::sleep_for(100ms);

    // The third request must be shed (no retry on this client).
    service::Request ping;
    ping.op = service::Op::Ping;
    service::ClientOptions opt = test_client(cfg);
    opt.max_attempts = 1;
    opt.retry_on_shed = false;
    const service::CallResult res = service::call_service(ping, opt);
    EXPECT_EQ(res.status, "shed");
    EXPECT_EQ(res.retry_after_ms, 30);
    EXPECT_GE(svc.stats().shed, 1);

    // A retrying client eventually gets through once the backlog drains.
    service::ClientOptions retrying = test_client(cfg);
    retrying.max_attempts = 30;
    EXPECT_TRUE(service::call_service(ping, retrying).ok());

    // Drain the two lingering replies.
    std::string reply;
    EXPECT_TRUE(service::read_frame(a.get(), reply, 5000));
    EXPECT_TRUE(service::read_frame(b.get(), reply, 5000));
    svc.stop();
}

TEST(Service, WatchdogCancelsARunPastItsDeadline) {
    const std::string dir = scratch_dir("svc_deadline");
    service::Service svc(test_config(dir));
    svc.start();

    service::Request r;
    r.op = service::Op::Ping;
    r.linger_ms = 30000;  // would hold the worker for 30 s...
    r.deadline_ms = 80;   // ...but the envelope says 80 ms
    service::ClientOptions opt = test_client(svc.config());
    opt.max_attempts = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const service::CallResult res = service::call_service(r, opt);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    EXPECT_EQ(res.status, "cancelled") << res.error;
    // Cooperative check and watchdog race benignly; either reason is a
    // correct account of why the run stopped.
    EXPECT_TRUE(res.stop == "deadline-expired" || res.stop == "cancelled")
        << res.stop;
    EXPECT_LT(elapsed, 10000) << "deadline must beat the linger by far";
    svc.stop();
}

TEST(Service, MaxDeadlineClampsAndDefaultApplies) {
    const std::string dir = scratch_dir("svc_clamp");
    service::ServiceConfig cfg = test_config(dir);
    cfg.default_deadline_ms = 80;  // requests without a deadline get one
    cfg.max_deadline_ms = 100;     // and nobody may ask for more
    service::Service svc(cfg);
    svc.start();

    service::Request r;
    r.op = service::Op::Ping;
    r.linger_ms = 30000;
    r.deadline_ms = 60000;  // clamped to 100 ms
    service::ClientOptions opt = test_client(cfg);
    opt.max_attempts = 1;
    EXPECT_EQ(service::call_service(r, opt).status, "cancelled");

    r.deadline_ms = 0;  // server default: 80 ms
    EXPECT_EQ(service::call_service(r, opt).status, "cancelled");
    svc.stop();
}

TEST(Service, IdempotentRetryReplaysTheStoredResponseByteForByte) {
    const std::string dir = scratch_dir("svc_idem");
    service::Service svc(test_config(dir));
    svc.start();

    service::Request r;
    r.op = service::Op::Project;
    r.circuit = "c17";
    r.rules = "uniform";
    r.idempotency_key = "idem-fixed";
    service::ClientOptions opt = test_client(svc.config());
    opt.max_attempts = 1;
    const service::CallResult first = service::call_service(r, opt);
    ASSERT_TRUE(first.ok()) << first.error;
    const service::CallResult second = service::call_service(r, opt);
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_EQ(first.raw, second.raw)
        << "a replay must be byte-identical, not merely equivalent";
    EXPECT_GE(svc.stats().replays, 1);
    svc.stop();
}

TEST(Service, ProgressEventsStreamToTheClient) {
    const std::string dir = scratch_dir("svc_progress");
    service::Service svc(test_config(dir));
    svc.start();

    service::Request r;
    r.op = service::Op::Campaign;
    r.spec = kSoakSpec;
    r.progress = true;
    service::ClientOptions opt = test_client(svc.config());
    std::atomic<int> events{0};
    std::atomic<std::size_t> last_total{0};
    opt.on_progress = [&](const std::string& stage, std::size_t,
                          std::size_t total) {
        if (stage == "campaign") {
            events.fetch_add(1);
            last_total.store(total);
        }
    };
    ASSERT_TRUE(service::call_service(r, opt).ok());
    EXPECT_GE(events.load(), 1);
    EXPECT_EQ(last_total.load(), 4u);
    svc.stop();
}

TEST(Service, GracefulStopFinishesInFlightWork) {
    const std::string dir = scratch_dir("svc_drain");
    service::Service svc(test_config(dir));
    svc.start();

    service::Request linger;
    linger.op = service::Op::Ping;
    linger.linger_ms = 300;
    service::Fd conn = service::unix_connect(svc.config().socket_path);
    service::write_frame(conn.get(), service::request_json(linger), 1000);
    std::this_thread::sleep_for(50ms);

    svc.stop();  // drain_ms = 5000 >> 300: the linger finishes

    std::string payload;
    ASSERT_TRUE(service::read_frame(conn.get(), payload, 1000));
    EXPECT_EQ(service::parse_reply(payload).status, "ok");
    EXPECT_THROW(service::unix_connect(svc.config().socket_path),
                 service::WireError);
    // stop() is idempotent.
    svc.stop();
}

TEST(Service, ShutdownOpWakesTheDaemonLoop) {
    const std::string dir = scratch_dir("svc_shutdown");
    service::Service svc(test_config(dir));
    svc.start();
    std::thread daemon_main([&] {
        if (svc.wait_shutdown_requested()) svc.stop();
    });
    service::Request r;
    r.op = service::Op::Shutdown;
    service::ClientOptions opt = test_client(svc.config());
    opt.max_attempts = 1;
    EXPECT_TRUE(service::call_service(r, opt).ok());
    daemon_main.join();
    EXPECT_FALSE(svc.running());
}

TEST(Service, ConfigFromEnvParsesAndRejects) {
    EnvGuard s("DLPROJ_SERVE_SOCKET", "/tmp/x.sock");
    EnvGuard w("DLPROJ_SERVE_WORKERS", "5");
    EnvGuard q("DLPROJ_SERVE_QUEUE_MAX", "9");
    EnvGuard d("DLPROJ_SERVE_DRAIN_MS", "1234");
    EnvGuard m("DLPROJ_SERVE_DEADLINE_MS", "777");
    EnvGuard c("DLPROJ_CACHE", nullptr);
    service::ServiceConfig cfg = service::config_from_env();
    EXPECT_EQ(cfg.socket_path, "/tmp/x.sock");
    EXPECT_EQ(cfg.workers, 5);
    EXPECT_EQ(cfg.queue_max, 9u);
    EXPECT_EQ(cfg.drain_ms, 1234);
    EXPECT_EQ(cfg.max_deadline_ms, 777);
    ::setenv("DLPROJ_SERVE_WORKERS", "lots", 1);
    EXPECT_THROW(service::config_from_env(), support::EnvError);
}

// --- soak: concurrent clients through the fault-injection proxy ----------

TEST(Soak, ConcurrentClientsThroughChaosSurviveARestartWithZeroCorruption) {
    const std::string dir = scratch_dir("soak");
    service::ServiceConfig cfg = test_config(dir);
    cfg.workers = 4;
    cfg.retry_after_ms = 3;
    std::optional<service::Service> svc;
    svc.emplace(cfg);
    svc->start();

    service::ChaosConfig chaos;
    chaos.listen_path = dir + "/chaos.sock";
    chaos.target_path = cfg.socket_path;
    chaos.seed = 7;
    chaos.refuse_p = 0.03;
    chaos.drop_p = 0.04;
    chaos.truncate_p = 0.04;
    chaos.delay_p = 0.25;
    chaos.delay_ms_max = 3;
    service::FaultProxy proxy(chaos);
    proxy.start();

    constexpr int kThreads = 8;
    constexpr int kIters = 6;
    std::atomic<int> failures{0};
    std::atomic<int> ok_calls{0};
    std::mutex diag_mu;
    std::vector<std::string> diags;
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            service::ClientOptions opt;
            opt.socket_path = chaos.listen_path;  // through the proxy
            // The retry budget must outlast the worst-case mid-soak
            // restart window: under TSan the predecessor's drain waits
            // out in-flight campaign runs that execute several times
            // slower than plain builds.  80 x <=150 ms covers ~12 s;
            // successful calls exit the loop on the first good reply.
            opt.max_attempts = 80;
            opt.io_timeout_ms = 8000;
            opt.backoff.initial_ms = 2;
            opt.backoff.max_ms = 150;
            opt.backoff.seed = static_cast<std::uint64_t>(t) + 1;
            for (int i = 0; i < kIters; ++i) {
                service::Request r;
                switch ((t + i) % 3) {
                    case 0:
                        r.op = service::Op::Ping;
                        r.linger_ms = 3;
                        break;
                    case 1:
                        r.op = service::Op::Project;
                        r.circuit = (i % 2) ? "parity4" : "c17";
                        r.rules = "uniform";
                        r.seed = static_cast<std::uint64_t>(i % 2) + 1;
                        break;
                    default:
                        r.op = service::Op::Campaign;
                        r.spec = kSoakSpec;
                        r.progress = true;
                        break;
                }
                const service::CallResult res = service::call_service(r, opt);
                if (res.ok()) {
                    ok_calls.fetch_add(1);
                } else {
                    failures.fetch_add(1);
                    std::lock_guard<std::mutex> lock(diag_mu);
                    diags.push_back("thread " + std::to_string(t) + " iter " +
                                    std::to_string(i) + ": " + res.status +
                                    " stop=" + res.stop + " err=" + res.error);
                }
            }
        });
    }

    // Mid-soak the server "crashes" (stops) and a new instance takes over
    // the same socket and cache; clients must ride it out on retries.
    std::this_thread::sleep_for(300ms);
    svc->stop();
    svc.emplace(cfg);
    svc->start();
    EXPECT_TRUE(svc->recovery().quarantined == 0)
        << "a graceful predecessor leaves no torn objects";

    for (std::thread& c : clients) c.join();
    proxy.stop();
    svc->stop();

    std::string diag;
    for (const std::string& d : diags) diag += d + "\n";
    EXPECT_EQ(failures.load(), 0)
        << "every request must eventually succeed:\n" << diag;
    EXPECT_EQ(ok_calls.load(), kThreads * kIters);
    EXPECT_GT(proxy.connections(), static_cast<std::size_t>(0));
    EXPECT_GT(proxy.faults_injected(), static_cast<std::size_t>(0))
        << "the soak must actually have been soaked";

    // Zero corrupted artifacts: the store the chaos-soaked service left
    // behind recovers clean...
    const campaign::RecoveryReport rec = campaign::recover_store(cfg.cache_dir);
    EXPECT_TRUE(rec.clean()) << campaign::recovery_summary(rec);

    // ...and a warm rerun over it is byte-identical to a fresh run (every
    // cell a verified cache hit — nothing lost, nothing wrong).
    const campaign::CampaignSpec spec =
        campaign::parse_campaign_spec(kSoakSpec);
    campaign::CampaignOptions warm;
    warm.cache_dir = cfg.cache_dir;
    const campaign::CampaignReport warm_report =
        campaign::run_campaign(spec, warm);
    EXPECT_EQ(warm_report.stats.cell_hits, 4u);
    EXPECT_EQ(warm_report.stats.store_corrupt, 0u);
    EXPECT_EQ(campaign::report_json(warm_report),
              reference_report(kSoakSpec));
}

// --- crash tests against the real binaries -------------------------------

pid_t spawn_argv(const std::vector<std::string>& argv) {
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
        cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        ::_exit(127);
    }
    return pid;
}

bool wait_for_socket(const std::string& path, int tries = 300) {
    for (int i = 0; i < tries; ++i) {
        try {
            service::Fd probe = service::unix_connect(path);
            return true;
        } catch (const service::WireError&) {
            std::this_thread::sleep_for(10ms);
        }
    }
    return false;
}

TEST(Crash, CampaignKilledAtRandomPointsResumesByteIdentical) {
    const char* bin = std::getenv("DLPROJ_CAMPAIGN_BIN");
    if (!bin) GTEST_SKIP() << "DLPROJ_CAMPAIGN_BIN not set (run via ctest)";

    const std::string dir = scratch_dir("crash_campaign");
    const std::string spec_path = dir + "/crash.campaign";
    spit(spec_path, kCrashSpec);
    const std::string out = dir + "/report.json";
    const std::string reference = reference_report(kCrashSpec);

    bool finished = false;
    int killed_rounds = 0;
    for (int round = 0; round < 50 && !finished; ++round) {
        fs::remove(out);
        const pid_t pid = spawn_argv({bin, "--cache-dir=" + dir + "/cache",
                                      "--json=" + out, "--quiet", spec_path});
        ASSERT_GT(pid, 0);
        // March the kill point forward so SIGKILL lands at a different
        // stage of the campaign every round; the cache turns each death
        // into progress, so the loop terminates.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10 + 17 * round));
        ::kill(pid, SIGKILL);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
            finished = true;
        else
            ++killed_rounds;
    }
    ASSERT_TRUE(finished) << "campaign never outran the killer";
    EXPECT_EQ(slurp(out), reference)
        << "a resumed campaign must reproduce the uninterrupted report "
           "byte for byte (killed " << killed_rounds << " time(s))";
}

TEST(Crash, ServerKilledMidCampaignRecoversAndServesIdenticalResults) {
    const char* bin = std::getenv("DLPROJ_SERVED_BIN");
    if (!bin) GTEST_SKIP() << "DLPROJ_SERVED_BIN not set (run via ctest)";

    const std::string dir = scratch_dir("crash_server");
    const std::string sock = dir + "/srv.sock";
    const std::string cache = dir + "/cache";
    const std::vector<std::string> argv = {
        bin, "--socket=" + sock, "--cache-dir=" + cache, "--quiet"};

    pid_t pid = spawn_argv(argv);
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(wait_for_socket(sock));

    // Start a campaign, then SIGKILL the daemon mid-run.
    service::Request r;
    r.op = service::Op::Campaign;
    r.spec = kCrashSpec;
    {
        service::Fd conn = service::unix_connect(sock);
        service::write_frame(conn.get(), service::request_json(r), 1000);
        std::this_thread::sleep_for(60ms);
        ::kill(pid, SIGKILL);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFSIGNALED(status));
    }

    // A successor on the same cache self-heals at startup and completes
    // the campaign.
    pid = spawn_argv(argv);
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(wait_for_socket(sock));
    service::ClientOptions opt;
    opt.socket_path = sock;
    opt.max_attempts = 5;
    opt.backoff.initial_ms = 5;
    const service::CallResult res = service::call_service(r, opt);
    EXPECT_EQ(res.status, "ok") << res.error;

    ::kill(pid, SIGTERM);  // graceful drain
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    // The SIGKILL left no lie in the cache: a warm rerun matches a fresh
    // run byte for byte.
    const campaign::RecoveryReport rec = campaign::recover_store(cache);
    EXPECT_TRUE(rec.clean()) << campaign::recovery_summary(rec);
    campaign::CampaignOptions warm;
    warm.cache_dir = cache;
    const campaign::CampaignReport warm_report = campaign::run_campaign(
        campaign::parse_campaign_spec(kCrashSpec), warm);
    EXPECT_EQ(warm_report.stats.store_corrupt, 0u);
    EXPECT_EQ(campaign::report_json(warm_report),
              reference_report(kCrashSpec));
}

}  // namespace
}  // namespace dlp
