// Tests for SCOAP testability, PODEM and the test-set generator.
#include <gtest/gtest.h>

#include "atpg/generate.h"
#include "atpg/compaction.h"
#include "atpg/transition_tpg.h"
#include "gatesim/patterns.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"

namespace dlp::atpg {
namespace {

using gatesim::collapse_faults;
using gatesim::full_fault_universe;
using gatesim::StuckAtFault;
using gatesim::Vector;
using netlist::build_c17;
using netlist::build_c432;
using netlist::build_ripple_adder;
using netlist::Circuit;
using netlist::GateType;

TEST(Scoap, InputAndChainCosts) {
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto g = c.add_gate(GateType::And, "g", {a, b});
    const auto n = c.add_gate(GateType::Not, "n", {g});
    c.mark_output(n);
    const Testability t = compute_testability(c);
    EXPECT_EQ(t.cc0[a], 1);
    EXPECT_EQ(t.cc1[a], 1);
    EXPECT_EQ(t.cc1[g], 3);  // both inputs at 1, +1
    EXPECT_EQ(t.cc0[g], 2);  // one input at 0, +1
    EXPECT_EQ(t.cc0[n], 4);  // = cc1(g)+1
    EXPECT_EQ(t.co[n], 0);   // primary output
    EXPECT_GT(t.co[a], 0);
}

TEST(Scoap, XorCosts) {
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto x = c.add_gate(GateType::Xor, "x", {a, b});
    c.mark_output(x);
    const Testability t = compute_testability(c);
    EXPECT_EQ(t.cc0[x], 3);  // 00 or 11, cheapest pair + 1
    EXPECT_EQ(t.cc1[x], 3);
}

/// Checks a PODEM-generated vector really detects the fault.
void expect_detects(const Circuit& c, const StuckAtFault& f,
                    const Vector& test) {
    std::vector<Vector> one{test};
    const auto det = gatesim::run_fault_simulation(c, std::span(&f, 1), one);
    EXPECT_EQ(det[0], 1) << "vector does not detect "
                         << gatesim::fault_name(c, f);
}

TEST(Podem, FindsTestsForAllC17Faults) {
    const Circuit c = build_c17();
    const Testability t = compute_testability(c);
    Podem podem(c, t);
    for (const auto& f : collapse_faults(c, full_fault_universe(c))) {
        const auto res = podem.generate(f, 1000);
        ASSERT_EQ(res.status, PodemResult::Status::TestFound)
            << gatesim::fault_name(c, f);
        expect_detects(c, f, res.test);
    }
}

TEST(Podem, ProvesRedundancy) {
    // y = OR(a, NOT(a)): y stem s-a-1 is redundant.
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto na = c.add_gate(GateType::Not, "na", {a});
    const auto y = c.add_gate(GateType::Or, "y", {a, na});
    c.mark_output(y);
    Podem podem(c, compute_testability(c));
    const auto res = podem.generate({y, netlist::kNoNet, -1, true}, 1000);
    EXPECT_EQ(res.status, PodemResult::Status::Redundant);
    // The s-a-0 on the same stem is trivially testable.
    const auto res0 = podem.generate({y, netlist::kNoNet, -1, false}, 1000);
    EXPECT_EQ(res0.status, PodemResult::Status::TestFound);
}

TEST(Podem, BranchFaults) {
    const Circuit c = build_c17();
    Podem podem(c, compute_testability(c));
    // Branch fault on fanout net 11 -> gate 16.
    const netlist::NetId n11 = c.find("11");
    const netlist::NetId n16 = c.find("16");
    const StuckAtFault f{n11, n16, 1, false};
    const auto res = podem.generate(f, 1000);
    ASSERT_EQ(res.status, PodemResult::Status::TestFound);
    expect_detects(c, f, res.test);
}

class PodemCompleteness
    : public ::testing::TestWithParam<std::function<Circuit()>> {};

TEST_P(PodemCompleteness, EveryFaultDecided) {
    const Circuit c = GetParam()();
    Podem podem(c, compute_testability(c));
    int aborted = 0;
    for (const auto& f : collapse_faults(c, full_fault_universe(c))) {
        const auto res = podem.generate(f, 4096);
        if (res.status == PodemResult::Status::Aborted) {
            ++aborted;
            continue;
        }
        if (res.status == PodemResult::Status::TestFound)
            expect_detects(c, f, res.test);
    }
    EXPECT_EQ(aborted, 0) << "PODEM aborted on this small circuit";
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, PodemCompleteness,
    ::testing::Values([] { return build_c17(); },
                      [] { return build_ripple_adder(4); },
                      [] { return netlist::build_parity_tree(6); },
                      [] { return netlist::build_decoder(3); },
                      [] { return netlist::build_mux_tree(2); },
                      [] {
                          return netlist::techmap(
                              netlist::build_random_circuit(10, 60, 21));
                      }));

TEST(Generate, ReachesFullCoverageOnC432) {
    const Circuit c = netlist::techmap(build_c432());
    auto faults = collapse_faults(c, full_fault_universe(c));
    TestGenOptions opt;
    opt.seed = 7;
    const TestGenResult res = generate_test_set(c, faults, opt);
    // The c432 reconstruction contains a handful of genuinely redundant
    // faults (the priority encoder masks low channels); PODEM must prove
    // most of them and abort on at most a few.
    EXPECT_LE(res.aborted, 8u);
    EXPECT_GE(res.coverage(), 0.98) << "undetected testable faults remain";
    EXPECT_GT(res.random_count, 0);
    EXPECT_EQ(res.status.size(), faults.size());
    // The random prefix alone must already top 80% (paper sec. 3).
    size_t by_random = 0;
    for (int at : res.first_detected_at)
        if (at >= 1 && at <= res.random_count) ++by_random;
    EXPECT_GT(static_cast<double>(by_random) /
                  static_cast<double>(faults.size()),
              0.8);
}

TEST(Generate, DeterministicInSeed) {
    const Circuit c = build_c17();
    auto faults = collapse_faults(c, full_fault_universe(c));
    TestGenOptions opt;
    opt.seed = 42;
    const auto a = generate_test_set(c, faults, opt);
    const auto b = generate_test_set(c, faults, opt);
    EXPECT_EQ(a.vectors, b.vectors);
    opt.seed = 43;
    const auto d = generate_test_set(c, faults, opt);
    EXPECT_NE(a.vectors, d.vectors);
}

TEST(Generate, CountsAreConsistent) {
    const Circuit c = build_ripple_adder(6);
    auto faults = collapse_faults(c, full_fault_universe(c));
    const TestGenResult res = generate_test_set(c, faults);
    EXPECT_EQ(res.first_detected_at.size(), faults.size());
    EXPECT_EQ(static_cast<int>(res.vectors.size()),
              res.random_count + res.deterministic_count);
    size_t detected = 0;
    for (int at : res.first_detected_at) detected += at >= 1;
    EXPECT_EQ(detected, res.detected);
    EXPECT_NEAR(res.raw_coverage(),
                static_cast<double>(res.detected) /
                    static_cast<double>(faults.size()),
                1e-12);
}

TEST(TransitionTpg, ReachesHighCoverage) {
    const Circuit c = netlist::techmap(build_c432());
    auto faults = gatesim::full_transition_universe(c);
    TransitionTestOptions opt;
    opt.seed = 11;
    const auto res = generate_transition_tests(c, faults, opt);
    EXPECT_GE(res.coverage(), 0.95);
    EXPECT_EQ(res.first_detected_at.size(), faults.size());
    EXPECT_EQ(res.vectors.size(),
              static_cast<size_t>(res.random_count + 2 * res.pair_count));
}

TEST(TransitionTpg, PairsActuallyDetect) {
    // Re-simulating the generated sequence must reproduce the claimed
    // detections.
    const Circuit c = build_ripple_adder(5);
    auto faults = gatesim::full_transition_universe(c);
    TransitionTestOptions opt;
    opt.seed = 3;
    opt.max_random = 128;
    const auto res = generate_transition_tests(c, faults, opt);
    gatesim::TransitionFaultSimulator resim(c, faults);
    resim.apply(res.vectors);
    size_t detected = 0;
    for (int at : resim.first_detected_at()) detected += at >= 1;
    EXPECT_GE(detected, res.detected);
}

TEST(TransitionTpg, DeterministicInSeed) {
    const Circuit c = build_c17();
    auto faults = gatesim::full_transition_universe(c);
    TransitionTestOptions opt;
    opt.seed = 5;
    const auto a = generate_transition_tests(c, faults, opt);
    const auto b = generate_transition_tests(c, faults, opt);
    EXPECT_EQ(a.vectors, b.vectors);
    EXPECT_EQ(a.detected, b.detected);
}

TEST(Compaction, PreservesCoverageAndShrinks) {
    const Circuit c = netlist::techmap(build_c432());
    auto faults = collapse_faults(c, full_fault_universe(c));
    TestGenOptions opt;
    opt.seed = 7;
    const auto res = generate_test_set(c, faults, opt);

    const auto compact = compact_reverse(c, faults, res.vectors);
    EXPECT_LT(compact.kept, compact.original / 4)
        << "random prefix should mostly fall away";
    EXPECT_EQ(compact.kept, compact.vectors.size());

    // Coverage of the compacted set equals the original detected count.
    gatesim::FaultSimulator before(c, faults);
    before.apply(res.vectors);
    gatesim::FaultSimulator after(c, faults);
    after.apply(compact.vectors);
    EXPECT_EQ(after.detected_count(), before.detected_count());
}

TEST(Compaction, KeepsOrderAndHandlesTinySets) {
    const Circuit c = build_c17();
    auto faults = collapse_faults(c, full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(2);
    const auto vectors = rng.vectors(c, 32);
    const auto compact = compact_reverse(c, faults, vectors);
    // Kept vectors appear in their original relative order.
    size_t cursor = 0;
    for (const auto& v : compact.vectors) {
        while (cursor < vectors.size() && vectors[cursor] != v) ++cursor;
        ASSERT_LT(cursor, vectors.size());
        ++cursor;
    }
    const auto empty = compact_reverse(c, faults, {});
    EXPECT_EQ(empty.kept, 0u);
}

}  // namespace
}  // namespace dlp::atpg
