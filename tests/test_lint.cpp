// The static-analysis subsystem: diagnostic engine, suppression, the check
// sweeps over the data/bad_* fixtures (golden check ids + locations), the
// JSON renderer, and the ExperimentRunner fail-fast gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "extract/rules_parser.h"
#include "flow/experiment.h"
#include "gatesim/faults.h"
#include "lint/checks.h"
#include "lint/diagnostics.h"
#include "netlist/bench_parser.h"
#include "netlist/builders.h"
#include "service/json.h"

#ifndef DLPROJ_DATA_DIR
#define DLPROJ_DATA_DIR "data"
#endif

namespace {

using namespace dlp;

std::string read_fixture(const std::string& name) {
    const std::string path = std::string(DLPROJ_DATA_DIR) + "/" + name;
    std::ifstream in(path);
    if (!in) ADD_FAILURE() << "cannot open fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/// Runs the same sweep cascade as the dlproj_lint CLI on a `.bench`
/// fixture: lenient text scan; when that finds no errors, the strict parse
/// plus circuit- and fault-level sweeps.
lint::LintReport lint_bench_fixture(const std::string& name,
                                    const lint::LintOptions& options = {}) {
    const std::string text = read_fixture(name);
    lint::DiagnosticEngine engine{lint::SuppressionSet(options.suppress)};
    lint::lint_bench_text(text, name, engine);
    if (engine.errors() == 0) {
        try {
            const netlist::Circuit c = netlist::parse_bench(text, name);
            lint::lint_circuit(c, engine, options);
            const auto collapsed =
                gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
            lint::lint_faults(c, collapsed, engine);
        } catch (const std::runtime_error& e) {
            // Suppressing a text-level error can let a netlist the strict
            // parser still rejects through; surface that as bench-syntax
            // (same cascade as the dlproj_lint CLI).
            engine.report(lint::Severity::Error, "bench-syntax", e.what(),
                          {name, 0});
        }
    }
    return lint::make_report(engine);
}

lint::LintReport lint_rules_fixture(const std::string& name) {
    const std::string text = read_fixture(name);
    lint::DiagnosticEngine engine;
    lint::lint_rules(extract::parse_defect_rules(text), engine, name);
    return lint::make_report(engine);
}

bool has_check(const lint::LintReport& r, std::string_view check) {
    return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                       [&](const lint::Diagnostic& d) {
                           return d.check == check;
                       });
}

const lint::Diagnostic* find_check(const lint::LintReport& r,
                                   std::string_view check) {
    for (const lint::Diagnostic& d : r.diagnostics)
        if (d.check == check) return &d;
    return nullptr;
}

/// Minimal JSON syntax validator (objects/arrays/strings/numbers/keywords)
/// — enough to prove render_json always emits a well-formed document.
class JsonChecker {
public:
    explicit JsonChecker(std::string_view text) : s_(text) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek('}')) return true;
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (!expect(':')) return false;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek('}')) return true;
            if (!expect(',')) return false;
        }
    }
    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek(']')) return true;
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek(']')) return true;
            if (!expect(',')) return false;
        }
    }
    bool string() {
        if (!expect('"')) return false;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) return false;
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (std::string_view("\"\\/bfnrt").find(e) ==
                           std::string_view::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }
    bool number() {
        const size_t start = pos_;
        if (peek('-')) {}
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }
    bool literal(std::string_view lit) {
        if (s_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }
    bool expect(char c) {
        if (pos_ >= s_.size() || s_[pos_] != c) return false;
        ++pos_;
        return true;
    }
    bool peek(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    std::string_view s_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------- engine

TEST(Diagnostics, EngineCountsBySeverity) {
    lint::DiagnosticEngine e;
    e.report(lint::Severity::Error, "net-undriven", "m1");
    e.report(lint::Severity::Warning, "fanin-excessive", "m2");
    e.report(lint::Severity::Warning, "fanin-excessive", "m3");
    e.report(lint::Severity::Info, "fault-structurally-untestable", "m4");
    EXPECT_EQ(e.errors(), 1u);
    EXPECT_EQ(e.warnings(), 2u);
    EXPECT_EQ(e.infos(), 1u);
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.diagnostics().size(), 4u);
    EXPECT_EQ(lint::summary_line(e), "1 error, 2 warnings, 1 info");
}

TEST(Diagnostics, SuppressionExactAndWildcard) {
    const lint::SuppressionSet s("net-undriven, rules-*;  -fanin-excessive");
    EXPECT_TRUE(s.suppresses("net-undriven"));
    EXPECT_TRUE(s.suppresses("rules-overlapping-bins"));
    EXPECT_TRUE(s.suppresses("rules-density-unnormalized"));
    EXPECT_TRUE(s.suppresses("fanin-excessive"));
    EXPECT_FALSE(s.suppresses("net-multi-driven"));
    EXPECT_FALSE(s.suppresses("comb-cycle"));
    EXPECT_TRUE(lint::SuppressionSet("").empty());
}

TEST(Diagnostics, SuppressedFindingsDoNotCount) {
    lint::DiagnosticEngine e{lint::SuppressionSet("net-undriven")};
    e.report(lint::Severity::Error, "net-undriven", "dropped");
    e.report(lint::Severity::Error, "comb-cycle", "kept");
    EXPECT_EQ(e.errors(), 1u);
    EXPECT_EQ(e.suppressed(), 1u);
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_EQ(e.diagnostics()[0].check, "comb-cycle");
}

TEST(Diagnostics, TextRendererFormat) {
    lint::DiagnosticEngine e;
    e.report(lint::Severity::Error, "net-undriven", "net 'b' has no driver",
             {"bad.bench", 4}, "b");
    e.report(lint::Severity::Warning, "fanin-excessive", "wide gate");
    const std::string text = lint::render_text(e.diagnostics());
    EXPECT_NE(text.find("bad.bench:4: error: [net-undriven] net 'b' has no "
                        "driver"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("warning: [fanin-excessive] wide gate"),
              std::string::npos)
        << text;
}

TEST(Diagnostics, JsonRendererIsWellFormedAndEscapes) {
    lint::DiagnosticEngine e;
    e.report(lint::Severity::Error, "bench-syntax",
             "tricky \"quoted\"\nnewline \t tab \\ backslash",
             {"weird \"name\".bench", 2}, "a\\b");
    e.report(lint::Severity::Info, "fault-structurally-untestable", "plain");
    const std::string json = lint::render_json(e.diagnostics());
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"check\": \"bench-syntax\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
    EXPECT_EQ(json.find('\n'), std::string::npos) << "raw newline leaked";
}

TEST(Diagnostics, JsonRoundTripsThroughServiceParser) {
    // The syntax checker above proves well-formedness; this proves the
    // *values* survive: decode with the strict RFC 8259 parser the service
    // daemon uses and compare every field byte for byte.
    const std::string nasty =
        "we\"ird\\name\nwith\tcontrol\x01 and \"both\" \\\\ doubled";
    lint::DiagnosticEngine e;
    e.report(lint::Severity::Error, "net-undriven",
             "net '" + nasty + "' has no driver", {nasty + ".bench", 7},
             nasty);
    const std::string json = lint::render_json(e.diagnostics());
    const service::Json doc = service::parse_json(json);
    const auto& items = doc.get("diagnostics")->items();
    ASSERT_EQ(items.size(), 1u);
    const service::Json& d = items[0];
    EXPECT_EQ(d.get("check")->as_string(), "net-undriven");
    EXPECT_EQ(d.get("severity")->as_string(), "error");
    EXPECT_EQ(d.get("object")->as_string(), nasty);
    EXPECT_EQ(d.get("message")->as_string(), "net '" + nasty + "' has no driver");
    EXPECT_EQ(d.get("file")->as_string(), nasty + ".bench");
    EXPECT_EQ(d.get("line")->as_int(), 7);
    EXPECT_EQ(doc.get("counts")->get("error")->as_int(), 1);
}

TEST(Diagnostics, JsonRoundTripsAdversarialBenchNetNames) {
    // End to end through the lenient text scan: a .bench whose net names
    // carry quotes and backslashes must come back intact after a JSON
    // encode/decode cycle — the path the --json CLI output takes.
    lint::DiagnosticEngine e;
    lint::lint_bench_text(
        "INPUT(a)\nOUTPUT(y)\ny = AND(a, we\"ird\\)\n", "adv\"path\\.bench",
        e);
    ASSERT_GT(e.errors(), 0u);
    const service::Json doc =
        service::parse_json(lint::render_json(e.diagnostics()));
    bool found = false;
    for (const service::Json& d : doc.get("diagnostics")->items()) {
        if (d.get("check")->as_string() != "net-undriven") continue;
        found = true;
        EXPECT_EQ(d.get("object")->as_string(), "we\"ird\\");
        EXPECT_EQ(d.get("file")->as_string(), "adv\"path\\.bench");
    }
    EXPECT_TRUE(found);
}

// -------------------------------------------------------- bench fixtures

TEST(LintBench, FlagsUndrivenNet) {
    const auto r = lint_bench_fixture("bad_undriven.bench");
    EXPECT_FALSE(r.ok());
    const auto* d = find_check(r, "net-undriven");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Error);
    EXPECT_EQ(d->object, "ghost");
    EXPECT_EQ(d->loc.file, "bad_undriven.bench");
    EXPECT_EQ(d->loc.line, 3);
}

TEST(LintBench, FlagsMultiDrivenNet) {
    const auto r = lint_bench_fixture("bad_multidriven.bench");
    EXPECT_FALSE(r.ok());
    const auto* d = find_check(r, "net-multi-driven");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->object, "y");
    EXPECT_EQ(d->loc.line, 5);
}

TEST(LintBench, FlagsCombinationalCycle) {
    const auto r = lint_bench_fixture("bad_cycle.bench");
    EXPECT_FALSE(r.ok());
    const auto* d = find_check(r, "comb-cycle");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("->"), std::string::npos) << d->message;
    EXPECT_NE(d->message.find("u"), std::string::npos);
    EXPECT_NE(d->message.find("v"), std::string::npos);
    EXPECT_GT(d->loc.line, 0);
}

TEST(LintBench, FlagsEverySyntaxErrorNotJustTheFirst) {
    const auto r = lint_bench_fixture("bad_syntax.bench");
    size_t syntax = 0;
    for (const auto& d : r.diagnostics)
        if (d.check == "bench-syntax") ++syntax;
    // Unknown gate type at line 4 AND the malformed line 5: the lenient
    // scanner reports both where the strict parser stops at one.
    EXPECT_GE(syntax, 2u);
    const auto* d = find_check(r, "bench-syntax");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->loc.line, 4);
}

TEST(LintBench, FlagsOutputConflicts) {
    const auto r = lint_bench_fixture("bad_output_conflict.bench");
    size_t conflicts = 0;
    for (const auto& d : r.diagnostics)
        if (d.check == "output-conflict") ++conflicts;
    EXPECT_EQ(conflicts, 2u);  // duplicate OUTPUT(y) + INPUT/OUTPUT 'a'
    EXPECT_FALSE(r.ok());
}

TEST(LintBench, FlagsDanglingNet) {
    const auto r = lint_bench_fixture("bad_dangling.bench");
    EXPECT_FALSE(r.ok());
    const auto* d = find_check(r, "output-dangling");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Error);
    EXPECT_EQ(d->object, "dead");
}

TEST(LintBench, FlagsUnreachableCone) {
    const auto r = lint_bench_fixture("bad_unreachable.bench");
    const auto* d = find_check(r, "gate-unreachable");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Warning);
    EXPECT_EQ(d->object, "u");
    // The cone's dead endpoint is the error; 'u' itself is the warning.
    EXPECT_TRUE(has_check(r, "output-dangling"));
}

TEST(LintBench, FlagsExcessiveFanin) {
    const auto r = lint_bench_fixture("bad_fanin.bench");
    const auto* d = find_check(r, "fanin-excessive");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Warning);
    EXPECT_EQ(d->object, "y");
    // A raised threshold silences it.
    lint::LintOptions wide;
    wide.max_fanin = 16;
    EXPECT_FALSE(has_check(lint_bench_fixture("bad_fanin.bench", wide),
                           "fanin-excessive"));
}

TEST(LintBench, CleanFixturePassesAllSweeps) {
    const auto r = lint_bench_fixture("c17.bench");
    EXPECT_TRUE(r.ok()) << lint::render_text(r.diagnostics);
    EXPECT_EQ(r.warnings, 0u) << lint::render_text(r.diagnostics);
}

TEST(LintBench, SuppressionDropsTheFinding) {
    lint::LintOptions opts;
    opts.suppress = "net-undriven";
    const auto r = lint_bench_fixture("bad_undriven.bench", opts);
    EXPECT_FALSE(has_check(r, "net-undriven"));
    EXPECT_GE(r.suppressed, 1u);
}

// -------------------------------------------------------- rules fixtures

TEST(LintRules, FlagsOverlappingBins) {
    const auto r = lint_rules_fixture("bad_overlap.rules");
    EXPECT_FALSE(r.ok());
    const auto* d = find_check(r, "rules-overlapping-bins");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Error);
    EXPECT_EQ(d->loc.file, "bad_overlap.rules");
    EXPECT_EQ(d->loc.line, 7);  // the second (overlapping) sizebin line
}

TEST(LintRules, FlagsUnnormalizedMass) {
    const auto r = lint_rules_fixture("bad_unnormalized.rules");
    EXPECT_TRUE(r.ok());  // a warning, not an error
    const auto* d = find_check(r, "rules-density-unnormalized");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Warning);
    EXPECT_NE(d->message.find("0.6"), std::string::npos) << d->message;
}

TEST(LintRules, FlagsBadClustering) {
    const auto r = lint_rules_fixture("bad_clustering.rules");
    EXPECT_FALSE(r.ok());
    // The unnormalized region map is the error; the implausibly small
    // wafer shape additionally warns.  Both carry the fixture location
    // (the first cluster_* directive line).
    const lint::Diagnostic* sum = nullptr;
    const lint::Diagnostic* tiny = nullptr;
    for (const lint::Diagnostic& d : r.diagnostics) {
        if (d.check != "rules-bad-clustering") continue;
        if (d.severity == lint::Severity::Error) sum = &d;
        if (d.severity == lint::Severity::Warning) tiny = &d;
    }
    ASSERT_NE(sum, nullptr);
    EXPECT_NE(sum->message.find("sum to 0.8"), std::string::npos)
        << sum->message;
    EXPECT_EQ(sum->loc.file, "bad_clustering.rules");
    EXPECT_EQ(sum->loc.line, 6);
    ASSERT_NE(tiny, nullptr);
    EXPECT_NE(tiny->message.find("cluster_wafer"), std::string::npos)
        << tiny->message;
}

TEST(LintRules, FlagsInMemoryBadClusterAlpha) {
    // In-memory decks bypass the parser's structural checks entirely, so
    // the lint layer must catch a nonsensical shape on its own.
    auto stats = extract::DefectStatistics::cmos_bridging_dominant();
    stats.clustering.kind = model::DefectStatsModel::Kind::NegBin;
    stats.clustering.alpha = -1.0;
    lint::DiagnosticEngine e;
    lint::lint_rules(stats, e);
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.diagnostics()[0].check, "rules-bad-clustering");
}

TEST(LintRules, CleanClusteredDeckPassesAndRoundTrips) {
    const auto r = lint_rules_fixture("clean_clustered.rules");
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.warnings, 0u);
    const auto stats =
        extract::parse_defect_rules(read_fixture("clean_clustered.rules"));
    EXPECT_EQ(stats.clustering.describe(),
              "hier:wafer=4;region=0.5@2;region=0.5@0");
    EXPECT_EQ(stats.clustering_line, 6);
}

TEST(LintRules, CleanDecksPass) {
    for (const char* name : {"cmos_bridging.rules", "clean_sizebins.rules"}) {
        const auto r = lint_rules_fixture(name);
        EXPECT_TRUE(r.ok()) << name;
        EXPECT_EQ(r.warnings, 0u) << name;
    }
}

TEST(LintRules, FlagsInMemoryValueErrors) {
    auto stats = extract::DefectStatistics::cmos_bridging_dominant();
    stats.pinhole_density = -1.0;
    lint::DiagnosticEngine e;
    lint::lint_rules(stats, e);
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.diagnostics()[0].check, "rules-density-unnormalized");
}

TEST(LintRules, SizebinParsesAndRoundTrips) {
    const auto stats =
        extract::parse_defect_rules(read_fixture("clean_sizebins.rules"));
    ASSERT_EQ(stats.size_bins.size(), 2u);
    EXPECT_DOUBLE_EQ(stats.size_bins[0].lo, 2.0);
    EXPECT_DOUBLE_EQ(stats.size_bins[0].hi, 4.0);
    EXPECT_DOUBLE_EQ(stats.size_bins[0].prob, 0.6);
    const auto again = extract::parse_defect_rules(extract::to_rules(stats));
    ASSERT_EQ(again.size_bins.size(), 2u);
    EXPECT_DOUBLE_EQ(again.size_bins[1].hi, stats.size_bins[1].hi);
    EXPECT_DOUBLE_EQ(again.size_bins[1].prob, stats.size_bins[1].prob);
}

// ----------------------------------------------------------- fault sweep

TEST(LintFaults, CleanCollapsePassesCrossValidation) {
    const netlist::Circuit c = netlist::build_c17();
    const auto collapsed =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    lint::DiagnosticEngine e;
    lint::lint_faults(c, collapsed, e);
    EXPECT_TRUE(e.ok()) << lint::render_text(e.diagnostics());
    EXPECT_FALSE(has_check(lint::make_report(e),
                           "fault-equivalence-violation"));
}

TEST(LintFaults, DetectsLostClass) {
    const netlist::Circuit c = netlist::build_c17();
    auto collapsed =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    collapsed.pop_back();  // drop one representative -> its class is lost
    lint::DiagnosticEngine e;
    lint::lint_faults(c, collapsed, e);
    EXPECT_FALSE(e.ok());
    const auto* d =
        find_check(lint::make_report(e), "fault-equivalence-violation");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("lost"), std::string::npos) << d->message;
}

TEST(LintFaults, DetectsDoubleCountedClass) {
    const netlist::Circuit c = netlist::build_c17();
    auto collapsed =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    const auto universe = gatesim::full_fault_universe(c);
    // Add a second member of the first representative's class: any
    // universe fault equivalent to it but not already in the list.
    const auto cls = gatesim::equivalence_classes(c, universe);
    size_t extra = universe.size();
    for (size_t i = 0; i < universe.size(); ++i) {
        if (cls[i] != 0) continue;
        const auto& f = universe[i];
        const bool present =
            std::any_of(collapsed.begin(), collapsed.end(),
                        [&](const gatesim::StuckAtFault& g) {
                            return g.net == f.net && g.reader == f.reader &&
                                   g.pin == f.pin &&
                                   g.stuck_value == f.stuck_value;
                        });
        if (!present) {
            extra = i;
            break;
        }
    }
    ASSERT_LT(extra, universe.size()) << "class 0 has a single member";
    collapsed.push_back(universe[extra]);
    lint::DiagnosticEngine e;
    lint::lint_faults(c, collapsed, e);
    EXPECT_FALSE(e.ok());
    const auto* d =
        find_check(lint::make_report(e), "fault-equivalence-violation");
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("double-counted"), std::string::npos)
        << d->message;
}

TEST(LintFaults, FlagsStructurallyUntestableFaults) {
    const auto r = lint_bench_fixture("bad_dangling.bench");
    const auto* d = find_check(r, "fault-structurally-untestable");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, lint::Severity::Warning);
    // Plus the one Info summary with the coverage bound.
    bool info_summary = false;
    for (const auto& di : r.diagnostics)
        if (di.check == "fault-structurally-untestable" &&
            di.severity == lint::Severity::Info &&
            di.message.find("bounded") != std::string::npos)
            info_summary = true;
    EXPECT_TRUE(info_summary);
}

// ------------------------------------------------------------ flow gate

netlist::Circuit circuit_with_dangling_gate() {
    netlist::Circuit c("dangling");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto y = c.add_gate(netlist::GateType::And, "y", {a, b});
    c.add_gate(netlist::GateType::Not, "dead", {a});
    c.mark_output(y);
    return c;
}

TEST(FlowGate, PrepareFailsFastOnBadCircuit) {
    flow::ExperimentRunner runner(circuit_with_dangling_gate());
    EXPECT_THROW(runner.prepare(), lint::LintError);
    try {
        runner.prepare();
    } catch (const lint::LintError& e) {
        EXPECT_FALSE(e.report().ok());
        EXPECT_NE(std::string(e.what()).find("output-dangling"),
                  std::string::npos)
            << e.what();
    }
    // The cached result still carries the diagnostics after the throw.
    const flow::ExperimentResult& r = runner.fit();
    EXPECT_FALSE(r.lint.ok());
    ASSERT_TRUE(r.interruption.has_value());
    EXPECT_EQ(r.interruption->stage, "lint");
    EXPECT_EQ(r.interruption->reason, support::StopReason::LintFailed);
    EXPECT_EQ(r.vector_count, 0);
}

TEST(FlowGate, PrepareFailsFastOnBadRules) {
    flow::ExperimentOptions opts;
    opts.defects.pinhole_density = -0.5;
    flow::ExperimentRunner runner(netlist::build_c17(), opts);
    EXPECT_THROW(runner.prepare(), lint::LintError);
    const auto report = runner.lint_report();
    EXPECT_TRUE(has_check(report, "rules-density-unnormalized"));
}

TEST(FlowGate, SuppressionLetsTheRunThrough) {
    flow::ExperimentOptions opts;
    opts.lint.suppress = "output-dangling, fault-structurally-untestable, "
                         "gate-unreachable";
    flow::ExperimentRunner runner(circuit_with_dangling_gate(), opts);
    EXPECT_NO_THROW(runner.prepare());
    EXPECT_GE(runner.lint_report().suppressed, 1u);
}

TEST(FlowGate, DisableFlagSkipsTheGate) {
    flow::ExperimentOptions opts;
    opts.lint_enabled = false;
    flow::ExperimentRunner runner(circuit_with_dangling_gate(), opts);
    EXPECT_NO_THROW(runner.prepare());
    EXPECT_TRUE(runner.lint_report().diagnostics.empty());
}

TEST(FlowGate, EnvKnobDisablesTheGate) {
    ::setenv("DLPROJ_LINT", "off", 1);
    flow::ExperimentRunner runner(circuit_with_dangling_gate());
    ::unsetenv("DLPROJ_LINT");
    EXPECT_NO_THROW(runner.prepare());
    EXPECT_FALSE(runner.options().lint_enabled);
}

TEST(FlowGate, CleanRunRecordsEmptyReportOnResult) {
    flow::ExperimentOptions opts;
    opts.atpg.max_random = 64;
    flow::ExperimentRunner runner(netlist::build_c17(), opts);
    const flow::ExperimentResult& r = runner.run();
    EXPECT_TRUE(r.lint.ok());
    EXPECT_FALSE(r.interruption.has_value());
    EXPECT_GT(r.vector_count, 0);
}

}  // namespace
