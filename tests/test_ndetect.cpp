// The n-detection suite (CTest label `ndetect`).
//
// Two families of guarantees:
//   * Differential — the n-detection machinery at target 1 is the classic
//     single-detection pipeline, bit for bit: sessions opened with
//     SessionOptions{1} match default-opened sessions, the derived count
//     tables are the 0/1 image of the first-detection table, and the n=1
//     ATPG sequence is untouched by the (inert) top-up knobs.  At targets
//     > 1, every registered engine matches the naive oracle's count and
//     nth-detection tables.
//   * Metamorphic — detection counts are monotone in the applied prefix
//     and saturate consistently across targets (counts_m == min(counts_n,
//     m) for m <= n over a fixed sequence), and the n-detect ATPG sequence
//     extends the n=1 sequence vector for vector.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "atpg/generate.h"
#include "gatesim/engine.h"
#include "gatesim/patterns.h"
#include "model/ndetect.h"
#include "netlist/bench_parser.h"
#include "netlist/builders.h"

namespace dlp {
namespace {

using gatesim::Circuit;
using gatesim::RandomPatternGenerator;
using gatesim::StuckAtFault;
using gatesim::Vector;
using netlist::build_c17;
using netlist::build_c432;
using netlist::build_random_circuit;

std::vector<StuckAtFault> copy_faults(std::span<const StuckAtFault> faults) {
    return {faults.begin(), faults.end()};
}

std::vector<int> to_vec(std::span<const int> s) {
    return {s.begin(), s.end()};
}

// ---- differential: target 1 is the classic pipeline -----------------------

/// Opens `engine_name` twice over the same workload — once with the default
/// options, once with an explicit target of 1 — and asserts the runs are
/// bit-identical, with the count tables the trivial image of the
/// first-detection table.
void expect_target_one_is_classic(const Circuit& c,
                                  std::span<const StuckAtFault> faults,
                                  std::span<const Vector> vectors,
                                  std::string_view engine_name) {
    const auto classic = sim::engine(engine_name).open(c, copy_faults(faults));
    classic->apply(vectors);
    const auto explicit1 =
        sim::engine(engine_name)
            .open(c, copy_faults(faults), {}, sim::SessionOptions{1});
    explicit1->apply(vectors);

    EXPECT_EQ(classic->ndetect_target(), 1) << engine_name;
    EXPECT_EQ(explicit1->ndetect_target(), 1) << engine_name;
    const auto first = to_vec(classic->first_detected_at());
    ASSERT_EQ(to_vec(explicit1->first_detected_at()), first) << engine_name;
    ASSERT_EQ(explicit1->coverage_curve(), classic->coverage_curve())
        << engine_name;

    const auto counts = classic->detection_counts();
    const auto nth = classic->nth_detected_at();
    ASSERT_EQ(counts.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(counts[i], first[i] >= 0 ? 1 : 0)
            << engine_name << " fault " << i;
        EXPECT_EQ(nth[i], first[i]) << engine_name << " fault " << i;
    }
    EXPECT_EQ(explicit1->detection_counts(), counts) << engine_name;
    EXPECT_EQ(explicit1->nth_detected_at(), nth) << engine_name;
    EXPECT_EQ(classic->fully_detected_count(), classic->detected_count())
        << engine_name;
}

TEST(NDetectDifferential, TargetOneIsClassicOnC432) {
    const Circuit c = build_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    RandomPatternGenerator rng(7);
    const auto vectors = rng.vectors(c, 96);
    for (const auto name : sim::engine_names())
        expect_target_one_is_classic(c, faults,
                                     std::span<const Vector>(vectors), name);
}

TEST(NDetectDifferential, TargetOneIsClassicOnSynthFixture) {
    // The generated-circuit fixture exercises a netlist shape the ISCAS
    // builders don't; the naive oracle is too slow here, so run the two
    // production engines only.
    const Circuit c =
        netlist::load_bench_file(std::string(DLPROJ_DATA_DIR) +
                                 "/synth_2k.bench");
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    RandomPatternGenerator rng(21);
    const auto vectors = rng.vectors(c, 64);
    for (const char* name : {"ppsfp", "levelized"})
        expect_target_one_is_classic(c, faults,
                                     std::span<const Vector>(vectors), name);
}

TEST(NDetectDifferential, AllEnginesMatchNaiveAtHigherTargets) {
    for (int n : {2, 4, 8}) {
        const sim::SessionOptions opt{n};
        for (std::uint64_t trial = 0; trial < 8; ++trial) {
            const Circuit c = build_random_circuit(
                5 + static_cast<int>(trial % 3),
                10 + static_cast<int>((trial * 5) % 20), 3000 + trial);
            const auto faults = gatesim::full_fault_universe(c);
            RandomPatternGenerator rng(trial + 1);
            const auto vectors = rng.vectors(c, 130);
            const std::span<const Vector> all(vectors);

            const auto oracle =
                sim::engine("naive").open(c, copy_faults(faults), {}, opt);
            oracle->apply(all);
            for (const auto name : sim::engine_names()) {
                if (name == "naive") continue;
                const auto s =
                    sim::engine(name).open(c, copy_faults(faults), {}, opt);
                s->apply(all);
                EXPECT_EQ(s->ndetect_target(), n) << name;
                ASSERT_EQ(to_vec(s->first_detected_at()),
                          to_vec(oracle->first_detected_at()))
                    << name << " n=" << n << " " << c.name();
                ASSERT_EQ(s->detection_counts(), oracle->detection_counts())
                    << name << " n=" << n << " " << c.name();
                ASSERT_EQ(s->nth_detected_at(), oracle->nth_detected_at())
                    << name << " n=" << n << " " << c.name();
            }
        }
    }
}

// ---- metamorphic: count-table laws ----------------------------------------

TEST(NDetectMetamorphic, CountsSaturateConsistentlyAcrossTargets) {
    // Over a fixed sequence, a fault's detecting positions are fixed, so
    // the saturated counts must satisfy counts_m == min(counts_n, m) for
    // any m <= n — dropping a fault early (lower target) loses exactly the
    // detections past the saturation point and nothing else.
    const Circuit c = build_c17();
    const auto faults = gatesim::full_fault_universe(c);
    RandomPatternGenerator rng(5);
    const auto vectors = rng.vectors(c, 120);
    const std::span<const Vector> all(vectors);

    std::map<int, std::vector<int>> counts, nth;
    for (int n : {1, 2, 4, 8}) {
        const auto s = sim::engine("levelized")
                           .open(c, copy_faults(faults), {},
                                 sim::SessionOptions{n});
        s->apply(all);
        counts[n] = s->detection_counts();
        nth[n] = s->nth_detected_at();
    }
    for (int m : {1, 2, 4}) {
        for (int n : {2, 4, 8}) {
            if (m >= n) continue;
            for (std::size_t i = 0; i < faults.size(); ++i) {
                EXPECT_EQ(counts[m][i], std::min(counts[n][i], m))
                    << "fault " << i << " m=" << m << " n=" << n;
                // A fault that reached the larger target reached the
                // smaller one no later.
                if (nth[n][i] >= 0) {
                    ASSERT_GE(nth[m][i], 0) << "fault " << i;
                    EXPECT_LE(nth[m][i], nth[n][i]) << "fault " << i;
                }
            }
        }
    }
}

TEST(NDetectMetamorphic, CountsMonotoneInAppliedPrefix) {
    const Circuit c = build_random_circuit(6, 30, 91);
    const auto faults = gatesim::full_fault_universe(c);
    RandomPatternGenerator rng(91);
    const auto vectors = rng.vectors(c, 104);
    const std::span<const Vector> all(vectors);
    const sim::SessionOptions opt{4};

    for (const auto name : sim::engine_names()) {
        // Chunked application (split off a block boundary) must land on
        // the same final state as a one-shot apply, and every prefix's
        // counts must be elementwise <= the full run's.
        const auto oneshot =
            sim::engine(name).open(c, copy_faults(faults), {}, opt);
        oneshot->apply(all);
        const auto chunked =
            sim::engine(name).open(c, copy_faults(faults), {}, opt);
        chunked->apply(all.first(40));
        const auto mid = chunked->detection_counts();
        chunked->apply(all.subspan(40));
        const auto full = chunked->detection_counts();
        ASSERT_EQ(full, oneshot->detection_counts()) << name;
        ASSERT_EQ(chunked->nth_detected_at(), oneshot->nth_detected_at())
            << name;
        for (std::size_t i = 0; i < faults.size(); ++i)
            EXPECT_LE(mid[i], full[i]) << name << " fault " << i;
    }
}

// ---- the n-detect ATPG driver ---------------------------------------------

TEST(NDetectAtpg, ClassicSequenceIsAPrefixAndMixIsInertAtTargetOne) {
    const Circuit c = build_random_circuit(7, 40, 17);
    auto faults = gatesim::collapse_faults(c, gatesim::full_fault_universe(c));

    atpg::TestGenOptions base;
    base.seed = 17;
    base.max_random = 256;
    const auto classic = atpg::generate_test_set(c, faults, base);
    EXPECT_EQ(classic.ndetect, 1);
    EXPECT_EQ(classic.topup_random_count, 0);
    EXPECT_EQ(classic.topup_weighted_count, 0);
    EXPECT_EQ(classic.topup_deterministic_count, 0);

    // The mix knob is inert at n=1: any value generates the same bytes.
    for (const auto mix :
         {atpg::NDetectMix::Random, atpg::NDetectMix::WeightedRandom,
          atpg::NDetectMix::Deterministic}) {
        auto o = base;
        o.ndetect_mix = mix;
        const auto r = atpg::generate_test_set(c, faults, o);
        ASSERT_EQ(r.vectors, classic.vectors)
            << "mix " << atpg::ndetect_mix_name(mix);
        ASSERT_EQ(r.first_detected_at, classic.first_detected_at);
    }

    // An n-detect run extends the classic sequence vector for vector.
    for (int n : {2, 4}) {
        auto o = base;
        o.ndetect = n;
        const auto r = atpg::generate_test_set(c, faults, o);
        EXPECT_EQ(r.ndetect, n);
        EXPECT_EQ(r.random_count, classic.random_count);
        EXPECT_EQ(r.deterministic_count, classic.deterministic_count);
        ASSERT_GE(r.vectors.size(), classic.vectors.size());
        for (std::size_t i = 0; i < classic.vectors.size(); ++i)
            ASSERT_EQ(r.vectors[i], classic.vectors[i]) << "vector " << i;
        // The classic per-fault outcome is untouched by the top-up.
        ASSERT_EQ(r.first_detected_at, classic.first_detected_at);
        ASSERT_EQ(r.status, classic.status);
    }
}

TEST(NDetectAtpg, CountsMatchFreshResimulationAndTopupIsDistinct) {
    const Circuit c = build_c17();
    auto faults = gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    atpg::TestGenOptions o;
    o.seed = 3;
    o.ndetect = 4;
    // Starve the random phase so the top-up phase must supply most of the
    // multiplicity (an unconstrained random phase saturates tiny c17 by
    // itself, leaving nothing to top up).
    o.random_block = 4;
    o.max_random = 4;
    const auto r = atpg::generate_test_set(c, faults, o);
    EXPECT_GT(r.topup_random_count + r.topup_weighted_count +
                  r.topup_deterministic_count,
              0);

    // Oracle: the recorded tables are a pure function of the sequence —
    // a fresh session over the generated vectors must reproduce them.
    const auto s = sim::engine("naive").open(c, copy_faults(faults), {},
                                             sim::SessionOptions{4});
    s->apply(std::span<const Vector>(r.vectors));
    EXPECT_EQ(to_vec(s->first_detected_at()), r.first_detected_at);
    EXPECT_EQ(s->detection_counts(), r.detection_counts);
    EXPECT_EQ(s->nth_detected_at(), r.nth_detected_at);

    // Distinctness: counts reflect distinct tests, so every top-up vector
    // appears exactly once in the whole sequence.
    const std::size_t prefix = r.vectors.size() -
                               static_cast<std::size_t>(
                                   r.topup_random_count +
                                   r.topup_weighted_count +
                                   r.topup_deterministic_count);
    std::map<Vector, int> occurrences;
    for (const Vector& v : r.vectors) ++occurrences[v];
    for (std::size_t i = prefix; i < r.vectors.size(); ++i)
        EXPECT_EQ(occurrences[r.vectors[i]], 1) << "top-up vector " << i;

    // c17 has no redundant faults, so a Mixed top-up must reach the
    // target on every fault.
    ASSERT_EQ(r.redundant, 0u);
    for (std::size_t i = 0; i < r.detection_counts.size(); ++i)
        EXPECT_EQ(r.detection_counts[i], 4) << "fault " << i;
}

TEST(NDetectAtpg, VectorBudgetYieldsPrefixOfUnboundedRun) {
    const Circuit c = build_random_circuit(6, 24, 29);
    auto faults = gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    atpg::TestGenOptions o;
    o.seed = 29;
    o.ndetect = 4;
    const auto full = atpg::generate_test_set(c, faults, o);
    ASSERT_GT(full.vectors.size(), 20u);

    auto capped = o;
    capped.budget.max_vectors = 20;
    const auto r = atpg::generate_test_set(c, faults, capped);
    EXPECT_EQ(r.stop, support::StopReason::VectorBudget);
    ASSERT_EQ(r.vectors.size(), 20u);
    for (std::size_t i = 0; i < r.vectors.size(); ++i)
        ASSERT_EQ(r.vectors[i], full.vectors[i]) << "vector " << i;
}

// ---- the quality profile --------------------------------------------------

TEST(NDetectProfile, TargetOneReducesToClassicCoverage) {
    const Circuit c = build_c432();
    auto faults = gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    atpg::TestGenOptions o;
    o.seed = 11;
    const auto r = atpg::generate_test_set(c, faults, o);
    std::vector<std::uint8_t> redundant(r.status.size(), 0);
    for (std::size_t i = 0; i < r.status.size(); ++i)
        redundant[i] = r.status[i] == atpg::FaultStatus::Redundant ? 1 : 0;
    const auto p = model::ndetect_profile(r.detection_counts, 1, redundant);
    EXPECT_EQ(p.faults, r.status.size() - r.redundant);
    EXPECT_DOUBLE_EQ(p.worst_case_coverage, r.coverage());
    EXPECT_DOUBLE_EQ(p.avg_case_coverage, r.coverage());
}

TEST(NDetectProfile, WorstCaseIsMonotoneNonIncreasingInN) {
    // Grading one fixed count table against growing targets: the worst
    // case (fraction at target) can only fall, the average case likewise.
    const std::vector<int> counts{5, 3, 1, 0, 8, 2, 2, 7};
    double prev_wc = 1.0, prev_ac = 1.0;
    for (int n : {1, 2, 4, 8}) {
        std::vector<int> sat(counts);
        for (int& v : sat) v = std::min(v, n);
        const auto p = model::ndetect_profile(sat, n);
        EXPECT_LE(p.worst_case_coverage, prev_wc) << "n=" << n;
        EXPECT_LE(p.avg_case_coverage, prev_ac) << "n=" << n;
        EXPECT_GE(p.avg_case_coverage, p.worst_case_coverage) << "n=" << n;
        std::size_t hist_sum = 0;
        for (const std::size_t k : p.histogram) hist_sum += k;
        EXPECT_EQ(hist_sum, counts.size()) << "n=" << n;
        prev_wc = p.worst_case_coverage;
        prev_ac = p.avg_case_coverage;
    }
}

}  // namespace
}  // namespace dlp
