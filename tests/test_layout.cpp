// Tests for placement, channel routing and layout flattening.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>

#include "layout/drc.h"
#include "layout/svg.h"
#include "layout/place_route.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"

namespace dlp::layout {
namespace {

using netlist::build_c17;
using netlist::build_c432;
using netlist::Circuit;

ChipLayout layout_of(const Circuit& c) {
    return place_and_route(netlist::techmap(c));
}

TEST(Place, EveryGateGetsACell) {
    const Circuit c = netlist::techmap(build_c17());
    const ChipLayout chip = place_and_route(c);
    EXPECT_EQ(chip.cells.size(), c.logic_gate_count());
    for (netlist::NetId g = 0; g < c.gate_count(); ++g) {
        if (c.gate(g).type == netlist::GateType::Input)
            EXPECT_EQ(chip.instance_of[g], -1);
        else {
            ASSERT_GE(chip.instance_of[g], 0);
            EXPECT_EQ(chip.cells[static_cast<size_t>(chip.instance_of[g])].gate,
                      g);
        }
    }
}

TEST(Place, UnmappedGateRejected) {
    // XOR gates have no library cell; techmap must run first.
    const Circuit c = netlist::build_parity_tree(4);
    EXPECT_THROW(place_and_route(c), std::runtime_error);
}

TEST(Place, CellsDoNotOverlapAndRespectRows) {
    const ChipLayout chip = layout_of(build_c432());
    std::map<int, std::vector<const PlacedCell*>> rows;
    for (const PlacedCell& pc : chip.cells) rows[pc.row].push_back(&pc);
    EXPECT_GT(chip.rows, 1);
    for (auto& [row, cells] : rows) {
        std::sort(cells.begin(), cells.end(),
                  [](const PlacedCell* a, const PlacedCell* b) {
                      return a->x < b->x;
                  });
        for (size_t i = 0; i + 1 < cells.size(); ++i)
            EXPECT_LE(cells[i]->x + cells[i]->cell->width, cells[i + 1]->x)
                << "overlap in row " << row;
    }
}

TEST(Place, SinksMatchCircuitFanout) {
    const Circuit c = netlist::techmap(build_c17());
    const ChipLayout chip = place_and_route(c);
    const auto fanouts = c.fanouts();
    for (netlist::NetId n = 0; n < c.gate_count(); ++n) {
        size_t expected = fanouts[n].size() + (c.is_output(n) ? 1 : 0);
        EXPECT_EQ(chip.sinks[n].size(), expected) << c.gate(n).name;
    }
}

TEST(Route, NoDifferentNetOverlaps) {
    for (const Circuit* base :
         {new Circuit(build_c17()), new Circuit(build_c432())}) {
        const ChipLayout chip = layout_of(*base);
        const auto violations = check_overlaps(chip);
        for (const auto& v : violations)
            ADD_FAILURE() << base->name() << ": " << v.message << " at ("
                          << v.a.x1 << "," << v.a.y1 << ")";
        delete base;
    }
}

TEST(Route, EveryNetHasTrunkAndRisers) {
    const Circuit c = netlist::techmap(build_c17());
    const ChipLayout chip = place_and_route(c);
    std::map<netlist::NetId, int> m1_count;
    std::map<netlist::NetId, int> m2_count;
    for (const RouteShape& r : chip.routing) {
        if (r.layer == cell::Layer::Metal1) ++m1_count[r.net];
        if (r.layer == cell::Layer::Metal2) ++m2_count[r.net];
    }
    for (netlist::NetId n = 0; n < c.gate_count(); ++n) {
        if (chip.sinks[n].empty()) continue;
        EXPECT_GE(m1_count[n], 1) << "net " << c.gate(n).name << " no trunk";
        EXPECT_GE(m2_count[n], 1) << "net " << c.gate(n).name << " no riser";
    }
}

TEST(Route, RouteShapesCarrySinkTags) {
    const ChipLayout chip = layout_of(build_c17());
    bool has_trunk = false;
    bool has_driver = false;
    bool has_sink = false;
    for (const RouteShape& r : chip.routing) {
        if (r.sink == -1) has_trunk = true;
        if (r.sink == -2) has_driver = true;
        if (r.sink >= 0) {
            has_sink = true;
            EXPECT_LT(static_cast<size_t>(r.sink), chip.sinks[r.net].size());
        }
    }
    EXPECT_TRUE(has_trunk);
    EXPECT_TRUE(has_driver);
    EXPECT_TRUE(has_sink);
}

TEST(Flatten, ResolvesNetsConsistently) {
    const Circuit c = netlist::techmap(build_c17());
    const ChipLayout chip = place_and_route(c);
    const auto flat = flatten(chip);
    EXPECT_FALSE(flat.empty());
    std::set<std::pair<std::int32_t, std::int32_t>> nets;
    size_t power_shapes = 0;
    for (const FlatShape& s : flat) {
        EXPECT_TRUE(s.rect.valid());
        nets.insert({s.net.instance, s.net.index});
        if (s.net.is_power()) ++power_shapes;
        if (s.net.is_circuit())
            EXPECT_LT(static_cast<netlist::NetId>(s.net.index),
                      c.gate_count());
    }
    EXPECT_GT(power_shapes, 0u);
    // All circuit nets with sinks appear in the flattened geometry.
    for (netlist::NetId n = 0; n < c.gate_count(); ++n)
        if (!chip.sinks[n].empty())
            EXPECT_TRUE(nets.count({cell::NetRef::kRouting,
                                    static_cast<std::int32_t>(n)}))
                << c.gate(n).name;
}

TEST(Flatten, GateRegionsPerTransistor) {
    const Circuit c = netlist::techmap(build_c17());
    const ChipLayout chip = place_and_route(c);
    size_t transistor_total = 0;
    for (const PlacedCell& pc : chip.cells)
        transistor_total += pc.cell->transistors.size();
    EXPECT_EQ(flatten_gate_regions(chip).size(), transistor_total);
}

TEST(Flatten, LayerAreasPositive) {
    const ChipLayout chip = layout_of(build_c432());
    const auto areas = layer_areas(chip);
    EXPECT_GT(areas[static_cast<size_t>(cell::Layer::Metal1)], 0);
    EXPECT_GT(areas[static_cast<size_t>(cell::Layer::Metal2)], 0);
    EXPECT_GT(areas[static_cast<size_t>(cell::Layer::Poly)], 0);
    EXPECT_GT(chip.area(), 0);
}

TEST(Route, TargetRowsHonored) {
    const Circuit c = netlist::techmap(build_c432());
    LayoutOptions opt;
    opt.target_rows = 4;
    const ChipLayout chip = place_and_route(c, opt);
    EXPECT_EQ(chip.rows, 4);
    const auto violations = check_overlaps(chip);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " overlaps, first: "
        << (violations.empty() ? "" : violations[0].message);
}

TEST(Svg, RendersAllLayersAndScales) {
    const ChipLayout chip = layout_of(build_c17());
    const std::string svg = render_svg(chip);
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // All seven layer colours appear.
    for (const char* color : {"#2e7d32", "#ef6c00", "#d32f2f", "#212121",
                              "#1565c0", "#4a148c", "#8e24aa"})
        EXPECT_NE(svg.find(color), std::string::npos) << color;
    // Cell labels on by default.
    EXPECT_NE(svg.find("NAND2"), std::string::npos);

    SvgOptions opt;
    opt.routing_only = true;
    const std::string routing = render_svg(chip, opt);
    EXPECT_LT(routing.size(), svg.size());
    EXPECT_EQ(routing.find("NAND2"), std::string::npos);
}

TEST(Svg, WritesFile) {
    const ChipLayout chip = layout_of(build_c17());
    const std::string path = ::testing::TempDir() + "/c17.svg";
    write_svg(chip, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first;
    std::getline(in, first);
    EXPECT_NE(first.find("<svg"), std::string::npos);
}

// Property sweep: for every circuit family the generated layout must be
// electrically clean (no different-net same-layer overlaps), fully placed,
// and fully routed.
class LayoutProperty
    : public ::testing::TestWithParam<std::function<Circuit()>> {};

TEST_P(LayoutProperty, CleanPlacedAndRouted) {
    const Circuit mapped = netlist::techmap(GetParam()());
    const ChipLayout chip = place_and_route(mapped);
    EXPECT_EQ(chip.cells.size(), mapped.logic_gate_count());

    const auto violations = check_overlaps(chip);
    EXPECT_TRUE(violations.empty())
        << mapped.name() << ": " << violations.size()
        << " overlaps, first: "
        << (violations.empty() ? "" : violations[0].message);

    // Every read net has a trunk, and every sink has a riser tag.
    std::set<netlist::NetId> routed;
    std::map<netlist::NetId, std::set<int>> sink_tags;
    for (const RouteShape& r : chip.routing) {
        routed.insert(r.net);
        if (r.sink >= 0) sink_tags[r.net].insert(r.sink);
    }
    for (netlist::NetId n = 0; n < mapped.gate_count(); ++n) {
        if (chip.sinks[n].empty()) continue;
        EXPECT_TRUE(routed.count(n)) << mapped.gate(n).name;
        EXPECT_EQ(sink_tags[n].size(), chip.sinks[n].size())
            << mapped.gate(n).name << ": every sink needs its own riser";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, LayoutProperty,
    ::testing::Values([] { return netlist::build_c17(); },
                      [] { return netlist::build_c432(); },
                      [] { return netlist::build_ripple_adder(8); },
                      [] { return netlist::build_parity_tree(16); },
                      [] { return netlist::build_mux_tree(4); },
                      [] { return netlist::build_decoder(4); },
                      [] { return netlist::build_alu(8); },
                      [] { return netlist::build_hamming_corrector(16); },
                      [] { return netlist::build_random_circuit(20, 150, 3); },
                      [] { return netlist::build_random_circuit(8, 300, 9); }));

TEST(Drc, SpacingReportRuns) {
    const ChipLayout chip = layout_of(build_c17());
    // Informational: dense cell internals may flag; the call must not blow up.
    const auto report = check_spacing(chip);
    (void)report;
    SUCCEED();
}

}  // namespace
}  // namespace dlp::layout
