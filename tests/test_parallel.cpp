// The parallel engine's contract: full disjoint coverage of [0, n),
// deterministic reductions, scoped worker-count resolution, exception
// propagation, and nested-region safety.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "support/cancel.h"

namespace dlp::parallel {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    for (size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul, 4097ul}) {
        for (size_t grain : {1ul, 3ul, 64ul, 5000ul}) {
            for (int threads : {1, 2, 4, 8}) {
                std::vector<std::atomic<int>> hits(n);
                parallel_for(
                    n, grain,
                    [&](size_t b, size_t e, int) {
                        for (size_t i = b; i < e; ++i)
                            hits[i].fetch_add(1, std::memory_order_relaxed);
                    },
                    threads);
                for (size_t i = 0; i < n; ++i)
                    ASSERT_EQ(hits[i].load(), 1)
                        << "n=" << n << " grain=" << grain
                        << " threads=" << threads << " i=" << i;
            }
        }
    }
}

TEST(ParallelFor, WorkerIdsInRange) {
    const int threads = 8;
    std::atomic<bool> ok{true};
    parallel_for(
        10000, 16,
        [&](size_t, size_t, int w) {
            if (w < 0 || w >= threads) ok = false;
        },
        threads);
    EXPECT_TRUE(ok.load());
}

TEST(ParallelFor, MoreThreadsThanItems) {
    std::vector<std::atomic<int>> hits(3);
    parallel_for(
        3, 1,
        [&](size_t b, size_t e, int) {
            for (size_t i = b; i < e; ++i) hits[i]++;
        },
        16);
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
    // Harmonic-ish sum: float addition is non-associative, so bit equality
    // across thread counts proves the chunk combination order is fixed.
    const size_t n = 100000;
    const auto sum_with = [&](int threads) {
        return parallel_reduce(
            n, 128, 0.0,
            [](size_t b, size_t e) {
                double s = 0.0;
                for (size_t i = b; i < e; ++i)
                    s += 1.0 / static_cast<double>(i + 1);
                return s;
            },
            [](double a, double b) { return a + b; }, threads);
    };
    const double serial = sum_with(1);
    EXPECT_GT(serial, 1.0);
    for (int threads : {2, 4, 8})
        EXPECT_EQ(sum_with(threads), serial) << threads << " threads";
}

TEST(ResolveThreads, ExplicitBeatsScopedBeatsDefault) {
    EXPECT_GE(resolve_threads(0), 1);
    EXPECT_EQ(resolve_threads(3), 3);
    {
        ScopedThreads scope(5);
        EXPECT_EQ(resolve_threads(0), 5);
        EXPECT_EQ(resolve_threads(2), 2) << "explicit request wins";
        {
            ScopedThreads inner(7);
            EXPECT_EQ(resolve_threads(0), 7);
        }
        EXPECT_EQ(resolve_threads(0), 5) << "inner scope restored";
    }
    EXPECT_GE(resolve_threads(0), 1) << "outer scope restored";
}

TEST(ParallelFor, PropagatesBodyException) {
    EXPECT_THROW(
        parallel_for(
            1000, 8,
            [&](size_t b, size_t, int) {
                if (b >= 496) throw std::runtime_error("boom");
            },
            4),
        std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<int> count{0};
    parallel_for(
        100, 8, [&](size_t b, size_t e, int) { count += int(e - b); }, 4);
    EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, NestedRegionRunsInline) {
    std::atomic<int> outer{0};
    std::atomic<int> inner{0};
    parallel_for(
        8, 1,
        [&](size_t b, size_t e, int) {
            outer += int(e - b);
            // A nested region must not deadlock on the shared pool; it runs
            // serially on the calling worker.
            parallel_for(
                10, 2, [&](size_t ib, size_t ie, int) { inner += int(ie - ib); },
                4);
        },
        4);
    EXPECT_EQ(outer.load(), 8);
    EXPECT_EQ(inner.load(), 80);
}

TEST(ParallelFor, BodyExceptionRethrownExactlyOnceAndStopsClaims) {
    // One chunk throws immediately; every other chunk sleeps, so by the
    // time a handful of slow chunks finish, the failure flag is long set
    // and the remaining claims must be abandoned.
    const size_t n = 10000;
    std::atomic<int> executed{0};
    int caught = 0;
    try {
        parallel_for(
            n, 1,
            [&](size_t b, size_t, int) {
                if (b == 0) throw std::runtime_error("injected");
                executed.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            },
            4);
    } catch (const std::runtime_error& e) {
        ++caught;
        EXPECT_STREQ(e.what(), "injected");
    }
    EXPECT_EQ(caught, 1);
    EXPECT_LT(executed.load(), static_cast<int>(n) / 2)
        << "chunks kept running after a worker threw";
    // The pool must still be usable afterwards.
    std::atomic<int> count{0};
    parallel_for(
        100, 8, [&](size_t b, size_t e, int) { count += int(e - b); }, 4);
    EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, ConcurrentThrowsFromAllWorkersPropagateOne) {
    for (int round = 0; round < 8; ++round) {
        EXPECT_THROW(
            parallel_for(
                64, 1, [&](size_t, size_t, int) { throw 42; }, 4),
            int);
    }
    std::atomic<int> count{0};
    parallel_for(
        100, 8, [&](size_t b, size_t e, int) { count += int(e - b); }, 4);
    EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForCancel, PreCancelledRunsNothing) {
    support::CancelToken token;
    token.request();
    for (int threads : {1, 4}) {
        std::atomic<int> executed{0};
        parallel_for(
            1000, 8,
            [&](size_t, size_t, int) {
                executed.fetch_add(1, std::memory_order_relaxed);
            },
            threads, &token);
        EXPECT_EQ(executed.load(), 0) << threads << " threads";
    }
}

TEST(ParallelForCancel, MidRunCancelReturnsNormallyPoolReusable) {
    for (int threads : {1, 4}) {
        support::CancelToken token;
        std::atomic<int> executed{0};
        parallel_for(
            100000, 1,
            [&](size_t, size_t, int) {
                if (executed.fetch_add(1, std::memory_order_relaxed) == 16)
                    token.request();
            },
            threads, &token);
        EXPECT_GT(executed.load(), 0);
        EXPECT_LT(executed.load(), 100000) << threads << " threads";
        // The token only stops this region; the pool is intact.
        std::atomic<int> count{0};
        parallel_for(
            100, 8, [&](size_t b, size_t e, int) { count += int(e - b); },
            threads);
        EXPECT_EQ(count.load(), 100);
    }
}

TEST(ParallelForCancel, UncancelledTokenStillCoversEverything) {
    support::CancelToken token;
    std::vector<std::atomic<int>> hits(513);
    parallel_for(
        hits.size(), 7,
        [&](size_t b, size_t e, int) {
            for (size_t i = b; i < e; ++i)
                hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        4, &token);
    for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReportsParallelRegion) {
    EXPECT_FALSE(ThreadPool::in_parallel_region());
    std::atomic<bool> saw_region{false};
    parallel_for(
        4, 1,
        [&](size_t, size_t, int) {
            if (ThreadPool::in_parallel_region()) saw_region = true;
        },
        2);
    EXPECT_TRUE(saw_region.load());
    EXPECT_FALSE(ThreadPool::in_parallel_region());
}

}  // namespace
}  // namespace dlp::parallel
