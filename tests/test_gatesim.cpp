// Tests for parallel-pattern logic simulation, the stuck-at fault universe,
// fault collapsing and the PPSFP fault simulator.
#include <gtest/gtest.h>

#include <set>

#include "gatesim/fault_sim.h"
#include "gatesim/bist.h"
#include "gatesim/bridge_sim.h"
#include "gatesim/timing.h"
#include "gatesim/transition.h"
#include "gatesim/patterns.h"
#include "netlist/builders.h"

namespace dlp::gatesim {
namespace {

using netlist::build_c17;
using netlist::build_c432;
using netlist::build_parity_tree;
using netlist::build_ripple_adder;
using netlist::Circuit;
using netlist::GateType;

TEST(LogicSim, ScalarMatchesParallel) {
    const Circuit c = build_c432();
    RandomPatternGenerator rng(3);
    const auto vectors = rng.vectors(c, 64);
    const PatternBlock block = pack_vectors(c, vectors);
    const auto words = simulate_block(c, block);
    for (int lane = 0; lane < 64; lane += 7) {
        const auto scalar = simulate(c, vectors[static_cast<size_t>(lane)]);
        for (netlist::NetId n = 0; n < c.gate_count(); ++n)
            ASSERT_EQ(scalar[n], ((words[n] >> lane) & 1) != 0)
                << "net " << n << " lane " << lane;
    }
}

TEST(LogicSim, PackRejectsBadInput) {
    const Circuit c = build_c17();
    EXPECT_THROW(pack_vectors(c, {}), std::invalid_argument);
    std::vector<Vector> wrong{Vector(3, false)};
    EXPECT_THROW(pack_vectors(c, wrong), std::invalid_argument);
    std::vector<Vector> many(65, Vector(5, false));
    EXPECT_THROW(pack_vectors(c, many), std::invalid_argument);
}

TEST(Faults, UniverseCountsC17) {
    // c17: 11 nets. Fanout > 1 nets: 3 (from 11), 11 (to 16,19), 16 (to
    // 22,23). So 22 stem + 12 branch = 34 faults.
    const Circuit c = build_c17();
    const auto faults = full_fault_universe(c);
    EXPECT_EQ(faults.size(), 34u);
}

TEST(Faults, CollapseShrinksAndKeepsCoverageMeaning) {
    const Circuit c = build_c17();
    const auto full = full_fault_universe(c);
    const auto collapsed = collapse_faults(c, full);
    EXPECT_LT(collapsed.size(), full.size());
    // Known result for c17: 22 collapsed faults.
    EXPECT_EQ(collapsed.size(), 22u);
}

TEST(Faults, NamesAreStable) {
    const Circuit c = build_c17();
    const StuckAtFault stem{c.find("10"), netlist::kNoNet, -1, true};
    EXPECT_EQ(fault_name(c, stem), "10/SA1");
}

TEST(FaultSim, DetectsInjectedStuckAtOnC17) {
    const Circuit c = build_c17();
    // Exhaustive 32-vector test of all 5 inputs detects all c17 faults.
    std::vector<Vector> vectors;
    for (int i = 0; i < 32; ++i) {
        Vector v(5);
        for (int b = 0; b < 5; ++b) v[static_cast<size_t>(b)] = (i >> b) & 1;
        vectors.push_back(v);
    }
    FaultSimulator sim(c, collapse_faults(c, full_fault_universe(c)));
    sim.apply(vectors);
    EXPECT_DOUBLE_EQ(sim.coverage(), 1.0);  // c17 has no redundant faults
}

TEST(FaultSim, CoverageCurveIsMonotone) {
    const Circuit c = build_c432();
    RandomPatternGenerator rng(11);
    FaultSimulator sim(c, collapse_faults(c, full_fault_universe(c)));
    sim.apply(rng.vectors(c, 256));
    const auto curve = sim.coverage_curve();
    ASSERT_EQ(curve.size(), 256u);
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i - 1]);
    EXPECT_GT(curve.back(), 0.8);  // randoms reach >80% (paper sec. 3)
    EXPECT_DOUBLE_EQ(curve.back(), sim.coverage());
}

TEST(FaultSim, FirstDetectionIndicesAreOneBasedAndOrdered) {
    const Circuit c = build_c17();
    RandomPatternGenerator rng(1);
    FaultSimulator sim(c, collapse_faults(c, full_fault_universe(c)));
    const auto vectors = rng.vectors(c, 64);
    sim.apply(vectors);
    for (int at : sim.first_detected_at()) {
        if (at < 0) continue;
        EXPECT_GE(at, 1);
        EXPECT_LE(at, 64);
    }
}

TEST(FaultSim, IncrementalApplyMatchesOneShot) {
    const Circuit c = build_ripple_adder(5);
    RandomPatternGenerator rng(17);
    const auto vectors = rng.vectors(c, 100);
    const auto faults = collapse_faults(c, full_fault_universe(c));

    FaultSimulator once(c, faults);
    once.apply(vectors);

    FaultSimulator chunked(c, faults);
    chunked.apply(std::span(vectors).subspan(0, 37));
    chunked.apply(std::span(vectors).subspan(37, 41));
    chunked.apply(std::span(vectors).subspan(78));

    ASSERT_EQ(once.first_detected_at().size(),
              chunked.first_detected_at().size());
    for (size_t i = 0; i < faults.size(); ++i)
        EXPECT_EQ(once.first_detected_at()[i], chunked.first_detected_at()[i]);
}

TEST(FaultSim, BranchFaultDiffersFromStem) {
    // A branch s-a fault must only affect its reader, not the whole stem:
    // y1 = NOT(s), y2 = BUF(s); branch fault s->y1 s-a-1 flips only y1.
    Circuit c("t");
    const auto s = c.add_input("s");
    const auto y1 = c.add_gate(GateType::Not, "y1", {s});
    const auto y2 = c.add_gate(GateType::Buf, "y2", {s});
    c.mark_output(y1);
    c.mark_output(y2);

    const StuckAtFault branch{s, y1, 0, true};
    std::vector<Vector> v0{Vector{false}};
    const auto det = run_fault_simulation(c, std::span(&branch, 1), v0);
    EXPECT_EQ(det[0], 1);  // s=0: y1 good=1, faulty=NOT(1)=0 -> detected
    (void)y2;
}

TEST(FaultSim, UndetectableRedundantFaultStaysUndetected) {
    // y = OR(a, NOT(a)) is constant 1; the stem s-a-1 on y is undetectable.
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto na = c.add_gate(GateType::Not, "na", {a});
    const auto y = c.add_gate(GateType::Or, "y", {a, na});
    c.mark_output(y);
    const StuckAtFault f{y, netlist::kNoNet, -1, true};
    std::vector<Vector> vs{Vector{false}, Vector{true}};
    const auto det = run_fault_simulation(c, std::span(&f, 1), vs);
    EXPECT_EQ(det[0], -1);
}

class FaultSimProperty : public ::testing::TestWithParam<int> {};

TEST_P(FaultSimProperty, ParityTreeNeedsBothPolarities) {
    // In an XOR tree every stuck-at fault is detectable and random vectors
    // find them quickly (XOR propagates everything).
    const Circuit c = build_parity_tree(GetParam());
    RandomPatternGenerator rng(5);
    FaultSimulator sim(c, collapse_faults(c, full_fault_universe(c)));
    sim.apply(rng.vectors(c, 128));
    EXPECT_DOUBLE_EQ(sim.coverage(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FaultSimProperty,
                         ::testing::Values(2, 3, 5, 8, 16));

TEST(Transition, UniverseAndNames) {
    const Circuit c = build_c17();
    const auto faults = full_transition_universe(c);
    EXPECT_EQ(faults.size(), 2 * c.gate_count());
    EXPECT_EQ(transition_fault_name(c, {c.find("10"), true}), "10/STR");
    EXPECT_EQ(transition_fault_name(c, {c.find("10"), false}), "10/STF");
}

TEST(Transition, NeedsTheInitializingVector) {
    // Single inverter y = NOT(a).  STR on a needs the pair (a=0, a=1):
    // with vectors (1, 1) nothing launches; with (0, 1) it is detected at
    // the second vector.
    Circuit c("inv");
    const auto a = c.add_input("a");
    const auto y = c.add_gate(netlist::GateType::Not, "y", {a});
    c.mark_output(y);
    TransitionFaultSimulator sim(c, {{a, true}});
    std::vector<Vector> same{Vector{true}, Vector{true}};
    sim.apply(same);
    EXPECT_EQ(sim.first_detected_at()[0], -1);

    TransitionFaultSimulator sim2(c, {{a, true}});
    std::vector<Vector> pair{Vector{false}, Vector{true}};
    sim2.apply(pair);
    EXPECT_EQ(sim2.first_detected_at()[0], 2);
    (void)y;
}

TEST(Transition, PairAcrossApplyBoundary) {
    Circuit c("inv");
    const auto a = c.add_input("a");
    c.mark_output(c.add_gate(netlist::GateType::Not, "y", {a}));
    TransitionFaultSimulator sim(c, {{a, true}});
    std::vector<Vector> first{Vector{false}};
    std::vector<Vector> second{Vector{true}};
    sim.apply(first);
    EXPECT_EQ(sim.first_detected_at()[0], -1);
    sim.apply(second);
    EXPECT_EQ(sim.first_detected_at()[0], 2) << "pair spans apply() calls";
}

TEST(Transition, RandomVectorsCoverAdder) {
    const Circuit c = build_ripple_adder(4);
    RandomPatternGenerator rng(3);
    TransitionFaultSimulator sim(c, full_transition_universe(c));
    sim.apply(rng.vectors(c, 512));
    EXPECT_GT(sim.coverage(), 0.95);
    const auto curve = sim.coverage_curve();
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i - 1]);
    EXPECT_DOUBLE_EQ(curve.back(), sim.coverage());
}

TEST(Transition, DetectionImpliesValidPair) {
    // Cross-check a sample of detections against first principles: the
    // line value at k-1 must be the initial value, and the faulty value at
    // k must differ at a PO under the stuck-at interpretation.
    const Circuit c = build_c432();
    RandomPatternGenerator rng(9);
    const auto vectors = rng.vectors(c, 128);
    TransitionFaultSimulator sim(c, full_transition_universe(c));
    sim.apply(vectors);
    int checked = 0;
    for (size_t fi = 0; fi < sim.faults().size() && checked < 25; ++fi) {
        const int at = sim.first_detected_at()[fi];
        if (at < 2) continue;  // skip undetected and lane-0-carried pairs
        ++checked;
        const auto& f = sim.faults()[fi];
        const bool init = !f.slow_to_rise;
        const auto prev =
            simulate(c, vectors[static_cast<size_t>(at - 2)]);
        ASSERT_EQ(prev[f.line], init) << transition_fault_name(c, f);
        const StuckAtFault sa{f.line, netlist::kNoNet, -1, init};
        std::vector<Vector> one{vectors[static_cast<size_t>(at - 1)]};
        const auto det = run_fault_simulation(c, std::span(&sa, 1), one);
        ASSERT_EQ(det[0], 1) << transition_fault_name(c, f);
    }
    EXPECT_GT(checked, 0);
}

TEST(GateBridge, WiredAndFlipsTheHighNet) {
    // y1 = NOT(a), y2 = NOT(b); bridge(y1, y2) wired-AND.
    // a=0,b=1: driven values 1,0 -> resolved 0 -> y1's observed value flips.
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto y1 = c.add_gate(netlist::GateType::Not, "y1", {a});
    const auto y2 = c.add_gate(netlist::GateType::Not, "y2", {b});
    c.mark_output(y1);
    c.mark_output(y2);
    const GateBridgeFault f{y1, y2, BridgeRule::WiredAnd};
    const auto out = simulate_bridge(c, {false, true}, f);
    EXPECT_FALSE(out[0]);  // good y1 = 1, bridged reads 0
    EXPECT_FALSE(out[1]);
    // Wired-OR: both read 1, so y2 flips instead.
    const GateBridgeFault g{y1, y2, BridgeRule::WiredOr};
    const auto out2 = simulate_bridge(c, {false, true}, g);
    EXPECT_TRUE(out2[0]);
    EXPECT_TRUE(out2[1]);
}

TEST(GateBridge, DominanceRules) {
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto y1 = c.add_gate(netlist::GateType::Buf, "y1", {a});
    const auto y2 = c.add_gate(netlist::GateType::Buf, "y2", {b});
    c.mark_output(y1);
    c.mark_output(y2);
    const GateBridgeFault f{y1, y2, BridgeRule::ADominates};
    const auto out = simulate_bridge(c, {true, false}, f);
    EXPECT_TRUE(out[0]);
    EXPECT_TRUE(out[1]);  // b's observed value follows a
}

TEST(GateBridge, FeedbackCycleFlaggedAsOscillating) {
    // y = NOT(x), x = BUF(a); bridge(x, y) with A-dominates(y side feeding
    // x's readers) forms a ring when the resolved value disagrees.
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto x = c.add_gate(netlist::GateType::Buf, "x", {a});
    const auto y = c.add_gate(netlist::GateType::Not, "y", {x});
    c.mark_output(y);
    // Bridge x with y: readers of x see resolve(x, y); y = NOT(that) -> ring.
    const GateBridgeFault f{x, y, BridgeRule::BDominates};
    bool osc = false;
    simulate_bridge(c, {true}, f, &osc);
    EXPECT_TRUE(osc);
}

TEST(GateBridge, SequenceSimulatorDropsAndCounts) {
    const Circuit c = build_c17();
    std::vector<GateBridgeFault> faults;
    for (NetId n = 0; n + 1 < c.gate_count(); ++n)
        faults.push_back({n, static_cast<NetId>(n + 1),
                          BridgeRule::WiredAnd});
    GateBridgeSimulator sim(c, faults);
    RandomPatternGenerator rng(5);
    sim.apply(rng.vectors(c, 64));
    EXPECT_GT(sim.coverage(), 0.3);
    for (int at : sim.first_detected_at())
        if (at > 0) EXPECT_LE(at, 64);
}

TEST(Timing, ArrivalAndSlackBasics) {
    // a -> NOT -> NAND(with b) -> PO.
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto n = c.add_gate(netlist::GateType::Not, "n", {a});
    const auto y = c.add_gate(netlist::GateType::Nand, "y", {n, b});
    c.mark_output(y);
    const DelayModel m;
    const auto t = analyze_timing(c, m);
    EXPECT_DOUBLE_EQ(t.arrival[a], 0.0);
    EXPECT_DOUBLE_EQ(t.arrival[n], m.inv_delay);
    EXPECT_DOUBLE_EQ(t.arrival[y], m.inv_delay + m.nand_delay);
    EXPECT_DOUBLE_EQ(t.critical_delay, t.arrival[y]);
    // Default clock = critical delay: the critical path has zero slack.
    EXPECT_NEAR(t.slack[y], 0.0, 1e-12);
    EXPECT_NEAR(t.slack[n], 0.0, 1e-12);
    // The short b path has positive slack equal to the NOT delay.
    EXPECT_NEAR(t.slack[b], m.inv_delay, 1e-12);
    EXPECT_NEAR(t.min_slack(), 0.0, 1e-12);
}

TEST(Timing, SlackScalesWithClock) {
    const Circuit c = build_c432();
    const auto tight = analyze_timing(c, {}, 0.0);
    const auto loose = analyze_timing(c, {}, tight.critical_delay * 2);
    for (netlist::NetId n = 0; n < c.gate_count(); ++n)
        EXPECT_NEAR(loose.slack[n] - tight.slack[n], tight.critical_delay,
                    1e-9);
    EXPECT_GE(tight.min_slack(), -1e-9);
}

TEST(Timing, WiderGatesAndFanoutCostMore) {
    const DelayModel m;
    EXPECT_GT(m.gate_delay(netlist::GateType::Nand, 4, 1),
              m.gate_delay(netlist::GateType::Nand, 2, 1));
    EXPECT_GT(m.gate_delay(netlist::GateType::Nand, 2, 5),
              m.gate_delay(netlist::GateType::Nand, 2, 1));
}

TEST(Bist, TabulatedLfsrPolynomialsAreMaximal) {
    for (int width : {3, 4, 5, 7, 8, 15, 16}) {
        const Lfsr lfsr(width);
        EXPECT_EQ(lfsr.period(), (1ULL << width) - 1) << "width " << width;
    }
}

TEST(Bist, LfsrDeterministicAndNonZero) {
    Lfsr a(16, 0, 0xBEEF);
    Lfsr b(16, 0, 0xBEEF);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.step(), b.step());
        EXPECT_NE(a.state(), 0u);
    }
    EXPECT_THROW(Lfsr(0), std::invalid_argument);
    EXPECT_THROW(Lfsr(65), std::invalid_argument);
}

TEST(Bist, MisrSeparatesGoodAndFaultyStreams) {
    const Circuit c = build_c17();
    Lfsr lfsr(16, 0, 7);
    // Golden signature of 200 LFSR patterns.
    Misr golden(16);
    std::vector<Vector> vectors;
    for (int i = 0; i < 200; ++i) vectors.push_back(lfsr.next_vector(c));
    for (const auto& v : vectors)
        golden.absorb(pack_response(c, simulate(c, v)));

    // A faulty machine (stuck-at on net 16) must produce a different
    // signature for this pattern set.
    const StuckAtFault f{c.find("16"), netlist::kNoNet, -1, true};
    Misr faulty(16);
    for (const auto& v : vectors) {
        // Fault simulation of a single vector.
        auto values = simulate(c, v);
        std::vector<Vector> one{v};
        const auto det = run_fault_simulation(c, std::span(&f, 1), one);
        if (det[0] == 1) {
            // Flip the output bits the fault changes: recompute faulty POs.
            // (Direct faulty simulation via the stem override.)
            std::vector<std::uint64_t> words(c.gate_count());
            const Vector* vv = &v;
            const auto block = pack_vectors(c, std::span(vv, 1));
            auto good = simulate_block(c, block);
            auto fw = good;
            fw[f.net] = ~0ULL;
            for (NetId g = f.net + 1; g < c.gate_count(); ++g) {
                const auto& gate = c.gate(g);
                if (gate.type == netlist::GateType::Input) continue;
                std::vector<std::uint64_t> ops;
                for (NetId x : gate.fanin) ops.push_back(fw[x]);
                fw[g] = netlist::eval_gate(gate.type, ops);
            }
            std::vector<bool> fvals(c.gate_count());
            for (NetId g = 0; g < c.gate_count(); ++g) fvals[g] = fw[g] & 1;
            faulty.absorb(pack_response(c, fvals));
        } else {
            faulty.absorb(pack_response(c, values));
        }
    }
    EXPECT_NE(golden.signature(), faulty.signature());
}

TEST(Bist, LfsrPatternsApproachRandomCoverage) {
    // The self-testing environment of ref. [19]: LFSR patterns drive the
    // coverage law of eq. (7) just like true random patterns.
    const Circuit c = build_c432();
    const auto faults = collapse_faults(c, full_fault_universe(c));

    Lfsr lfsr(32, 0, 0xACE1);
    std::vector<Vector> lfsr_vectors;
    for (int i = 0; i < 512; ++i) lfsr_vectors.push_back(lfsr.next_vector(c));
    FaultSimulator lsim(c, faults);
    lsim.apply(lfsr_vectors);

    RandomPatternGenerator rng(4);
    FaultSimulator rsim(c, faults);
    rsim.apply(rng.vectors(c, 512));

    EXPECT_NEAR(lsim.coverage(), rsim.coverage(), 0.08);
    EXPECT_GT(lsim.coverage(), 0.8);
}

TEST(Patterns, DeterministicAndFullWidth) {
    const Circuit c = build_c432();
    RandomPatternGenerator a(123);
    RandomPatternGenerator b(123);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next_vector(c), b.next_vector(c));
    // Bits are not all equal across a batch.
    RandomPatternGenerator r(9);
    const auto vs = r.vectors(c, 32);
    std::set<Vector> unique(vs.begin(), vs.end());
    EXPECT_EQ(unique.size(), vs.size());
}

// --- Differential test: naive reference simulator vs PPSFP --------------
//
// An obviously-correct scalar simulator: for each fault, re-simulate the
// whole circuit one vector at a time with the fault's line value forced,
// and compare primary outputs against the good machine.  No pattern
// packing, no fault dropping, no cone pruning — nothing shared with the
// PPSFP implementation except the circuit IR.

std::vector<bool> simulate_faulty_naive(const Circuit& c, const Vector& v,
                                        const StuckAtFault& f) {
    std::vector<std::uint64_t> value(c.gate_count(), 0);
    std::size_t next_input = 0;
    for (NetId id = 0; id < c.gate_count(); ++id) {
        const netlist::Gate& g = c.gate(id);
        if (g.type == GateType::Input) {
            value[id] = v[next_input++] ? 1 : 0;
        } else {
            std::vector<std::uint64_t> fanin;
            for (std::size_t pin = 0; pin < g.fanin.size(); ++pin) {
                std::uint64_t bit = value[g.fanin[pin]] & 1;
                if (!f.is_stem() && f.reader == id &&
                    f.pin == static_cast<int>(pin))
                    bit = f.stuck_value ? 1 : 0;
                fanin.push_back(bit);
            }
            value[id] = netlist::eval_gate(g.type, fanin) & 1;
        }
        if (f.is_stem() && f.net == id) value[id] = f.stuck_value ? 1 : 0;
    }
    std::vector<bool> outs;
    for (const NetId po : c.outputs()) outs.push_back(value[po] & 1);
    return outs;
}

std::vector<int> run_reference_simulation(
    const Circuit& c, std::span<const StuckAtFault> faults,
    std::span<const Vector> vectors) {
    std::vector<std::vector<bool>> good;
    for (const Vector& v : vectors) {
        const std::vector<bool> nets = simulate(c, v);
        std::vector<bool> outs;
        for (const NetId po : c.outputs()) outs.push_back(nets[po]);
        good.push_back(std::move(outs));
    }
    std::vector<int> first(faults.size(), -1);
    for (std::size_t fi = 0; fi < faults.size(); ++fi)
        for (std::size_t k = 0; k < vectors.size(); ++k)
            if (simulate_faulty_naive(c, vectors[k], faults[fi]) != good[k]) {
                first[fi] = static_cast<int>(k) + 1;
                break;
            }
    return first;
}

void expect_ppsfp_matches_reference(const Circuit& c,
                                    std::span<const Vector> vectors,
                                    const char* what) {
    const auto faults = full_fault_universe(c);
    const auto reference = run_reference_simulation(c, faults, vectors);
    const auto ppsfp = run_fault_simulation(c, faults, vectors);
    ASSERT_EQ(reference.size(), ppsfp.size());
    for (std::size_t i = 0; i < faults.size(); ++i)
        EXPECT_EQ(ppsfp[i], reference[i])
            << what << ": fault " << fault_name(c, faults[i]);
}

TEST(FaultSimDifferential, C17MatchesNaiveReference) {
    const Circuit c = build_c17();
    RandomPatternGenerator rng(42);
    expect_ppsfp_matches_reference(c, rng.vectors(c, 12), "c17");
}

TEST(FaultSimDifferential, RandomCircuitsMatchNaiveReference) {
    // 100 seeded random c17-scale circuits, full (uncollapsed) fault
    // universe, ~12 vectors each: every first-detection index must be
    // bit-identical between the two simulators.
    for (std::uint64_t trial = 0; trial < 100; ++trial) {
        const Circuit c =
            netlist::build_random_circuit(5, 8, /*seed=*/1000 + trial);
        RandomPatternGenerator rng(trial);
        expect_ppsfp_matches_reference(c, rng.vectors(c, 12),
                                       c.name().c_str());
    }
}

TEST(FaultSimDifferential, BlockBoundaryVectorCounts) {
    // Vector counts straddling the 64-wide pattern block boundary, where
    // lane masking bugs would live.
    const Circuit c = netlist::build_random_circuit(5, 8, 7);
    for (int n : {1, 63, 64, 65, 70}) {
        RandomPatternGenerator rng(static_cast<std::uint64_t>(n));
        expect_ppsfp_matches_reference(c, rng.vectors(c, n), "boundary");
    }
}

}  // namespace
}  // namespace dlp::gatesim
