// Telemetry layer (src/obs): span nesting, counter aggregation across
// threads, trace-JSON well-formedness, thread-count-invariant simulator
// counters, and the zero-allocation guarantee of the disabled hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <map>
#include <new>
#include <string>

#include "extract/extractor.h"
#include "flow/experiment.h"
#include "gatesim/fault_sim.h"
#include "gatesim/patterns.h"
#include "layout/place_route.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"
#include "obs/telemetry.h"
#include "parallel/parallel_for.h"
#include "switchsim/switch_fault_sim.h"

namespace {

using namespace dlp;

// ---- global allocation counter (for the no-op overhead test) -------------

std::atomic<long long> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::reset();
        obs::set_enabled(true);
    }
    void TearDown() override {
        obs::set_enabled(false);
        obs::reset();
    }
};

std::map<std::string, long long> counters_by_prefix(const std::string& p) {
    std::map<std::string, long long> out;
    for (const auto& [name, value] : obs::counters_snapshot())
        if (name.rfind(p, 0) == 0) out[name] = value;
    return out;
}

// ---- spans ---------------------------------------------------------------

TEST_F(ObsTest, SpansNestByConstructionOrder) {
    {
        obs::Span outer("outer");
        {
            obs::Span inner("inner");
            obs::Span innermost("innermost");
        }
        obs::Span sibling("sibling");
    }
    std::map<std::string, int> count_by_path;
    for (const auto& s : obs::spans_snapshot()) {
        ++count_by_path[s.path];
        EXPECT_FALSE(s.open) << s.path;
        EXPECT_GE(s.dur_ns, 0) << s.path;
    }
    EXPECT_EQ(count_by_path["outer"], 1);
    EXPECT_EQ(count_by_path["outer/inner"], 1);
    EXPECT_EQ(count_by_path["outer/inner/innermost"], 1);
    EXPECT_EQ(count_by_path["outer/sibling"], 1);
}

TEST_F(ObsTest, OpenSpanIsReportedOpen) {
    obs::Span open_span("still-running");
    bool found = false;
    for (const auto& s : obs::spans_snapshot())
        if (s.path == "still-running") {
            found = true;
            EXPECT_TRUE(s.open);
        }
    EXPECT_TRUE(found);
}

TEST_F(ObsTest, AnnotationsConcatenateAndReachSnapshot) {
    {
        obs::Span s("annotated");
        s.annotate("first");
        obs::annotate_current("second");
    }
    for (const auto& s : obs::spans_snapshot())
        if (s.path == "annotated") EXPECT_EQ(s.note, "first; second");
}

TEST_F(ObsTest, SpanOpenedWhileDisabledStaysInert) {
    obs::set_enabled(false);
    {
        obs::Span s("ghost");
        obs::set_enabled(true);  // toggling mid-span must not corrupt logs
    }
    for (const auto& s : obs::spans_snapshot()) EXPECT_NE(s.path, "ghost");
}

// ---- counters & gauges ---------------------------------------------------

TEST_F(ObsTest, CounterAggregatesAcrossPoolThreads) {
    obs::Counter& c = obs::counter("test.parallel_adds");
    constexpr std::size_t kN = 10000;
    parallel::parallel_for(
        kN, 64, [&](std::size_t b, std::size_t e, int) {
            c.add(static_cast<long long>(e - b));
        },
        4);
    EXPECT_EQ(c.value(), static_cast<long long>(kN));
}

TEST_F(ObsTest, CounterAndGaugeRegistryReturnsStableReferences) {
    obs::Counter& a = obs::counter("test.stable");
    obs::Counter& b = obs::counter("test.stable");
    EXPECT_EQ(&a, &b);
    obs::Gauge& g = obs::gauge("test.gauge");
    g.set(2.5);
    EXPECT_EQ(&g, &obs::gauge("test.gauge"));
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsReferencesValid) {
    obs::Counter& c = obs::counter("test.reset");
    c.add(7);
    obs::gauge("test.reset_gauge").set(1.0);
    obs::reset();
    EXPECT_EQ(c.value(), 0);
    EXPECT_DOUBLE_EQ(obs::gauge("test.reset_gauge").value(), 0.0);
    c.add(2);  // reference from before reset() still works
    EXPECT_EQ(c.value(), 2);
}

TEST_F(ObsTest, SummaryTextListsSpansCountersAndGauges) {
    {
        obs::Span s("summary-span");
    }
    obs::counter("summary.counter").add(3);
    obs::gauge("summary.gauge").set(4.0);
    const std::string text = obs::summary_text();
    EXPECT_NE(text.find("summary-span"), std::string::npos);
    EXPECT_NE(text.find("summary.counter"), std::string::npos);
    EXPECT_NE(text.find("summary.gauge"), std::string::npos);
}

// ---- trace JSON ----------------------------------------------------------

/// Minimal recursive-descent JSON parser: accepts exactly the RFC 8259
/// grammar (no trailing commas, no comments).  Returns false on any
/// syntax error.
class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : s_(text) {}
    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() || !std::isxdigit(s_[pos_]))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= s_.size()) return false;
        ++pos_;  // closing '"'
        return true;
    }
    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (!std::isdigit(peek())) return false;
        while (std::isdigit(peek())) ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(peek())) return false;
            while (std::isdigit(peek())) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            if (!std::isdigit(peek())) return false;
            while (std::isdigit(peek())) ++pos_;
        }
        return pos_ > start;
    }
    bool literal(const char* word) {
        for (const char* p = word; *p; ++p, ++pos_)
            if (pos_ >= s_.size() || s_[pos_] != *p) return false;
        return true;
    }
    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void skip_ws() {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r'))
            ++pos_;
    }
    const std::string& s_;
    std::size_t pos_ = 0;
};

TEST_F(ObsTest, TraceJsonIsWellFormed) {
    {
        obs::Span outer("trace-outer");
        obs::Span inner("quote\"backslash\\newline\nend");
        inner.annotate("note with \"quotes\" and\ttabs");
    }
    obs::counter("trace.counter").add(5);
    const std::string json = obs::trace_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST_F(ObsTest, TraceJsonWellFormedAfterFullExperiment) {
#if !DLPROJ_OBS_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (-DDLPROJ_OBS=OFF)";
#endif
    flow::ExperimentOptions opt;
    auto r = flow::run_experiment(netlist::build_c17(), opt);
    (void)r;
    const std::string json = obs::trace_json();
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("flow.prepare"), std::string::npos);
    EXPECT_NE(json.find("flow.simulate"), std::string::npos);
}

// ---- determinism across thread counts ------------------------------------

TEST_F(ObsTest, GateSimCountersBitIdenticalAcrossThreadCounts) {
#if !DLPROJ_OBS_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (-DDLPROJ_OBS=OFF)";
#endif
    const auto c = netlist::techmap(netlist::build_c432());
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(7);
    const auto vectors = rng.vectors(c, 192);

    const auto run = [&](int threads) {
        obs::reset();
        gatesim::FaultSimulator sim(c, faults, {threads});
        sim.apply(vectors);
        auto counters = counters_by_prefix("faultsim.gate.");
        counters["remaining"] = static_cast<long long>(
            obs::gauge("faultsim.gate.remaining").value());
        return counters;
    };
    const auto serial = run(1);
    EXPECT_GT(serial.at("faultsim.gate.vectors"), 0);
    EXPECT_EQ(serial, run(4));
    EXPECT_EQ(serial, run(3));
}

TEST_F(ObsTest, SwitchSimCountersBitIdenticalAcrossThreadCounts) {
#if !DLPROJ_OBS_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (-DDLPROJ_OBS=OFF)";
#endif
    const auto c = netlist::techmap(netlist::build_c17());
    const auto chip = layout::place_and_route(c);
    const auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    const auto faults = flow::to_switch_faults(extraction, chip, net);
    gatesim::RandomPatternGenerator rng(3);
    std::vector<switchsim::Vector> vectors;
    for (const auto& v : rng.vectors(c, 96))
        vectors.emplace_back(v.begin(), v.end());

    const auto run = [&](int threads) {
        obs::reset();
        switchsim::SwitchFaultSimulator fs(sim, faults, {threads});
        fs.apply(vectors);
        auto counters = counters_by_prefix("faultsim.switch.");
        counters["remaining"] = static_cast<long long>(
            obs::gauge("faultsim.switch.remaining").value());
        return counters;
    };
    const auto serial = run(1);
    EXPECT_GT(serial.at("faultsim.switch.vectors"), 0);
    EXPECT_EQ(serial, run(4));
}

TEST_F(ObsTest, AtpgCountersAreReproducible) {
#if !DLPROJ_OBS_ENABLED
    GTEST_SKIP() << "instrumentation compiled out (-DDLPROJ_OBS=OFF)";
#endif
    const auto c = netlist::techmap(netlist::build_c17());
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    atpg::TestGenOptions opt;
    opt.seed = 9;
    opt.max_random = 0;  // skip the random phase: every fault hits PODEM
    const auto run = [&] {
        obs::reset();
        atpg::generate_test_set(c, faults, opt);
        return counters_by_prefix("atpg.");
    };
    const auto first = run();
    EXPECT_GT(first.at("atpg.targets"), 0);
    EXPECT_GT(first.at("atpg.implications"), 0);
    EXPECT_EQ(first, run());
}

// ---- zero overhead when disabled -----------------------------------------

TEST_F(ObsTest, DisabledHotPathDoesNotAllocate) {
    obs::Counter& c = obs::counter("noop.counter");  // registration is paid
    obs::Gauge& g = obs::gauge("noop.gauge");        // before measuring
    obs::set_enabled(false);
    const long long before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 100000; ++i) {
        DLP_OBS_SPAN(sp, "noop.span");
        DLP_OBS_SPAN_NOTE(sp, "never recorded");
        c.add(1);
        g.set(static_cast<double>(i));
        obs::annotate_current("never recorded");
    }
    const long long after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
    EXPECT_EQ(c.value(), 0);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

}  // namespace
