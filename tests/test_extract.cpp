// Tests for critical-area math, defect statistics and the fault extractor.
#include <gtest/gtest.h>

#include "extract/critical_area.h"
#include "extract/extractor.h"
#include "extract/monte_carlo.h"
#include "extract/rules_parser.h"
#include "layout/place_route.h"
#include "model/stats.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"

namespace dlp::extract {
namespace {

using cell::Rect;

TEST(CriticalArea, ClosedFormShortWeight) {
    // E[A] = L * x0^2 / s for s >= x0.
    EXPECT_DOUBLE_EQ(short_weight(10.0, 4.0, 2.0), 10.0 * 4.0 / 4.0);
    EXPECT_DOUBLE_EQ(short_weight(10.0, 8.0, 2.0), 5.0);
    // Below x0 the weight caps at the s = x0 value.
    EXPECT_DOUBLE_EQ(short_weight(10.0, 1.0, 2.0),
                     short_weight(10.0, 2.0, 2.0));
    EXPECT_DOUBLE_EQ(short_weight(0.0, 4.0, 2.0), 0.0);
}

TEST(CriticalArea, OpenWeightDual) {
    EXPECT_DOUBLE_EQ(open_weight(20.0, 4.0, 2.0), 20.0);
    EXPECT_GT(open_weight(20.0, 2.0, 2.0), open_weight(20.0, 4.0, 2.0));
}

TEST(CriticalArea, FacingDetection) {
    const Rect a{0, 0, 10, 3};
    // Parallel above with overlap 6, gap 4.
    const Rect b{4, 7, 14, 10};
    const auto f = facing(a, b, 12);
    ASSERT_TRUE(f.has_value());
    EXPECT_DOUBLE_EQ(f->length, 6.0);
    EXPECT_DOUBLE_EQ(f->spacing, 4.0);
    // Symmetric.
    const auto g = facing(b, a, 12);
    ASSERT_TRUE(g.has_value());
    EXPECT_DOUBLE_EQ(g->length, 6.0);

    EXPECT_FALSE(facing(a, Rect{4, 20, 14, 23}, 12));   // too far
    EXPECT_FALSE(facing(a, Rect{2, 1, 6, 2}, 12));      // overlapping
    EXPECT_FALSE(facing(a, Rect{12, 5, 20, 9}, 12));    // diagonal only
    const auto h = facing(a, Rect{13, 0, 20, 3}, 12);   // side by side
    ASSERT_TRUE(h.has_value());
    EXPECT_DOUBLE_EQ(h->spacing, 3.0);
}

TEST(DefectStats, ProfilesAreConsistent) {
    const auto bridging = DefectStatistics::cmos_bridging_dominant();
    EXPECT_GT(bridging.shorts(cell::Layer::Metal1),
              bridging.opens(cell::Layer::Metal1));
    const auto open = DefectStatistics::open_dominant();
    EXPECT_LT(open.shorts(cell::Layer::Metal1),
              open.opens(cell::Layer::Metal1));
}

class ExtractorFixture : public ::testing::Test {
protected:
    static const layout::ChipLayout& chip() {
        static const layout::ChipLayout c = layout::place_and_route(
            netlist::techmap(netlist::build_c432()));
        return c;
    }
    static const ExtractionResult& extraction() {
        static const ExtractionResult r = extract_faults(
            chip(), DefectStatistics::cmos_bridging_dominant());
        return r;
    }
};

TEST_F(ExtractorFixture, ProducesAllMechanisms) {
    const auto& r = extraction();
    ASSERT_FALSE(r.faults.empty());
    size_t bridges = 0;
    size_t topens = 0;
    size_t gfloats = 0;
    size_t nopens = 0;
    for (const auto& f : r.faults) {
        switch (f.kind) {
            case ExtractedFault::Kind::Bridge: ++bridges; break;
            case ExtractedFault::Kind::TransistorOpen: ++topens; break;
            case ExtractedFault::Kind::GateFloat: ++gfloats; break;
            case ExtractedFault::Kind::NetOpen: ++nopens; break;
            default: break;
        }
    }
    EXPECT_GT(bridges, 100u);
    EXPECT_GT(topens, 100u);
    EXPECT_GT(gfloats, 100u);
    EXPECT_GT(nopens, 100u);
}

TEST_F(ExtractorFixture, WeightsPositiveAndSumToTotal) {
    const auto& r = extraction();
    double sum = 0.0;
    for (const auto& f : r.faults) {
        EXPECT_GT(f.weight, 0.0);
        sum += f.weight;
    }
    // total_weight also counts class-accounted weight; with min_weight = 0
    // everything lands in the fault list.
    EXPECT_NEAR(sum, r.total_weight, 1e-9 * r.total_weight);
    double by_class = 0.0;
    for (const auto& [cls, w] : r.weight_by_class) by_class += w;
    EXPECT_NEAR(by_class, r.total_weight, 1e-9 * r.total_weight);
    EXPECT_GT(r.yield(), 0.0);
    EXPECT_LT(r.yield(), 1.0);
}

TEST_F(ExtractorFixture, BridgingDominatesWithCmosProfile) {
    const auto& r = extraction();
    double bridge_w = 0.0;
    double open_w = 0.0;
    for (const auto& [cls, w] : r.weight_by_class) {
        if (cls.rfind("bridge.", 0) == 0) bridge_w += w;
        if (cls.rfind("open.", 0) == 0) open_w += w;
    }
    EXPECT_GT(bridge_w, open_w)
        << "paper's positive-photoresist CMOS premise: bridges dominate";
}

TEST_F(ExtractorFixture, WeightHistogramIsWidelyDispersed) {
    // Fig. 3's headline: weights span decades and cannot be treated as
    // equal (contradicting Huisman's assumption).
    const auto ws = extraction().weights();
    double lo = 1e300;
    double hi = 0.0;
    for (double w : ws) {
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    EXPECT_GT(hi / lo, 100.0) << "expected >= 2 decades of dispersion";
}

TEST_F(ExtractorFixture, BridgeEndpointsDiffer) {
    for (const auto& f : extraction().faults) {
        if (f.kind != ExtractedFault::Kind::Bridge) continue;
        EXPECT_FALSE(f.a == f.b);
    }
}

TEST_F(ExtractorFixture, NetOpenSinksValid) {
    const auto& c = chip();
    for (const auto& f : extraction().faults) {
        if (f.kind != ExtractedFault::Kind::NetOpen) continue;
        ASSERT_NE(f.net, netlist::kNoNet);
        ASSERT_LT(f.net, c.circuit.gate_count());
        if (f.sink >= 0)
            EXPECT_LT(static_cast<size_t>(f.sink), c.sinks[f.net].size());
    }
}

TEST(Extractor, MinWeightFilters) {
    const auto chip = layout::place_and_route(
        netlist::techmap(netlist::build_c17()));
    const auto stats = DefectStatistics::cmos_bridging_dominant();
    const auto all = extract_faults(chip, stats);
    ExtractOptions opt;
    // Set the threshold at the median weight: about half must survive.
    auto ws = all.weights();
    std::sort(ws.begin(), ws.end());
    opt.min_weight = ws[ws.size() / 2];
    const auto filtered = extract_faults(chip, stats, opt);
    EXPECT_LT(filtered.faults.size(), all.faults.size());
    EXPECT_NEAR(static_cast<double>(filtered.faults.size()),
                static_cast<double>(all.faults.size()) / 2.0,
                static_cast<double>(all.faults.size()) / 4.0);
    // Yield bookkeeping unchanged by filtering.
    EXPECT_NEAR(filtered.total_weight, all.total_weight, 1e-12);
}

TEST_F(ExtractorFixture, MultiNodeBridgesExtracted) {
    // Defects spanning three adjacent wires produce three-net bridges;
    // they must exist, carry less weight than pairwise bridges (bigger
    // defects are rarer), and have three distinct endpoints.
    const auto& r = extraction();
    size_t triples = 0;
    double w2 = 0.0;
    double w3 = 0.0;
    for (const auto& f : r.faults) {
        if (f.kind != ExtractedFault::Kind::Bridge) continue;
        if (f.c.is_none()) {
            w2 += f.weight;
        } else {
            ++triples;
            w3 += f.weight;
            EXPECT_FALSE(f.a == f.b);
            EXPECT_FALSE(f.b == f.c);
            EXPECT_FALSE(f.a == f.c);
        }
    }
    EXPECT_GT(triples, 100u);
    EXPECT_GT(w3, 0.0);
    EXPECT_LT(w3, w2);
    bool has_class = false;
    for (const auto& [cls, w] : r.weight_by_class)
        if (cls.rfind("bridge3.", 0) == 0 && w > 0) has_class = true;
    EXPECT_TRUE(has_class);
}

TEST(Extractor, MultiNodeBridgesCanBeDisabled) {
    const auto chip = layout::place_and_route(
        netlist::techmap(netlist::build_c17()));
    ExtractOptions opt;
    opt.multi_node_bridges = false;
    const auto r = extract_faults(
        chip, DefectStatistics::cmos_bridging_dominant(), opt);
    for (const auto& f : r.faults)
        if (f.kind == ExtractedFault::Kind::Bridge)
            EXPECT_TRUE(f.c.is_none());
    for (const auto& [cls, w] : r.weight_by_class)
        EXPECT_NE(cls.rfind("bridge3.", 0), 0u) << cls;
}

TEST(Extractor, OpenDominantProfileShiftsWeight) {
    const auto chip = layout::place_and_route(
        netlist::techmap(netlist::build_c17()));
    const auto r = extract_faults(chip, DefectStatistics::open_dominant());
    double bridge_w = 0.0;
    double open_w = 0.0;
    for (const auto& [cls, w] : r.weight_by_class) {
        if (cls.rfind("bridge.", 0) == 0) bridge_w += w;
        if (cls.rfind("open.", 0) == 0) open_w += w;
    }
    EXPECT_GT(open_w, bridge_w);
}

TEST(MonteCarlo, ValidatesClosedFormWeights) {
    // Drop 400k random defects per layer and compare the estimated critical
    // weights with the extractor's closed-form integrals.  Shorts must
    // agree tightly; opens run a little lower in MC because overlapping
    // same-net shapes (jogs over pads) are integrated separately by the
    // closed form but can only break once physically.
    const auto chip = layout::place_and_route(
        netlist::techmap(netlist::build_c17()));
    const auto stats = DefectStatistics::cmos_bridging_dominant();
    const auto closed = extract_faults(chip, stats);
    MonteCarloOptions opt;
    opt.samples_per_layer = 400000;
    const auto mc = estimate_critical_weights(chip, stats, opt);

    double cf_short = 0.0;
    double cf_open = 0.0;
    for (const auto& [cls, w] : closed.weight_by_class) {
        if (cls.rfind("bridge", 0) == 0 && cls != "bridge.poly") cf_short += w;
        if (cls == "bridge.poly") cf_short += w - /*pinhole part*/ 0.0;
        if (cls.rfind("open.", 0) == 0 && cls != "open.cut") cf_open += w;
    }
    // Pinholes are area faults, not adjacency shorts; exclude them from the
    // comparison by subtracting their density contribution.
    // (They are booked under bridge.poly; compute them directly.)
    double pinhole = 0.0;
    for (const auto& gr : layout::flatten_gate_regions(chip))
        pinhole += stats.pinhole_density * static_cast<double>(gr.rect.area());
    cf_short -= pinhole;

    const double short_ratio = mc.total_short_weight() / cf_short;
    EXPECT_GT(short_ratio, 0.85) << mc.total_short_weight() << " vs "
                                 << cf_short;
    EXPECT_LT(short_ratio, 1.15);

    const double open_ratio = mc.total_open_weight() / cf_open;
    EXPECT_GT(open_ratio, 0.55);
    EXPECT_LT(open_ratio, 1.15);
}

TEST(MonteCarlo, BridgeRankingMatchesExtractor) {
    // The heaviest MC bridge pairs must also be heavy in the closed form.
    const auto chip = layout::place_and_route(
        netlist::techmap(netlist::build_c17()));
    const auto stats = DefectStatistics::cmos_bridging_dominant();
    const auto closed = extract_faults(chip, stats);
    MonteCarloOptions opt;
    opt.samples_per_layer = 200000;
    const auto mc = estimate_critical_weights(chip, stats, opt);
    ASSERT_FALSE(mc.bridges.empty());

    std::map<std::pair<cell::NetRef, cell::NetRef>, double> closed_pairs;
    for (const auto& f : closed.faults)
        if (f.kind == ExtractedFault::Kind::Bridge && f.c.is_none())
            closed_pairs[std::minmax(f.a, f.b)] += f.weight;

    // Take MC's top-5 pairs; each must exist in the closed form with a
    // weight within an order of magnitude.
    std::vector<std::pair<double, std::pair<cell::NetRef, cell::NetRef>>> top;
    for (const auto& [nets, w] : mc.bridges) top.push_back({w, nets});
    std::sort(top.rbegin(), top.rend());
    int checked = 0;
    for (const auto& [w, nets] : top) {
        if (checked >= 5) break;
        const auto it = closed_pairs.find(nets);
        if (it == closed_pairs.end()) continue;  // may be a 3-net set
        ++checked;
        EXPECT_GT(it->second, w / 10.0);
        EXPECT_LT(it->second, w * 10.0);
    }
    EXPECT_GE(checked, 3);
}

TEST(MonteCarlo, DeterministicInSeed) {
    const auto chip = layout::place_and_route(
        netlist::techmap(netlist::build_c17()));
    const auto stats = DefectStatistics::uniform();
    MonteCarloOptions opt;
    opt.samples_per_layer = 5000;
    const auto a = estimate_critical_weights(chip, stats, opt);
    const auto b = estimate_critical_weights(chip, stats, opt);
    EXPECT_EQ(a.total_short_weight(), b.total_short_weight());
    opt.seed = 2;
    const auto c = estimate_critical_weights(chip, stats, opt);
    EXPECT_NE(a.total_short_weight(), c.total_short_weight());
}

TEST(RulesParser, RoundTripsDefaultProfiles) {
    for (const auto& stats : {DefectStatistics::cmos_bridging_dominant(),
                              DefectStatistics::open_dominant(),
                              DefectStatistics::uniform()}) {
        const DefectStatistics reparsed = parse_defect_rules(to_rules(stats));
        EXPECT_DOUBLE_EQ(reparsed.x0, stats.x0);
        for (int li = 0; li < cell::kLayerCount; ++li) {
            EXPECT_DOUBLE_EQ(reparsed.short_density[li],
                             stats.short_density[li]);
            EXPECT_DOUBLE_EQ(reparsed.open_density[li],
                             stats.open_density[li]);
        }
        EXPECT_DOUBLE_EQ(reparsed.contact_open_density,
                         stats.contact_open_density);
        EXPECT_DOUBLE_EQ(reparsed.pinhole_density, stats.pinhole_density);
    }
}

TEST(RulesParser, ParsesUnitsAndComments) {
    const char* text = R"(
# comment
unit 1e-3
x0 3.5
short metal1 4.0   # trailing comment
open  poly 2.0
pinhole 0.25
)";
    const DefectStatistics s = parse_defect_rules(text);
    EXPECT_DOUBLE_EQ(s.x0, 3.5);
    EXPECT_DOUBLE_EQ(s.shorts(cell::Layer::Metal1), 4.0e-3);
    EXPECT_DOUBLE_EQ(s.opens(cell::Layer::Poly), 2.0e-3);
    EXPECT_DOUBLE_EQ(s.pinhole_density, 0.25e-3);
    EXPECT_DOUBLE_EQ(s.shorts(cell::Layer::Metal2), 0.0);
}

TEST(RulesParser, Errors) {
    EXPECT_THROW(parse_defect_rules("frob 1.0"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("short unknownium 1.0"),
                 std::runtime_error);
    EXPECT_THROW(parse_defect_rules("short metal1"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("x0 -1"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("short metal1 1.0 extra"),
                 std::runtime_error);
    EXPECT_THROW(load_defect_rules("/nonexistent/file.rules"),
                 std::runtime_error);
}

TEST(RulesParser, ShippedRulesFileMatchesBuiltinProfile) {
    DefectStatistics from_file;
    bool found = false;
    for (const char* path :
         {"data/cmos_bridging.rules", "../data/cmos_bridging.rules",
          "../../data/cmos_bridging.rules"}) {
        try {
            from_file = load_defect_rules(path);
            found = true;
            break;
        } catch (const std::runtime_error&) {
        }
    }
    if (!found) GTEST_SKIP() << "rules file not found from this cwd";
    const auto builtin = DefectStatistics::cmos_bridging_dominant();
    for (int li = 0; li < cell::kLayerCount; ++li) {
        EXPECT_NEAR(from_file.short_density[li], builtin.short_density[li],
                    1e-12);
        EXPECT_NEAR(from_file.open_density[li], builtin.open_density[li],
                    1e-12);
    }
    EXPECT_NEAR(from_file.pinhole_density, builtin.pinhole_density, 1e-12);
}

// Property sweep: extraction invariants across circuit families.
class ExtractionProperty
    : public ::testing::TestWithParam<std::function<netlist::Circuit()>> {};

TEST_P(ExtractionProperty, InvariantsHold) {
    const auto mapped = netlist::techmap(GetParam()());
    const auto chip = layout::place_and_route(mapped);
    const auto r =
        extract_faults(chip, DefectStatistics::cmos_bridging_dominant());

    ASSERT_FALSE(r.faults.empty());
    double sum = 0.0;
    for (const auto& f : r.faults) {
        ASSERT_GT(f.weight, 0.0);
        sum += f.weight;
        switch (f.kind) {
            case ExtractedFault::Kind::Bridge:
                EXPECT_FALSE(f.a == f.b);
                EXPECT_FALSE(f.a.is_power() && f.b.is_power() &&
                             f.c.is_none());
                break;
            case ExtractedFault::Kind::TransistorOpen:
            case ExtractedFault::Kind::GateFloat:
                ASSERT_FALSE(f.transistors.empty());
                for (const auto& [inst, t] : f.transistors) {
                    ASSERT_GE(inst, 0);
                    ASSERT_LT(static_cast<size_t>(inst), chip.cells.size());
                    ASSERT_LT(static_cast<size_t>(t),
                              chip.cells[static_cast<size_t>(inst)]
                                  .cell->transistors.size());
                }
                break;
            case ExtractedFault::Kind::NetOpen:
                ASSERT_LT(f.net, mapped.gate_count());
                break;
            case ExtractedFault::Kind::PoFloat:
                ASSERT_GE(f.po, 0);
                ASSERT_LT(static_cast<size_t>(f.po),
                          mapped.outputs().size());
                break;
            case ExtractedFault::Kind::Gross:
                break;
        }
    }
    EXPECT_NEAR(sum, r.total_weight, 1e-9 * r.total_weight);
    // More layout area => more total weight: sanity on the absolute scale.
    EXPECT_GT(r.total_weight, 0.0);
    EXPECT_LT(r.total_weight, 10.0) << "density units off?";
}

INSTANTIATE_TEST_SUITE_P(
    Families, ExtractionProperty,
    ::testing::Values([] { return netlist::build_c17(); },
                      [] { return netlist::build_ripple_adder(6); },
                      [] { return netlist::build_decoder(3); },
                      [] {
                          return netlist::build_random_circuit(12, 90, 17);
                      }));

}  // namespace
}  // namespace dlp::extract
