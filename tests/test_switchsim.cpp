// Tests for the switch-level simulator: fault-free equivalence with the
// gate-level simulator, bridge arbitration, stuck-open charge retention,
// floating gates, and the incremental fault simulator.
#include <gtest/gtest.h>

#include "gatesim/logic_sim.h"
#include "gatesim/patterns.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"
#include "switchsim/switch_fault_sim.h"

namespace dlp::switchsim {
namespace {

using netlist::Circuit;

std::vector<bool> unpack(const gatesim::Vector& v) {
    return std::vector<bool>(v.begin(), v.end());
}

void step_vec(const SwitchSim& sim, SwitchSim::State& st,
              const gatesim::Vector& v) {
    std::vector<char> bytes(v.size());
    static std::vector<bool> dummy;
    (void)dummy;
    std::unique_ptr<bool[]> b(new bool[v.size()]);
    for (size_t i = 0; i < v.size(); ++i) b[i] = v[i];
    sim.step(st, std::span<const bool>(b.get(), v.size()));
    (void)bytes;
}

void step_vec_faulty(const SwitchSim& sim, SwitchSim::State& st,
                     const gatesim::Vector& v, const SwitchFault& f) {
    std::unique_ptr<bool[]> b(new bool[v.size()]);
    for (size_t i = 0; i < v.size(); ++i) b[i] = v[i];
    sim.step_faulty(st, std::span<const bool>(b.get(), v.size()), f);
}

class GoodSimEquivalence
    : public ::testing::TestWithParam<std::function<Circuit()>> {};

TEST_P(GoodSimEquivalence, MatchesGateLevelSimulation) {
    const Circuit mapped = netlist::techmap(GetParam()());
    const SwitchNetlist net = build_switch_netlist(mapped);
    const SwitchSim sim(net);
    auto state = sim.initial_state();

    gatesim::RandomPatternGenerator rng(31);
    for (int i = 0; i < 40; ++i) {
        const auto v = rng.next_vector(mapped);
        step_vec(sim, state, v);
        const auto sw = sim.outputs(state);
        const auto gate = gatesim::simulate(mapped, v);
        for (size_t o = 0; o < mapped.outputs().size(); ++o) {
            ASSERT_NE(sw[o], SV::X)
                << "fault-free PO must settle, vector " << i;
            ASSERT_EQ(sw[o] == SV::One, gate[mapped.outputs()[o]])
                << "PO " << o << " vector " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, GoodSimEquivalence,
    ::testing::Values([] { return netlist::build_c17(); },
                      [] { return netlist::build_c432(); },
                      [] { return netlist::build_ripple_adder(4); },
                      [] { return netlist::build_parity_tree(5); },
                      [] { return netlist::build_decoder(3); },
                      [] {
                          return netlist::build_random_circuit(10, 50, 77);
                      }));

class InverterFixture : public ::testing::Test {
protected:
    InverterFixture() {
        // y1 = NOT(a), y2 = NOT(b): two independent inverters.
        circuit.emplace("two_inv");
        const auto a = circuit->add_input("a");
        const auto b = circuit->add_input("b");
        const auto y1 = circuit->add_gate(netlist::GateType::Not, "y1", {a});
        const auto y2 = circuit->add_gate(netlist::GateType::Not, "y2", {b});
        circuit->mark_output(y1);
        circuit->mark_output(y2);
        net = build_switch_netlist(*circuit);
        sim.emplace(net);
    }
    std::optional<Circuit> circuit;
    SwitchNetlist net;
    std::optional<SwitchSim> sim;
};

TEST_F(InverterFixture, BridgeResolvesWiredAnd) {
    // Bridge the two inverter outputs.  With a=0,b=1: y1 pulls up (PMOS,
    // g=1), y2 pulls down (NMOS, g=2): NMOS wins -> both read 0.
    SwitchFault bridge;
    bridge.kind = SwitchFault::Kind::Bridge;
    bridge.a = net.node_of_net(circuit->find("y1"));
    bridge.b = net.node_of_net(circuit->find("y2"));

    auto st = sim->initial_state();
    step_vec_faulty(*sim, st, {false, true}, bridge);
    const auto out = sim->outputs(st);
    EXPECT_EQ(out[0], SV::Zero) << "wired-AND: NMOS overpowers PMOS";
    EXPECT_EQ(out[1], SV::Zero);

    // Fault-free for contrast: y1 = 1.
    auto clean = sim->initial_state();
    step_vec(*sim, clean, {false, true});
    EXPECT_EQ(sim->outputs(clean)[0], SV::One);
}

TEST_F(InverterFixture, BridgeAgreeingValuesHarmless) {
    SwitchFault bridge;
    bridge.kind = SwitchFault::Kind::Bridge;
    bridge.a = net.node_of_net(circuit->find("y1"));
    bridge.b = net.node_of_net(circuit->find("y2"));
    auto st = sim->initial_state();
    step_vec_faulty(*sim, st, {false, false}, bridge);
    const auto out = sim->outputs(st);
    EXPECT_EQ(out[0], SV::One);
    EXPECT_EQ(out[1], SV::One);
}

TEST_F(InverterFixture, BridgeToSupplyActsStuck) {
    SwitchFault bridge;
    bridge.kind = SwitchFault::Kind::Bridge;
    bridge.a = net.node_of_net(circuit->find("y1"));
    bridge.b = SwitchNetlist::kGnd;
    auto st = sim->initial_state();
    step_vec_faulty(*sim, st, {false, false}, bridge);
    // y1 wants 1 through its PMOS but the near-short to GND wins.
    EXPECT_EQ(sim->outputs(st)[0], SV::Zero);
}

TEST_F(InverterFixture, InputBridgeOnPis) {
    SwitchFault bridge;
    bridge.kind = SwitchFault::Kind::Bridge;
    bridge.a = net.node_of_net(circuit->find("a"));
    bridge.b = net.node_of_net(circuit->find("b"));
    auto st = sim->initial_state();
    // Conflicting tester drive resolves wired-AND: both inputs read 0, so
    // both inverters output 1 (good y2 would be 0 -> detectable).
    step_vec_faulty(*sim, st, {false, true}, bridge);
    EXPECT_EQ(sim->outputs(st)[0], SV::One);
    EXPECT_EQ(sim->outputs(st)[1], SV::One);
    // Agreeing drive: normal behaviour.
    step_vec_faulty(*sim, st, {true, true}, bridge);
    EXPECT_EQ(sim->outputs(st)[0], SV::Zero);
}

TEST(StuckOpen, NeedsTwoPatternSequence) {
    // Single inverter with the NMOS removed (stuck-open): y keeps charge
    // when a=1, so detection requires a 0->1 input sequence that first
    // charges y high... actually a=0 charges y=1 via PMOS; then a=1 leaves
    // y floating at 1 (faulty) while good y=0 -> detected only then.
    Circuit c("inv");
    const auto a = c.add_input("a");
    const auto y = c.add_gate(netlist::GateType::Not, "y", {a});
    c.mark_output(y);
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);

    // Find the NMOS (global index) of the single instance.
    int nmos = -1;
    for (size_t t = 0; t < net.transistors.size(); ++t)
        if (!net.transistors[t].is_pmos) nmos = static_cast<int>(t);
    ASSERT_GE(nmos, 0);
    SwitchFault open;
    open.kind = SwitchFault::Kind::TransistorOpen;
    open.transistors = {nmos};

    auto st = sim.initial_state();
    // Vector a=1 first: good y=0; faulty y floats with unknown charge (X):
    // no definite detection.
    step_vec_faulty(sim, st, {true}, open);
    EXPECT_EQ(sim.outputs(st)[0], SV::X);
    // Now a=0 charges y=1 in both circuits...
    step_vec_faulty(sim, st, {false}, open);
    EXPECT_EQ(sim.outputs(st)[0], SV::One);
    // ...and a=1 again: faulty y retains 1 while good y=0 -> detectable.
    step_vec_faulty(sim, st, {true}, open);
    EXPECT_EQ(sim.outputs(st)[0], SV::One);
}

TEST(GateFloatFault, DefaultLeakageModelReadsGateLow) {
    // Both inverter gates floating: with the default leakage-low model the
    // PMOS conducts and the NMOS does not, so y sticks at 1 - detectable
    // whenever the good output is 0.
    Circuit c("inv");
    const auto a = c.add_input("a");
    const auto y = c.add_gate(netlist::GateType::Not, "y", {a});
    c.mark_output(y);
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);
    SwitchFault fl;
    fl.kind = SwitchFault::Kind::GateFloat;
    fl.transistors = {0, 1};
    auto st = sim.initial_state();
    step_vec_faulty(sim, st, {true}, fl);
    EXPECT_EQ(sim.outputs(st)[0], SV::One);  // good would be 0
}

TEST(GateFloatFault, UnknownModelProducesXNotDetection) {
    Circuit c("inv");
    const auto a = c.add_input("a");
    const auto y = c.add_gate(netlist::GateType::Not, "y", {a});
    c.mark_output(y);
    const SwitchNetlist net = build_switch_netlist(c);
    SimParams params;
    params.float_gate = FloatGateModel::Unknown;
    const SwitchSim sim(net, params);
    SwitchFault fl;
    fl.kind = SwitchFault::Kind::GateFloat;
    fl.transistors = {0, 1};
    auto st = sim.initial_state();
    step_vec_faulty(sim, st, {true}, fl);
    EXPECT_EQ(sim.outputs(st)[0], SV::X);
}

TEST(ThreeNodeBridge, TiesAllThreeNets) {
    // Three inverters; bridge all outputs.  With inputs 0,1,1 the single
    // pull-up (PMOS g=1) fights two pull-downs (NMOS g=3 each): the shorted
    // cluster reads 0 and the first inverter's output flips.
    Circuit c("three_inv");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto d = c.add_input("d");
    const auto y1 = c.add_gate(netlist::GateType::Not, "y1", {a});
    const auto y2 = c.add_gate(netlist::GateType::Not, "y2", {b});
    const auto y3 = c.add_gate(netlist::GateType::Not, "y3", {d});
    c.mark_output(y1);
    c.mark_output(y2);
    c.mark_output(y3);
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);
    SwitchFault bridge;
    bridge.kind = SwitchFault::Kind::Bridge;
    bridge.a = net.node_of_net(y1);
    bridge.b = net.node_of_net(y2);
    bridge.c = net.node_of_net(y3);

    auto st = sim.initial_state();
    step_vec_faulty(sim, st, {false, true, true}, bridge);
    const auto out = sim.outputs(st);
    EXPECT_EQ(out[0], SV::Zero) << "two pull-downs overpower one pull-up";
    EXPECT_EQ(out[1], SV::Zero);
    EXPECT_EQ(out[2], SV::Zero);

    // All agreeing: harmless.
    step_vec_faulty(sim, st, {true, true, true}, bridge);
    for (const SV v : sim.outputs(st)) EXPECT_EQ(v, SV::Zero);
}

TEST(ThreeNodeBridge, IncrementalMatchesBruteForce) {
    const Circuit c = netlist::techmap(netlist::build_ripple_adder(3));
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);
    std::vector<WeightedFault> faults;
    for (netlist::NetId n = 0; n + 2 < c.gate_count(); n += 4) {
        WeightedFault f;
        f.fault.kind = SwitchFault::Kind::Bridge;
        f.fault.a = net.node_of_net(n);
        f.fault.b = net.node_of_net(n + 1);
        f.fault.c = net.node_of_net(n + 2);
        f.name = "bridge3_" + std::to_string(n);
        faults.push_back(f);
    }
    gatesim::RandomPatternGenerator rng(23);
    const auto vectors = rng.vectors(c, 40);
    SwitchFaultSimulator inc(sim, faults);
    std::vector<Vector> vv;
    for (const auto& v : vectors) vv.push_back(unpack(v));
    inc.apply(vv);

    for (size_t fi = 0; fi < faults.size(); ++fi) {
        auto good = sim.initial_state();
        auto faulty = sim.initial_state();
        int first = -1;
        for (size_t k = 0; k < vectors.size() && first < 0; ++k) {
            step_vec(sim, good, vectors[k]);
            step_vec_faulty(sim, faulty, vectors[k], faults[fi].fault);
            const auto go = sim.outputs(good);
            const auto fo = sim.outputs(faulty);
            for (size_t o = 0; o < go.size(); ++o)
                if (go[o] != SV::X && fo[o] != SV::X && go[o] != fo[o]) {
                    first = static_cast<int>(k) + 1;
                    break;
                }
        }
        EXPECT_EQ(inc.first_detected_at()[fi], first) << faults[fi].name;
    }
}

TEST(Iddq, FlagsConductingBridgesOnly) {
    // Two inverters, outputs bridged.  IDDQ flags the fault on the first
    // vector that drives the outputs apart, even though no PO needs to
    // flip; an open never raises IDDQ.
    Circuit c("two_inv");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto y1 = c.add_gate(netlist::GateType::Not, "y1", {a});
    const auto y2 = c.add_gate(netlist::GateType::Not, "y2", {b});
    c.mark_output(y1);
    c.mark_output(y2);
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);

    WeightedFault bridge;
    bridge.fault.kind = SwitchFault::Kind::Bridge;
    bridge.fault.a = net.node_of_net(y1);
    bridge.fault.b = net.node_of_net(y2);
    WeightedFault open;
    open.fault.kind = SwitchFault::Kind::TransistorOpen;
    open.fault.transistors = {0};

    SwitchFaultSimulator fs(sim, {bridge, open});
    // Vector 1: equal inputs (no current); vector 2: opposite.
    std::vector<Vector> vv{{false, false}, {false, true}};
    fs.apply(vv);
    EXPECT_EQ(fs.iddq_detected_at()[0], 2);
    EXPECT_EQ(fs.iddq_detected_at()[1], -1) << "opens draw no current";
}

TEST(SwitchNetlist, NodeNumberingAndNames) {
    const Circuit c = netlist::techmap(netlist::build_c17());
    const SwitchNetlist net = build_switch_netlist(c);
    EXPECT_EQ(net.node_of_net(0), 2);
    EXPECT_EQ(net.input_nodes.size(), 5u);
    EXPECT_EQ(net.output_nodes.size(), 2u);
    EXPECT_EQ(net.node_name(SwitchNetlist::kGnd), "GND");
    EXPECT_EQ(net.node_name(SwitchNetlist::kVdd), "VDD");
    // c17 is six NAND2s: 24 transistors.
    EXPECT_EQ(net.transistors.size(), 24u);
    // NetRef resolution round-trips.
    EXPECT_EQ(net.node_of(cell::NetRef::power(false)), SwitchNetlist::kGnd);
    EXPECT_EQ(net.node_of(cell::NetRef::circuit(3)), 5);
}

TEST(FaultSimulator, IncrementalMatchesFullResimulation) {
    // The divergence-tracking fault simulator must agree with brute-force
    // step_faulty over the whole sequence, fault by fault.
    const Circuit c = netlist::techmap(netlist::build_ripple_adder(3));
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);

    // A mixed fault list: bridges between adjacent circuit nets, a few
    // transistor opens, a few gate floats.
    std::vector<WeightedFault> faults;
    for (netlist::NetId n = 0; n + 1 < c.gate_count(); n += 5) {
        WeightedFault f;
        f.fault.kind = SwitchFault::Kind::Bridge;
        f.fault.a = net.node_of_net(n);
        f.fault.b = net.node_of_net(n + 1);
        f.name = "bridge" + std::to_string(n);
        faults.push_back(f);
    }
    for (int t = 0; t < static_cast<int>(net.transistors.size()); t += 7) {
        WeightedFault f;
        f.fault.kind = SwitchFault::Kind::TransistorOpen;
        f.fault.transistors = {t};
        f.name = "open" + std::to_string(t);
        faults.push_back(f);
        WeightedFault g;
        g.fault.kind = SwitchFault::Kind::GateFloat;
        g.fault.transistors = {t};
        g.name = "float" + std::to_string(t);
        faults.push_back(g);
    }

    gatesim::RandomPatternGenerator rng(13);
    const auto vectors = rng.vectors(c, 48);

    SwitchFaultSimulator inc(sim, faults);
    std::vector<Vector> vv;
    for (const auto& v : vectors) vv.push_back(unpack(v));
    inc.apply(vv);

    // Brute force reference.
    for (size_t fi = 0; fi < faults.size(); ++fi) {
        auto good = sim.initial_state();
        auto faulty = sim.initial_state();
        int first = -1;
        for (size_t k = 0; k < vectors.size(); ++k) {
            step_vec(sim, good, vectors[k]);
            step_vec_faulty(sim, faulty, vectors[k], faults[fi].fault);
            const auto go = sim.outputs(good);
            const auto fo = sim.outputs(faulty);
            for (size_t o = 0; o < go.size(); ++o)
                if (go[o] != SV::X && fo[o] != SV::X && go[o] != fo[o]) {
                    first = static_cast<int>(k) + 1;
                    break;
                }
            if (first >= 0) break;
        }
        EXPECT_EQ(inc.first_detected_at()[fi], first)
            << faults[fi].name << ": incremental vs brute force";
    }
}

TEST(ParallelDeterminism, ThreadCountInvariant) {
    // The parallel fan-out must be bit-identical to the serial path: same
    // detection indices, same IDDQ indices, same coverage curves, for any
    // worker count (including more workers than a core count or fault
    // chunk count would suggest).
    const Circuit c = netlist::techmap(netlist::build_ripple_adder(3));
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);

    std::vector<WeightedFault> faults;
    double w = 1.0;
    for (netlist::NetId n = 0; n + 1 < c.gate_count(); n += 5) {
        WeightedFault f;
        f.fault.kind = SwitchFault::Kind::Bridge;
        f.fault.a = net.node_of_net(n);
        f.fault.b = net.node_of_net(n + 1);
        f.weight = (w *= 1.07);
        f.name = "bridge" + std::to_string(n);
        faults.push_back(f);
    }
    for (int t = 0; t < static_cast<int>(net.transistors.size()); t += 7) {
        WeightedFault f;
        f.fault.kind = SwitchFault::Kind::TransistorOpen;
        f.fault.transistors = {t};
        f.weight = (w *= 1.03);
        f.name = "open" + std::to_string(t);
        faults.push_back(f);
        WeightedFault g;
        g.fault.kind = SwitchFault::Kind::GateFloat;
        g.fault.transistors = {t};
        g.weight = (w *= 1.05);
        g.name = "float" + std::to_string(t);
        faults.push_back(g);
    }

    gatesim::RandomPatternGenerator rng(13);
    std::vector<Vector> vv;
    for (const auto& v : rng.vectors(c, 48)) vv.push_back(unpack(v));

    SwitchFaultSimulator serial(sim, faults, parallel::ParallelOptions{1});
    serial.apply(vv);
    const std::vector<int> serial_det(serial.first_detected_at().begin(),
                                      serial.first_detected_at().end());
    const std::vector<int> serial_iddq(serial.iddq_detected_at().begin(),
                                       serial.iddq_detected_at().end());

    for (int threads : {2, 4, 8}) {
        SCOPED_TRACE(threads);
        SwitchFaultSimulator par(sim, faults,
                                 parallel::ParallelOptions{threads});
        // Split the sequence to also exercise multi-call state carry-over.
        par.apply(std::span<const Vector>(vv).first(17));
        par.apply(std::span<const Vector>(vv).subspan(17));
        EXPECT_EQ(std::vector<int>(par.first_detected_at().begin(),
                                   par.first_detected_at().end()),
                  serial_det);
        EXPECT_EQ(std::vector<int>(par.iddq_detected_at().begin(),
                                   par.iddq_detected_at().end()),
                  serial_iddq);
        EXPECT_EQ(par.weighted_coverage_curve(),
                  serial.weighted_coverage_curve());
        EXPECT_EQ(par.unweighted_coverage_curve(),
                  serial.unweighted_coverage_curve());
        EXPECT_EQ(par.weighted_coverage_curve_with_iddq(),
                  serial.weighted_coverage_curve_with_iddq());
    }
}

TEST(FaultSimulator, ProgressReportsBatches) {
    const Circuit c = netlist::techmap(netlist::build_c17());
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);
    WeightedFault f;
    f.fault.kind = SwitchFault::Kind::Gross;
    SwitchFaultSimulator fs(sim, {f}, parallel::ParallelOptions{2});
    std::size_t calls = 0;
    std::size_t last_done = 0;
    fs.set_progress([&](std::string_view stage, std::size_t done,
                        std::size_t total) {
        EXPECT_EQ(stage, "switch-sim");
        EXPECT_LE(done, total);
        last_done = done;
        ++calls;
    });
    const std::vector<Vector> vv(100, Vector(5, false));
    fs.apply(vv);
    EXPECT_GE(calls, 2u) << "100 vectors span at least two 64-wide batches";
    EXPECT_EQ(last_done, vv.size());
}

TEST(FaultSimulator, GrossFailsFirstVector) {
    const Circuit c = netlist::techmap(netlist::build_c17());
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);
    WeightedFault f;
    f.fault.kind = SwitchFault::Kind::Gross;
    SwitchFaultSimulator fs(sim, {f});
    fs.apply(std::vector<Vector>{Vector(5, false)});
    EXPECT_EQ(fs.first_detected_at()[0], 1);
}

TEST(FaultSimulator, PoFloatNeverDetected) {
    const Circuit c = netlist::techmap(netlist::build_c17());
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);
    WeightedFault f;
    f.fault.kind = SwitchFault::Kind::None;
    f.fault.po_float = 0;
    SwitchFaultSimulator fs(sim, {f});
    gatesim::RandomPatternGenerator rng(2);
    std::vector<Vector> vv;
    for (const auto& v : rng.vectors(c, 32)) vv.push_back(unpack(v));
    fs.apply(vv);
    EXPECT_EQ(fs.first_detected_at()[0], -1);
}

TEST(FaultSimulator, CoverageCurvesMonotoneAndConsistent) {
    const Circuit c = netlist::techmap(netlist::build_c17());
    const SwitchNetlist net = build_switch_netlist(c);
    const SwitchSim sim(net);
    std::vector<WeightedFault> faults;
    for (netlist::NetId n = 0; n + 1 < c.gate_count(); ++n) {
        WeightedFault f;
        f.fault.kind = SwitchFault::Kind::Bridge;
        f.fault.a = net.node_of_net(n);
        f.fault.b = net.node_of_net(n + 1);
        f.weight = 0.5 + n;
        faults.push_back(f);
    }
    SwitchFaultSimulator fs(sim, faults);
    gatesim::RandomPatternGenerator rng(5);
    std::vector<Vector> vv;
    for (const auto& v : rng.vectors(c, 64)) vv.push_back(unpack(v));
    fs.apply(vv);
    const auto theta = fs.weighted_coverage_curve();
    const auto gamma = fs.unweighted_coverage_curve();
    ASSERT_EQ(theta.size(), 64u);
    for (size_t i = 1; i < theta.size(); ++i) {
        EXPECT_GE(theta[i], theta[i - 1]);
        EXPECT_GE(gamma[i], gamma[i - 1]);
    }
    EXPECT_NEAR(theta.back(), fs.weighted_coverage(), 1e-12);
    EXPECT_NEAR(gamma.back(), fs.unweighted_coverage(), 1e-12);
    EXPECT_GT(fs.weighted_coverage(), 0.5) << "most bridges detectable";
}

}  // namespace
}  // namespace dlp::switchsim
