// The static untestability-analysis suite (CTest label `analysis`).
//
// Three families of guarantees:
//   * Proof soundness — every proof the pass emits survives the
//     independent checker (check_proof shares no deduction code with the
//     implication engine), and corrupted proofs are rejected.
//   * Differential — every fault the pass proves untestable is confirmed
//     by dynamic methods that share nothing with it: PODEM never detects
//     it (and, where search completes, independently proves it
//     Redundant), and no registered fault-sim engine detects it over
//     thousands of random vectors.  On tiny circuits the confirmation is
//     exhaustive over the full input space.
//   * Integration — untestability marks thread through collapsing
//     (expand_untestable_marks marks whole equivalence classes), the
//     flow's analyze() stage corrects the coverage/DL curves (corrected
//     vs raw), and a budget stop yields an exact prefix of the unbounded
//     run's proof list.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <span>
#include <thread>
#include <vector>

#include "analysis/implication.h"
#include "analysis/proof.h"
#include "analysis/untestable.h"
#include "atpg/generate.h"
#include "flow/experiment.h"
#include "gatesim/engine.h"
#include "gatesim/faults.h"
#include "gatesim/patterns.h"
#include "netlist/bench_parser.h"
#include "netlist/builders.h"

namespace dlp {
namespace {

using analysis::AnalysisOptions;
using analysis::AnalysisResult;
using analysis::find_untestable;
using gatesim::StuckAtFault;
using gatesim::Vector;

// y = a OR (a AND b): the AND gate is absorbed (y == a), so its output
// and the b input are redundant logic with untestable faults.
constexpr const char* kAbsorption = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = AND(a, b)
y = OR(a, n1)
)";

std::vector<StuckAtFault> collapsed_universe(const netlist::Circuit& c) {
    return gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
}

std::vector<StuckAtFault> copy_faults(std::span<const StuckAtFault> faults) {
    return {faults.begin(), faults.end()};
}

/// The proven-untestable subset of `faults` under `result`'s marks.
std::vector<StuckAtFault> proven_faults(
    std::span<const StuckAtFault> faults, const AnalysisResult& result) {
    std::vector<StuckAtFault> out;
    for (std::size_t i = 0; i < faults.size(); ++i)
        if (result.untestable[i]) out.push_back(faults[i]);
    return out;
}

/// Asserts every proof in `result` is accepted by the independent checker.
void expect_proofs_check(const netlist::Circuit& c,
                         const AnalysisResult& result) {
    for (const auto& proof : result.proofs) {
        std::string why;
        EXPECT_TRUE(analysis::check_proof(c, proof, &why))
            << analysis::proof_summary(c, proof) << ": " << why;
    }
}

/// Asserts no engine detects any of `faults` over `vectors`.
void expect_undetected_by_engines(
    const netlist::Circuit& c, std::span<const StuckAtFault> faults,
    std::span<const Vector> vectors,
    std::span<const std::string_view> engines) {
    if (faults.empty()) return;
    for (const auto name : engines) {
        const auto s = sim::engine(name).open(c, copy_faults(faults));
        s->apply(vectors);
        const auto first = s->first_detected_at();
        for (std::size_t i = 0; i < faults.size(); ++i)
            EXPECT_EQ(first[i], -1)
                << name << " detected statically-proven-untestable "
                << gatesim::fault_name(c, faults[i]);
    }
}

// ---- proof soundness -------------------------------------------------------

TEST(AnalysisProofs, AbsorptionFaultsAreProvenAndProofsCheck) {
    const auto c = netlist::parse_bench(kAbsorption, "absorption.bench");
    const auto faults = collapsed_universe(c);
    const AnalysisResult r = find_untestable(c, faults);
    EXPECT_GT(r.stats.proofs, 0u);
    EXPECT_EQ(r.stats.proofs, r.proofs.size());
    EXPECT_EQ(r.untestable.size(), faults.size());
    EXPECT_EQ(r.stop, support::StopReason::None);
    expect_proofs_check(c, r);

    // The marks and the proof list agree fault for fault.
    std::size_t marked = 0;
    for (const auto m : r.untestable) marked += m;
    EXPECT_EQ(marked, r.proofs.size());
}

TEST(AnalysisProofs, CheckerRejectsCorruptedProofs) {
    const auto c = netlist::parse_bench(kAbsorption, "absorption.bench");
    const auto faults = collapsed_universe(c);
    const AnalysisResult r = find_untestable(c, faults);
    ASSERT_FALSE(r.proofs.empty());
    const analysis::UntestableProof& good = r.proofs.front();
    ASSERT_TRUE(analysis::check_proof(c, good));

    // A proof for a different (testable) fault must not certify.  Every
    // fault of this circuit that is NOT marked untestable is detectable,
    // so transplanting the proof onto one must fail.
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (r.untestable[i]) continue;
        analysis::UntestableProof forged = good;
        forged.fault = faults[i];
        EXPECT_FALSE(analysis::check_proof(c, forged))
            << "forged proof accepted for testable "
            << gatesim::fault_name(c, faults[i]);
    }

    // Corrupting a derived literal in a chain must be caught: the flipped
    // step is no longer forced by its gate.
    analysis::UntestableProof twisted = good;
    auto chain = *twisted.b0.chain;  // deep copy of the shared derivation
    bool flipped = false;
    for (auto& step : chain) {
        if (step.kind == analysis::StepKind::Implied) {
            step.lit.value = !step.lit.value;
            flipped = true;
            break;
        }
    }
    if (flipped) {
        twisted.b0.chain = std::make_shared<const std::vector<
            analysis::ProofStep>>(std::move(chain));
        EXPECT_FALSE(analysis::check_proof(c, twisted));
    }
}

// ---- differential: static verdicts vs dynamic methods ----------------------

TEST(AnalysisDifferential, C432ProofsConfirmedByPodemAndAllEngines) {
    const auto c = netlist::build_c432();
    const auto faults = collapsed_universe(c);
    const AnalysisResult r = find_untestable(c, faults);
    EXPECT_GT(r.stats.proofs, 0u);
    expect_proofs_check(c, r);
    const auto proven = proven_faults(faults, r);

    // PODEM with an ample backtrack budget must prove each Redundant.
    atpg::TestGenOptions opt;
    opt.max_random = 0;
    opt.backtrack_limit = 1 << 20;
    const auto gen = atpg::generate_test_set(c, proven, opt);
    for (std::size_t i = 0; i < proven.size(); ++i)
        EXPECT_EQ(gen.status[i], atpg::FaultStatus::Redundant)
            << gatesim::fault_name(c, proven[i]);

    // And no registered engine detects one over 10k random vectors.
    gatesim::RandomPatternGenerator rng(11);
    const auto vectors = rng.vectors(c, 10000);
    expect_undetected_by_engines(c, proven, vectors, sim::engine_names());
}

TEST(AnalysisDifferential, Synth2kProofsConfirmedByAtpgAndEngines) {
    const auto c = netlist::load_bench_file(std::string(DLPROJ_DATA_DIR) +
                                            "/synth_2k.bench");
    const auto faults = collapsed_universe(c);
    const AnalysisResult r = find_untestable(c, faults);
    EXPECT_GT(r.stats.proofs, 100u);  // the fixture is redundancy-rich
    expect_proofs_check(c, r);
    const auto proven = proven_faults(faults, r);

    // A full unmarked ATPG run (random phase + PODEM per miss) must never
    // detect a statically proven fault.  Search is bounded, so a proof
    // may end Aborted — but Detected would be a soundness bug.
    atpg::TestGenOptions opt;
    opt.max_random = 512;
    opt.backtrack_limit = 128;
    const auto gen = atpg::generate_test_set(c, copy_faults(faults), opt);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (!r.untestable[i]) continue;
        EXPECT_NE(gen.status[i], atpg::FaultStatus::Detected)
            << gatesim::fault_name(c, faults[i]);
        EXPECT_EQ(gen.first_detected_at[i], -1)
            << gatesim::fault_name(c, faults[i]);
    }

    // Bit-parallel engines take the whole proven set over 10k vectors;
    // the vector-serial naive oracle takes a deterministic sample.
    gatesim::RandomPatternGenerator rng(17);
    const auto vectors = rng.vectors(c, 10000);
    const std::string_view fast[] = {"serial", "ppsfp", "levelized"};
    expect_undetected_by_engines(c, proven, vectors, fast);
    std::vector<StuckAtFault> sample;
    for (std::size_t i = 0; i < proven.size(); i += 37)
        sample.push_back(proven[i]);
    const std::string_view naive[] = {"naive"};
    const auto few = rng.vectors(c, 512);
    expect_undetected_by_engines(c, sample, few, naive);
}

TEST(AnalysisSoundness, RandomCircuitSweepVsExhaustiveSimulation) {
    // 50 seeded random circuits; every proof must check, and — the inputs
    // being few — exhaustive simulation over the full input space must
    // confirm no proven fault is ever detected.
    std::size_t proofs_seen = 0;
    for (std::uint64_t trial = 0; trial < 50; ++trial) {
        const auto c = netlist::build_random_circuit(
            4 + static_cast<int>(trial % 5),
            12 + static_cast<int>((trial * 7) % 30), 9000 + trial);
        const auto faults = collapsed_universe(c);
        const AnalysisResult r = find_untestable(c, faults);
        expect_proofs_check(c, r);
        const auto proven = proven_faults(faults, r);
        proofs_seen += proven.size();
        if (proven.empty()) continue;

        const std::size_t inputs = c.inputs().size();
        ASSERT_LE(inputs, 16u);
        std::vector<Vector> all;
        all.reserve(std::size_t{1} << inputs);
        for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << inputs);
             ++bits) {
            Vector v(inputs);
            for (std::size_t i = 0; i < inputs; ++i)
                v[i] = (bits >> i) & 1;
            all.push_back(std::move(v));
        }
        const std::string_view oracle[] = {"naive"};
        expect_undetected_by_engines(c, proven, all, oracle);
    }
    // The sweep is only meaningful if redundancy actually occurs.
    EXPECT_GT(proofs_seen, 0u);
}

// ---- collapsing × marks ----------------------------------------------------

TEST(AnalysisMarks, ExpandMarksCoverWholeEquivalenceClasses) {
    const auto c = netlist::build_c432();
    const auto universe = gatesim::full_fault_universe(c);
    const auto collapsed = gatesim::collapse_faults(c, universe);
    const AnalysisResult r = find_untestable(c, collapsed);
    ASSERT_GT(r.stats.proofs, 0u);

    const auto expanded = gatesim::expand_untestable_marks(
        c, universe, collapsed, r.untestable);
    ASSERT_EQ(expanded.size(), universe.size());

    // Independently partition the universe and check: a class is marked
    // iff its collapsed representative is marked, with no partial classes.
    const auto cls = gatesim::equivalence_classes(c, universe);
    std::map<std::size_t, int> class_mark;  // -1 unseen sentinel via find
    for (std::size_t i = 0; i < universe.size(); ++i) {
        const auto it = class_mark.find(cls[i]);
        if (it == class_mark.end())
            class_mark[cls[i]] = expanded[i];
        else
            EXPECT_EQ(it->second, static_cast<int>(expanded[i]))
                << "partially marked equivalence class at "
                << gatesim::fault_name(c, universe[i]);
    }
    std::size_t marked_classes = 0;
    for (const auto& [id, m] : class_mark) marked_classes += m != 0;
    std::size_t marked_collapsed = 0;
    for (const auto m : r.untestable) marked_collapsed += m;
    EXPECT_EQ(marked_classes, marked_collapsed);
}

TEST(AnalysisMarks, EnginesAndAtpgRejectMismatchedMaskSizes) {
    const auto c = netlist::build_c17();
    const auto faults = collapsed_universe(c);
    for (const auto name : sim::engine_names()) {
        sim::SessionOptions opt;
        opt.untestable.assign(faults.size() + 1, 0);
        EXPECT_THROW(sim::engine(name).open(c, copy_faults(faults), {}, opt),
                     std::invalid_argument)
            << name;
    }
    atpg::TestGenOptions opt;
    opt.untestable.assign(faults.size() + 1, 0);
    EXPECT_THROW(atpg::generate_test_set(c, copy_faults(faults), opt),
                 std::invalid_argument);
}

TEST(AnalysisMarks, MarkedFaultsAreSkippedNotPreCounted) {
    // Marks must only *skip* work, never preset detection state: counts
    // for marked faults stay zero and unmarked faults are bit-identical
    // to an unmarked run.
    const auto c = netlist::build_c17();
    const auto faults = collapsed_universe(c);
    gatesim::RandomPatternGenerator rng(3);
    const auto vectors = rng.vectors(c, 64);
    std::vector<std::uint8_t> marks(faults.size(), 0);
    marks[1] = 1;
    marks[4] = 1;
    for (const auto name : sim::engine_names()) {
        const auto plain = sim::engine(name).open(c, copy_faults(faults));
        plain->apply(vectors);
        sim::SessionOptions opt;
        opt.untestable = marks;
        const auto masked =
            sim::engine(name).open(c, copy_faults(faults), {}, opt);
        masked->apply(vectors);
        const auto pf = plain->first_detected_at();
        const auto mf = masked->first_detected_at();
        for (std::size_t i = 0; i < faults.size(); ++i) {
            if (marks[i])
                EXPECT_EQ(mf[i], -1) << name << " fault " << i;
            else
                EXPECT_EQ(mf[i], pf[i]) << name << " fault " << i;
        }
    }
}

// ---- budget stops ----------------------------------------------------------

TEST(AnalysisCancellation, StoppedRunYieldsExactProofPrefix) {
    const auto c = netlist::load_bench_file(std::string(DLPROJ_DATA_DIR) +
                                            "/synth_2k.bench");
    const auto faults = collapsed_universe(c);
    const AnalysisResult full = find_untestable(c, faults);
    ASSERT_EQ(full.stop, support::StopReason::None);
    ASSERT_GT(full.proofs.size(), 0u);

    // A pre-cancelled budget stops at the first pivot boundary.
    {
        AnalysisOptions opt;
        opt.budget.cancel.request();
        const AnalysisResult r = find_untestable(c, faults, opt);
        EXPECT_EQ(r.stop, support::StopReason::Cancelled);
        EXPECT_EQ(r.stats.pivots_done, 0u);
        EXPECT_TRUE(r.proofs.empty());
    }

    // A mid-run cancellation (requested from another thread) stops at an
    // arbitrary pivot boundary; the proof list must still be an exact
    // prefix of the unbounded run's.
    AnalysisOptions opt;
    support::CancelToken cancel = opt.budget.cancel;
    std::thread trigger([cancel]() mutable {
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        cancel.request();
    });
    const AnalysisResult r = find_untestable(c, faults, opt);
    trigger.join();
    if (r.stop == support::StopReason::None) {
        GTEST_SKIP() << "run finished before the cancel landed";
    }
    EXPECT_LE(r.stats.pivots_done, r.stats.pivots_total);
    ASSERT_LE(r.proofs.size(), full.proofs.size());
    for (std::size_t i = 0; i < r.proofs.size(); ++i) {
        EXPECT_EQ(r.proofs[i].fault, full.proofs[i].fault) << "proof " << i;
        EXPECT_EQ(r.proofs[i].pivot, full.proofs[i].pivot) << "proof " << i;
    }
    // The marks match the prefix exactly, fault for fault.
    std::size_t marked = 0;
    for (const auto m : r.untestable) marked += m;
    EXPECT_EQ(marked, r.proofs.size());
}

// ---- flow integration ------------------------------------------------------

TEST(AnalysisFlow, CorrectedCoverageDivergesFromRawOnRedundantLogic) {
    const auto c = netlist::parse_bench(kAbsorption, "absorption.bench");
    flow::ExperimentOptions opt;
    opt.analysis = true;
    opt.atpg.seed = 5;
    flow::ExperimentRunner runner(c, opt);
    const flow::ExperimentResult& r = runner.run();

    EXPECT_GT(r.untestable_faults, 0u);
    EXPECT_GT(r.analysis_stats.pivots_done, 0u);
    ASSERT_FALSE(r.t_curve.empty());
    ASSERT_EQ(r.t_curve_raw.size(), r.t_curve.size());
    // Redundant faults are excluded from the corrected denominator only,
    // so raw coverage is strictly below corrected coverage at the end.
    EXPECT_LT(r.t_curve_raw.final(), r.t_curve.final());
    EXPECT_EQ(r.t_curve.final(), 1.0);
    EXPECT_FALSE(r.dl_vs_t_raw.empty());
    // The raw fit sees a coverage plateau below 1, so its fitted curve
    // differs from the corrected fit.
    EXPECT_NE(r.fit_raw.theta_max, r.fit.theta_max);
}

TEST(AnalysisFlow, AnalysisOffLeavesResultWithoutRawCurves) {
    const auto c = netlist::parse_bench(kAbsorption, "absorption.bench");
    flow::ExperimentOptions opt;
    opt.atpg.seed = 5;
    flow::ExperimentRunner runner(c, opt);
    const flow::ExperimentResult& r = runner.run();
    EXPECT_EQ(r.untestable_faults, 0u);
    EXPECT_TRUE(r.t_curve_raw.empty());
    EXPECT_TRUE(r.dl_vs_t_raw.empty());
}

TEST(AnalysisFlow, PreCancelledBudgetReportsAnalysisInterruption) {
    const auto c = netlist::build_c17();
    flow::ExperimentOptions opt;
    opt.analysis = true;
    opt.budget.cancel.request();
    flow::ExperimentRunner runner(c, opt);
    const flow::ExperimentResult& r = runner.run();
    ASSERT_TRUE(r.interruption.has_value());
    EXPECT_EQ(r.interruption->stage, "analysis");
    EXPECT_EQ(r.interruption->reason, support::StopReason::Cancelled);
}

TEST(AnalysisFlow, EnvKillSwitchDisablesTheStage) {
    ::setenv("DLPROJ_ANALYSIS", "off", 1);
    const auto c = netlist::parse_bench(kAbsorption, "absorption.bench");
    flow::ExperimentOptions opt;
    opt.analysis = true;
    flow::ExperimentRunner runner(c, opt);
    const flow::ExperimentResult& r = runner.run();
    ::unsetenv("DLPROJ_ANALYSIS");
    EXPECT_EQ(r.untestable_faults, 0u);
    EXPECT_TRUE(r.t_curve_raw.empty());
}

}  // namespace
}  // namespace dlp
