// Fault-injection robustness harness.
//
// Three attack surfaces, all deterministic in their seeds:
//   * corpus mutation against the text parsers: a seeded mutator corrupts
//     known-good .bench / .rules texts; the parsers must either succeed or
//     throw a line-numbered diagnostic — never crash (the CI runs this
//     suite under ASan+UBSan).
//   * injected worker failures against the shared thread pool: a body
//     exception at a seeded random chunk must propagate exactly once and
//     leave the pool fully reusable.
//   * randomized cancellation / budget points against the budget-aware
//     pipeline: whatever a bounded run commits must be a bit-identical
//     prefix of the unbounded run (the RunBudget contract in
//     support/cancel.h).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "atpg/generate.h"
#include "extract/rules_parser.h"
#include "flow/experiment.h"
#include "flow/report.h"
#include "gatesim/fault_sim.h"
#include "gatesim/patterns.h"
#include "netlist/bench_parser.h"
#include "netlist/builders.h"
#include "parallel/parallel_for.h"
#include "support/cancel.h"
#include "support/env.h"

namespace dlp {
namespace {

// ---------------------------------------------------------------------------
// Seeded corpus mutator.

std::string mutate(const std::string& base, std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::string s = base;
    const int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
        if (s.empty()) break;
        switch (rng() % 6) {
            case 0:  // flip a byte
                s[rng() % s.size()] = static_cast<char>(rng() % 256);
                break;
            case 1:  // delete a short run
                s.erase(rng() % s.size(), 1 + rng() % 8);
                break;
            case 2:  // insert a byte
                s.insert(rng() % s.size(), 1, static_cast<char>(rng() % 256));
                break;
            case 3: {  // duplicate the line around a random position
                const size_t pos = rng() % s.size();
                size_t b = s.rfind('\n', pos);
                b = b == std::string::npos ? 0 : b + 1;
                size_t e2 = s.find('\n', pos);
                e2 = e2 == std::string::npos ? s.size() : e2 + 1;
                s.insert(e2, s.substr(b, e2 - b));
                break;
            }
            case 4:  // truncate
                s.resize(rng() % s.size());
                break;
            default: {  // swap two bytes
                const size_t a = rng() % s.size();
                const size_t b = rng() % s.size();
                std::swap(s[a], s[b]);
                break;
            }
        }
    }
    return s;
}

/// True when `msg` starts with "<tag>:<digits>:", the parsers' diagnostic
/// contract.
bool line_tagged(const std::string& msg, const std::string& tag) {
    const std::string prefix = tag + ":";
    if (msg.rfind(prefix, 0) != 0) return false;
    size_t j = prefix.size();
    const size_t digits_start = j;
    while (j < msg.size() && std::isdigit(static_cast<unsigned char>(msg[j])))
        ++j;
    return j > digits_start && j < msg.size() && msg[j] == ':';
}

TEST(ParserFuzz, BenchMutationsParseOrDiagnoseWithLineNumbers) {
    const std::string base = netlist::to_bench(netlist::build_c17());
    int parsed = 0;
    int rejected = 0;
    for (std::uint32_t seed = 0; seed < 300; ++seed) {
        const std::string text = mutate(base, seed);
        try {
            netlist::parse_bench(text, "fuzz");
            ++parsed;
        } catch (const std::runtime_error& e) {
            // Any other exception type escapes the catch and fails the
            // test; crashes / UB are caught by the sanitizer CI job.
            EXPECT_TRUE(line_tagged(e.what(), "bench"))
                << "seed " << seed << ": " << e.what();
            ++rejected;
        }
    }
    EXPECT_EQ(parsed + rejected, 300);
    EXPECT_GT(rejected, 0) << "the mutator never produced an invalid bench";
}

TEST(ParserFuzz, RulesMutationsParseOrDiagnoseWithLineNumbers) {
    const std::string base =
        extract::to_rules(extract::DefectStatistics::cmos_bridging_dominant());
    int parsed = 0;
    int rejected = 0;
    for (std::uint32_t seed = 1000; seed < 1300; ++seed) {
        const std::string text = mutate(base, seed);
        try {
            extract::parse_defect_rules(text);
            ++parsed;
        } catch (const std::runtime_error& e) {
            EXPECT_TRUE(line_tagged(e.what(), "rules"))
                << "seed " << seed << ": " << e.what();
            ++rejected;
        }
    }
    EXPECT_EQ(parsed + rejected, 300);
    EXPECT_GT(rejected, 0) << "the mutator never produced invalid rules";
}

TEST(ParserDiagnostics, BenchStructuralErrorsCarryTheOffendingLine) {
    using netlist::parse_bench;
    const auto message_of = [](const std::string& text) -> std::string {
        try {
            parse_bench(text, "x");
        } catch (const std::runtime_error& e) {
            return e.what();
        }
        return "";
    };
    EXPECT_TRUE(line_tagged(
        message_of("INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)"), "bench"));
    EXPECT_NE(message_of("INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)")
                  .find("driven twice"),
              std::string::npos);
    EXPECT_NE(message_of("INPUT(a)\nINPUT(a)\ny = NOT(a)\nOUTPUT(y)")
                  .find("duplicate INPUT"),
              std::string::npos);
    EXPECT_NE(message_of("INPUT(a)\nu = NOT(v)\nv = NOT(u)\nOUTPUT(u)")
                  .find("combinational cycle"),
              std::string::npos);
    EXPECT_NE(message_of("INPUT(a)\ny = NOT(zz)\nOUTPUT(y)")
                  .find("undefined net"),
              std::string::npos);
    const std::string undriven =
        message_of("INPUT(a)\ny = NOT(a)\nOUTPUT(q)");
    EXPECT_TRUE(line_tagged(undriven, "bench")) << undriven;
    EXPECT_NE(undriven.find("never driven"), std::string::npos);
    // Arity errors from circuit construction are translated too.
    EXPECT_TRUE(line_tagged(
        message_of("INPUT(a)\nINPUT(b)\ny = NOT(a, b)\nOUTPUT(y)"), "bench"));
}

TEST(ParserDiagnostics, RulesRejectBadValuesAndDuplicates) {
    using extract::parse_defect_rules;
    EXPECT_THROW(parse_defect_rules("unit 0"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("unit -2"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("unit nan"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("short metal1 -1"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("pinhole nan"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("x0 2\nx0 3"), std::runtime_error);
    EXPECT_THROW(parse_defect_rules("short metal1 1\nshort metal1 2"),
                 std::runtime_error);
    // Same kind on different layers is legal.
    EXPECT_NO_THROW(parse_defect_rules("short metal1 1\nshort metal2 2"));
    try {
        parse_defect_rules("x0 2\n\nx0 3");
    } catch (const std::runtime_error& e) {
        EXPECT_TRUE(line_tagged(e.what(), "rules")) << e.what();
        EXPECT_NE(std::string(e.what()).find("rules:3:"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Injected worker failures.

TEST(PoolFaultInjection, SeededWorkerFailuresLeavePoolReusable) {
    for (std::uint32_t seed = 0; seed < 100; ++seed) {
        std::mt19937 rng(seed);
        const size_t n = 512 + rng() % 2048;
        const size_t bomb = rng() % n;
        const size_t grain = 1 + rng() % 16;
        const int threads = 2 + static_cast<int>(rng() % 6);
        bool threw = false;
        try {
            parallel::parallel_for(
                n, grain,
                [&](size_t b, size_t e, int) {
                    if (b <= bomb && bomb < e)
                        throw std::runtime_error("injected");
                },
                threads);
        } catch (const std::runtime_error&) {
            threw = true;
        }
        ASSERT_TRUE(threw) << "seed " << seed;
        // The pool must complete a full clean region right away.
        std::atomic<size_t> covered{0};
        parallel::parallel_for(
            n, 7,
            [&](size_t b, size_t e, int) {
                covered.fetch_add(e - b, std::memory_order_relaxed);
            },
            threads);
        ASSERT_EQ(covered.load(), n) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------------
// Prefix consistency of the budget-aware simulators.

TEST(PrefixConsistency, GateSimVectorBudgetYieldsExactPrefix) {
    const netlist::Circuit c = netlist::build_c17();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(7);
    const auto vectors = rng.vectors(c, 256);

    gatesim::FaultSimulator full(c, faults);
    full.apply(vectors);
    const auto full_curve = full.coverage_curve();
    ASSERT_EQ(full_curve.size(), vectors.size());

    std::mt19937 pick(123);
    for (int round = 0; round < 25; ++round) {
        const long long cut = 1 + static_cast<long long>(pick() % 256);
        support::RunBudget budget;
        budget.max_vectors = cut;
        gatesim::FaultSimulator part(c, faults);
        const auto res = part.apply(vectors, budget);
        ASSERT_EQ(res.vectors_applied, static_cast<int>(cut));
        if (cut < static_cast<long long>(vectors.size()))
            EXPECT_EQ(res.stop, support::StopReason::VectorBudget);
        else
            EXPECT_EQ(res.stop, support::StopReason::None);
        const auto curve = part.coverage_curve();
        ASSERT_EQ(curve.size(), static_cast<size_t>(cut));
        for (size_t i = 0; i < curve.size(); ++i)
            ASSERT_EQ(curve[i], full_curve[i])
                << "cut=" << cut << " i=" << i;
        // Detection table: entries within the prefix are identical, the
        // rest are still undetected — nothing beyond the cut leaked in.
        for (size_t f = 0; f < faults.size(); ++f) {
            const int at = full.first_detected_at()[f];
            if (at >= 1 && at <= cut)
                ASSERT_EQ(part.first_detected_at()[f], at);
            else
                ASSERT_EQ(part.first_detected_at()[f], -1);
        }
    }
}

TEST(PrefixConsistency, GateSimCancellationCommitsWholeBlocks) {
    const netlist::Circuit c = netlist::build_c17();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(11);
    const auto vectors = rng.vectors(c, 512);

    gatesim::FaultSimulator full(c, faults);
    full.apply(vectors);
    const auto full_curve = full.coverage_curve();

    for (std::uint32_t seed = 0; seed < 10; ++seed) {
        support::RunBudget budget;
        gatesim::FaultSimulator part(c, faults);
        std::thread canceller([&budget, seed] {
            std::this_thread::sleep_for(std::chrono::microseconds(seed * 40));
            budget.cancel.request();
        });
        const auto res = part.apply(vectors, budget);
        canceller.join();
        // Whole 64-vector blocks only; whatever committed is an exact
        // prefix of the unbounded run, wherever the cancel landed.
        EXPECT_EQ(res.vectors_applied % 64, 0) << "seed " << seed;
        const auto curve = part.coverage_curve();
        ASSERT_EQ(curve.size(), static_cast<size_t>(res.vectors_applied));
        for (size_t i = 0; i < curve.size(); ++i)
            ASSERT_EQ(curve[i], full_curve[i]) << "seed " << seed;
    }
}

TEST(PrefixConsistency, GateSimPreCancelledAndExpiredApplyNothing) {
    const netlist::Circuit c = netlist::build_c17();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(3);
    const auto vectors = rng.vectors(c, 64);

    support::RunBudget cancelled;
    cancelled.cancel.request();
    gatesim::FaultSimulator a(c, faults);
    const auto ra = a.apply(vectors, cancelled);
    EXPECT_EQ(ra.vectors_applied, 0);
    EXPECT_EQ(ra.newly_detected, 0);
    EXPECT_EQ(ra.stop, support::StopReason::Cancelled);
    EXPECT_TRUE(a.coverage_curve().empty());

    support::RunBudget expired;
    expired.deadline = support::Deadline::after_ms(0);
    gatesim::FaultSimulator b(c, faults);
    const auto rb = b.apply(vectors, expired);
    EXPECT_EQ(rb.vectors_applied, 0);
    EXPECT_EQ(rb.stop, support::StopReason::DeadlineExpired);
}

TEST(PrefixConsistency, SwitchSimVectorBudgetYieldsExactPrefix) {
    flow::ExperimentRunner runner(netlist::build_c17());
    const auto& p = runner.prepare();
    const auto& t = runner.generate_tests();
    ASSERT_GT(t.tests.vectors.size(), 1u);

    const switchsim::SwitchSim sim(p.swnet, {});
    const auto faults = flow::to_switch_faults(p.extraction, p.chip, p.swnet);
    switchsim::SwitchFaultSimulator full(sim, faults);
    full.apply(std::span<const switchsim::Vector>(t.tests.vectors));
    const auto full_theta = full.weighted_coverage_curve();
    const auto full_gamma = full.unweighted_coverage_curve();

    std::mt19937 pick(17);
    for (int round = 0; round < 8; ++round) {
        const long long cut =
            1 + static_cast<long long>(pick() % t.tests.vectors.size());
        support::RunBudget budget;
        budget.max_vectors = cut;
        switchsim::SwitchFaultSimulator part(sim, faults);
        const auto res = part.apply(
            std::span<const switchsim::Vector>(t.tests.vectors), budget);
        ASSERT_EQ(res.vectors_applied, static_cast<int>(cut));
        const auto theta = part.weighted_coverage_curve();
        const auto gamma = part.unweighted_coverage_curve();
        ASSERT_EQ(theta.size(), static_cast<size_t>(cut));
        for (size_t i = 0; i < theta.size(); ++i) {
            ASSERT_EQ(theta[i], full_theta[i]) << "cut=" << cut;
            ASSERT_EQ(gamma[i], full_gamma[i]) << "cut=" << cut;
        }
    }
}

// ---------------------------------------------------------------------------
// Budget plumbing through the whole experiment.

TEST(ExperimentBudget, VectorBudgetCurvesAreExactPrefixes) {
    const netlist::Circuit circuit = netlist::build_c17();
    flow::ExperimentOptions opt;
    opt.atpg.seed = 3;
    const flow::ExperimentResult full = flow::run_experiment(circuit, opt);
    ASSERT_FALSE(full.interruption.has_value());
    ASSERT_GT(full.vector_count, 1);

    std::mt19937 pick(99);
    for (int round = 0; round < 6; ++round) {
        flow::ExperimentOptions b = opt;
        b.budget.max_vectors =
            1 + static_cast<long long>(pick() %
                                       static_cast<unsigned>(full.vector_count));
        const flow::ExperimentResult part = flow::run_experiment(circuit, b);
        ASSERT_LE(part.vector_count, full.vector_count);
        ASSERT_LE(part.vector_count, b.budget.max_vectors);
        // The vector budget caps the test set but is not sticky: the
        // switch-level simulation still runs over the whole truncated set.
        EXPECT_EQ(part.theta_curve.size(),
                  static_cast<size_t>(part.vector_count));
        ASSERT_LE(part.t_curve.size(), full.t_curve.size());
        for (size_t i = 0; i < part.t_curve.size(); ++i)
            ASSERT_EQ(part.t_curve[i], full.t_curve[i]);  // c17: no redundancy
        for (size_t i = 0; i < part.theta_curve.size(); ++i)
            ASSERT_EQ(part.theta_curve[i], full.theta_curve[i]);
        for (size_t i = 0; i < part.gamma_curve.size(); ++i)
            ASSERT_EQ(part.gamma_curve[i], full.gamma_curve[i]);
        for (size_t i = 0; i < part.theta_iddq_curve.size(); ++i)
            ASSERT_EQ(part.theta_iddq_curve[i], full.theta_iddq_curve[i]);
        if (part.vector_count < full.vector_count) {
            ASSERT_TRUE(part.interruption.has_value());
            EXPECT_EQ(part.interruption->stage, "atpg");
            EXPECT_EQ(part.interruption->reason,
                      support::StopReason::VectorBudget);
        }
    }
}

TEST(ExperimentBudget, RandomizedCancellationYieldsExactPrefixCurves) {
    const netlist::Circuit circuit = netlist::build_c17();
    flow::ExperimentOptions opt;
    opt.atpg.seed = 3;
    flow::ExperimentRunner full_runner(circuit, opt);
    const flow::ExperimentResult& full = full_runner.run();
    ASSERT_GT(full.theta_curve.size(), 0u);

    std::mt19937 pick(7);
    for (int round = 0; round < 5; ++round) {
        flow::ExperimentOptions b = opt;
        // Copies share the cancel flag, so a fresh token must be assigned
        // explicitly — otherwise round 2 would inherit round 1's cancel.
        b.budget.cancel = support::CancelToken();
        const size_t threshold =
            1 + pick() % static_cast<unsigned>(full.theta_curve.size());
        support::CancelToken token = b.budget.cancel;
        flow::ExperimentRunner runner(circuit, b);
        runner.set_progress(
            [&token, threshold](std::string_view stage, size_t done, size_t) {
                if (stage == "switch-sim" && done >= threshold)
                    token.request();
            });
        const flow::ExperimentResult& part = runner.run();
        // The ATPG stage finished before the cancel (it only fires from
        // switch-sim progress), so the test set is the full one and every
        // committed curve entry must match bit for bit.
        ASSERT_EQ(part.t_curve.size(), full.t_curve.size());
        for (size_t i = 0; i < part.theta_curve.size(); ++i) {
            ASSERT_EQ(part.theta_curve[i], full.theta_curve[i]);
            ASSERT_EQ(part.gamma_curve[i], full.gamma_curve[i]);
        }
        if (part.theta_curve.size() < full.theta_curve.size()) {
            ASSERT_TRUE(part.interruption.has_value());
            EXPECT_EQ(part.interruption->stage, "switch-sim");
            EXPECT_EQ(part.interruption->reason,
                      support::StopReason::Cancelled);
            EXPECT_EQ(part.interruption->completed, part.theta_curve.size());
            EXPECT_EQ(part.interruption->total, full.theta_curve.size());
        }
    }
}

TEST(ExperimentBudget, ImmediateDeadlineStillReturnsAResult) {
    flow::ExperimentOptions opt;
    opt.atpg.seed = 3;
    opt.budget.deadline = support::Deadline::after_ms(0);
    const flow::ExperimentResult r =
        flow::run_experiment(netlist::build_c17(), opt);
    ASSERT_TRUE(r.interruption.has_value());
    EXPECT_EQ(r.interruption->stage, "atpg");
    EXPECT_EQ(r.interruption->reason, support::StopReason::DeadlineExpired);
    EXPECT_EQ(r.vector_count, 0);
    EXPECT_TRUE(r.t_curve.empty());
    EXPECT_TRUE(r.theta_curve.empty());
    EXPECT_TRUE(r.dl_vs_t.empty());
    // Workload facts from the (un-budgeted) prepare stage are still there.
    EXPECT_GT(r.stuck_faults, 0u);
    EXPECT_GT(r.realistic_faults, 0u);
    // Report generation must accept an interrupted (curve-length-skewed or
    // empty-curve) result without faulting.
    EXPECT_NO_THROW((void)flow::curves_csv(r));
    EXPECT_NO_THROW((void)flow::summary_text(r));
    EXPECT_NO_THROW((void)flow::weight_histogram_csv(r));
}

TEST(ExperimentBudget, ReportsHandleCurveLengthSkew) {
    // A deadline that expires mid-ATPG leaves t_curve populated but the
    // switch-level curves empty; curves_csv must emit the common prefix
    // instead of indexing past the shorter curves.
    flow::ExperimentResult r;
    r.yield = 0.75;
    r.t_curve = flow::CoverageCurve({0.1, 0.2, 0.3});
    const std::string csv = flow::curves_csv(r);
    EXPECT_EQ(csv.find("0.1"), std::string::npos);  // header only
    r.theta_curve = flow::CoverageCurve({0.05});
    r.gamma_curve = flow::CoverageCurve({0.04});
    EXPECT_NE(flow::curves_csv(r).find("0.05"), std::string::npos);
}

TEST(ExperimentBudget, AtpgBacktrackOverrideMatchesExplicitLimit) {
    const netlist::Circuit c = netlist::techmap(netlist::build_ripple_adder(4));
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));

    atpg::TestGenOptions explicit_opts;
    explicit_opts.max_random = 0;  // force every fault through PODEM
    explicit_opts.backtrack_limit = 1;
    const auto via_option = atpg::generate_test_set(c, faults, explicit_opts);

    atpg::TestGenOptions override_opts;
    override_opts.max_random = 0;
    override_opts.backtrack_limit = 4096;      // would allow a deep search...
    override_opts.budget.atpg_backtracks = 1;  // ...but the budget wins
    const auto via_budget = atpg::generate_test_set(c, faults, override_opts);

    EXPECT_EQ(via_budget.vectors, via_option.vectors);
    EXPECT_EQ(via_budget.aborted, via_option.aborted);
    EXPECT_EQ(via_budget.detected, via_option.detected);
    EXPECT_EQ(via_budget.redundant, via_option.redundant);
    EXPECT_EQ(via_budget.untargeted, 0u);
    EXPECT_EQ(via_budget.stop, support::StopReason::None);
}

TEST(ExperimentBudget, CancelledAtpgRecordsUntargetedFaults) {
    const netlist::Circuit c = netlist::techmap(netlist::build_ripple_adder(4));
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    atpg::TestGenOptions opts;
    opts.max_random = 0;  // all faults deterministic
    opts.budget.cancel.request();
    const auto r = atpg::generate_test_set(c, faults, opts);
    EXPECT_EQ(r.stop, support::StopReason::Cancelled);
    EXPECT_EQ(r.untargeted, faults.size());
    EXPECT_TRUE(r.vectors.empty());
    for (auto s : r.status) EXPECT_EQ(s, atpg::FaultStatus::Undetected);
}

TEST(ExperimentBudget, EnvDeadlineSuppliesDefaultOnly) {
    EXPECT_EQ(support::env_deadline_ms(), 0);
    ::setenv("DLPROJ_DEADLINE_MS", "1500", 1);
    EXPECT_EQ(support::env_deadline_ms(), 1500);
    // Hardened parsing (support/env.h): garbage no longer silently
    // disables the knob, it is diagnosed.
    ::setenv("DLPROJ_DEADLINE_MS", "-5", 1);
    EXPECT_THROW(support::env_deadline_ms(), support::EnvError);
    ::setenv("DLPROJ_DEADLINE_MS", "junk", 1);
    EXPECT_THROW(support::env_deadline_ms(), support::EnvError);

    // A runner built with no deadline picks the env default up...
    ::setenv("DLPROJ_DEADLINE_MS", "60000", 1);
    flow::ExperimentRunner with_env(netlist::build_c17());
    EXPECT_TRUE(with_env.options().budget.deadline.active());
    // ...an explicit deadline is never overridden...
    flow::ExperimentOptions opt;
    opt.budget.deadline = support::Deadline::after_ms(5);
    flow::ExperimentRunner with_own(netlist::build_c17(), opt);
    EXPECT_TRUE(with_own.options().budget.deadline.active());
    // ...and without the variable, no deadline is imposed.
    ::unsetenv("DLPROJ_DEADLINE_MS");
    flow::ExperimentRunner without(netlist::build_c17());
    EXPECT_FALSE(without.options().budget.deadline.active());
}

}  // namespace
}  // namespace dlp
