// Tests for the netlist IR, .bench parser, builders and techmap.
#include <gtest/gtest.h>

#include "gatesim/logic_sim.h"
#include "gatesim/patterns.h"
#include "netlist/bench_parser.h"
#include "netlist/builders.h"
#include "netlist/optimize.h"
#include "netlist/techmap.h"

namespace dlp::netlist {
namespace {

TEST(Circuit, TopologicalByConstruction) {
    Circuit c("t");
    const NetId a = c.add_input("a");
    EXPECT_THROW(c.add_gate(GateType::Not, "x", {42}), std::invalid_argument);
    const NetId n = c.add_gate(GateType::Not, "n", {a});
    c.mark_output(n);
    EXPECT_EQ(c.gate_count(), 2u);
    EXPECT_EQ(c.logic_gate_count(), 1u);
    EXPECT_TRUE(c.validate().empty());
}

TEST(Circuit, ArityChecks) {
    Circuit c("t");
    const NetId a = c.add_input("a");
    EXPECT_THROW(c.add_gate(GateType::Not, "x", {a, a}),
                 std::invalid_argument);
    EXPECT_THROW(c.add_gate(GateType::And, "x", {a}), std::invalid_argument);
    EXPECT_THROW(c.add_gate(GateType::Input, "x", {}), std::invalid_argument);
}

TEST(Circuit, ValidateFindsDanglingAndDuplicates) {
    Circuit c("t");
    const NetId a = c.add_input("a");
    c.add_gate(GateType::Not, "n", {a});  // dangling, not marked output
    const auto problems = c.validate();
    ASSERT_FALSE(problems.empty());
}

TEST(Circuit, LevelsAndDepth) {
    const Circuit c = build_c17();
    const auto lv = c.levels();
    EXPECT_EQ(lv[c.find("1")], 0);
    EXPECT_EQ(lv[c.find("10")], 1);
    EXPECT_EQ(lv[c.find("22")], 3);
    EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, EvalGateTruthTables) {
    const std::uint64_t a = 0b0011;
    const std::uint64_t b = 0b0101;
    const std::uint64_t in[] = {a, b};
    EXPECT_EQ(eval_gate(GateType::And, in) & 0xF, 0b0001u);
    EXPECT_EQ(eval_gate(GateType::Or, in) & 0xF, 0b0111u);
    EXPECT_EQ(eval_gate(GateType::Nand, in) & 0xF, 0b1110u);
    EXPECT_EQ(eval_gate(GateType::Nor, in) & 0xF, 0b1000u);
    EXPECT_EQ(eval_gate(GateType::Xor, in) & 0xF, 0b0110u);
    EXPECT_EQ(eval_gate(GateType::Xnor, in) & 0xF, 0b1001u);
}

TEST(Bench, ParseAndRoundTrip) {
    const char* text = R"(
# comment
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, w)   # forward reference below
w = NOT(b)
)";
    const Circuit c = parse_bench(text, "mini");
    EXPECT_EQ(c.inputs().size(), 2u);
    EXPECT_EQ(c.outputs().size(), 1u);
    EXPECT_TRUE(c.validate().empty());

    const Circuit c2 = parse_bench(to_bench(c), "mini");
    EXPECT_EQ(c2.gate_count(), c.gate_count());
    EXPECT_EQ(to_bench(c2), to_bench(c));
}

TEST(Bench, LoadsC17FileMatchingBuilder) {
    // data/c17.bench ships with the repo; it must match build_c17().
    Circuit from_file;
    bool found = false;
    for (const char* path : {"data/c17.bench", "../data/c17.bench",
                             "../../data/c17.bench"}) {
        try {
            from_file = load_bench_file(path);
            found = true;
            break;
        } catch (const std::runtime_error&) {
        }
    }
    if (!found) GTEST_SKIP() << "c17.bench not found from this cwd";
    const Circuit built = build_c17();
    EXPECT_EQ(from_file.gate_count(), built.gate_count());
    EXPECT_EQ(from_file.inputs().size(), built.inputs().size());
    gatesim::RandomPatternGenerator rng(4);
    for (int i = 0; i < 32; ++i) {
        const auto v = rng.next_vector(built);
        const auto a = gatesim::simulate(built, v);
        const auto b = gatesim::simulate(from_file, v);
        for (size_t o = 0; o < built.outputs().size(); ++o)
            ASSERT_EQ(a[built.outputs()[o]], b[from_file.outputs()[o]]);
    }
}

TEST(Bench, Errors) {
    EXPECT_THROW(parse_bench("y = FROB(a)", "x"), std::runtime_error);
    EXPECT_THROW(parse_bench("INPUT(a)\ny = NOT(zz)\nOUTPUT(y)", "x"),
                 std::runtime_error);
    EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(q)", "x"), std::runtime_error);
    // Combinational cycle.
    EXPECT_THROW(parse_bench("INPUT(a)\nu = NOT(v)\nv = NOT(u)\nOUTPUT(u)",
                             "x"),
                 std::runtime_error);
}

TEST(Bench, RejectsDuplicateOutputDeclaration) {
    const char* text = "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\nOUTPUT(y)\n";
    try {
        parse_bench(text, "x");
        FAIL() << "duplicate OUTPUT accepted";
    } catch (const std::runtime_error& e) {
        // Diagnostic carries the duplicate's line and points at the first.
        EXPECT_NE(std::string(e.what()).find("bench:4"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("duplicate OUTPUT"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
            << e.what();
    }
}

TEST(Bench, RejectsNetDeclaredInputAndOutput) {
    const char* text = "INPUT(a)\nOUTPUT(a)\ny = NOT(a)\nOUTPUT(y)\n";
    try {
        parse_bench(text, "x");
        FAIL() << "INPUT+OUTPUT conflict accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("bench:2"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("both INPUT"), std::string::npos)
            << e.what();
    }
}

TEST(Builders, C17MatchesKnownStructure) {
    const Circuit c = build_c17();
    EXPECT_EQ(c.inputs().size(), 5u);
    EXPECT_EQ(c.outputs().size(), 2u);
    EXPECT_EQ(c.logic_gate_count(), 6u);
    EXPECT_TRUE(c.validate().empty());
    // All-ones input: every NAND of ones chain: 10=0,11=0,16=1,19=1,22=1,23=0
    const auto v = gatesim::simulate(c, gatesim::Vector(5, true));
    EXPECT_TRUE(v[c.find("22")]);
    EXPECT_FALSE(v[c.find("23")]);
}

TEST(Builders, C432ProfileMatchesIscas) {
    const Circuit c = build_c432();
    EXPECT_EQ(c.inputs().size(), 36u);
    EXPECT_EQ(c.outputs().size(), 7u);
    EXPECT_TRUE(c.validate().empty());
    // Size class of the original (~160 gates plus fanout buffers).
    EXPECT_GT(c.logic_gate_count(), 100u);
    EXPECT_LT(c.logic_gate_count(), 400u);
}

TEST(Builders, C432PriorityBehaviour) {
    const Circuit c = build_c432();
    // Input order: E0..E8, A0..A8, B0..B8, C0..C8.
    gatesim::Vector v(36, false);
    const auto set = [&](int base, int i) { v[base + i] = true; };
    // Enable channel 4, request it on bus B only -> PB, not PA/PC;
    // CHAN encodes index+1 = 5 = 0b0101.
    set(0, 4);
    set(18, 4);
    auto out = gatesim::simulate(c, v);
    const auto po = [&](const char* name) { return out[c.find(name)]; };
    EXPECT_FALSE(po("PA"));
    EXPECT_TRUE(po("PB"));
    EXPECT_FALSE(po("PC"));
    EXPECT_FALSE(po("CHAN3"));
    EXPECT_TRUE(po("CHAN2"));
    EXPECT_FALSE(po("CHAN1"));
    EXPECT_TRUE(po("CHAN0"));

    // Add a request on bus A, channel 7: A wins (priority A > B).
    set(0, 7);
    set(9, 7);
    out = gatesim::simulate(c, v);
    EXPECT_TRUE(out[c.find("PA")]);
    EXPECT_FALSE(out[c.find("PB")]);
    // CHAN = 7 + 1 = 0b1000.
    EXPECT_TRUE(out[c.find("CHAN3")]);
    EXPECT_FALSE(out[c.find("CHAN2")]);
    EXPECT_FALSE(out[c.find("CHAN1")]);
    EXPECT_FALSE(out[c.find("CHAN0")]);
}

TEST(Builders, C432DisabledChannelIgnored) {
    const Circuit c = build_c432();
    gatesim::Vector v(36, false);
    v[9 + 3] = true;  // A3 requested but E3 disabled
    const auto out = gatesim::simulate(c, v);
    EXPECT_FALSE(out[c.find("PA")]);
}

TEST(Builders, RippleAdderAddsExhaustively) {
    const int bits = 4;
    const Circuit c = build_ripple_adder(bits);
    EXPECT_TRUE(c.validate().empty());
    for (int a = 0; a < 16; ++a)
        for (int b = 0; b < 16; ++b)
            for (int cin = 0; cin < 2; ++cin) {
                gatesim::Vector v;
                for (int i = 0; i < bits; ++i) v.push_back((a >> i) & 1);
                for (int i = 0; i < bits; ++i) v.push_back((b >> i) & 1);
                v.push_back(cin);
                const auto net = gatesim::simulate(c, v);
                int sum = 0;
                for (int i = 0; i < bits; ++i)
                    sum |= net[c.outputs()[static_cast<size_t>(i)]] << i;
                sum |= net[c.outputs()[static_cast<size_t>(bits)]] << bits;
                EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
            }
}

TEST(Builders, ParityTreeComputesParity) {
    const Circuit c = build_parity_tree(9);
    gatesim::RandomPatternGenerator rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        const auto v = rng.next_vector(c);
        bool parity = false;
        for (bool b : v) parity ^= b;
        const auto out = gatesim::simulate(c, v);
        EXPECT_EQ(out[c.outputs()[0]], parity);
    }
}

TEST(Builders, MuxSelectsEveryInput) {
    const Circuit c = build_mux_tree(3);
    for (int sel = 0; sel < 8; ++sel)
        for (int val = 0; val < 2; ++val) {
            gatesim::Vector v(c.inputs().size(), false);
            v[static_cast<size_t>(sel)] = val;
            for (int s = 0; s < 3; ++s)
                v[8 + static_cast<size_t>(s)] = (sel >> s) & 1;
            const auto out = gatesim::simulate(c, v);
            EXPECT_EQ(out[c.outputs()[0]], val == 1);
        }
}

TEST(Builders, DecoderOneHot) {
    const Circuit c = build_decoder(3);
    for (int addr = 0; addr < 8; ++addr) {
        gatesim::Vector v(4, false);
        for (int b = 0; b < 3; ++b) v[static_cast<size_t>(b)] = (addr >> b) & 1;
        v[3] = true;  // EN
        const auto out = gatesim::simulate(c, v);
        for (int o = 0; o < 8; ++o)
            EXPECT_EQ(out[c.outputs()[static_cast<size_t>(o)]], o == addr);
    }
    // Disabled: all outputs low.
    const auto out = gatesim::simulate(c, gatesim::Vector(4, false));
    for (int o = 0; o < 8; ++o)
        EXPECT_FALSE(out[c.outputs()[static_cast<size_t>(o)]]);
}

TEST(Builders, AluComputesAllOpsExhaustively) {
    const int bits = 4;
    const Circuit c = build_alu(bits);
    EXPECT_TRUE(c.validate().empty());
    for (int a = 0; a < 16; ++a)
        for (int b = 0; b < 16; ++b)
            for (int op = 0; op < 4; ++op) {
                gatesim::Vector v;
                for (int i = 0; i < bits; ++i) v.push_back((a >> i) & 1);
                for (int i = 0; i < bits; ++i) v.push_back((b >> i) & 1);
                v.push_back(false);     // CIN
                v.push_back(op & 1);    // OP0
                v.push_back(op >> 1);   // OP1
                const auto net = gatesim::simulate(c, v);
                int r = 0;
                for (int i = 0; i < bits; ++i)
                    r |= net[c.outputs()[static_cast<size_t>(i)]] << i;
                int expect = 0;
                switch (op) {
                    case 0: expect = (a + b) & 15; break;
                    case 1: expect = a & b; break;
                    case 2: expect = a | b; break;
                    case 3: expect = a ^ b; break;
                }
                ASSERT_EQ(r, expect) << a << " op" << op << " " << b;
                // Z flag.
                EXPECT_EQ(net[c.find("Z")], expect == 0);
                if (op == 0) {
                    EXPECT_EQ(net[c.find("COUT")], (a + b) > 15);
                }
            }
}

TEST(Builders, HammingCorrectsAnySingleError) {
    const int data_bits = 11;  // p = 4
    const Circuit c = build_hamming_corrector(data_bits);
    EXPECT_TRUE(c.validate().empty());
    gatesim::RandomPatternGenerator rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        // Random data word; compute the correct parity by encoding.
        std::uint64_t word = rng.next_word() & ((1u << data_bits) - 1);
        // Positions 1..15, data at non-powers-of-two.
        std::vector<int> data_pos;
        for (int pos = 1; pos < 16 &&
                          static_cast<int>(data_pos.size()) < data_bits; ++pos)
            if ((pos & (pos - 1)) != 0) data_pos.push_back(pos);
        int par = 0;
        for (int i = 0; i < data_bits; ++i)
            if ((word >> i) & 1) par ^= data_pos[static_cast<size_t>(i)];

        const auto run = [&](std::uint64_t d, int pbits) {
            gatesim::Vector v;
            for (int i = 0; i < data_bits; ++i) v.push_back((d >> i) & 1);
            for (int j = 0; j < 4; ++j) v.push_back((pbits >> j) & 1);
            const auto net = gatesim::simulate(c, v);
            std::uint64_t out = 0;
            for (int i = 0; i < data_bits; ++i)
                out |= static_cast<std::uint64_t>(
                           net[c.outputs()[static_cast<size_t>(i)]])
                       << i;
            return out;
        };

        // Clean word passes through.
        ASSERT_EQ(run(word, par), word);
        // Any single data-bit error is corrected.
        for (int i = 0; i < data_bits; ++i)
            ASSERT_EQ(run(word ^ (1ULL << i), par), word) << "bit " << i;
        // A parity-bit error leaves data untouched.
        for (int j = 0; j < 4; ++j)
            ASSERT_EQ(run(word, par ^ (1 << j)), word) << "parity " << j;
    }
}

TEST(Builders, RandomCircuitIsValidAndDeterministic) {
    const Circuit a = build_random_circuit(16, 120, 42);
    const Circuit b = build_random_circuit(16, 120, 42);
    EXPECT_TRUE(a.validate().empty());
    EXPECT_EQ(to_bench(a), to_bench(b));
    const Circuit c = build_random_circuit(16, 120, 43);
    EXPECT_NE(to_bench(a), to_bench(c));
}

// Techmap equivalence: exhaustive or sampled input sweep.
void expect_equivalent(const Circuit& a, const Circuit& b, int samples) {
    ASSERT_EQ(a.inputs().size(), b.inputs().size());
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    gatesim::RandomPatternGenerator rng(99);
    for (int i = 0; i < samples; ++i) {
        const auto v = rng.next_vector(a);
        const auto va = gatesim::simulate(a, v);
        const auto vb = gatesim::simulate(b, v);
        for (size_t o = 0; o < a.outputs().size(); ++o)
            ASSERT_EQ(va[a.outputs()[o]], vb[b.outputs()[o]])
                << "output " << o << " sample " << i;
    }
}

TEST(Optimize, FoldsConstantsAndSharesDuplicates) {
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto na = c.add_gate(GateType::Not, "na", {a});
    // AND(a, !a) == 0; OR(b, 0) == b; duplicate NANDs share.
    const auto zero = c.add_gate(GateType::And, "zero", {a, na});
    const auto o = c.add_gate(GateType::Or, "o", {b, zero});
    const auto d1 = c.add_gate(GateType::Nand, "d1", {a, b});
    const auto d2 = c.add_gate(GateType::Nand, "d2", {b, a});
    const auto y = c.add_gate(GateType::And, "y", {o, d1, d2});
    c.mark_output(y);

    OptimizeStats stats;
    const Circuit opt = optimize(c, &stats);
    EXPECT_TRUE(opt.validate().empty());
    EXPECT_LT(opt.logic_gate_count(), c.logic_gate_count());
    EXPECT_GT(stats.folded, 0u);
    EXPECT_GT(stats.shared, 0u);
    // y == AND(b, NAND(a,b)): 2-3 gates.
    EXPECT_LE(opt.logic_gate_count(), 3u);
    expect_equivalent(c, opt, 64);
}

TEST(Optimize, XorIdentities) {
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto x1 = c.add_gate(GateType::Xor, "x1", {a, a});  // == 0
    const auto x2 = c.add_gate(GateType::Xor, "x2", {a, b, x1});  // == a^b
    const auto na = c.add_gate(GateType::Not, "na", {a});
    const auto x3 = c.add_gate(GateType::Xnor, "x3", {a, na});  // == 0
    const auto y = c.add_gate(GateType::Or, "y", {x2, x3});     // == a^b
    c.mark_output(y);
    const Circuit opt = optimize(c);
    EXPECT_TRUE(opt.validate().empty());
    expect_equivalent(c, opt, 64);
    EXPECT_LE(opt.logic_gate_count(), 2u);
}

TEST(Optimize, ConstantOutputMaterialized) {
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto na = c.add_gate(GateType::Not, "na", {a});
    const auto y = c.add_gate(GateType::And, "y", {a, na});  // constant 0
    c.mark_output(y);
    const Circuit opt = optimize(c);
    EXPECT_TRUE(opt.validate().empty());
    EXPECT_EQ(opt.outputs().size(), 1u);
    expect_equivalent(c, opt, 8);
}

TEST(Optimize, DeadLogicRemoved) {
    Circuit c("t");
    const auto a = c.add_input("a");
    const auto b = c.add_input("b");
    const auto y = c.add_gate(GateType::Nand, "y", {a, b});
    const auto dead = c.add_gate(GateType::Nor, "dead", {a, b});
    c.add_gate(GateType::Not, "dead2", {dead});
    c.mark_output(y);
    // The dangling gates make validate() complain, but optimize must still
    // drop them cleanly.
    const Circuit opt = optimize(c);
    EXPECT_EQ(opt.logic_gate_count(), 1u);
}

class OptimizeEquivalence
    : public ::testing::TestWithParam<std::function<Circuit()>> {};

TEST_P(OptimizeEquivalence, PreservesFunctionNeverGrows) {
    const Circuit original = GetParam()();
    OptimizeStats stats;
    const Circuit opt = optimize(original, &stats);
    EXPECT_TRUE(opt.validate().empty());
    EXPECT_LE(opt.logic_gate_count(), original.logic_gate_count());
    expect_equivalent(original, opt, 200);
    // Optimization must compose with techmap.
    expect_equivalent(original, techmap(opt), 100);
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, OptimizeEquivalence,
    ::testing::Values([] { return build_c17(); }, [] { return build_c432(); },
                      [] { return build_ripple_adder(6); },
                      [] { return build_parity_tree(9); },
                      [] { return build_alu(5); },
                      [] { return build_hamming_corrector(11); },
                      [] { return build_mux_tree(3); },
                      [] { return build_random_circuit(12, 120, 5); }));

class TechmapEquivalence
    : public ::testing::TestWithParam<std::function<Circuit()>> {};

TEST_P(TechmapEquivalence, PreservesFunction) {
    const Circuit original = GetParam()();
    const Circuit mapped = techmap(original);
    EXPECT_TRUE(mapped.validate().empty());
    expect_equivalent(original, mapped, 200);
    // Every mapped gate must fit the library's arity bound and have no XOR.
    for (const Gate& g : mapped.gates()) {
        EXPECT_LE(g.fanin.size(), 4u);
        EXPECT_NE(g.type, GateType::Xor);
        EXPECT_NE(g.type, GateType::Xnor);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, TechmapEquivalence,
    ::testing::Values([] { return build_c17(); }, [] { return build_c432(); },
                      [] { return build_ripple_adder(6); },
                      [] { return build_parity_tree(12); },
                      [] { return build_mux_tree(3); },
                      [] { return build_decoder(4); },
                      [] { return build_alu(6); },
                      [] { return build_hamming_corrector(11); },
                      [] { return build_random_circuit(12, 80, 5); }));

TEST(Techmap, WideGatesDecomposed) {
    Circuit c("wide");
    std::vector<NetId> ins;
    for (int i = 0; i < 11; ++i)
        ins.push_back(c.add_input("i" + std::to_string(i)));
    const NetId n = c.add_gate(GateType::Nand, "n", ins);
    const NetId o = c.add_gate(GateType::Nor, "o", ins);
    const NetId x = c.add_gate(GateType::Xor, "x", ins);
    c.mark_output(n);
    c.mark_output(o);
    c.mark_output(x);
    const Circuit m = techmap(c);
    expect_equivalent(c, m, 300);
}

// --- write_bench round-trip + the committed golden fixture --------------

/// to_bench text minus the leading "# <name>" comment: the circuit name
/// comes from the file stem on load, so round-trip comparisons ignore it.
std::string bench_body(const Circuit& c) {
    const std::string text = to_bench(c);
    return text.substr(text.find('\n') + 1);
}

TEST(BenchWriter, C432RoundTripsThroughDisk) {
    const Circuit c = build_c432();
    const std::string path =
        testing::TempDir() + "/dlproj_c432_roundtrip.bench";
    write_bench(c, path);
    const Circuit back = load_bench_file(path);
    // Structure survives byte-exactly (to_bench is canonical)...
    EXPECT_EQ(bench_body(back), bench_body(c));
    EXPECT_EQ(back.gate_count(), c.gate_count());
    EXPECT_EQ(back.inputs().size(), c.inputs().size());
    EXPECT_EQ(back.outputs().size(), c.outputs().size());
    // ...and so does behaviour under re-simulation.
    expect_equivalent(c, back, 200);
}

TEST(BenchWriter, GoldenC432FixtureMatchesBuilder) {
    // data/c432.bench is the committed output of
    // write_bench(build_c432()); a drift in either the builder or the
    // writer shows up as a diff against the golden file.
    const Circuit golden =
        load_bench_file(std::string(DLPROJ_DATA_DIR) + "/c432.bench");
    const Circuit built = build_c432();
    EXPECT_EQ(to_bench(golden), to_bench(built));
    expect_equivalent(golden, built, 200);
}

TEST(BenchWriter, ReportsUnwritablePath) {
    EXPECT_THROW(write_bench(build_c17(), "/nonexistent-dir/x.bench"),
                 std::runtime_error);
}

}  // namespace
}  // namespace dlp::netlist
