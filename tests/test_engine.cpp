// The engine differential suite (CTest label `engine`).
//
// Every engine registered with sim::register_engine promises bit-identical
// results: the same first-detection index per fault — hence byte-identical
// coverage curves — for any vector sequence, worker count, and budget.
// This suite enforces the promise against the naive scalar oracle over
// c17, c432, and 50 seeded random circuits, including 64-vector block
// boundaries and mid-run budget stops, plus the levelized compiler's IR
// invariants and the registry/selection API itself.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "gatesim/engine.h"
#include "gatesim/fault_sim.h"
#include "gatesim/levelized.h"
#include "gatesim/patterns.h"
#include "netlist/builders.h"

namespace dlp {
namespace {

using gatesim::Circuit;
using gatesim::NetId;
using gatesim::RandomPatternGenerator;
using gatesim::StuckAtFault;
using gatesim::Vector;
using netlist::build_c17;
using netlist::build_c432;
using netlist::build_random_circuit;

std::vector<StuckAtFault> copy_faults(std::span<const StuckAtFault> faults) {
    return {faults.begin(), faults.end()};
}

// ---- registry & selection -------------------------------------------------

TEST(EngineRegistry, BuiltinsRegisteredInOrder) {
    const auto names = sim::engine_names();
    ASSERT_GE(names.size(), 4u);
    EXPECT_EQ(names[0], "naive");
    EXPECT_EQ(names[1], "serial");
    EXPECT_EQ(names[2], "ppsfp");
    EXPECT_EQ(names[3], "levelized");
    for (const auto name : names) {
        const sim::Engine* e = sim::find_engine(name);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->name(), name);
        EXPECT_FALSE(e->description().empty());
    }
}

TEST(EngineRegistry, UnknownNamesAreErrors) {
    EXPECT_EQ(sim::find_engine("bogus"), nullptr);
    try {
        sim::engine("bogus");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        // The message lists the registered engines for discoverability.
        EXPECT_NE(std::string(e.what()).find("levelized"), std::string::npos);
    }
}

TEST(EngineRegistry, DuplicateRegistrationThrows) {
    class Fake : public sim::Engine {
        std::string_view name() const override { return "levelized"; }
        std::string_view description() const override { return "dup"; }
        std::unique_ptr<sim::Session> open(
            const Circuit&, std::vector<StuckAtFault>,
            parallel::ParallelOptions, sim::SessionOptions) const override {
            return nullptr;
        }
    };
    EXPECT_THROW(sim::register_engine(std::make_unique<Fake>()),
                 std::invalid_argument);
    EXPECT_THROW(sim::register_engine(nullptr), std::invalid_argument);
}

TEST(EngineRegistry, ResolutionPrecedence) {
    // Explicit name > DLPROJ_ENGINE > kDefaultEngine.
    ::unsetenv("DLPROJ_ENGINE");
    EXPECT_EQ(sim::resolve_engine().name(), sim::kDefaultEngine);
    EXPECT_EQ(sim::resolve_engine("serial").name(), "serial");
    ::setenv("DLPROJ_ENGINE", "ppsfp", 1);
    EXPECT_EQ(sim::resolve_engine().name(), "ppsfp");
    EXPECT_EQ(sim::resolve_engine("naive").name(), "naive");
    ::setenv("DLPROJ_ENGINE", "no-such-engine", 1);
    EXPECT_THROW(sim::resolve_engine(), std::invalid_argument);
    ::unsetenv("DLPROJ_ENGINE");
}

// ---- the levelized compiler ----------------------------------------------

TEST(Levelize, IrInvariants) {
    const Circuit c = build_c432();
    const gatesim::LevelizedCircuit lc = gatesim::levelize(c);
    ASSERT_EQ(lc.net_count, c.gate_count());
    EXPECT_EQ(lc.inputs.size(), c.inputs().size());
    EXPECT_EQ(lc.outputs.size(), c.outputs().size());
    EXPECT_EQ(lc.logic_gate_count(), c.gate_count() - c.inputs().size());

    // Levels match the reference levelization; every fanin sits strictly
    // below its reader.
    const auto ref_levels = c.levels();
    for (NetId g = 0; g < lc.net_count; ++g) {
        EXPECT_EQ(lc.level[g], ref_levels[g]) << "net " << g;
        for (auto i = lc.fanin_begin[g]; i < lc.fanin_begin[g + 1]; ++i)
            EXPECT_LT(lc.level[lc.fanin[i]], lc.level[g]);
    }

    // The schedule covers every non-input gate exactly once, level-major.
    std::set<NetId> seen;
    for (std::size_t i = 0; i < lc.schedule.size(); ++i)
        EXPECT_TRUE(seen.insert(lc.schedule[i]).second);
    EXPECT_EQ(seen.size(), lc.logic_gate_count());
    for (int l = 1; l <= lc.depth; ++l)
        for (auto i = lc.level_begin[static_cast<std::size_t>(l)];
             i < lc.level_begin[static_cast<std::size_t>(l) + 1]; ++i)
            EXPECT_EQ(lc.level[lc.schedule[i]], l);

    // Fanout CSR is the exact transpose of the (deduplicated) fanin rows.
    for (NetId n = 0; n < lc.net_count; ++n)
        for (auto i = lc.fanout_begin[n]; i < lc.fanout_begin[n + 1]; ++i) {
            const NetId r = lc.fanout[i];
            bool reads = false;
            for (auto j = lc.fanin_begin[r]; j < lc.fanin_begin[r + 1]; ++j)
                reads |= lc.fanin[j] == n;
            EXPECT_TRUE(reads) << "net " << n << " -> gate " << r;
        }
}

TEST(Levelize, GoodMachineMatchesReferenceSimulation) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const Circuit c = build_random_circuit(8, 120, seed);
        const gatesim::LevelizedCircuit lc = gatesim::levelize(c);
        RandomPatternGenerator rng(seed);
        const auto vectors = rng.vectors(c, 64);
        const auto block =
            gatesim::pack_vectors(c, std::span<const Vector>(vectors));
        const auto ref = gatesim::simulate_block(c, block);
        std::vector<std::uint64_t> words;
        gatesim::simulate_block_levelized(lc, block, words);
        ASSERT_EQ(words.size(), ref.size());
        for (NetId n = 0; n < lc.net_count; ++n)
            EXPECT_EQ(words[n], ref[n]) << "net " << n << " seed " << seed;
    }
}

// ---- cross-engine bit-identity -------------------------------------------

/// Applies `vectors` through every registered engine and asserts detection
/// tables and coverage curves byte-identical to the naive oracle's.
void expect_engines_match_naive(const Circuit& c,
                                std::span<const StuckAtFault> faults,
                                std::span<const Vector> vectors,
                                const char* what) {
    const auto oracle = sim::engine("naive").open(c, copy_faults(faults));
    oracle->apply(vectors);
    const auto ref_table = oracle->first_detected_at();
    const auto ref_curve = oracle->coverage_curve();
    for (const auto name : sim::engine_names()) {
        if (name == "naive") continue;
        const auto s = sim::engine(name).open(c, copy_faults(faults));
        s->apply(vectors);
        ASSERT_EQ(s->first_detected_at().size(), ref_table.size());
        for (std::size_t i = 0; i < ref_table.size(); ++i)
            ASSERT_EQ(s->first_detected_at()[i], ref_table[i])
                << what << ": engine " << name << ", fault "
                << gatesim::fault_name(c, faults[i]);
        // Curves derive from the table, but compare them too: this is the
        // artifact the campaign cache shares across engines.
        ASSERT_EQ(s->coverage_curve(), ref_curve)
            << what << ": engine " << name;
        ASSERT_EQ(s->vectors_applied(), oracle->vectors_applied());
        ASSERT_EQ(s->detected_count(), oracle->detected_count());
        ASSERT_EQ(s->undetected(), oracle->undetected());
    }
}

TEST(EngineDifferential, C17AllEnginesMatchNaive) {
    const Circuit c = build_c17();
    RandomPatternGenerator rng(42);
    const auto vectors = rng.vectors(c, 70);
    expect_engines_match_naive(c, gatesim::full_fault_universe(c),
                               std::span<const Vector>(vectors), "c17");
}

TEST(EngineDifferential, C432AllEnginesMatchNaive) {
    const Circuit c = build_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    RandomPatternGenerator rng(7);
    const auto vectors = rng.vectors(c, 64);
    expect_engines_match_naive(c, faults, std::span<const Vector>(vectors),
                               "c432");
}

TEST(EngineDifferential, FiftyRandomCircuitsMatchNaive) {
    for (std::uint64_t trial = 0; trial < 50; ++trial) {
        // Vary shape with the seed: 4-8 inputs, 8-31 gates.
        const int inputs = 4 + static_cast<int>(trial % 5);
        const int gates = 8 + static_cast<int>((trial * 7) % 24);
        const Circuit c = build_random_circuit(inputs, gates, 2000 + trial);
        RandomPatternGenerator rng(trial);
        const auto vectors = rng.vectors(c, 12);
        expect_engines_match_naive(c, gatesim::full_fault_universe(c),
                                   std::span<const Vector>(vectors),
                                   c.name().c_str());
    }
}

TEST(EngineDifferential, BlockBoundaryVectorCounts) {
    // Counts straddling the 64-wide pattern block boundary, where lane
    // masking bugs live.
    const Circuit c = build_random_circuit(6, 24, 77);
    const auto faults = gatesim::full_fault_universe(c);
    for (int n : {1, 63, 64, 65, 70, 128, 129}) {
        RandomPatternGenerator rng(static_cast<std::uint64_t>(n));
        const auto vectors = rng.vectors(c, n);
        expect_engines_match_naive(c, faults,
                                   std::span<const Vector>(vectors),
                                   "boundary");
    }
}

TEST(EngineDifferential, LevelizedMatchesPpsfpAtScale) {
    // A deeper workout than the naive oracle can afford: 300 gates, 256
    // vectors, PPSFP (itself differentially verified above and in
    // test_gatesim) as the reference.
    const Circuit c = build_random_circuit(16, 300, 99);
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    RandomPatternGenerator rng(99);
    const auto vectors = rng.vectors(c, 256);

    const auto ref = sim::engine("ppsfp").open(c, copy_faults(faults));
    ref->apply(std::span<const Vector>(vectors));
    const auto lev = sim::engine("levelized").open(c, copy_faults(faults));
    lev->apply(std::span<const Vector>(vectors));
    ASSERT_EQ(lev->first_detected_at().size(),
              ref->first_detected_at().size());
    for (std::size_t i = 0; i < faults.size(); ++i)
        ASSERT_EQ(lev->first_detected_at()[i], ref->first_detected_at()[i])
            << "fault " << gatesim::fault_name(c, faults[i]);
}

// ---- budget / cancellation contract --------------------------------------

TEST(EngineBudget, VectorBudgetCommitsIdenticalPrefix) {
    const Circuit c = build_random_circuit(6, 40, 11);
    const auto faults = gatesim::full_fault_universe(c);
    RandomPatternGenerator rng(11);
    const auto vectors = rng.vectors(c, 128);

    // The budget-stopped run must equal an unbudgeted run over the allowed
    // prefix — engine by engine, and identically across engines.
    support::RunBudget budget;
    budget.max_vectors = 70;
    const auto oracle = sim::engine("naive").open(c, copy_faults(faults));
    oracle->apply(std::span<const Vector>(vectors).first(70));
    for (const auto name : sim::engine_names()) {
        const auto s = sim::engine(name).open(c, copy_faults(faults));
        const auto res =
            s->apply(std::span<const Vector>(vectors), budget);
        EXPECT_EQ(res.stop, support::StopReason::VectorBudget) << name;
        EXPECT_EQ(res.vectors_applied, 70) << name;
        EXPECT_EQ(s->vectors_applied(), 70) << name;
        ASSERT_EQ(s->coverage_curve(), oracle->coverage_curve())
            << "engine " << name;
    }
}

TEST(EngineBudget, MidRunCancellationIsAPrefix) {
    const Circuit c = build_random_circuit(6, 40, 13);
    const auto faults = gatesim::full_fault_universe(c);
    RandomPatternGenerator rng(13);
    const auto vectors = rng.vectors(c, 128);
    const std::span<const Vector> all(vectors);

    for (const auto name : sim::engine_names()) {
        // Reference: the first block only.
        const auto ref = sim::engine(name).open(c, copy_faults(faults));
        ref->apply(all.first(64));

        // Cancel between the two apply calls: the second must commit
        // nothing and report Cancelled, leaving the first call's state.
        support::RunBudget budget;
        const auto s = sim::engine(name).open(c, copy_faults(faults));
        const auto r1 = s->apply(all.first(64), budget);
        EXPECT_EQ(r1.stop, support::StopReason::None) << name;
        budget.cancel.request();
        const auto r2 = s->apply(all.subspan(64), budget);
        EXPECT_EQ(r2.stop, support::StopReason::Cancelled) << name;
        EXPECT_EQ(r2.vectors_applied, 0) << name;
        EXPECT_EQ(r2.newly_detected, 0) << name;
        EXPECT_EQ(s->vectors_applied(), 64) << name;
        const auto table = s->first_detected_at();
        const auto ref_table = ref->first_detected_at();
        ASSERT_EQ(std::vector<int>(table.begin(), table.end()),
                  std::vector<int>(ref_table.begin(), ref_table.end()))
            << "engine " << name;
    }
}

TEST(EngineBudget, WorkerCountInvariance) {
    // The levelized engine's results must not depend on the worker count.
    const Circuit c = build_random_circuit(8, 200, 17);
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    RandomPatternGenerator rng(17);
    const auto vectors = rng.vectors(c, 128);
    const auto one = sim::engine("levelized")
                         .open(c, copy_faults(faults),
                               parallel::ParallelOptions{1});
    one->apply(std::span<const Vector>(vectors));
    for (int threads : {2, 4, 7}) {
        const auto many = sim::engine("levelized")
                              .open(c, copy_faults(faults),
                                    parallel::ParallelOptions{threads});
        many->apply(std::span<const Vector>(vectors));
        const auto a = one->first_detected_at();
        const auto b = many->first_detected_at();
        ASSERT_EQ(std::vector<int>(a.begin(), a.end()),
                  std::vector<int>(b.begin(), b.end()))
            << threads << " workers";
    }
}

// ---- Session convenience accessors ---------------------------------------

TEST(EngineSession, DerivedAccessorsMatchFaultSimulator) {
    // The Session-computed curve must equal the FaultSimulator's own.
    const Circuit c = build_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    RandomPatternGenerator rng(3);
    const auto vectors = rng.vectors(c, 100);

    gatesim::FaultSimulator direct(c, copy_faults(faults));
    direct.apply(std::span<const Vector>(vectors));
    const auto session = sim::engine("ppsfp").open(c, copy_faults(faults));
    session->apply(std::span<const Vector>(vectors));

    EXPECT_EQ(session->detected_count(), direct.detected_count());
    EXPECT_EQ(session->coverage(), direct.coverage());
    EXPECT_EQ(session->coverage_curve(), direct.coverage_curve());
    EXPECT_EQ(session->undetected(), direct.undetected());
}

}  // namespace
}  // namespace dlp
