// Tests for the campaign subsystem: spec parsing, the grid/shard algebra,
// the content-addressed artifact store, and the end-to-end cache
// guarantees (hit/miss accounting, cross-cell artifact reuse,
// cancel-then-resume byte-identity, corruption recovery).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "campaign/artifacts.h"
#include "campaign/report.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "campaign/store.h"

namespace dlp::campaign {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test scratch directory under the gtest temp dir.
std::string scratch_dir(const std::string& tag) {
    const std::string path = testing::TempDir() + "dlproj_campaign_" + tag;
    fs::remove_all(path);
    return path;
}

const char* kSmallSpec =
    "[campaign]\n"
    "name = unit\n"
    "target_yield = 0.8\n"
    "[grid]\n"
    "circuits = c17, parity4\n"
    "rules = bridging, uniform\n"
    "seeds = 1\n";

// --- spec parsing -------------------------------------------------------

TEST(CampaignSpec, ParsesSectionsAndGrid) {
    const CampaignSpec s = parse_campaign_spec(
        "# comment\n"
        "[campaign]\n"
        "name = demo\n"
        "target_yield = 0.6\n"
        "max_vectors = 32\n"
        "weighted = off\n"
        "lint = false\n"
        "[grid]\n"
        "circuits = c17, adder3\n"
        "rules = bridging, uniform, open\n"
        "seeds = 1, 2, 3\n");
    EXPECT_EQ(s.name, "demo");
    EXPECT_DOUBLE_EQ(s.target_yield, 0.6);
    EXPECT_EQ(s.max_vectors, 32);
    EXPECT_FALSE(s.weighted);
    EXPECT_FALSE(s.lint);
    EXPECT_EQ(s.cell_count(), 2u * 3u * 3u);
    // Row-major: circuit outermost, then rules, then seeds.
    EXPECT_EQ(cell_at(s, 0).circuit, "c17");
    EXPECT_EQ(cell_at(s, 0).rules, "bridging");
    EXPECT_EQ(cell_at(s, 0).seed, 1u);
    EXPECT_EQ(cell_at(s, 2).seed, 3u);
    EXPECT_EQ(cell_at(s, 3).rules, "uniform");
    EXPECT_EQ(cell_at(s, 9).circuit, "adder3");
    EXPECT_EQ(cell_at(s, 17).atpg, "default");
}

TEST(CampaignSpec, AtpgVariantsSelectableFromGrid) {
    const CampaignSpec s = parse_campaign_spec(
        "[grid]\n"
        "circuits = c17\n"
        "rules = uniform\n"
        "atpg = default, fast\n"
        "[atpg.fast]\n"
        "random_block = 8\n"
        "max_random = 64\n");
    ASSERT_EQ(s.atpg.size(), 2u);
    EXPECT_EQ(s.atpg[0].name, "default");
    EXPECT_EQ(s.atpg[1].name, "fast");
    EXPECT_EQ(atpg_variant(s, "fast").options.random_block, 8);
    EXPECT_EQ(atpg_variant(s, "fast").options.max_random, 64);
    EXPECT_EQ(s.cell_count(), 2u);
    EXPECT_EQ(cell_at(s, 1).atpg, "fast");
}

TEST(CampaignSpec, RejectsMalformedInput) {
    EXPECT_THROW(parse_campaign_spec("[nope]\n"), std::runtime_error);
    EXPECT_THROW(parse_campaign_spec("[grid]\ncircuits = c17\n"),
                 std::runtime_error);  // no rules
    EXPECT_THROW(parse_campaign_spec("[campaign]\nbogus = 1\n"),
                 std::runtime_error);
    EXPECT_THROW(parse_campaign_spec("key = outside\n"), std::runtime_error);
    EXPECT_THROW(parse_campaign_spec("[campaign]\nno equals sign\n"),
                 std::runtime_error);
    EXPECT_THROW(parse_campaign_spec("[grid]\nseeds = x\n"),
                 std::runtime_error);
    EXPECT_THROW(
        parse_campaign_spec("[grid]\ncircuits=c17\nrules=uniform\n"
                            "atpg = undefined_variant\n"),
        std::runtime_error);
}

TEST(CampaignSpec, ResolvesCircuitsAndRules) {
    EXPECT_GT(resolve_circuit("c17").gate_count(), 0u);
    EXPECT_GT(resolve_circuit("adder3").gate_count(), 0u);
    EXPECT_GT(resolve_circuit("parity4").gate_count(), 0u);
    EXPECT_THROW(resolve_circuit("frobnicator9"), std::runtime_error);
    (void)resolve_rules("bridging");
    (void)resolve_rules("open");
    (void)resolve_rules("uniform");
    EXPECT_THROW(resolve_rules("nonsense"), std::runtime_error);
}

// --- shard algebra ------------------------------------------------------

TEST(CampaignShard, ParseAcceptsAndRejects) {
    EXPECT_EQ(parse_shard("0/2").index, 0);
    EXPECT_EQ(parse_shard("0/2").count, 2);
    EXPECT_EQ(parse_shard("3/4").index, 3);
    EXPECT_THROW(parse_shard("2"), std::runtime_error);
    EXPECT_THROW(parse_shard("2/2"), std::runtime_error);   // out of range
    EXPECT_THROW(parse_shard("-1/2"), std::runtime_error);
    EXPECT_THROW(parse_shard("0/0"), std::runtime_error);
    EXPECT_THROW(parse_shard("x/y"), std::runtime_error);
}

TEST(CampaignShard, PartitionIsDisjointCoveringAndBalanced) {
    // For every grid size and every shard count, the shards partition
    // [0, total) exactly, with sizes differing by at most one.
    for (std::size_t total : {0u, 1u, 2u, 5u, 12u, 13u, 30u})
        for (int n = 1; n <= 8; ++n) {
            std::set<std::size_t> seen;
            std::size_t min_size = total + 1, max_size = 0;
            for (int i = 0; i < n; ++i) {
                const auto cells = shard_cells(total, Shard{i, n});
                min_size = std::min(min_size, cells.size());
                max_size = std::max(max_size, cells.size());
                for (const std::size_t c : cells) {
                    EXPECT_LT(c, total);
                    EXPECT_TRUE(seen.insert(c).second)
                        << "cell " << c << " in two shards (n=" << n << ")";
                }
            }
            EXPECT_EQ(seen.size(), total) << "n=" << n;
            if (total > 0) EXPECT_LE(max_size - min_size, 1u) << "n=" << n;
        }
}

// --- artifact store -----------------------------------------------------

TEST(ArtifactStore, PutGetRoundTrip) {
    ArtifactStore store(scratch_dir("store_rt"));
    EXPECT_TRUE(store.enabled());
    EXPECT_FALSE(store.get("tests", "key-a").has_value());
    EXPECT_EQ(store.misses(), 1u);
    store.put("tests", "key-a", "payload-a");
    const auto back = store.get("tests", "key-a");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "payload-a");
    EXPECT_EQ(store.hits(), 1u);
    // Overwrite is allowed and atomic.
    store.put("tests", "key-a", "payload-b");
    EXPECT_EQ(store.get("tests", "key-a").value(), "payload-b");
    // Same key, different kind = a different object.
    EXPECT_FALSE(store.get("sim", "key-a").has_value());
}

TEST(ArtifactStore, DisabledStoreNeverHits) {
    ArtifactStore store("");
    EXPECT_FALSE(store.enabled());
    store.put("tests", "k", "v");  // no-op, must not throw
    EXPECT_FALSE(store.get("tests", "k").has_value());
    EXPECT_EQ(store.writes(), 0u);
}

TEST(ArtifactStore, CorruptObjectIsDetectedNotServed) {
    ArtifactStore store(scratch_dir("store_corrupt"));
    store.put("cell", "the-key", "precious payload bytes");
    const std::string path = store.object_path("cell", "the-key");
    // Flip the last payload byte on disk.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary | std::ios::ate);
        ASSERT_TRUE(f.is_open());
        const auto size = static_cast<long long>(f.tellg());
        f.seekp(size - 1);
        f.put('X');
    }
    EXPECT_FALSE(store.get("cell", "the-key").has_value());
    EXPECT_EQ(store.corrupt(), 1u);
    // A rewrite repairs the entry.
    store.put("cell", "the-key", "precious payload bytes");
    EXPECT_EQ(store.get("cell", "the-key").value(),
              "precious payload bytes");
}

TEST(ArtifactStore, TruncatedObjectIsAMiss) {
    ArtifactStore store(scratch_dir("store_trunc"));
    store.put("cell", "k", "0123456789");
    fs::resize_file(store.object_path("cell", "k"), 5);
    EXPECT_FALSE(store.get("cell", "k").has_value());
}

// --- end-to-end campaign cache guarantees -------------------------------

CampaignOptions cached_options(const std::string& cache_dir) {
    CampaignOptions opt;
    opt.cache_dir = cache_dir;
    return opt;
}

TEST(CampaignCache, ColdThenWarmAccounting) {
    const CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    const std::string cache = scratch_dir("accounting");

    const CampaignReport cold = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(cold.stats.cells_total, 4u);
    EXPECT_EQ(cold.stats.cells_completed, 4u);
    EXPECT_EQ(cold.stats.cell_hits, 0u);
    EXPECT_EQ(cold.stats.cell_misses, 4u);
    ASSERT_EQ(cold.cells.size(), 4u);
    for (const CellResult& c : cold.cells) {
        EXPECT_GT(c.stuck_faults, 0u);
        EXPECT_GT(c.vector_count, 0u);
        EXPECT_GT(c.t_curve.final(), 0.0);
        EXPECT_TRUE(c.interruption.empty());
    }

    const CampaignReport warm = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(warm.stats.cell_hits, 4u);
    EXPECT_EQ(warm.stats.cell_misses, 0u);
    EXPECT_EQ(warm.stats.store_corrupt, 0u);
    // The science reports are byte-identical; only accounting differs.
    EXPECT_EQ(report_json(warm), report_json(cold));
    EXPECT_EQ(report_csv(warm), report_csv(cold));
}

TEST(CampaignNDetect, ClassicCellSerializesV1WithDerivedQuality) {
    // A classic (n=1) cell keeps the version-1 artifact format byte for
    // byte; parsing it back derives the trivial n=1 quality figures from
    // T(k)'s final value, so a warm ndetect-axis resume over a classic (or
    // pre-n-detect) cache reports the same bytes as a cold run.
    CellResult c;
    c.circuit = "c17";
    c.rules = "bridging";
    c.atpg = "default";
    c.t_curve = flow::CoverageCurve({0.5, 0.875});
    const std::string text = serialize_cell(c);
    EXPECT_EQ(text.substr(0, text.find('\n')), "dlproj-cell 1");
    EXPECT_EQ(text.find("ndetect"), std::string::npos);
    const CellResult back = parse_cell(text);
    EXPECT_EQ(back.ndetect, 1);
    EXPECT_EQ(back.ndetect_min, 0);  // 0.875 < 1: some fault undetected
    EXPECT_EQ(back.ndetect_mean, 0.875);
    EXPECT_EQ(back.worst_case_coverage, 0.875);
    EXPECT_EQ(back.avg_case_coverage, 0.875);

    // An n-detect cell round-trips its measured figures through v2.
    c.ndetect = 4;
    c.ndetect_min = 2;
    c.ndetect_mean = 3.25;
    c.worst_case_coverage = 0.5;
    c.avg_case_coverage = 0.8125;
    const std::string text2 = serialize_cell(c);
    EXPECT_EQ(text2.substr(0, text2.find('\n')), "dlproj-cell 2");
    const CellResult back2 = parse_cell(text2);
    EXPECT_EQ(back2.ndetect, 4);
    EXPECT_EQ(back2.ndetect_min, 2);
    EXPECT_EQ(back2.ndetect_mean, 3.25);
    EXPECT_EQ(back2.worst_case_coverage, 0.5);
    EXPECT_EQ(back2.avg_case_coverage, 0.8125);
}

TEST(CampaignNDetect, AxisGridSharesClassicCacheByteIdentically) {
    // The n=1 cells of an ndetect-axis grid carry the same artifact keys
    // and bytes as a classic campaign's, so a cache warmed without the
    // axis serves them — and the axis report must not depend on whether
    // its n=1 cells were hits or fresh.
    CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    spec.circuits = {"c17"};
    spec.rules = {"bridging"};
    const std::string cache = scratch_dir("ndetect_axis");
    const CampaignReport classic = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(classic.stats.cell_misses, 1u);
    EXPECT_FALSE(classic.ndetect_axis);

    spec.ndetect = {1, 2};
    const CampaignReport warm = run_campaign(spec, cached_options(cache));
    EXPECT_TRUE(warm.ndetect_axis);
    EXPECT_EQ(warm.stats.cell_hits, 1u);    // the n=1 cell
    EXPECT_EQ(warm.stats.cell_misses, 1u);  // the n=2 cell
    const CampaignReport cold =
        run_campaign(spec, cached_options(scratch_dir("ndetect_axis_cold")));
    EXPECT_EQ(report_json(warm), report_json(cold));
    EXPECT_EQ(report_csv(warm), report_csv(cold));
    ASSERT_EQ(warm.cells.size(), 2u);
    EXPECT_EQ(warm.cells[0].ndetect, 1);
    EXPECT_EQ(warm.cells[1].ndetect, 2);
    // c17 is fully testable: at n=1 the derived quality figures collapse
    // to the (complete) coverage.
    EXPECT_EQ(warm.cells[0].worst_case_coverage, 1.0);
    EXPECT_EQ(warm.cells[0].ndetect_min, 1);
    EXPECT_GE(warm.cells[1].avg_case_coverage,
              warm.cells[1].worst_case_coverage);
}

TEST(CampaignCache, TestsArtifactSharedAcrossRuleDecks) {
    // Two cells differ only in the rule deck: the collapsed faults and the
    // ATPG test set depend on (circuit, seed, atpg) but not on the rules,
    // so the second cell's cold run reuses the first cell's artifacts.
    const CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    const CampaignReport cold =
        run_campaign(spec, cached_options(scratch_dir("xcell")));
    EXPECT_EQ(cold.stats.cell_misses, 4u);
    // 2 circuits x 2 rule decks: one tests miss + one tests hit each.
    EXPECT_EQ(cold.stats.tests_misses, 2u);
    EXPECT_EQ(cold.stats.tests_hits, 2u);
    EXPECT_EQ(cold.stats.sim_hits, 0u);  // sim depends on the rules
}

TEST(CampaignCache, UncachedRunsMatchCachedContent) {
    const CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    CampaignOptions uncached;  // no cache_dir at all
    const CampaignReport a = run_campaign(spec, uncached);
    const CampaignReport b =
        run_campaign(spec, cached_options(scratch_dir("nocache_cmp")));
    EXPECT_EQ(a.stats.cell_hits + a.stats.cell_misses, 0u);
    EXPECT_EQ(report_json(a), report_json(b));
}

TEST(CampaignCache, EngineAgnosticKeysWarmAcrossEngines) {
    // Artifact keys deliberately exclude the engine: every registered
    // engine is bit-identical, so a cache warmed by `ppsfp` must be hit —
    // and produce the byte-identical report — under `levelized`.
    const CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    const std::string cache = scratch_dir("xengine");

    CampaignOptions cold_opt = cached_options(cache);
    cold_opt.engine = "ppsfp";
    const CampaignReport cold = run_campaign(spec, cold_opt);
    EXPECT_EQ(cold.stats.cell_misses, 4u);

    CampaignOptions warm_opt = cached_options(cache);
    warm_opt.engine = "levelized";
    const CampaignReport warm = run_campaign(spec, warm_opt);
    EXPECT_EQ(warm.stats.cell_hits, 4u);
    EXPECT_EQ(warm.stats.cell_misses, 0u);
    EXPECT_EQ(report_json(warm), report_json(cold));

    // And the other way around, cold-to-cold: the engines compute the
    // byte-identical artifacts in the first place.
    CampaignOptions fresh = cached_options(scratch_dir("xengine2"));
    fresh.engine = "levelized";
    const CampaignReport lev_cold = run_campaign(spec, fresh);
    EXPECT_EQ(lev_cold.stats.cell_misses, 4u);
    EXPECT_EQ(report_json(lev_cold), report_json(cold));
}

TEST(CampaignSpec, EngineKeySelectsARegisteredEngine) {
    const CampaignSpec s = parse_campaign_spec(
        "[campaign]\n"
        "engine = levelized\n"
        "[grid]\n"
        "circuits = c17\n"
        "rules = uniform\n");
    EXPECT_EQ(s.engine, "levelized");
    EXPECT_EQ(parse_campaign_spec("[grid]\ncircuits = c17\nrules = uniform\n")
                  .engine,
              "");  // empty = DLPROJ_ENGINE / registry default
    EXPECT_THROW(parse_campaign_spec("[campaign]\n"
                                     "engine = warp9\n"
                                     "[grid]\n"
                                     "circuits = c17\n"
                                     "rules = uniform\n"),
                 std::runtime_error);
}

TEST(CampaignCache, ShardedRunsMergeToUnshardedReport) {
    const CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    const std::string cache = scratch_dir("shardmerge");
    const CampaignReport full = run_campaign(spec, cached_options(cache));

    std::vector<CellResult> merged;
    const std::string cache2 = scratch_dir("shardmerge2");
    for (int i = 0; i < 2; ++i) {
        CampaignOptions opt = cached_options(cache2);
        opt.shard = Shard{i, 2};
        const CampaignReport part = run_campaign(spec, opt);
        EXPECT_EQ(part.stats.cells_selected, 2u);
        merged.insert(merged.end(), part.cells.begin(), part.cells.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const CellResult& a, const CellResult& b) {
                  return a.index < b.index;
              });
    CampaignReport assembled;
    assembled.name = full.name;
    assembled.cells = std::move(merged);
    EXPECT_EQ(report_json(assembled), report_json(full));
    EXPECT_EQ(report_csv(assembled), report_csv(full));
}

TEST(CampaignCache, CancelThenResumeIsByteIdentical) {
    const CampaignSpec spec = parse_campaign_spec(kSmallSpec);

    // Reference: one uninterrupted run in its own cache.
    const CampaignReport reference =
        run_campaign(spec, cached_options(scratch_dir("resume_ref")));

    // Interrupted run: request cancellation (through a copy of the shared
    // token, as a watchdog thread would) once two cells have completed.
    // The campaign checks the budget at cell boundaries, completes nothing
    // further, and commits nothing for uncompleted work.
    const std::string cache = scratch_dir("resume");
    CampaignOptions opt = cached_options(cache);
    support::CancelToken killswitch = opt.budget.cancel;  // shared flag
    opt.progress = [&killswitch](std::string_view stage, std::size_t done,
                                 std::size_t) {
        if (stage == "campaign" && done == 2) killswitch.request();
    };
    const CampaignReport interrupted = run_campaign(spec, opt);
    EXPECT_EQ(interrupted.stats.stop, support::StopReason::Cancelled);
    EXPECT_EQ(interrupted.cells.size(), 2u);
    EXPECT_EQ(interrupted.stats.cells_completed, 2u);

    // Resume: same cache, fresh budget.  The first two cells are whole-cell
    // hits; the rest compute now.  The report must match the uninterrupted
    // reference byte for byte.
    const CampaignReport resumed = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(resumed.stats.cell_hits, 2u);
    EXPECT_EQ(resumed.stats.cell_misses, 2u);
    EXPECT_EQ(resumed.cells.size(), 4u);
    EXPECT_EQ(report_json(resumed), report_json(reference));
    EXPECT_EQ(report_csv(resumed), report_csv(reference));
}

TEST(CampaignCache, CorruptedEntriesAreRecomputedAndRepaired) {
    const CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    const std::string cache = scratch_dir("repair");
    const CampaignReport cold = run_campaign(spec, cached_options(cache));

    // Flip the last byte of every committed object.
    std::size_t damaged = 0;
    for (const auto& entry : fs::recursive_directory_iterator(cache)) {
        if (!entry.is_regular_file()) continue;
        std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                         std::ios::binary | std::ios::ate);
        ASSERT_TRUE(f.is_open());
        const auto size = static_cast<long long>(f.tellg());
        f.seekg(size - 1);
        const char last = static_cast<char>(f.get());
        f.seekp(size - 1);
        f.put(last == 'Z' ? 'z' : 'Z');
        ++damaged;
    }
    ASSERT_GT(damaged, 0u);

    // The warm run detects every corrupted object, recomputes, and matches
    // the cold report byte for byte.
    const CampaignReport repair = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(repair.stats.cell_hits, 0u);
    EXPECT_GT(repair.stats.store_corrupt, 0u);
    EXPECT_EQ(report_json(repair), report_json(cold));

    // ...and the repaired cache serves the next run entirely from hits.
    const CampaignReport healed = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(healed.stats.cell_hits, 4u);
    EXPECT_EQ(healed.stats.store_corrupt, 0u);
    EXPECT_EQ(report_json(healed), report_json(cold));
}

TEST(CampaignLint, BadCircuitFailsTheGateWithCellIdentity) {
    // The PR 4 static-analysis gate runs per cell; a defective circuit
    // aborts the campaign with the offending cell named in the error.
    CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    spec.circuits = {std::string(DLPROJ_DATA_DIR) + "/bad_dangling.bench"};
    try {
        run_campaign(spec, {});
        FAIL() << "expected the lint gate to reject the circuit";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("bad_dangling"),
                  std::string::npos)
            << e.what();
    }
}

// --- the analysis axis --------------------------------------------------

/// Writes the absorption fixture (y = a OR (a AND b), so y == a and the
/// AND gate is redundant logic) to a scratch .bench the grid can resolve.
std::string write_redundant_bench(const std::string& tag) {
    const std::string dir = scratch_dir("bench_" + tag);
    fs::create_directories(dir);
    const std::string path = dir + "/absorption.bench";
    std::ofstream out(path);
    out << "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
           "n1 = AND(a, b)\ny = OR(a, n1)\n";
    return path;
}

TEST(CampaignAnalysis, SpecAxisParsesAndEnumeratesInnermost) {
    const CampaignSpec s = parse_campaign_spec(
        "[grid]\n"
        "circuits = c17\n"
        "rules = bridging, uniform\n"
        "ndetect = 1, 2\n"
        "analysis = off, on\n");
    EXPECT_TRUE(s.has_analysis_axis());
    EXPECT_EQ(s.cell_count(), 1u * 2u * 2u * 2u);
    // The analysis setting is the innermost axis: it toggles fastest, so
    // classic specs (default {off}) enumerate exactly as before.
    EXPECT_FALSE(cell_at(s, 0).analysis);
    EXPECT_TRUE(cell_at(s, 1).analysis);
    EXPECT_EQ(cell_at(s, 1).ndetect, 1);
    EXPECT_EQ(cell_at(s, 2).ndetect, 2);
    EXPECT_EQ(cell_at(s, 3).rules, "bridging");
    EXPECT_EQ(cell_at(s, 4).rules, "uniform");

    EXPECT_FALSE(parse_campaign_spec(kSmallSpec).has_analysis_axis());
    EXPECT_THROW(parse_campaign_spec("[grid]\ncircuits = c17\n"
                                     "rules = uniform\nanalysis = maybe\n"),
                 std::runtime_error);
    EXPECT_THROW(parse_campaign_spec("[grid]\ncircuits = c17\n"
                                     "rules = uniform\nanalysis =\n"),
                 std::runtime_error);
}

TEST(CampaignAnalysis, CellArtifactV3RoundTrip) {
    // Analysis cells serialize as version 3 and round-trip the raw-curve
    // figures; classic cells keep the version-1 bytes untouched.
    CellResult c;
    c.circuit = "c17";
    c.rules = "uniform";
    c.atpg = "default";
    c.t_curve = flow::CoverageCurve({0.5, 1.0});
    EXPECT_EQ(serialize_cell(c).substr(0, 13), "dlproj-cell 1");

    c.analysis = true;
    c.untestable_faults = 3;
    c.fit_raw_r = 0.25;
    c.fit_raw_theta_max = 1.5;
    c.t_curve_raw = flow::CoverageCurve({0.375, 0.75});
    const std::string text = serialize_cell(c);
    EXPECT_EQ(text.substr(0, 13), "dlproj-cell 3");
    const CellResult back = parse_cell(text);
    EXPECT_TRUE(back.analysis);
    EXPECT_EQ(back.untestable_faults, 3u);
    EXPECT_EQ(back.fit_raw_r, 0.25);
    EXPECT_EQ(back.fit_raw_theta_max, 1.5);
    ASSERT_EQ(back.t_curve_raw.size(), 2u);
    EXPECT_EQ(back.t_curve_raw.final(), 0.75);
    EXPECT_EQ(back.t_curve.final(), 1.0);
}

TEST(CampaignAnalysis, AnalysisArtifactRoundTrip) {
    flow::ExperimentRunner::AnalysisData a;
    a.stuck = {{2, netlist::kNoNet, -1, false},
               {3, 4, 0, true},
               {5, 4, 1, false}};
    a.untestable = {0, 1, 0};
    a.stats.pivots_done = 7;
    a.stats.pivots_total = 9;
    a.stats.implications = 41;
    a.stats.learned = 5;
    a.stats.constant_lines = 1;
    a.stats.proofs = 1;
    const std::string text = serialize_analysis(a);
    const auto back = parse_analysis(text);
    EXPECT_EQ(back.stuck, a.stuck);
    EXPECT_EQ(back.untestable, a.untestable);
    EXPECT_EQ(back.stats.pivots_done, 7u);
    EXPECT_EQ(back.stats.pivots_total, 9u);
    EXPECT_EQ(back.stats.implications, 41u);
    EXPECT_EQ(back.stats.learned, 5u);
    EXPECT_EQ(back.stats.constant_lines, 1u);
    EXPECT_EQ(back.stats.proofs, 1u);
    EXPECT_EQ(back.stop, support::StopReason::None);
    // Proofs are deliberately not serialized: downstream consumers only
    // need the marks and the stats.
    EXPECT_TRUE(back.proofs.empty());
    EXPECT_THROW(parse_analysis("dlproj-analysis 99\n"), std::runtime_error);
    EXPECT_THROW(parse_analysis("garbage"), std::runtime_error);
}

TEST(CampaignAnalysis, AxisGridSharesClassicCacheByteIdentically) {
    // The off cells of an analysis-axis grid carry the same keys and bytes
    // as a classic campaign's, so a cache warmed without the axis serves
    // them; the report must not depend on hit-vs-fresh for any cell.
    CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    spec.circuits = {write_redundant_bench("axis")};
    spec.rules = {"uniform"};
    const std::string cache = scratch_dir("analysis_axis");
    const CampaignReport classic = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(classic.stats.cell_misses, 1u);
    EXPECT_FALSE(classic.analysis_axis);
    EXPECT_EQ(classic.stats.analysis_misses, 0u);  // stage never ran

    spec.analysis = {0, 1};
    const CampaignReport warm = run_campaign(spec, cached_options(cache));
    EXPECT_TRUE(warm.analysis_axis);
    EXPECT_EQ(warm.stats.cell_hits, 1u);    // the off cell: classic bytes
    EXPECT_EQ(warm.stats.cell_misses, 1u);  // the on cell
    EXPECT_EQ(warm.stats.analysis_misses, 1u);
    const CampaignReport cold = run_campaign(
        spec, cached_options(scratch_dir("analysis_axis_cold")));
    EXPECT_EQ(report_json(warm), report_json(cold));
    EXPECT_EQ(report_csv(warm), report_csv(cold));

    ASSERT_EQ(warm.cells.size(), 2u);
    const CellResult& off = warm.cells[0];
    const CellResult& on = warm.cells[1];
    EXPECT_FALSE(off.analysis);
    EXPECT_EQ(off.untestable_faults, 0u);
    EXPECT_TRUE(off.t_curve_raw.empty());
    EXPECT_TRUE(on.analysis);
    // The fixture's redundant AND gate yields untestable faults, and the
    // corrected coverage diverges from the raw curve in the report.
    EXPECT_GT(on.untestable_faults, 0u);
    ASSERT_FALSE(on.t_curve_raw.empty());
    EXPECT_LT(on.t_curve_raw.final(), on.t_curve.final());

    // A fully warm re-run hits both cells and reproduces the bytes.
    const CampaignReport rewarm = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(rewarm.stats.cell_hits, 2u);
    EXPECT_EQ(report_json(rewarm), report_json(warm));
}

TEST(CampaignAnalysis, EnvKillSwitchCachesAsClassic) {
    // DLPROJ_ANALYSIS=off is applied before cache keying, so a disabled
    // analysis cell is the classic cell: same keys, same bytes — and no
    // v3 artifacts are written that a later enabled run could mistake.
    CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    spec.circuits = {write_redundant_bench("kill")};
    spec.rules = {"uniform"};
    spec.analysis = {1};
    const std::string cache = scratch_dir("analysis_kill");

    ::setenv("DLPROJ_ANALYSIS", "off", 1);
    const CampaignReport off = run_campaign(spec, cached_options(cache));
    ::unsetenv("DLPROJ_ANALYSIS");
    EXPECT_EQ(off.stats.analysis_misses, 0u);
    ASSERT_EQ(off.cells.size(), 1u);
    EXPECT_FALSE(off.cells[0].analysis);
    EXPECT_EQ(off.cells[0].untestable_faults, 0u);

    // The same cache now serves a classic (no-axis) run byte-identically.
    CampaignSpec classic = spec;
    classic.analysis = {0};
    const CampaignReport warm = run_campaign(classic, cached_options(cache));
    EXPECT_EQ(warm.stats.cell_hits, 1u);

    // With the switch back on, the enabled cell is a different key — a
    // miss, not a stale classic hit.
    const CampaignReport on = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(on.stats.cell_hits, 0u);
    EXPECT_EQ(on.stats.cell_misses, 1u);
    EXPECT_TRUE(on.cells[0].analysis);
    EXPECT_GT(on.cells[0].untestable_faults, 0u);
}

TEST(CampaignDefectStats, SpecAxisParsesCanonicalizesAndEnumeratesInnermost) {
    const CampaignSpec s = parse_campaign_spec(
        "[grid]\n"
        "circuits = c17\n"
        "rules = bridging, uniform\n"
        "analysis = off, on\n"
        "defect_stats = poisson, negbin:2, negbin:inf\n");
    EXPECT_TRUE(s.has_defect_stats_axis());
    EXPECT_EQ(s.cell_count(), 2u * 2u * 3u);
    // The backend is the innermost axis, and descriptors are canonical:
    // negbin:inf is spelled poisson so the alpha -> inf limit shares the
    // Poisson cache keys.
    EXPECT_EQ(cell_at(s, 0).defect_stats, "poisson");
    EXPECT_EQ(cell_at(s, 1).defect_stats, "negbin:2");
    EXPECT_EQ(cell_at(s, 2).defect_stats, "poisson");
    EXPECT_FALSE(cell_at(s, 2).analysis);
    EXPECT_TRUE(cell_at(s, 3).analysis);
    EXPECT_EQ(cell_at(s, 6).rules, "uniform");

    // A spec without the key has the single-poisson default: no axis.
    EXPECT_FALSE(parse_campaign_spec(kSmallSpec).has_defect_stats_axis());
    EXPECT_THROW(
        parse_campaign_spec("[grid]\ncircuits = c17\nrules = uniform\n"
                            "defect_stats = negbin:-1\n"),
        std::runtime_error);
    EXPECT_THROW(
        parse_campaign_spec("[grid]\ncircuits = c17\nrules = uniform\n"
                            "defect_stats =\n"),
        std::runtime_error);
}

TEST(CampaignDefectStats, CellArtifactV4RoundTrip) {
    // Clustered cells serialize as version 4 and round-trip the backend
    // descriptor plus the joint clustered fit; classic cells keep the
    // version-1 bytes, and parsing v1 derives stat_yield = yield.
    CellResult c;
    c.circuit = "c17";
    c.rules = "uniform";
    c.atpg = "default";
    c.yield = 0.8;
    c.t_curve = flow::CoverageCurve({0.5, 1.0});
    const std::string classic = serialize_cell(c);
    EXPECT_EQ(classic.substr(0, 13), "dlproj-cell 1");
    EXPECT_EQ(parse_cell(classic).stat_yield, 0.8);

    c.defect_stats = "negbin:2";
    c.stat_yield = 0.8375;
    c.fit_c_r = 0.25;
    c.fit_c_theta_max = 1.5;
    c.fit_c_alpha = 2.125;
    c.fit_c_rms = 0.0625;
    c.analysis = true;  // v4 carries analysis and clustering together
    c.untestable_faults = 3;
    c.fit_raw_r = 0.5;
    c.fit_raw_theta_max = 1.25;
    c.t_curve_raw = flow::CoverageCurve({0.375, 0.75});
    const std::string text = serialize_cell(c);
    EXPECT_EQ(text.substr(0, 13), "dlproj-cell 4");
    const CellResult back = parse_cell(text);
    EXPECT_EQ(back.defect_stats, "negbin:2");
    EXPECT_EQ(back.stat_yield, 0.8375);
    EXPECT_EQ(back.fit_c_r, 0.25);
    EXPECT_EQ(back.fit_c_theta_max, 1.5);
    EXPECT_EQ(back.fit_c_alpha, 2.125);
    EXPECT_EQ(back.fit_c_rms, 0.0625);
    EXPECT_TRUE(back.analysis);
    EXPECT_EQ(back.untestable_faults, 3u);
    EXPECT_EQ(back.t_curve_raw.final(), 0.75);
}

TEST(CampaignDefectStats, AxisGridSharesClassicCacheByteIdentically) {
    // The poisson cells of a defect_stats-axis grid carry the same keys
    // and bytes as a classic campaign's, so a cache warmed without the
    // axis serves them — and the clustered cell reuses the cached
    // faults/tests/sim artifacts (the backend only reinterprets the
    // detection tables; it never re-simulates).
    CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    spec.circuits = {"c17"};
    spec.rules = {"uniform"};
    const std::string cache = scratch_dir("defect_stats_axis");
    const CampaignReport classic = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(classic.stats.cell_misses, 1u);
    EXPECT_FALSE(classic.defect_stats_axis);

    spec.defect_stats = {"poisson", "negbin:2"};
    const CampaignReport warm = run_campaign(spec, cached_options(cache));
    EXPECT_TRUE(warm.defect_stats_axis);
    EXPECT_EQ(warm.stats.cell_hits, 1u);    // the poisson cell
    EXPECT_EQ(warm.stats.cell_misses, 1u);  // the negbin cell
    EXPECT_EQ(warm.stats.sim_hits, 1u);     // shared across the axis
    EXPECT_EQ(warm.stats.sim_misses, 0u);
    const CampaignReport cold = run_campaign(
        spec, cached_options(scratch_dir("defect_stats_axis_cold")));
    EXPECT_EQ(report_json(warm), report_json(cold));
    EXPECT_EQ(report_csv(warm), report_csv(cold));

    ASSERT_EQ(warm.cells.size(), 2u);
    const CellResult& poisson = warm.cells[0];
    const CellResult& negbin = warm.cells[1];
    EXPECT_EQ(poisson.defect_stats, "poisson");
    EXPECT_EQ(poisson.stat_yield, poisson.yield);
    EXPECT_EQ(negbin.defect_stats, "negbin:2");
    // Weight scaling stays Poisson, so the workload facts and curves are
    // bit-identical; only the statistical reinterpretation differs.
    EXPECT_EQ(negbin.yield, poisson.yield);
    EXPECT_EQ(negbin.vector_count, poisson.vector_count);
    ASSERT_EQ(negbin.theta_curve.size(), poisson.theta_curve.size());
    EXPECT_EQ(negbin.theta_curve.final(), poisson.theta_curve.final());
    // Clustering concentrates defects on few dies: more dies are clean.
    EXPECT_GT(negbin.stat_yield, negbin.yield);
    EXPECT_GT(negbin.fit_c_alpha, 0.0);

    // A fully warm re-run hits both cells and reproduces the bytes.
    const CampaignReport rewarm = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(rewarm.stats.cell_hits, 2u);
    EXPECT_EQ(report_json(rewarm), report_json(warm));
}

TEST(CampaignDefectStats, AlphaToInfinityMatchesPoissonEndToEnd) {
    // negbin with a huge alpha must agree with the Poisson pipeline end
    // to end: same workload bytes, and the clustered yield converges to
    // the Poisson yield (error is O(lambda^2 / alpha)).
    CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    spec.circuits = {"c17"};
    spec.rules = {"uniform"};
    spec.defect_stats = {"poisson", "negbin:1000000"};
    const CampaignReport r =
        run_campaign(spec, cached_options(scratch_dir("defect_stats_inf")));
    ASSERT_EQ(r.cells.size(), 2u);
    const CellResult& poisson = r.cells[0];
    const CellResult& limit = r.cells[1];
    EXPECT_EQ(limit.defect_stats, "negbin:1000000");
    EXPECT_EQ(limit.yield, poisson.yield);
    EXPECT_EQ(limit.theta_curve.final(), poisson.theta_curve.final());
    EXPECT_NEAR(limit.stat_yield, poisson.yield,
                1e-5 * std::max(poisson.yield, 1e-300));
    // The joint clustered fit reproduces the Poisson fit in the limit.
    EXPECT_NEAR(limit.fit_c_r, poisson.fit_r, 1e-3 + 0.05 * poisson.fit_r);
    EXPECT_NEAR(limit.fit_c_theta_max, poisson.fit_theta_max,
                1e-3 + 0.05 * poisson.fit_theta_max);
}

TEST(CampaignBudget, VectorBudgetIsDeterministicConfigNotAnInterruption) {
    // max_vectors caps every cell identically; it is part of the cache key
    // and the stopped-early curves still cache and reproduce.
    CampaignSpec spec = parse_campaign_spec(kSmallSpec);
    spec.max_vectors = 8;
    const std::string cache = scratch_dir("budget");
    const CampaignReport a = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(a.stats.stop, support::StopReason::None);
    for (const CellResult& c : a.cells) EXPECT_LE(c.vector_count, 8u);
    const CampaignReport b = run_campaign(spec, cached_options(cache));
    EXPECT_EQ(b.stats.cell_hits, 4u);
    EXPECT_EQ(report_json(a), report_json(b));
    // A different budget is a different cache key, not a stale hit.
    CampaignSpec wider = spec;
    wider.max_vectors = 0;
    const CampaignReport c = run_campaign(wider, cached_options(cache));
    EXPECT_EQ(c.stats.cell_hits, 0u);
    EXPECT_NE(report_json(c), report_json(a));
}

}  // namespace
}  // namespace dlp::campaign
