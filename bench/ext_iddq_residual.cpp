// Extension (paper conclusions / section 2): "more elaborated tests, such
// as current or delay tests, must be developed in order to aim a
// zero-defect strategy."  This bench quantifies it: complementing the
// static voltage test with IDDQ measurements detects every bridge that
// ever conducts, raising theta_max and collapsing the residual defect
// level 1 - Y^(1-theta_max).
#include <cstdio>

#include "bench_util.h"
#include "model/dl_models.h"

int main() {
    using namespace dlp;
    const auto& r = bench::c432_experiment();
    bench::header("Extension: IDDQ testing vs the residual defect level, "
                  "c432, Y=0.75");

    std::printf("%8s %16s %16s\n", "k", "theta(k)%", "theta+IDDQ(k)%");
    for (int k : bench::log_ks(r.vector_count)) {
        const size_t i = static_cast<size_t>(k - 1);
        std::printf("%8d %16.2f %16.2f\n", k, 100 * r.theta_curve[i],
                    100 * r.theta_iddq_curve[i]);
    }

    const double dl_v = model::weighted_dl(r.yield, r.theta_curve.final());
    const double dl_iq =
        model::weighted_dl(r.yield, r.theta_iddq_curve.final());
    std::printf("\nEnd of test set:\n");
    std::printf("  voltage only:   theta=%.4f  DL=%7.0f ppm\n",
                r.theta_curve.final(), model::to_ppm(dl_v));
    std::printf("  voltage + IDDQ: theta=%.4f  DL=%7.0f ppm  (%.1fx lower)\n",
                r.theta_iddq_curve.final(), model::to_ppm(dl_iq),
                dl_iq > 0 ? dl_v / dl_iq : 0.0);
    std::printf("\nShape check: IDDQ flags every conducting bridge "
                "regardless of logic masking, so the weighted coverage "
                "ceiling rises and the residual defect level of the "
                "voltage-only strategy largely disappears (the remainder "
                "is opens, which need delay/two-pattern testing).\n");
    return 0;
}
