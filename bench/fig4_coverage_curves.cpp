// Reproduces Figure 4: T(k), theta(k) and Gamma(k) for the c432 circuit
// under the ATPG vector sequence (random prefix + deterministic tail).
#include <cmath>
#include <cstdio>

#include "bench_util.h"

int main() {
    using namespace dlp;
    const auto& r = bench::c432_experiment();
    bench::header("Figure 4: coverage vs vector count k, c432");
    std::printf("%8s %10s %12s %12s\n", "k", "T(k)%", "theta(k)%",
                "Gamma(k)%");
    for (int k : bench::log_ks(r.vector_count)) {
        const size_t i = static_cast<size_t>(k - 1);
        std::printf("%8d %10.2f %12.2f %12.2f\n", k, 100 * r.t_curve[i],
                    100 * r.theta_curve[i], 100 * r.gamma_curve[i]);
    }
    std::printf("\nFinal: T=%.2f%%  theta=%.2f%%  Gamma=%.2f%%  (%d vectors, "
                "%d random)\n",
                100 * r.t_curve.final(), 100 * r.theta_curve.final(),
                100 * r.gamma_curve.final(), r.vector_count,
                r.random_vectors);
    std::printf("Fitted susceptibilities: ln s_T=%.2f  ln s_theta=%.2f  "
                "theta_max(fit)=%.3f\n",
                std::log(r.t_law.susceptibility),
                std::log(r.theta_law.susceptibility),
                r.theta_law.saturation);
    std::printf("Shape check (paper): Gamma* > T* > theta* susceptibility "
                "ordering shows as Gamma(k) < T(k) at high k and theta "
                "saturating early below 1.\n");
    return 0;
}
