// Ablation D: how much does the logic-level bridging abstraction
// (wired-AND) disagree with the electrical (nodal-analysis) reference?
// The paper's core argument is that abstract fault models misjudge real
// defects; this quantifies it on the bridges both levels can represent
// (circuit-net to circuit-net pairs).
#include <cstdio>

#include "atpg/generate.h"
#include "bench_util.h"
#include "extract/extractor.h"
#include "gatesim/bridge_sim.h"
#include "layout/place_route.h"
#include "model/yield.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"
#include "switchsim/switch_fault_sim.h"

int main() {
    using namespace dlp;
    bench::header("Ablation D: gate-level wired-AND vs switch-level "
                  "electrical bridge model, c432");

    const auto mapped = netlist::techmap(netlist::build_c432());
    auto sa_faults = gatesim::collapse_faults(
        mapped, gatesim::full_fault_universe(mapped));
    atpg::TestGenOptions opt;
    opt.seed = 5;
    const auto tests = atpg::generate_test_set(mapped, sa_faults, opt);

    const auto chip = layout::place_and_route(mapped);
    auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const double scale =
        model::yield_scale_factor(extraction.total_weight, 0.75);
    for (auto& f : extraction.faults) f.weight *= scale;

    // The comparable subset: plain two-net bridges between circuit nets.
    std::vector<size_t> subset;
    std::vector<gatesim::GateBridgeFault> gate_faults;
    for (size_t i = 0; i < extraction.faults.size(); ++i) {
        const auto& f = extraction.faults[i];
        if (f.kind != extract::ExtractedFault::Kind::Bridge) continue;
        if (!f.c.is_none()) continue;
        if (!f.a.is_circuit() || !f.b.is_circuit()) continue;
        subset.push_back(i);
        gate_faults.push_back({static_cast<netlist::NetId>(f.a.index),
                               static_cast<netlist::NetId>(f.b.index),
                               gatesim::BridgeRule::WiredAnd});
    }

    std::fprintf(stderr, "[bench] simulating %zu comparable bridges at both "
                         "levels over %zu vectors...\n",
                 subset.size(), tests.vectors.size());

    gatesim::GateBridgeSimulator gate_sim(mapped, gate_faults);
    gate_sim.apply(tests.vectors);

    const auto swnet = switchsim::build_switch_netlist(mapped);
    const switchsim::SwitchSim sim(swnet);
    auto swfaults = flow::to_switch_faults(extraction, chip, swnet);
    switchsim::SwitchFaultSimulator swsim(sim, swfaults);
    std::vector<switchsim::Vector> vv;
    for (const auto& v : tests.vectors) vv.emplace_back(v.begin(), v.end());
    swsim.apply(vv);

    // Compare verdicts and weighted coverage on the subset.
    size_t agree = 0;
    size_t gate_only = 0;
    size_t switch_only = 0;
    double w_total = 0.0;
    double w_gate = 0.0;
    double w_switch = 0.0;
    for (size_t j = 0; j < subset.size(); ++j) {
        const size_t i = subset[j];
        const bool g = gate_sim.first_detected_at()[j] >= 0;
        const bool s = swsim.first_detected_at()[i] >= 0;
        const double w = extraction.faults[i].weight;
        w_total += w;
        if (g) w_gate += w;
        if (s) w_switch += w;
        if (g == s)
            ++agree;
        else if (g)
            ++gate_only;
        else
            ++switch_only;
    }

    std::printf("comparable bridges: %zu (circuit-net pairs)\n",
                subset.size());
    std::printf("verdict agreement: %.1f%%  (gate-only detects: %zu, "
                "switch-only detects: %zu)\n",
                100.0 * static_cast<double>(agree) /
                    static_cast<double>(subset.size()),
                gate_only, switch_only);
    std::printf("weighted coverage of the subset: gate-level %.2f%%, "
                "switch-level %.2f%%\n",
                100 * w_gate / w_total, 100 * w_switch / w_total);
    std::printf("\nShape check: the wired-AND abstraction misclassifies a "
                "visible fraction of bridges (strength ties, masked flips, "
                "feedback) - the paper's reason for simulating at "
                "transistor level.\n");
    return 0;
}
