// Emits BENCH_analysis.json: throughput and yield of the static
// untestability analysis (src/analysis) per corpus circuit — pivots and
// implications per second, proofs found (= faults proven untestable), and
// the time the independent checker (analysis::check_proof) takes to
// re-certify every emitted proof.  scripts/bench_analysis.sh wraps this
// and enforces the structural bars (every proof checks; the redundant
// fixtures yield proofs).
//
// Workloads: the c17/c432/adder/parity builders, the committed synth_2k
// netlist (loaded from data/, so run from the repo root or pass the data
// dir as argv[1]), and a synth_5k-scale random circuit built with the
// fixture's generator settings (96 inputs, 5000 gates, seed 7 — the
// committed synth_5k.bench predates the INPUT/OUTPUT header fix and does
// not parse).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/proof.h"
#include "analysis/untestable.h"
#include "bench_util.h"
#include "gatesim/faults.h"
#include "netlist/bench_parser.h"
#include "netlist/builders.h"

namespace {

using namespace dlp;
using clock_type = std::chrono::steady_clock;

struct Row {
    std::string circuit;
    std::size_t gates = 0;
    std::size_t faults = 0;
    std::size_t untestable = 0;
    std::size_t pivots = 0;
    std::uint64_t implications = 0;
    std::uint64_t learned = 0;
    double wall_s = 0.0;
    double proofs_per_s = 0.0;
    double check_s = 0.0;  ///< independent checker over every proof
    bool all_proofs_check = true;
};

Row run_circuit(const std::string& name, const netlist::Circuit& c) {
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));

    const auto t0 = clock_type::now();
    const analysis::AnalysisResult r = analysis::find_untestable(c, faults);
    const double secs =
        std::chrono::duration<double>(clock_type::now() - t0).count();

    const auto c0 = clock_type::now();
    bool all_ok = true;
    for (const auto& proof : r.proofs)
        all_ok = all_ok && analysis::check_proof(c, proof);
    const double check_s =
        std::chrono::duration<double>(clock_type::now() - c0).count();

    Row row;
    row.circuit = name;
    row.gates = c.gate_count();
    row.faults = faults.size();
    row.untestable = r.stats.proofs;
    row.pivots = r.stats.pivots_done;
    row.implications = r.stats.implications;
    row.learned = r.stats.learned;
    row.wall_s = secs;
    row.proofs_per_s = secs > 0.0 ? r.stats.proofs / secs : 0.0;
    row.check_s = check_s;
    row.all_proofs_check = all_ok;
    std::fprintf(stderr,
                 "[bench] %-10s %6zu faults  %5zu untestable  %7.3fs "
                 "analyze  %7.3fs check  %s\n",
                 name.c_str(), row.faults, row.untestable, secs, check_s,
                 all_ok ? "proofs ok" : "PROOF CHECK FAILED");
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string data_dir = argc > 1 ? argv[1] : "data";

    std::vector<Row> rows;
    rows.push_back(run_circuit("c17", netlist::build_c17()));
    rows.push_back(run_circuit("c432", netlist::build_c432()));
    rows.push_back(run_circuit("adder8", netlist::build_ripple_adder(8)));
    rows.push_back(run_circuit("parity16", netlist::build_parity_tree(16)));
    rows.push_back(run_circuit(
        "synth_2k", netlist::load_bench_file(data_dir + "/synth_2k.bench")));
    rows.push_back(
        run_circuit("synth_5k", netlist::build_random_circuit(96, 5000, 7)));

    // One row per line so scripts/bench_analysis.sh can grep/sed them.
    std::string body = "{\n  \"bench\": \"analysis\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char line[512];
        std::snprintf(
            line, sizeof line,
            "    {\"circuit\": \"%s\", \"gates\": %zu, \"faults\": %zu, "
            "\"untestable\": %zu, \"pivots\": %zu, \"implications\": %llu, "
            "\"learned\": %llu, \"wall_s\": %.4f, \"proofs_per_s\": %.2f, "
            "\"check_s\": %.4f, \"all_proofs_check\": %s}%s\n",
            r.circuit.c_str(), r.gates, r.faults, r.untestable, r.pivots,
            static_cast<unsigned long long>(r.implications),
            static_cast<unsigned long long>(r.learned), r.wall_s,
            r.proofs_per_s, r.check_s, r.all_proofs_check ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
        body += line;
    }
    body += "  ]\n}\n";

    const std::string path = "BENCH_analysis.json";
    if (dlp::bench::write_file(path, body))
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    else {
        std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
        return 1;
    }
    return 0;
}
