// Ablation C: the model parameters across circuit families.  The paper
// runs one circuit (c432); here we check that the regime (R >= 1,
// theta_max < 1, wide weight dispersion) is a property of the physical
// flow, not of one netlist.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"

int main() {
    using namespace dlp;
    bench::header("Ablation C: (R, theta_max) across workloads, Y=0.75");
    struct Work {
        const char* name;
        netlist::Circuit circuit;
    };
    Work works[] = {
        {"c432 (interrupt ctl)", netlist::build_c432()},
        {"alu8 (c880-class)", netlist::build_alu(8)},
        {"hamming16 (c499-class)", netlist::build_hamming_corrector(16)},
        {"adder12", netlist::build_ripple_adder(12)},
    };

    std::printf("%-24s %6s %7s %8s %11s %9s %11s %10s\n", "circuit", "gates",
                "faults", "R", "theta_max", "T_end%", "theta_end%",
                "decades");
    for (auto& w : works) {
        flow::ExperimentOptions opt;
        opt.atpg.seed = 5;
        const auto r = flow::run_experiment(w.circuit, opt);
        const auto [lo, hi] = std::minmax_element(r.fault_weights.begin(),
                                                  r.fault_weights.end());
        std::printf("%-24s %6zu %7zu %8.2f %11.3f %9.2f %11.2f %10.1f\n",
                    w.name, r.mapped_gates, r.realistic_faults, r.fit.r,
                    r.fit.theta_max, 100 * r.t_curve.final(),
                    100 * r.theta_curve.final(), std::log10(*hi / *lo));
    }
    std::printf("\nShape check: every workload lands in the paper's regime "
                "(R >= 1, theta_max < 1, multi-decade weight dispersion).\n");
    return 0;
}
