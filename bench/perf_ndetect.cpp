// Emits BENCH_ndetect.json: cost and quality of n-detection test sets vs
// the target n in {1, 2, 4, 8} (scripts/bench_ndetect.sh wraps this and
// enforces the structural bars).  Two workloads per n:
//
//  * c432, full flow — the physical design (layout, extraction, switch
//    netlist) is prepared once and reused; per n the ATPG, switch-level
//    simulation, and fit stages re-run and are timed together, since those
//    are exactly the n-dependent stages.  Rows carry theta_final, the
//    achieved DL of eq (3), and the Pomeranz & Reddy worst/average-case
//    coverage.  The random phase is kept short (max_random = 128) so the
//    top-up phase, not the shared random prefix, supplies the added
//    multiplicity — otherwise every n would grade the same vector set.
//
//  * synth_5k, gate level — the committed fixture's generator settings
//    (96 inputs, 5000 gates, seed 7); the full flow is out of reach at
//    this size, so the row times a levelized session over 256 fixed
//    random vectors at target n.  With the vectors fixed, the n axis
//    varies only the dropping schedule (higher n keeps faults live
//    longer), so wall_s is the marginal cost of counting and dl_ppm is
//    the Williams-Brown projection (eq 1) of the stuck-at coverage at an
//    assumed yield — constant in n by construction.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "flow/experiment.h"
#include "gatesim/engine.h"
#include "gatesim/patterns.h"
#include "model/dl_models.h"
#include "model/ndetect.h"
#include "netlist/builders.h"

namespace {

using namespace dlp;
using clock_type = std::chrono::steady_clock;

constexpr int kTargets[] = {1, 2, 4, 8};
constexpr double kAssumedYield = 0.75;  // synth_5k has no layout -> no Y

struct Row {
    std::string workload;
    int ndetect = 0;
    double wall_s = 0.0;
    int vectors = 0;
    double theta_final = 0.0;  // c432 rows; synth rows carry coverage here
    double dl_ppm = 0.0;
    int min_detections = 0;
    double mean_detections = 0.0;
    double worst_case_coverage = 0.0;
    double avg_case_coverage = 0.0;
};

std::vector<Row> c432_flow_rows() {
    flow::ExperimentOptions opt;
    opt.atpg.seed = 5;
    opt.atpg.max_random = 128;  // see the file comment
    flow::ExperimentRunner runner(netlist::build_c432(), opt);
    std::fprintf(stderr, "[bench] preparing c432 physical design...\n");
    runner.prepare();

    std::vector<Row> rows;
    for (const int n : kTargets) {
        runner.options().atpg.ndetect = n;
        runner.invalidate_tests();
        const auto t0 = clock_type::now();
        const flow::ExperimentResult& r = runner.run();
        const double secs =
            std::chrono::duration<double>(clock_type::now() - t0).count();
        Row row;
        row.workload = "c432-flow";
        row.ndetect = n;
        row.wall_s = secs;
        row.vectors = r.vector_count;
        row.theta_final = r.theta_curve.final();
        row.dl_ppm =
            model::to_ppm(model::weighted_dl(r.yield, row.theta_final));
        row.min_detections = r.ndetect.min_detections;
        row.mean_detections = r.ndetect.mean_detections;
        row.worst_case_coverage = r.ndetect.worst_case_coverage;
        row.avg_case_coverage = r.ndetect.avg_case_coverage;
        rows.push_back(row);
        std::fprintf(stderr,
                     "[bench] c432-flow      n=%d %4d vec  %6.2fs  "
                     "theta=%.4f wc=%.4f\n",
                     n, row.vectors, secs, row.theta_final,
                     row.worst_case_coverage);
    }
    return rows;
}

std::vector<Row> synth5k_gatesim_rows() {
    const netlist::Circuit c = netlist::build_random_circuit(96, 5000, 7);
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(1);
    const auto vectors = rng.vectors(c, 256);
    const sim::Engine& eng = sim::engine("levelized");

    std::vector<Row> rows;
    for (const int n : kTargets) {
        const auto t0 = clock_type::now();
        auto session = eng.open(c, {faults.begin(), faults.end()}, {},
                                sim::SessionOptions{n});
        session->apply(std::span<const gatesim::Vector>(vectors));
        const double secs =
            std::chrono::duration<double>(clock_type::now() - t0).count();
        const auto profile =
            model::ndetect_profile(session->detection_counts(), n);
        Row row;
        row.workload = "synth_5k-gatesim";
        row.ndetect = n;
        row.wall_s = secs;
        row.vectors = 256;
        row.theta_final = session->coverage();  // stuck-at T, no layout
        row.dl_ppm = model::to_ppm(
            model::williams_brown_dl(kAssumedYield, row.theta_final));
        row.min_detections = profile.min_detections;
        row.mean_detections = profile.mean_detections;
        row.worst_case_coverage = profile.worst_case_coverage;
        row.avg_case_coverage = profile.avg_case_coverage;
        rows.push_back(row);
        std::fprintf(stderr,
                     "[bench] synth_5k-gate  n=%d %4d vec  %6.2fs  "
                     "T=%.4f wc=%.4f\n",
                     n, row.vectors, secs, row.theta_final,
                     row.worst_case_coverage);
    }
    return rows;
}

}  // namespace

int main() {
    std::vector<Row> rows = c432_flow_rows();
    const std::vector<Row> synth = synth5k_gatesim_rows();
    rows.insert(rows.end(), synth.begin(), synth.end());

    // One row per line so scripts/bench_ndetect.sh can grep/sed them.
    std::string body = "{\n  \"bench\": \"ndetect\",\n";
    body += "  \"assumed_yield_synth\": " + std::to_string(kAssumedYield) +
            ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char line[512];
        std::snprintf(
            line, sizeof line,
            "    {\"workload\": \"%s\", \"ndetect\": %d, \"wall_s\": %.4f, "
            "\"vectors\": %d, \"theta_final\": %.6f, \"dl_ppm\": %.2f, "
            "\"min_detections\": %d, \"mean_detections\": %.4f, "
            "\"worst_case_coverage\": %.6f, \"avg_case_coverage\": %.6f}%s\n",
            r.workload.c_str(), r.ndetect, r.wall_s, r.vectors, r.theta_final,
            r.dl_ppm, r.min_detections, r.mean_detections,
            r.worst_case_coverage, r.avg_case_coverage,
            i + 1 < rows.size() ? "," : "");
        body += line;
    }
    body += "  ]\n}\n";

    const std::string path = "BENCH_ndetect.json";
    if (dlp::bench::write_file(path, body))
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    else {
        std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
        return 1;
    }
    return 0;
}
