// Reproduces Figure 2: DL(T) for Williams-Brown vs the proposed model
// (eq. 11) with R = 2, theta_max = 0.96, at Y = 0.75.
#include <cstdio>

#include "bench_util.h"
#include "model/dl_models.h"

int main() {
    using namespace dlp;
    bench::header("Figure 2: DL(T), Y=0.75 - Williams-Brown vs eq. (11), "
                  "R=2, theta_max=0.96");
    const double y = 0.75;
    const model::ProposedModel m{y, 2.0, 0.96};
    std::printf("%8s %16s %22s\n", "T%", "WB DL (ppm)", "eq.11 DL (ppm)");
    for (int i = 0; i <= 20; ++i) {
        const double t = i / 20.0;
        std::printf("%8.1f %16.1f %22.1f\n", 100 * t,
                    model::to_ppm(model::williams_brown_dl(y, t)),
                    model::to_ppm(m.dl(t)));
    }
    std::printf("\nResidual defect level 1-Y^(1-theta_max) = %.1f ppm\n",
                model::to_ppm(m.residual_dl()));
    std::printf("Shape check: eq.11 below WB in mid range (concave), above "
                "WB near T=1 (residual floor).\n");
    return 0;
}
