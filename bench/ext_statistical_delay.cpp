// Extension (paper ref. [8]): the statistical delay-fault model on c432.
// Static timing gives every line a slack; a transition test set exercises
// a subset of lines; delay-defect coverage then depends strongly on the
// ratio of test clock to mission clock - the classic Park-Mercer-Williams
// result behind the paper's call for delay testing in production.
#include <algorithm>
#include <cstdio>

#include "atpg/transition_tpg.h"
#include "bench_util.h"
#include "gatesim/timing.h"
#include "model/delay_model.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"

int main() {
    using namespace dlp;
    bench::header("Extension: statistical delay-fault coverage vs test "
                  "clock, c432 (ref. [8] model)");

    const auto mapped = netlist::techmap(netlist::build_c432());

    // Transition test set: which lines does it exercise (launch + detect)?
    atpg::TransitionTestOptions opt;
    opt.seed = 7;
    auto faults = gatesim::full_transition_universe(mapped);
    const auto tf = atpg::generate_transition_tests(mapped, faults, opt);
    std::vector<bool> exercised(mapped.gate_count(), false);
    for (size_t i = 0; i < faults.size(); ++i)
        if (tf.first_detected_at[i] >= 1) exercised[faults[i].line] = true;

    // Mission timing: clock = critical delay * 1.05 (5% guard band).
    const gatesim::DelayModel delays;
    const auto op =
        gatesim::analyze_timing(mapped, delays, 0.0);
    const double mission = op.critical_delay * 1.05;
    const auto op_timing = gatesim::analyze_timing(mapped, delays, mission);
    std::printf("critical delay %.2f, mission clock %.2f, %zu lines, "
                "%.1f%% exercised by the TF set\n\n",
                op.critical_delay, mission, mapped.gate_count(),
                100.0 *
                    static_cast<double>(std::count(exercised.begin(),
                                                   exercised.end(), true)) /
                    static_cast<double>(mapped.gate_count()));

    const model::DelaySizeDistribution dist{
        model::DelaySizeDistribution::Kind::Exponential,
        op.critical_delay / 4.0};

    std::printf("%18s %22s %20s\n", "test clock/mission",
                "delay-defect coverage%", "P(at-speed fail)%");
    for (double ratio : {0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0}) {
        const auto test_timing =
            gatesim::analyze_timing(mapped, delays, mission * ratio);
        std::vector<model::DelayLine> lines(mapped.gate_count());
        for (netlist::NetId n = 0; n < mapped.gate_count(); ++n) {
            lines[n].slack_op = op_timing.slack[n];
            lines[n].slack_test = test_timing.slack[n];
            lines[n].exercised = exercised[n];
        }
        std::printf("%18.2f %22.2f %20.2f\n", ratio,
                    100 * model::delay_defect_coverage(lines, dist),
                    100 * model::delay_failure_probability(lines, dist));
    }
    std::printf("\nShape check (ref. [8]): testing at the mission clock or "
                "faster keeps coverage near the exercised fraction; slower "
                "test clocks let small-but-fatal delay defects escape, and "
                "coverage falls monotonically with the test period.\n");
    return 0;
}
