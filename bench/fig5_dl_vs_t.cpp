// Reproduces Figure 5: simulated fallout points (T(k), DL(theta(k))) vs the
// Williams-Brown curve and the fitted proposed model (paper fit: R=1.9,
// theta_max=.96 at Y=.75).
#include <cstdio>

#include "bench_util.h"
#include "model/dl_models.h"

int main() {
    using namespace dlp;
    const auto& r = bench::c432_experiment();
    bench::header("Figure 5: DL vs stuck-at coverage T, c432, Y=0.75");

    const model::ProposedModel fitted{r.yield, r.fit.r, r.fit.theta_max};
    std::printf("Fitted parameters: R = %.2f (paper 1.9), theta_max = %.3f "
                "(paper 0.96), rms = %.3g\n\n",
                r.fit.r, r.fit.theta_max, r.fit.rms_error);
    std::printf("%8s %14s %14s %14s\n", "T%", "sim DL(ppm)", "WB DL(ppm)",
                "fit DL(ppm)");
    for (const auto& p : r.dl_vs_t) {
        std::printf("%8.2f %14.0f %14.0f %14.0f\n", 100 * p.coverage,
                    model::to_ppm(p.defect_level),
                    model::to_ppm(
                        model::williams_brown_dl(r.yield, p.coverage)),
                    model::to_ppm(fitted.dl(p.coverage)));
    }
    std::printf("\nShape check: simulated points reproduce the concavity of "
                "actual fallout data; eq.(11) tracks them, Williams-Brown "
                "does not.\n");
    return 0;
}
