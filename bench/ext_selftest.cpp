// Extension (paper ref. [19], the source of eq. 7): test length in a
// self-testing environment.  LFSR patterns drive the same coverage-growth
// law as ideal random vectors, so the susceptibility fitted from a BIST
// run predicts the test length for any target coverage; the MISR adds only
// a ~2^-width aliasing risk.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "gatesim/bist.h"
#include "gatesim/fault_sim.h"
#include "gatesim/patterns.h"
#include "model/coverage_laws.h"
#include "netlist/builders.h"

int main() {
    using namespace dlp;
    bench::header("Extension: test length in a self-testing environment "
                  "(ref. [19]), c432");

    const auto c = netlist::build_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));

    const auto curve_of = [&](auto&& make_vector, const char* name) {
        gatesim::FaultSimulator sim(c, faults);
        std::vector<gatesim::Vector> vs;
        for (int i = 0; i < 2048; ++i) vs.push_back(make_vector());
        sim.apply(vs);
        const auto curve = sim.coverage_curve();
        std::vector<model::CoveragePoint> pts;
        for (size_t i = 1; i < curve.size(); i += 7)
            pts.push_back({static_cast<double>(i + 1), curve[i]});
        const auto law = model::fit_coverage_law(pts, false);
        std::printf("%-18s coverage@64=%6.2f%%  @512=%6.2f%%  @2048=%6.2f%%"
                    "  ln(s_T)=%5.2f\n",
                    name, 100 * curve[63], 100 * curve[511],
                    100 * curve[2047], std::log(law.susceptibility));
        return law;
    };

    gatesim::Lfsr lfsr(32, 0, 0xACE1);
    const auto lfsr_law =
        curve_of([&] { return lfsr.next_vector(c); }, "LFSR-32 (BIST)");
    gatesim::RandomPatternGenerator rng(4);
    curve_of([&] { return rng.next_vector(c); }, "ideal random");

    std::printf("\neq. (7) test-length predictions from the BIST fit:\n");
    for (double target : {0.90, 0.95, 0.98}) {
        std::printf("  T = %.0f%%  ->  k = %.0f vectors\n", 100 * target,
                    lfsr_law.vectors_for(target));
    }
    std::printf("\nMISR aliasing: a 16-bit signature register misses a "
                "failing response stream with probability ~%.1e.\n",
                std::pow(2.0, -16.0));
    std::printf("\nShape check (ref. [19]): the LFSR behaves as the random "
                "source eq. (7) assumes; test length for a coverage target "
                "follows k = (1 - T)^(-ln s_T).\n");
    return 0;
}
