// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "flow/experiment.h"
#include "netlist/builders.h"
#include "obs/telemetry.h"

namespace dlp::bench {

/// Runs (once) the paper's c432 experiment with default options.
inline const flow::ExperimentResult& c432_experiment() {
    static const flow::ExperimentResult r = [] {
        flow::ExperimentOptions opt;
        opt.atpg.seed = 5;
        std::fprintf(stderr, "[bench] running c432 flow (layout + extraction "
                             "+ switch-level fault simulation)...\n");
        return flow::run_experiment(netlist::build_c432(), opt);
    }();
    return r;
}

inline void header(const std::string& title) {
    std::printf("==== %s ====\n", title.c_str());
}

/// `"counters": {...}, "gauges": {...}` JSON fields built from the current
/// telemetry snapshot, for the BENCH_*.json emitters (two-space indent,
/// no trailing comma — splice as the last fields of the top-level object).
inline std::string telemetry_json_fields() {
    std::string out = "  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : obs::counters_snapshot()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + std::to_string(value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : obs::gauges_snapshot()) {
        char num[64];
        std::snprintf(num, sizeof num, "%.9g", value);
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + num;
    }
    out += first ? "}" : "\n  }";
    return out;
}

inline bool write_file(const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

/// Log-spaced k indices (1-based) up to n.
inline std::vector<int> log_ks(int n) {
    std::vector<int> ks;
    int k = 1;
    while (k <= n) {
        ks.push_back(k);
        k = std::max(k + 1, k + k / 4);
    }
    if (ks.back() != n) ks.push_back(n);
    return ks;
}

}  // namespace dlp::bench
