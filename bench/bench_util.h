// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "flow/experiment.h"
#include "netlist/builders.h"

namespace dlp::bench {

/// Runs (once) the paper's c432 experiment with default options.
inline const flow::ExperimentResult& c432_experiment() {
    static const flow::ExperimentResult r = [] {
        flow::ExperimentOptions opt;
        opt.atpg.seed = 5;
        std::fprintf(stderr, "[bench] running c432 flow (layout + extraction "
                             "+ switch-level fault simulation)...\n");
        return flow::run_experiment(netlist::build_c432(), opt);
    }();
    return r;
}

inline void header(const std::string& title) {
    std::printf("==== %s ====\n", title.c_str());
}

/// Log-spaced k indices (1-based) up to n.
inline std::vector<int> log_ks(int n) {
    std::vector<int> ks;
    int k = 1;
    while (k <= n) {
        ks.push_back(k);
        k = std::max(k + 1, k + k / 4);
    }
    if (ks.back() != n) ks.push_back(n);
    return ks;
}

}  // namespace dlp::bench
