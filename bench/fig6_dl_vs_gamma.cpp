// Reproduces Figure 6: the same simulated fallout plotted against the
// UNWEIGHTED realistic coverage Gamma, vs DL = 1 - Y^(1-Gamma).  Even a
// complete realistic fault list mispredicts DL if the weights are dropped.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "model/dl_models.h"

int main() {
    using namespace dlp;
    const auto& r = bench::c432_experiment();
    bench::header("Figure 6: DL vs unweighted coverage Gamma, c432, Y=0.75");
    std::printf("%10s %16s %20s\n", "Gamma%", "sim DL(ppm)",
                "1-Y^(1-Gamma) (ppm)");
    double max_gap = 0.0;
    for (const auto& p : r.dl_vs_gamma) {
        const double naive = model::williams_brown_dl(r.yield, p.coverage);
        max_gap = std::max(max_gap, std::abs(naive - p.defect_level));
        std::printf("%10.2f %16.0f %20.0f\n", 100 * p.coverage,
                    model::to_ppm(p.defect_level), model::to_ppm(naive));
    }
    std::printf("\nLargest misprediction using unweighted Gamma: %.0f ppm\n",
                model::to_ppm(max_gap));
    std::printf("Shape check: same concave deviation as fig. 5 - the fault "
                "set must be weighted per eq.(4) for accurate DL.\n");
    return 0;
}
