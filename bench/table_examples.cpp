// Reproduces the two worked numeric examples of section 2.
#include <cstdio>

#include "bench_util.h"
#include "model/dl_models.h"

int main() {
    using namespace dlp;
    bench::header("Section 2 worked examples");

    // Example 1: Y=.75, theta_max=1, R=2.1, target DL = 100 ppm.
    {
        const model::ProposedModel m{0.75, 2.1, 1.0};
        const double t = m.required_coverage(model::from_ppm(100));
        const double t_wb =
            model::williams_brown_required_coverage(0.75, model::from_ppm(100));
        std::printf("Example 1: required T for DL=100ppm @ Y=.75, R=2.1, "
                    "theta_max=1\n");
        std::printf("  eq.(11):        T = %.2f%%   (paper: 97.7%%)\n",
                    100 * t);
        std::printf("  Williams-Brown: T = %.2f%%   (paper: 99.97%%)\n",
                    100 * t_wb);
    }

    // Example 2: Y=.75, T=100%, theta_max=.99, R=1.
    {
        const model::ProposedModel m{0.75, 1.0, 0.99};
        std::printf("Example 2: DL at T=100%% @ Y=.75, theta_max=.99, R=1\n");
        std::printf("  eq.(11):        DL = %.0f ppm  (closed form "
                    "1-0.75^0.01 = 2873 ppm; OCR of the paper reads 2279)\n",
                    model::to_ppm(m.dl(1.0)));
        std::printf("  Williams-Brown: DL = %.0f ppm (claims zero)\n",
                    model::to_ppm(model::williams_brown_dl(0.75, 1.0)));
    }
    return 0;
}
