// Ablation B: fit quality of the three DL models on the same simulated
// fallout - Williams-Brown (no parameters), Agrawal et al. (n), and the
// proposed eq. (11) (R, theta_max).  The paper's argument: eq. (11)
// matches without assuming abstract fault multiplicity.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "model/dl_models.h"

int main() {
    using namespace dlp;
    const auto& r = bench::c432_experiment();
    bench::header("Ablation B: model fits on the simulated c432 fallout");

    const auto rms = [&](auto&& dl_of_t) {
        double sum = 0.0;
        for (const auto& p : r.dl_vs_t) {
            const double d = dl_of_t(p.coverage) - p.defect_level;
            sum += d * d;
        }
        return std::sqrt(sum / static_cast<double>(r.dl_vs_t.size()));
    };

    const double wb_rms = rms([&](double t) {
        return model::williams_brown_dl(r.yield, t);
    });
    const auto agrawal = model::fit_agrawal_model(r.yield, r.dl_vs_t);
    const double ag_rms = rms([&](double t) {
        return model::agrawal_dl(r.yield, t, agrawal.n_avg);
    });
    const model::ProposedModel prop{r.yield, r.fit.r, r.fit.theta_max};
    const double prop_rms = rms([&](double t) { return prop.dl(t); });

    std::printf("%-28s %18s %s\n", "model", "RMS error (ppm)", "parameters");
    std::printf("%-28s %18.0f %s\n", "Williams-Brown (eq.1)",
                model::to_ppm(wb_rms), "-");
    std::printf("%-28s %18.0f n=%.2f (curve-fitted)\n",
                "Agrawal et al. (eq.2)", model::to_ppm(ag_rms),
                agrawal.n_avg);
    std::printf("%-28s %18.0f R=%.2f theta_max=%.3f\n", "proposed (eq.11)",
                model::to_ppm(prop_rms), r.fit.r, r.fit.theta_max);
    std::printf("\nShape check: eq.(11) fits at least as well as Agrawal "
                "while its parameters come from physics (susceptibility "
                "ratio, residual coverage), not post-hoc multiplicity.\n");
    return 0;
}
