// Reproduces Figure 3: histogram of extracted fault weights for the c432
// layout.  The paper's point: weights span roughly three decades, so the
// equal-probability assumption is untenable.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "model/stats.h"

int main() {
    using namespace dlp;
    const auto& r = bench::c432_experiment();
    bench::header("Figure 3: fault-weight histogram, c432 standard-cell "
                  "layout");

    auto ws = r.fault_weights;
    const auto [lo_it, hi_it] = std::minmax_element(ws.begin(), ws.end());
    model::LogHistogram hist(*lo_it * 0.99, *hi_it * 1.01, 16);
    hist.add_all(ws);

    std::printf("%zu weighted realistic faults, total weight %.4f "
                "(Y = %.3f)\n\n", ws.size(), -std::log(r.yield), r.yield);
    std::printf("%s\n", hist.render(48).c_str());
    std::printf("Dispersion: %.2f decades (paper: ~3 decades, 1e-9..1e-6)\n",
                hist.dispersion_decades());
    std::printf("Shape check: wide multi-decade spread -> weighting cannot "
                "be ignored (contra Huisman [12]).\n");
    return 0;
}
