// Extension (paper conclusions): "Transistor-level bridging and open
// faults and more sophisticated detection techniques, like delay and/or
// current testing, must become part of the production routine."
//
// This bench quantifies the delay-testing half: appending two-pattern
// transition tests to the stuck-at set raises the switch-level weighted
// coverage of *opens* (stuck-open transistors need exactly such pairs) and
// lowers the residual defect level of the voltage-only strategy.
#include <algorithm>
#include <cstdio>

#include "atpg/generate.h"
#include "atpg/transition_tpg.h"
#include "bench_util.h"
#include "extract/extractor.h"
#include "layout/place_route.h"
#include "model/dl_models.h"
#include "model/yield.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"
#include "switchsim/switch_fault_sim.h"

int main() {
    using namespace dlp;
    bench::header("Extension: two-pattern (transition) tests vs stuck-open "
                  "residual, c432, Y=0.75");

    const auto mapped = netlist::techmap(netlist::build_c432());
    std::fprintf(stderr, "[bench] generating stuck-at and transition test "
                         "sets + running switch-level simulation twice...\n");

    // Stuck-at set (the paper's baseline).
    auto sa_faults = gatesim::collapse_faults(
        mapped, gatesim::full_fault_universe(mapped));
    atpg::TestGenOptions sa_opt;
    sa_opt.seed = 5;
    const auto sa = atpg::generate_test_set(mapped, sa_faults, sa_opt);

    // Transition set appended after the stuck-at sequence.
    atpg::TransitionTestOptions tf_opt;
    tf_opt.seed = 6;
    tf_opt.max_random = 512;
    const auto tf = atpg::generate_transition_tests(
        mapped, gatesim::full_transition_universe(mapped), tf_opt);

    // Weighted realistic fault list.
    const auto chip = layout::place_and_route(mapped);
    auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const double scale =
        model::yield_scale_factor(extraction.total_weight, 0.75);
    for (auto& f : extraction.faults) f.weight *= scale;
    const auto swnet = switchsim::build_switch_netlist(mapped);
    const switchsim::SwitchSim sim(swnet);
    const auto swfaults = flow::to_switch_faults(extraction, chip, swnet);

    const auto run = [&](const std::vector<gatesim::Vector>& vectors) {
        switchsim::SwitchFaultSimulator fs(sim, swfaults);
        std::vector<switchsim::Vector> vv;
        for (const auto& v : vectors) vv.emplace_back(v.begin(), v.end());
        fs.apply(vv);
        // Split theta by mechanism: opens vs everything else.
        double open_w = 0.0;
        double open_det = 0.0;
        for (size_t i = 0; i < swfaults.size(); ++i) {
            const auto kind = extraction.faults[i].kind;
            const bool is_open =
                kind == extract::ExtractedFault::Kind::TransistorOpen ||
                kind == extract::ExtractedFault::Kind::GateFloat ||
                kind == extract::ExtractedFault::Kind::NetOpen;
            if (!is_open) continue;
            open_w += swfaults[i].weight;
            if (fs.first_detected_at()[i] >= 0)
                open_det += swfaults[i].weight;
        }
        struct Out {
            double theta;
            double theta_opens;
        };
        return Out{fs.weighted_coverage(),
                   open_w == 0.0 ? 0.0 : open_det / open_w};
    };

    const auto base = run(sa.vectors);
    auto combined_vectors = sa.vectors;
    combined_vectors.insert(combined_vectors.end(), tf.vectors.begin(),
                            tf.vectors.end());
    const auto combined = run(combined_vectors);

    // A production-length test (short!) shows the pair effect clearly: a
    // compact stuck-at set barely initializes stuck-opens, while adding the
    // two-pattern tail recovers them.
    const std::vector<gatesim::Vector> short_sa(
        sa.vectors.begin(),
        sa.vectors.begin() + std::min<size_t>(64, sa.vectors.size()));
    const auto short_base = run(short_sa);
    auto short_combined_vectors = short_sa;
    short_combined_vectors.insert(short_combined_vectors.end(),
                                  tf.vectors.begin(), tf.vectors.end());
    const auto short_combined = run(short_combined_vectors);

    std::printf("stuck-at set: %zu vectors; transition set adds %zu "
                "(%.1f%% TF coverage, %d deterministic pairs)\n",
                sa.vectors.size(), tf.vectors.size(), 100 * tf.coverage(),
                tf.pair_count);
    std::printf("\n%-32s %10s %14s %12s\n", "test strategy", "theta%",
                "theta(opens)%", "DL(ppm)");
    const auto dl = [](double theta) {
        return model::to_ppm(model::weighted_dl(0.75, theta));
    };
    const auto row = [&](const char* name, const auto& r) {
        std::printf("%-32s %10.2f %14.2f %12.0f\n", name, 100 * r.theta,
                    100 * r.theta_opens, dl(r.theta));
    };
    row("stuck-at, 64 vectors", short_base);
    row("stuck-at 64 + transition", short_combined);
    row("stuck-at, full sequence", base);
    row("stuck-at full + transition", combined);
    std::printf("\nShape check: at production-like test lengths the "
                "two-pattern tail lifts the weighted coverage of opens "
                "(stuck-open transistors need initialized pairs).  A very "
                "long random sequence supplies such pairs implicitly, so "
                "its marginal gain shrinks - which is itself the reason "
                "compact delay test sets matter in production.\n");
    return 0;
}
