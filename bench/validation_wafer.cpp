// Validation: the defect-level equations against die-level Monte Carlo.
// Eq. (3) DL = 1 - Y^(1-theta) is derived analytically; here 400k dies are
// diced, defected, tested and shipped per configuration, and the observed
// shipped-defective fraction must land on the closed forms — Poisson,
// negative-binomial (Stapper clustering) and the hierarchical
// wafer/die/region composition of model/defect_stats_model.h.
//
// The per-fault detection verdicts come straight from the flow result's
// first_detected_at table (1-based vector index, -1 = never detected):
// "detected within k vectors" is 1 <= at <= k.  Earlier revisions
// approximated the verdicts with a theta-preserving two-class split in
// weight order; the real verdicts make the Monte Carlo an end-to-end check
// of the fault simulation, not just of the equations.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace {
// std::vector<bool> cannot view as std::span<const bool>; keep plain bools.
std::unique_ptr<bool[]> g_bools;
std::span<const bool> bools(const std::vector<char>& v) {
    g_bools = std::make_unique<bool[]>(v.size());
    for (size_t i = 0; i < v.size(); ++i) g_bools[i] = v[i] != 0;
    return {g_bools.get(), v.size()};
}
}  // namespace

#include "bench_util.h"
#include "flow/wafer.h"
#include "model/defect_stats_model.h"
#include "model/dl_models.h"
#include "model/fit.h"
#include "model/planning.h"
#include "model/yield.h"
#include "obs/telemetry.h"
#include "parallel/parallel_for.h"

int main(int argc, char** argv) {
    using namespace dlp;
    // Optional argument: base seed for the wafer Monte Carlo (each run below
    // offsets it deterministically).  Default reproduces the paper tables.
    unsigned seed_base = 11;
    if (argc > 1) seed_base =
        static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));
    const auto& r = bench::c432_experiment();
    // Telemetry on (counters reset) for the Monte-Carlo section only, so
    // BENCH_wafer.json attributes throughput to the wafer simulator alone.
    obs::set_enabled(true);
    obs::reset();
    const auto mc_t0 = std::chrono::steady_clock::now();
    bench::header("Validation: DL equations vs die-level Monte Carlo, c432");
    std::printf("wafer RNG seed base: %u%s (override: validation_wafer "
                "<seed>)\n", seed_base,
                argc > 1 ? " [from command line]" : "");

    const std::vector<double>& w = r.fault_weights;
    double total = 0.0;
    for (double x : w) total += x;
    const double lambda = model::total_weight_for_yield(r.yield);

    // Real per-fault verdicts at a test-length prefix k, and the weighted
    // coverage theta they imply.
    const auto verdicts_at = [&](int k, double& theta) {
        std::vector<char> det(w.size(), 0);
        double acc = 0.0;
        for (size_t j = 0; j < w.size(); ++j) {
            const int at = r.first_detected_at[j];
            if (at >= 1 && at <= k) {
                det[j] = 1;
                acc += w[j];
            }
        }
        theta = acc / total;
        return det;
    };

    const std::vector<int> prefixes = {8, 64, 512, r.vector_count};

    // ---- eq. (3): Poisson dies at a few test-length prefixes -------------
    std::printf("%8s %10s %16s %16s\n", "k", "theta%", "MC DL(ppm)",
                "eq.3 DL(ppm)");
    double mc_ppm_k8 = 0.0;
    for (int k : prefixes) {
        double theta = 0.0;
        const std::vector<char> det = verdicts_at(k, theta);
        flow::WaferOptions opt;
        opt.dies = 400000;
        opt.seed = seed_base + static_cast<unsigned>(k);
        const auto mc = flow::simulate_wafer(w, bools(det), opt);
        if (k == 8) mc_ppm_k8 = 1e6 * mc.observed_dl();
        std::printf("%8d %10.2f %16.0f %16.0f\n", k, 100 * theta,
                    1e6 * mc.observed_dl(),
                    model::to_ppm(model::weighted_dl(r.yield, theta)));
    }

    // ---- clustered grid: alpha x coverage vs the closed forms ------------
    // Every (alpha, k) combination simulates its own 400k dies with the
    // sampling backend of flow/wafer.cpp and is checked against
    // DefectStatsModel::dl at the same lambda/theta.  alpha = inf is the
    // Poisson backend (the negbin limit).
    std::printf("\nclustered grid (multi-wafer Monte Carlo, 400k dies per "
                "cell):\n");
    std::printf("%8s %8s %10s %16s %16s\n", "alpha", "k", "theta%",
                "MC DL(ppm)", "projected(ppm)");
    std::string study = "  \"study\": [\n";
    bool first_row = true;
    const std::vector<std::string> backends = {"negbin:0.5", "negbin:2",
                                               "negbin:10", "poisson"};
    for (const std::string& desc : backends) {
        const model::DefectStatsModel backend =
            model::parse_defect_stats(desc);
        for (int k : prefixes) {
            double theta = 0.0;
            const std::vector<char> det = verdicts_at(k, theta);
            flow::WaferOptions opt;
            opt.dies = 400000;
            opt.seed = seed_base + 66 + static_cast<unsigned>(k);
            opt.stats = backend;
            const auto mc = flow::simulate_wafer(w, bools(det), opt);
            const double mc_ppm = 1e6 * mc.observed_dl();
            const double proj_ppm =
                model::to_ppm(backend.dl(lambda, theta));
            std::printf("%8s %8d %10.2f %16.0f %16.0f\n",
                        backend.is_poisson() ? "inf"
                                             : desc.substr(7).c_str(),
                        k, 100 * theta, mc_ppm, proj_ppm);
            char row[256];
            std::snprintf(row, sizeof row,
                          "    {\"defect_stats\": \"%s\", \"k\": %d, "
                          "\"theta\": %.9g, \"mc_dl_ppm\": %.3f, "
                          "\"projected_dl_ppm\": %.3f}",
                          desc.c_str(), k, theta, mc_ppm, proj_ppm);
            study += first_row ? "" : ",\n";
            first_row = false;
            study += row;
        }
    }
    study += "\n  ],\n";

    // ---- hierarchical composition: wafer x die x region ------------------
    // 128 dies share a wafer-level gamma factor, each die draws its own,
    // and the die splits into two regions (one clustered, one Poisson).
    // Single-die marginals are independent of the wafer grouping, so the
    // closed-form projection still applies; the recorded per-die counts
    // feed the dispersion fitter as a round-trip check.
    {
        const model::DefectStatsModel hier = model::parse_defect_stats(
            "hier:wafer=4;die=8;region=0.5@4;region=0.5@0");
        double theta = 0.0;
        const std::vector<char> det = verdicts_at(r.vector_count, theta);
        flow::WaferOptions opt;
        opt.dies = 400000;
        opt.seed = seed_base + 199;
        opt.stats = hier;
        opt.dies_per_wafer = 128;
        opt.record_die_counts = true;
        const auto mc = flow::simulate_wafer(w, bools(det), opt);
        const double mc_ppm = 1e6 * mc.observed_dl();
        const double proj_ppm = model::to_ppm(hier.dl(lambda, theta));
        const double mc_yield = mc.observed_yield();
        const double proj_yield = hier.yield(lambda);
        double alpha_hat = 0.0;
        try {
            alpha_hat = model::fit_negbin_alpha(mc.die_defects);
        } catch (const std::exception&) {
        }
        std::printf("\nhierarchical %s (128 dies/wafer):\n",
                    hier.describe().c_str());
        std::printf("  yield: MC %.4f vs projected %.4f\n", mc_yield,
                    proj_yield);
        std::printf("  DL:    MC %.0f ppm vs projected %.0f ppm\n", mc_ppm,
                    proj_ppm);
        std::printf("  per-die dispersion fit: alpha-hat %.3f\n", alpha_hat);
        char row[384];
        std::snprintf(row, sizeof row,
                      "  \"hierarchical\": {\"defect_stats\": \"%s\", "
                      "\"dies_per_wafer\": 128, \"mc_yield\": %.9g, "
                      "\"projected_yield\": %.9g, \"mc_dl_ppm\": %.3f, "
                      "\"projected_dl_ppm\": %.3f, \"alpha_hat\": %.6g},\n",
                      hier.describe().c_str(), mc_yield, proj_yield, mc_ppm,
                      proj_ppm, alpha_hat);
        study += row;
    }

    std::printf("\nShape check: Monte-Carlo dies land on the closed forms "
                "within sampling error - the DL equations themselves are "
                "verified, independent of the fault simulation.\n");

    const double mc_secs = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - mc_t0)
                               .count();
    long long dies = 0;
    for (const auto& [name, value] : obs::counters_snapshot())
        if (name == "wafer.dies") dies = value;
    char head[384];
    std::snprintf(head, sizeof head,
                  "{\n"
                  "  \"bench\": \"wafer\",\n"
                  "  \"threads\": %d,\n"
                  "  \"seed_base\": %u,\n"
                  "  \"dies\": %lld,\n"
                  "  \"mc_dl_ppm_k8\": %.3f,\n"
                  "  \"wall_s\": %.6f,\n"
                  "  \"dies_per_s\": %.0f,\n",
                  parallel::resolve_threads(0), seed_base, dies,
                  mc_ppm_k8, mc_secs,
                  static_cast<double>(dies) / mc_secs);
    const std::string path = "BENCH_wafer.json";
    if (bench::write_file(path, head + study +
                                    bench::telemetry_json_fields() + "\n}\n"))
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    else
        std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
    obs::set_enabled(false);
    return 0;
}
