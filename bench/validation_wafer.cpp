// Validation: the defect-level equations against die-level Monte Carlo.
// Eq. (3) DL = 1 - Y^(1-theta) is derived analytically; here 400k dies are
// diced, defected, tested and shipped, and the observed shipped-defective
// fraction must land on the formula (and on the negative-binomial
// generalization when defects cluster).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

namespace {
// std::vector<bool> cannot view as std::span<const bool>; keep plain bools.
std::unique_ptr<bool[]> g_bools;
std::span<const bool> bools(const std::vector<char>& v) {
    g_bools = std::make_unique<bool[]>(v.size());
    for (size_t i = 0; i < v.size(); ++i) g_bools[i] = v[i] != 0;
    return {g_bools.get(), v.size()};
}
}  // namespace

#include "bench_util.h"
#include "flow/wafer.h"
#include "model/dl_models.h"
#include "model/planning.h"
#include "model/yield.h"
#include "obs/telemetry.h"
#include "parallel/parallel_for.h"

int main(int argc, char** argv) {
    using namespace dlp;
    // Optional argument: base seed for the wafer Monte Carlo (each run below
    // offsets it deterministically).  Default reproduces the paper tables.
    unsigned seed_base = 11;
    if (argc > 1) seed_base =
        static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));
    const auto& r = bench::c432_experiment();
    // Telemetry on (counters reset) for the Monte-Carlo section only, so
    // BENCH_wafer.json attributes throughput to the wafer simulator alone.
    obs::set_enabled(true);
    obs::reset();
    const auto mc_t0 = std::chrono::steady_clock::now();
    bench::header("Validation: eq. (3) vs die-level Monte Carlo, c432");
    std::printf("wafer RNG seed base: %u%s (override: validation_wafer "
                "<seed>)\n", seed_base,
                argc > 1 ? " [from command line]" : "");

    // Detection verdicts at a few test-length prefixes.
    std::printf("%8s %10s %16s %16s\n", "k", "theta%", "MC DL(ppm)",
                "eq.3 DL(ppm)");
    for (int k : {8, 64, 512, r.vector_count}) {
        const size_t i = static_cast<size_t>(k - 1);
        const double theta = r.theta_curve[i];
        // Rebuild per-fault verdicts for this prefix from the flow result:
        // we only kept curves, so approximate with a two-class split that
        // preserves theta exactly: mark faults detected in weight order.
        // (The wafer simulator only consumes weights + verdicts.)
        std::vector<double> w = r.fault_weights;
        std::vector<char> det8(w.size(), 0);
        double need = theta;
        double acc = 0.0;
        double total = 0.0;
        for (double x : w) total += x;
        for (size_t j = 0; j < w.size() && acc / total < need; ++j) {
            det8[j] = 1;
            acc += w[j];
        }
        flow::WaferOptions opt;
        opt.dies = 400000;
        opt.seed = seed_base + static_cast<unsigned>(k);
        const auto mc = flow::simulate_wafer(w, bools(det8), opt);
        std::printf("%8d %10.2f %16.0f %16.0f\n", k, 100 * theta,
                    1e6 * mc.observed_dl(),
                    model::to_ppm(model::weighted_dl(r.yield, acc / total)));
    }

    // Clustered dies vs the negative-binomial closed form.
    std::printf("\nclustering (theta = final, alpha sweep):\n");
    std::printf("%8s %16s %20s\n", "alpha", "MC DL(ppm)", "clustered eq(ppm)");
    const double lambda = model::total_weight_for_yield(r.yield);
    std::vector<double> w = r.fault_weights;
    std::vector<char> det8(w.size(), 0);
    double acc = 0.0;
    double total = 0.0;
    for (double x : w) total += x;
    for (size_t j = 0;
         j < w.size() && acc / total < r.theta_curve.final(); ++j) {
        det8[j] = 1;
        acc += w[j];
    }
    for (double alpha : {0.5, 2.0, 10.0}) {
        flow::WaferOptions opt;
        opt.dies = 400000;
        opt.seed = seed_base + 66;  // default base 11 keeps the historic 77
        opt.clustering_alpha = alpha;
        const auto mc = flow::simulate_wafer(w, bools(det8), opt);
        std::printf("%8.1f %16.0f %20.0f\n", alpha, 1e6 * mc.observed_dl(),
                    model::to_ppm(
                        model::clustered_dl(lambda, alpha, acc / total)));
    }
    std::printf("\nShape check: Monte-Carlo dies land on the closed forms "
                "within sampling error - the DL equations themselves are "
                "verified, independent of the fault simulation.\n");

    const double mc_secs = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - mc_t0)
                               .count();
    long long dies = 0;
    for (const auto& [name, value] : obs::counters_snapshot())
        if (name == "wafer.dies") dies = value;
    char head[384];
    std::snprintf(head, sizeof head,
                  "{\n"
                  "  \"bench\": \"wafer\",\n"
                  "  \"threads\": %d,\n"
                  "  \"seed_base\": %u,\n"
                  "  \"dies\": %lld,\n"
                  "  \"wall_s\": %.6f,\n"
                  "  \"dies_per_s\": %.0f,\n",
                  parallel::resolve_threads(0), seed_base, dies, mc_secs,
                  static_cast<double>(dies) / mc_secs);
    const std::string path = "BENCH_wafer.json";
    if (bench::write_file(path,
                          head + bench::telemetry_json_fields() + "\n}\n"))
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    else
        std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
    obs::set_enabled(false);
    return 0;
}
