// Ablation A: how the defect-statistics profile and fault weighting drive
// the fitted (R, theta_max).  Bridging-dominant lines (the paper's case)
// give R > 1; open-dominant lines push R toward (or below) 1 and lower
// theta_max; dropping weights (Gamma-style) changes the DL projection.
#include <cstdio>

#include "bench_util.h"

int main() {
    using namespace dlp;
    bench::header("Ablation A: defect statistics & weighting -> (R, "
                  "theta_max)");
    struct Case {
        const char* name;
        extract::DefectStatistics stats;
        bool weighted;
        bool multi_node;
        switchsim::FloatGateModel float_gate;
    };
    const auto bridging = extract::DefectStatistics::cmos_bridging_dominant();
    const Case cases[] = {
        {"bridging-dominant (paper)", bridging, true, true,
         switchsim::FloatGateModel::PerFault},
        {"open-dominant", extract::DefectStatistics::open_dominant(), true,
         true, switchsim::FloatGateModel::PerFault},
        {"uniform", extract::DefectStatistics::uniform(), true, true,
         switchsim::FloatGateModel::PerFault},
        {"bridging, unweighted", bridging, false, true,
         switchsim::FloatGateModel::PerFault},
        {"bridging, no multi-node shorts", bridging, true, false,
         switchsim::FloatGateModel::PerFault},
        {"bridging, X float gates", bridging, true, true,
         switchsim::FloatGateModel::Unknown},
    };

    std::printf("%-32s %8s %11s %9s %11s %11s\n", "variant", "R",
                "theta_max", "T_end%", "theta_end%", "Gamma_end%");
    // One staged runner for the whole sweep: every case shares the techmap,
    // layout and ATPG test set; only extraction + simulation + fit re-run.
    flow::ExperimentOptions opt;
    opt.atpg.seed = 5;
    flow::ExperimentRunner runner(netlist::build_c432(), opt);
    for (const Case& c : cases) {
        runner.options().defects = c.stats;
        runner.options().weighted = c.weighted;
        runner.options().extract.multi_node_bridges = c.multi_node;
        runner.options().sim.float_gate = c.float_gate;
        runner.invalidate_extraction();
        const auto& r = runner.fit();
        std::printf("%-32s %8.2f %11.3f %9.2f %11.2f %11.2f\n", c.name,
                    r.fit.r, r.fit.theta_max, 100 * r.t_curve.final(),
                    100 * r.theta_curve.final(),
                    100 * r.gamma_curve.final());
    }
    std::printf("\nShape check: the paper's bridging-dominant premise plus "
                "multi-node shorts produce R > 1; weighting moves theta "
                "away from Gamma; conservative X float gates depress "
                "theta_max (stronger residual).\n");
    return 0;
}
