// Throughput benchmarks (google-benchmark): gate-level PPSFP, switch-level
// solve, PODEM, extraction.  After the registered benchmarks run, a directly
// timed telemetry-enabled pass of both fault simulators writes
// BENCH_faultsim.json (throughput, wall time, thread count, counters) to the
// working directory so the perf trajectory accumulates machine-readably.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "atpg/generate.h"
#include "bench_util.h"
#include "extract/extractor.h"
#include "flow/experiment.h"
#include "gatesim/patterns.h"
#include "layout/place_route.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"
#include "obs/telemetry.h"
#include "switchsim/switch_fault_sim.h"

namespace {

using namespace dlp;

const netlist::Circuit& mapped_c432() {
    static const netlist::Circuit c = netlist::techmap(netlist::build_c432());
    return c;
}

// Args: {vectors, worker threads}.
void BM_GateLevelFaultSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(1);
    const auto vectors = rng.vectors(c, static_cast<int>(state.range(0)));
    const parallel::ParallelOptions par{static_cast<int>(state.range(1))};
    for (auto _ : state) {
        gatesim::FaultSimulator sim(c, faults, par);
        sim.apply(vectors);
        benchmark::DoNotOptimize(sim.coverage());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(faults.size()));
}
BENCHMARK(BM_GateLevelFaultSim)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8})
    ->UseRealTime();

void BM_SwitchLevelGoodSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    gatesim::RandomPatternGenerator rng(1);
    const auto vectors = rng.vectors(c, 64);
    std::unique_ptr<bool[]> buf(new bool[c.inputs().size()]);
    for (auto _ : state) {
        auto st = sim.initial_state();
        for (const auto& v : vectors) {
            for (size_t i = 0; i < v.size(); ++i) buf[i] = v[i];
            sim.step(st, std::span<const bool>(buf.get(), v.size()));
        }
        benchmark::DoNotOptimize(st);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SwitchLevelGoodSim);

void BM_Podem(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    const atpg::Testability t = atpg::compute_testability(c);
    for (auto _ : state) {
        atpg::Podem podem(c, t);
        int found = 0;
        for (size_t i = 0; i < faults.size(); i += 16) {
            const auto res = podem.generate(faults[i], 2048);
            found += res.status == atpg::PodemResult::Status::TestFound;
        }
        benchmark::DoNotOptimize(found);
    }
}
BENCHMARK(BM_Podem);

void BM_LayoutAndExtraction(benchmark::State& state) {
    const auto& c = mapped_c432();
    for (auto _ : state) {
        const auto chip = layout::place_and_route(c);
        const auto r = extract::extract_faults(
            chip, extract::DefectStatistics::cmos_bridging_dominant());
        benchmark::DoNotOptimize(r.total_weight);
    }
}
BENCHMARK(BM_LayoutAndExtraction);

// Args: {vectors, worker threads}.  The speedup acceptance target for the
// parallel engine reads off the per-thread-count rows here.
void BM_SwitchLevelFaultSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto chip = layout::place_and_route(c);
    const auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    const auto faults = flow::to_switch_faults(extraction, chip, net);
    gatesim::RandomPatternGenerator rng(1);
    std::vector<switchsim::Vector> vectors;
    for (const auto& v : rng.vectors(c, static_cast<int>(state.range(0))))
        vectors.emplace_back(v.begin(), v.end());
    const parallel::ParallelOptions par{static_cast<int>(state.range(1))};
    for (auto _ : state) {
        switchsim::SwitchFaultSimulator fs(sim, faults, par);
        fs.apply(vectors);
        benchmark::DoNotOptimize(fs.weighted_coverage());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(faults.size()));
}
BENCHMARK(BM_SwitchLevelFaultSim)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One telemetry-enabled pass of each fault simulator, directly timed.
// The counters land in the JSON alongside throughput, so a regression can
// be attributed (fewer blocks? more faults remaining?) without a rerun.
void write_bench_json() {
    using clock = std::chrono::steady_clock;
    const auto secs_since = [](clock::time_point t0) {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };
    dlp::obs::set_enabled(true);
    dlp::obs::reset();
    const int threads = parallel::resolve_threads(0);

    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(1);
    const auto gate_vectors = rng.vectors(c, 256);
    const auto gate_t0 = clock::now();
    gatesim::FaultSimulator gsim(c, faults);
    gsim.apply(gate_vectors);
    const double gate_secs = secs_since(gate_t0);
    const double gate_items =
        256.0 * static_cast<double>(faults.size());

    const auto chip = layout::place_and_route(c);
    const auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    auto swfaults = flow::to_switch_faults(extraction, chip, net);
    std::vector<switchsim::Vector> sw_vectors;
    for (const auto& v : rng.vectors(c, 16))
        sw_vectors.emplace_back(v.begin(), v.end());
    const auto sw_t0 = clock::now();
    switchsim::SwitchFaultSimulator fsim(sim, std::move(swfaults));
    fsim.apply(sw_vectors);
    const double sw_secs = secs_since(sw_t0);
    const double sw_items =
        16.0 * static_cast<double>(fsim.faults().size());

    char head[512];
    std::snprintf(
        head, sizeof head,
        "{\n"
        "  \"bench\": \"faultsim\",\n"
        "  \"threads\": %d,\n"
        "  \"gate_level\": {\"vectors\": 256, \"faults\": %zu, "
        "\"wall_s\": %.6f, \"items_per_s\": %.0f},\n"
        "  \"switch_level\": {\"vectors\": 16, \"faults\": %zu, "
        "\"wall_s\": %.6f, \"items_per_s\": %.0f},\n",
        threads, faults.size(), gate_secs, gate_items / gate_secs,
        fsim.faults().size(), sw_secs, sw_items / sw_secs);
    const std::string path = "BENCH_faultsim.json";
    if (dlp::bench::write_file(
            path, head + dlp::bench::telemetry_json_fields() + "\n}\n"))
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    else
        std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
    dlp::obs::set_enabled(false);
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    write_bench_json();
    return 0;
}
