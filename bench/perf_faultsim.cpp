// Throughput benchmarks (google-benchmark): gate-level PPSFP, switch-level
// solve, PODEM, extraction.  After the registered benchmarks run, a directly
// timed telemetry-enabled pass writes BENCH_faultsim.json to the working
// directory so the perf trajectory accumulates machine-readably: one row per
// (engine, circuit) over the synthetic corpus (c432 plus the committed
// data/synth_*.bench generator settings), each with a speedup_vs_serial
// normalized by items/s so the levelized >= 10x acceptance bar reads off
// directly (scripts/bench_faultsim.sh enforces it).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "atpg/generate.h"
#include "bench_util.h"
#include "extract/extractor.h"
#include "flow/experiment.h"
#include "gatesim/engine.h"
#include "gatesim/levelized.h"
#include "gatesim/patterns.h"
#include "layout/place_route.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"
#include "obs/telemetry.h"
#include "switchsim/switch_fault_sim.h"

namespace {

using namespace dlp;

const netlist::Circuit& mapped_c432() {
    static const netlist::Circuit c = netlist::techmap(netlist::build_c432());
    return c;
}

// Args: {vectors, worker threads}.
void BM_GateLevelFaultSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(1);
    const auto vectors = rng.vectors(c, static_cast<int>(state.range(0)));
    const parallel::ParallelOptions par{static_cast<int>(state.range(1))};
    for (auto _ : state) {
        gatesim::FaultSimulator sim(c, faults, par);
        sim.apply(vectors);
        benchmark::DoNotOptimize(sim.coverage());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(faults.size()));
}
BENCHMARK(BM_GateLevelFaultSim)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8})
    ->UseRealTime();

// Same workload through the levelized engine, for an interactive
// side-by-side with BM_GateLevelFaultSim at equal args.
void BM_GateLevelLevelized(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(1);
    const auto vectors = rng.vectors(c, static_cast<int>(state.range(0)));
    const parallel::ParallelOptions par{static_cast<int>(state.range(1))};
    const sim::Engine& eng = sim::engine("levelized");
    for (auto _ : state) {
        auto session = eng.open(c, faults, par);
        session->apply(vectors);
        benchmark::DoNotOptimize(session->coverage());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(faults.size()));
}
BENCHMARK(BM_GateLevelLevelized)
    ->Args({64, 1})
    ->Args({256, 1})
    ->UseRealTime();

void BM_SwitchLevelGoodSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    gatesim::RandomPatternGenerator rng(1);
    const auto vectors = rng.vectors(c, 64);
    std::unique_ptr<bool[]> buf(new bool[c.inputs().size()]);
    for (auto _ : state) {
        auto st = sim.initial_state();
        for (const auto& v : vectors) {
            for (size_t i = 0; i < v.size(); ++i) buf[i] = v[i];
            sim.step(st, std::span<const bool>(buf.get(), v.size()));
        }
        benchmark::DoNotOptimize(st);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SwitchLevelGoodSim);

void BM_Podem(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    const atpg::Testability t = atpg::compute_testability(c);
    for (auto _ : state) {
        atpg::Podem podem(c, t);
        int found = 0;
        for (size_t i = 0; i < faults.size(); i += 16) {
            const auto res = podem.generate(faults[i], 2048);
            found += res.status == atpg::PodemResult::Status::TestFound;
        }
        benchmark::DoNotOptimize(found);
    }
}
BENCHMARK(BM_Podem);

void BM_LayoutAndExtraction(benchmark::State& state) {
    const auto& c = mapped_c432();
    for (auto _ : state) {
        const auto chip = layout::place_and_route(c);
        const auto r = extract::extract_faults(
            chip, extract::DefectStatistics::cmos_bridging_dominant());
        benchmark::DoNotOptimize(r.total_weight);
    }
}
BENCHMARK(BM_LayoutAndExtraction);

// Args: {vectors, worker threads}.  The speedup acceptance target for the
// parallel engine reads off the per-thread-count rows here.
void BM_SwitchLevelFaultSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto chip = layout::place_and_route(c);
    const auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    const auto faults = flow::to_switch_faults(extraction, chip, net);
    gatesim::RandomPatternGenerator rng(1);
    std::vector<switchsim::Vector> vectors;
    for (const auto& v : rng.vectors(c, static_cast<int>(state.range(0))))
        vectors.emplace_back(v.begin(), v.end());
    const parallel::ParallelOptions par{static_cast<int>(state.range(1))};
    for (auto _ : state) {
        switchsim::SwitchFaultSimulator fs(sim, faults, par);
        fs.apply(vectors);
        benchmark::DoNotOptimize(fs.weighted_coverage());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(faults.size()));
}
BENCHMARK(BM_SwitchLevelFaultSim)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One (engine, circuit) fault-sim pass, directly timed; best of `reps`.
struct EngineRow {
    std::string circuit;
    std::size_t gates = 0;
    std::string engine;
    int vectors = 0;
    std::size_t faults = 0;
    double wall_s = 0.0;
    double items_per_s = 0.0;
    double speedup_vs_serial = 0.0;  // items/s ratio; serial row == 1.
};

EngineRow time_engine(const std::string& circuit_name,
                      const netlist::Circuit& c, std::string_view engine_name,
                      int vectors, int reps) {
    using clock = std::chrono::steady_clock;
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(1);
    const auto vecs = rng.vectors(c, vectors);
    const sim::Engine& eng = sim::engine(engine_name);

    EngineRow row;
    row.circuit = circuit_name;
    row.gates = gatesim::levelize(c).logic_gate_count();
    row.engine = engine_name;
    row.vectors = vectors;
    row.faults = faults.size();
    row.wall_s = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        const auto t0 = clock::now();
        auto session = eng.open(c, faults);
        session->apply(vecs);
        benchmark::DoNotOptimize(session->detected_count());
        const double secs =
            std::chrono::duration<double>(clock::now() - t0).count();
        row.wall_s = std::min(row.wall_s, secs);
    }
    row.items_per_s = static_cast<double>(vectors) *
                      static_cast<double>(faults.size()) / row.wall_s;
    std::fprintf(stderr, "[bench] %-9s %-9s %5d vec  %.4fs\n",
                 circuit_name.c_str(), row.engine.c_str(), vectors,
                 row.wall_s);
    return row;
}

// The per-engine grid over the synthetic corpus.  The synth circuits are
// regenerated from the same (inputs, gates, seed) settings as the committed
// data/synth_*.bench fixtures, so the rows name the fixtures without the
// bench needing a source-tree path.  The naive oracle only runs on the
// smallest circuit with a reduced vector count (it is O(faults x vectors x
// gates) scalar work, there to calibrate the scale, not to race).
std::vector<EngineRow> engine_grid() {
    struct Workload {
        std::string name;
        netlist::Circuit circuit;
        int vectors;
        bool naive_too;
    };
    std::vector<Workload> loads;
    loads.push_back({"c432", mapped_c432(), 256, true});
    loads.push_back(
        {"synth_2k", netlist::build_random_circuit(64, 2000, 42), 256, false});
    loads.push_back(
        {"synth_5k", netlist::build_random_circuit(96, 5000, 7), 256, false});
    loads.push_back({"synth_10k", netlist::build_random_circuit(128, 10000, 11),
                     256, false});

    std::vector<EngineRow> rows;
    for (const auto& w : loads) {
        const int reps = w.name == "c432" ? 3 : 1;
        if (w.naive_too)
            rows.push_back(time_engine(w.name, w.circuit, "naive", 64, 1));
        const std::size_t serial_at = rows.size();
        rows.push_back(
            time_engine(w.name, w.circuit, "serial", w.vectors, reps));
        rows.push_back(
            time_engine(w.name, w.circuit, "ppsfp", w.vectors, reps));
        rows.push_back(
            time_engine(w.name, w.circuit, "levelized", w.vectors, reps));
        const double serial_ips = rows[serial_at].items_per_s;
        for (std::size_t i = rows.size() - (w.naive_too ? 4 : 3);
             i < rows.size(); ++i)
            rows[i].speedup_vs_serial = rows[i].items_per_s / serial_ips;
    }
    return rows;
}

// Telemetry-enabled passes, directly timed.  The counters land in the JSON
// alongside throughput, so a regression can be attributed (fewer blocks?
// more faults remaining?) without a rerun.
void write_bench_json() {
    using clock = std::chrono::steady_clock;
    const auto secs_since = [](clock::time_point t0) {
        return std::chrono::duration<double>(clock::now() - t0).count();
    };
    dlp::obs::set_enabled(true);
    dlp::obs::reset();
    const int threads = parallel::resolve_threads(0);

    const std::vector<EngineRow> rows = engine_grid();

    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(1);
    const auto gate_vectors = rng.vectors(c, 256);
    const auto gate_t0 = clock::now();
    gatesim::FaultSimulator gsim(c, faults);
    gsim.apply(gate_vectors);
    const double gate_secs = secs_since(gate_t0);
    const double gate_items =
        256.0 * static_cast<double>(faults.size());

    const auto chip = layout::place_and_route(c);
    const auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    auto swfaults = flow::to_switch_faults(extraction, chip, net);
    std::vector<switchsim::Vector> sw_vectors;
    for (const auto& v : rng.vectors(c, 16))
        sw_vectors.emplace_back(v.begin(), v.end());
    const auto sw_t0 = clock::now();
    switchsim::SwitchFaultSimulator fsim(sim, std::move(swfaults));
    fsim.apply(sw_vectors);
    const double sw_secs = secs_since(sw_t0);
    const double sw_items =
        16.0 * static_cast<double>(fsim.faults().size());

    char head[512];
    std::snprintf(
        head, sizeof head,
        "{\n"
        "  \"bench\": \"faultsim\",\n"
        "  \"threads\": %d,\n"
        "  \"gate_level\": {\"vectors\": 256, \"faults\": %zu, "
        "\"wall_s\": %.6f, \"items_per_s\": %.0f},\n"
        "  \"switch_level\": {\"vectors\": 16, \"faults\": %zu, "
        "\"wall_s\": %.6f, \"items_per_s\": %.0f},\n",
        threads, faults.size(), gate_secs, gate_items / gate_secs,
        fsim.faults().size(), sw_secs, sw_items / sw_secs);

    // One row per line so scripts/bench_faultsim.sh can grep/sed them.
    std::string engines = "  \"engines\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const EngineRow& r = rows[i];
        char line[512];
        std::snprintf(
            line, sizeof line,
            "    {\"circuit\": \"%s\", \"gates\": %zu, \"engine\": \"%s\", "
            "\"vectors\": %d, \"faults\": %zu, \"wall_s\": %.6f, "
            "\"items_per_s\": %.0f, \"speedup_vs_serial\": %.2f}%s\n",
            r.circuit.c_str(), r.gates, r.engine.c_str(), r.vectors, r.faults,
            r.wall_s, r.items_per_s, r.speedup_vs_serial,
            i + 1 < rows.size() ? "," : "");
        engines += line;
    }
    engines += "  ],\n";

    const std::string path = "BENCH_faultsim.json";
    if (dlp::bench::write_file(
            path,
            head + engines + dlp::bench::telemetry_json_fields() + "\n}\n"))
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    else
        std::fprintf(stderr, "[bench] failed to write %s\n", path.c_str());
    dlp::obs::set_enabled(false);
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    write_bench_json();
    return 0;
}
