// Throughput benchmarks (google-benchmark): gate-level PPSFP, switch-level
// solve, PODEM, extraction.
#include <benchmark/benchmark.h>

#include <memory>

#include "atpg/generate.h"
#include "extract/extractor.h"
#include "flow/experiment.h"
#include "gatesim/patterns.h"
#include "layout/place_route.h"
#include "netlist/builders.h"
#include "netlist/techmap.h"
#include "switchsim/switch_fault_sim.h"

namespace {

using namespace dlp;

const netlist::Circuit& mapped_c432() {
    static const netlist::Circuit c = netlist::techmap(netlist::build_c432());
    return c;
}

// Args: {vectors, worker threads}.
void BM_GateLevelFaultSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    gatesim::RandomPatternGenerator rng(1);
    const auto vectors = rng.vectors(c, static_cast<int>(state.range(0)));
    const parallel::ParallelOptions par{static_cast<int>(state.range(1))};
    for (auto _ : state) {
        gatesim::FaultSimulator sim(c, faults, par);
        sim.apply(vectors);
        benchmark::DoNotOptimize(sim.coverage());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(faults.size()));
}
BENCHMARK(BM_GateLevelFaultSim)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8})
    ->UseRealTime();

void BM_SwitchLevelGoodSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    gatesim::RandomPatternGenerator rng(1);
    const auto vectors = rng.vectors(c, 64);
    std::unique_ptr<bool[]> buf(new bool[c.inputs().size()]);
    for (auto _ : state) {
        auto st = sim.initial_state();
        for (const auto& v : vectors) {
            for (size_t i = 0; i < v.size(); ++i) buf[i] = v[i];
            sim.step(st, std::span<const bool>(buf.get(), v.size()));
        }
        benchmark::DoNotOptimize(st);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SwitchLevelGoodSim);

void BM_Podem(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto faults =
        gatesim::collapse_faults(c, gatesim::full_fault_universe(c));
    const atpg::Testability t = atpg::compute_testability(c);
    for (auto _ : state) {
        atpg::Podem podem(c, t);
        int found = 0;
        for (size_t i = 0; i < faults.size(); i += 16) {
            const auto res = podem.generate(faults[i], 2048);
            found += res.status == atpg::PodemResult::Status::TestFound;
        }
        benchmark::DoNotOptimize(found);
    }
}
BENCHMARK(BM_Podem);

void BM_LayoutAndExtraction(benchmark::State& state) {
    const auto& c = mapped_c432();
    for (auto _ : state) {
        const auto chip = layout::place_and_route(c);
        const auto r = extract::extract_faults(
            chip, extract::DefectStatistics::cmos_bridging_dominant());
        benchmark::DoNotOptimize(r.total_weight);
    }
}
BENCHMARK(BM_LayoutAndExtraction);

// Args: {vectors, worker threads}.  The speedup acceptance target for the
// parallel engine reads off the per-thread-count rows here.
void BM_SwitchLevelFaultSim(benchmark::State& state) {
    const auto& c = mapped_c432();
    const auto chip = layout::place_and_route(c);
    const auto extraction = extract::extract_faults(
        chip, extract::DefectStatistics::cmos_bridging_dominant());
    const auto net = switchsim::build_switch_netlist(c);
    const switchsim::SwitchSim sim(net);
    const auto faults = flow::to_switch_faults(extraction, chip, net);
    gatesim::RandomPatternGenerator rng(1);
    std::vector<switchsim::Vector> vectors;
    for (const auto& v : rng.vectors(c, static_cast<int>(state.range(0))))
        vectors.emplace_back(v.begin(), v.end());
    const parallel::ParallelOptions par{static_cast<int>(state.range(1))};
    for (auto _ : state) {
        switchsim::SwitchFaultSimulator fs(sim, faults, par);
        fs.apply(vectors);
        benchmark::DoNotOptimize(fs.weighted_coverage());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<long>(faults.size()));
}
BENCHMARK(BM_SwitchLevelFaultSim)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
