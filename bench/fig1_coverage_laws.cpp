// Reproduces Figure 1: analytic coverage-growth curves T(k) and theta(k)
// for s_T = e^3, s_theta = e^{3/2}, theta_max = 0.96 (so R = 2).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "model/coverage_laws.h"

int main() {
    using namespace dlp;
    bench::header("Figure 1: T(k) and theta(k), s_T=e^3, s_theta=e^1.5, "
                  "theta_max=0.96");
    const model::CoverageLaw t_law{std::exp(3.0), 1.0};
    const model::CoverageLaw th_law{std::exp(1.5), 0.96};
    std::printf("%12s %10s %10s\n", "k", "T(k)%", "theta(k)%");
    for (double k = 1; k <= 1e6; k *= std::sqrt(10.0)) {
        std::printf("%12.0f %10.3f %10.3f\n", k, 100 * t_law.coverage(k),
                    100 * th_law.coverage(k));
    }
    std::printf("\nSusceptibility ratio R = %.3f (paper: 2)\n",
                model::susceptibility_ratio(std::exp(3.0), std::exp(1.5)));
    std::printf("Shape check: theta approaches its ceiling (0.96) faster "
                "than T approaches 1.\n");
    return 0;
}
