#include "layout/place_route.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <stdexcept>

#include "cell/library.h"

namespace dlp::layout {

namespace {

using cell::Layer;
using cell::Rect;

struct Term {
    int channel = 0;       ///< channel the riser lands in
    std::int64_t x = 0;    ///< riser x (pin pad center)
    std::int32_t instance = -1;  ///< -1: pad terminal
    bool is_driver = false;
    int sink_ordinal = -1;  ///< for sink terminals
    bool is_pi_pad = false;
    bool is_po_pad = false;
};

struct Link {
    std::int64_t x = 0;  ///< riser column left edge
    int c_lo = 0;
    int c_hi = 0;
};

struct NetPlan {
    std::vector<Term> terms;
    std::map<int, std::pair<std::int64_t, std::int64_t>> trunk;  ///< channel -> x interval
    std::vector<Link> links;
    std::map<int, int> track;  ///< channel -> assigned track
};

}  // namespace

namespace {
ChipLayout place_and_route_attempt(const Circuit& circuit,
                                   const LayoutOptions& options);
}  // namespace

ChipLayout place_and_route(const Circuit& circuit,
                           const LayoutOptions& options) {
    // Feedthrough demand depends on the netlist's row-crossing structure,
    // which is only known after placement: on congestion, retry with a
    // denser corridor grid (classic feedthrough-rich channel style).
    LayoutOptions attempt = options;
    for (int tries = 0;; ++tries) {
        try {
            return place_and_route_attempt(circuit, attempt);
        } catch (const std::runtime_error& e) {
            if (tries >= 3 ||
                std::string(e.what()).find("congestion") == std::string::npos)
                throw;
            // Widen the corridors (more vertical track slots) while keeping
            // the inter-corridor gap wide enough for the widest cell.
            attempt.corridor_width *= 2;
            attempt.corridor_pitch = attempt.corridor_width + 64;
        }
    }
}

namespace {

ChipLayout place_and_route_attempt(const Circuit& circuit,
                                   const LayoutOptions& options) {
    const cell::Rules& rules = options.rules;
    ChipLayout chip;
    chip.circuit = circuit;
    chip.rules = rules;
    chip.instance_of.assign(circuit.gate_count(), -1);
    chip.sinks.assign(circuit.gate_count(), {});

    // ---------------- placement --------------------------------------
    std::int64_t total_width = 0;
    for (const auto& g : circuit.gates()) {
        if (g.type == netlist::GateType::Input) continue;
        if (!cell::has_cell(g.type, static_cast<int>(g.fanin.size())))
            throw std::runtime_error(
                "no library cell for gate '" + g.name + "' (" +
                netlist::gate_type_name(g.type) + "/" +
                std::to_string(g.fanin.size()) + "); run techmap first");
        total_width +=
            cell::library_cell(g.type, static_cast<int>(g.fanin.size())).width;
    }
    int rows = options.target_rows;
    if (rows <= 0)
        rows = std::max<int>(
            1, static_cast<int>(std::lround(std::sqrt(
                   static_cast<double>(total_width) /
                   (3.0 * static_cast<double>(rules.cell_height))))));
    chip.rows = rows;
    const std::int64_t row_limit =
        total_width / rows + 2 * rules.cell_height + options.corridor_pitch;

    const auto next_corridor_after = [&](std::int64_t x) {
        // Corridor k occupies [k*pitch, k*pitch + width).
        const std::int64_t k = x / options.corridor_pitch;
        return k * options.corridor_pitch;
    };

    int row = 0;
    std::int64_t x = options.corridor_width;
    std::int64_t max_row_end = 0;
    for (netlist::NetId g = 0; g < circuit.gate_count(); ++g) {
        const auto& gate = circuit.gate(g);
        if (gate.type == netlist::GateType::Input) continue;
        const cell::Cell& c =
            cell::library_cell(gate.type, static_cast<int>(gate.fanin.size()));
        if (c.width > options.corridor_pitch - options.corridor_width)
            throw std::runtime_error(
                "cell '" + c.name + "' wider than the inter-corridor gap");
        // Skip corridors.
        std::int64_t cx = x;
        while (true) {
            const std::int64_t k0 = next_corridor_after(cx);
            const std::int64_t k1 = next_corridor_after(cx + c.width - 1);
            if (k0 == k1 && cx >= k0 + options.corridor_width) break;
            if (cx < k0 + options.corridor_width) {
                cx = k0 + options.corridor_width;
                continue;
            }
            // Would straddle the next corridor: jump past it.
            cx = k1 + options.corridor_width;
        }
        if (cx + c.width > row_limit && row + 1 < rows) {
            ++row;
            cx = options.corridor_width;
        }
        PlacedCell pc;
        pc.cell = &c;
        pc.gate = g;
        pc.input_nets.assign(gate.fanin.begin(), gate.fanin.end());
        pc.row = row;
        pc.x = cx;
        chip.instance_of[g] = static_cast<std::int32_t>(chip.cells.size());
        chip.cells.push_back(std::move(pc));
        x = cx + c.width;
        max_row_end = std::max(max_row_end, x);
    }

    // Sinks per net.
    for (size_t inst = 0; inst < chip.cells.size(); ++inst) {
        const PlacedCell& pc = chip.cells[inst];
        for (size_t p = 0; p < pc.input_nets.size(); ++p)
            chip.sinks[pc.input_nets[p]].push_back(
                {static_cast<std::int32_t>(inst), static_cast<int>(p)});
    }
    for (size_t o = 0; o < circuit.outputs().size(); ++o)
        chip.sinks[circuit.outputs()[o]].push_back({-1, static_cast<int>(o)});

    // ---------------- terminals --------------------------------------
    const int top_channel = rows;
    std::vector<NetPlan> plans(circuit.gate_count());
    std::set<std::int64_t> pad_xs_top;
    std::set<std::int64_t> pad_xs_bottom;
    // Pads are 8 lambda wide: keep centers 12 away from other pads and from
    // any riser x seeded into `used`, and keep them out of the feedthrough
    // corridors (where vertical links run).
    const auto unique_pad_x = [&options](std::set<std::int64_t>& used,
                                         std::int64_t want) {
        const auto clashes = [&](std::int64_t x) {
            const auto it = used.lower_bound(x - 11);
            if (it != used.end() && *it <= x + 11) return true;
            return x % options.corridor_pitch < options.corridor_width + 6;
        };
        while (clashes(want)) want += 4;
        used.insert(want);
        return want;
    };
    // Bottom-channel pad positions must clear the risers of row-0 pins;
    // top-channel pads only share space with links (corridor check above).
    for (const PlacedCell& pc : chip.cells) {
        if (pc.row != 0) continue;
        for (const cell::Pin& pin : pc.cell->pins)
            pad_xs_bottom.insert(pc.x + pin.x);
    }

    for (netlist::NetId net = 0; net < circuit.gate_count(); ++net) {
        // A net nobody reads (dangling, flagged by validate()): leave
        // unrouted.  POs always have a pad sink.
        if (chip.sinks[net].empty()) continue;
        NetPlan& plan = plans[net];
        // Driver terminal.
        const std::int32_t drv_inst = chip.instance_of[net];
        if (drv_inst >= 0) {
            const PlacedCell& pc = chip.cells[static_cast<size_t>(drv_inst)];
            Term t;
            t.channel = pc.row;
            t.x = pc.x + pc.cell->output_pin().x;
            t.instance = drv_inst;
            t.is_driver = true;
            plan.terms.push_back(t);
        }
        // Sink terminals.
        for (size_t s = 0; s < chip.sinks[net].size(); ++s) {
            const Sink& sink = chip.sinks[net][s];
            Term t;
            t.sink_ordinal = static_cast<int>(s);
            if (sink.is_po_pad()) {
                t.channel = 0;
                t.is_po_pad = true;
                // x filled in below (near the driver).
            } else {
                const PlacedCell& pc =
                    chip.cells[static_cast<size_t>(sink.instance)];
                t.channel = pc.row;
                t.x = pc.x + pc.cell->input_pin(sink.pin).x;
                t.instance = sink.instance;
            }
            plan.terms.push_back(t);
        }
        if (plan.terms.empty()) continue;

        // Pad x positions: PI pad near the median sink, PO pad near driver.
        std::int64_t median_x = 0;
        {
            std::vector<std::int64_t> xs;
            for (const Term& t : plan.terms)
                if (t.instance >= 0) xs.push_back(t.x);
            if (xs.empty()) xs.push_back(options.corridor_width + 8);
            std::sort(xs.begin(), xs.end());
            median_x = xs[xs.size() / 2];
        }
        if (drv_inst < 0) {
            Term t;
            t.channel = top_channel;
            t.x = unique_pad_x(pad_xs_top, median_x);
            t.is_driver = true;
            t.is_pi_pad = true;
            plan.terms.push_back(t);
        }
        for (Term& t : plan.terms)
            if (t.is_po_pad) t.x = unique_pad_x(pad_xs_bottom, median_x);

        for (const Term& t : plan.terms) {
            auto it = plan.trunk.find(t.channel);
            if (it == plan.trunk.end())
                plan.trunk[t.channel] = {t.x, t.x};
            else {
                it->second.first = std::min(it->second.first, t.x);
                it->second.second = std::max(it->second.second, t.x);
            }
        }
    }

    // ---------------- feedthrough links ------------------------------
    const std::int64_t max_pad_x =
        pad_xs_top.empty() ? 0 : *pad_xs_top.rbegin();
    const std::int64_t die_x_hint =
        std::max(max_row_end, max_pad_x) + options.corridor_pitch;
    const int num_corridors =
        static_cast<int>(die_x_hint / options.corridor_pitch) + 2;
    const int slots_per_corridor = std::max<int>(
        1, static_cast<int>((options.corridor_width - 2) /
                            (rules.m2_width + rules.m2_space)));
    // occupancy[corridor][slot] = list of reserved closed channel intervals
    std::vector<std::vector<std::vector<std::pair<int, int>>>> occupancy(
        static_cast<size_t>(num_corridors),
        std::vector<std::vector<std::pair<int, int>>>(
            static_cast<size_t>(slots_per_corridor)));

    const auto reserve_link = [&](std::int64_t want_x, int c_lo,
                                  int c_hi) -> std::int64_t {
        const int want_k =
            static_cast<int>(std::clamp<std::int64_t>(
                want_x / options.corridor_pitch, 0, num_corridors - 1));
        for (int delta = 0; delta < num_corridors; ++delta) {
            for (const int k : {want_k - delta, want_k + delta}) {
                if (k < 0 || k >= num_corridors) continue;
                for (int slot = 0; slot < slots_per_corridor; ++slot) {
                    auto& resv =
                        occupancy[static_cast<size_t>(k)][static_cast<size_t>(slot)];
                    bool free = true;
                    for (const auto& [lo, hi] : resv)
                        if (!(c_hi < lo || hi < c_lo)) {
                            free = false;
                            break;
                        }
                    if (!free) continue;
                    resv.push_back({c_lo, c_hi});
                    return static_cast<std::int64_t>(k) *
                               options.corridor_pitch +
                           2 +
                           static_cast<std::int64_t>(slot) *
                               (rules.m2_width + rules.m2_space);
                }
                if (delta == 0) break;  // avoid trying want_k twice
            }
        }
        throw std::runtime_error("routing congestion: no free feedthrough");
    };

    for (netlist::NetId net = 0; net < circuit.gate_count(); ++net) {
        NetPlan& plan = plans[net];
        if (plan.trunk.size() < 2) continue;
        std::vector<int> channels;
        for (const auto& [c, iv] : plan.trunk) channels.push_back(c);
        for (size_t i = 0; i + 1 < channels.size(); ++i) {
            const int c_lo = channels[i];
            const int c_hi = channels[i + 1];
            auto& lo_iv = plan.trunk[c_lo];
            auto& hi_iv = plan.trunk[c_hi];
            const std::int64_t want =
                (lo_iv.first + lo_iv.second + hi_iv.first + hi_iv.second) / 4;
            const std::int64_t link_x = reserve_link(want, c_lo, c_hi);
            plan.links.push_back({link_x, c_lo, c_hi});
            lo_iv.first = std::min(lo_iv.first, link_x + 1);
            lo_iv.second = std::max(lo_iv.second, link_x + 1);
            hi_iv.first = std::min(hi_iv.first, link_x + 1);
            hi_iv.second = std::max(hi_iv.second, link_x + 1);
        }
    }

    // ---------------- channel track assignment -----------------------
    struct Item {
        std::int64_t x1, x2;
        netlist::NetId net;
        int channel;
    };
    std::vector<std::vector<Item>> channel_items(
        static_cast<size_t>(rows + 1));
    for (netlist::NetId net = 0; net < circuit.gate_count(); ++net)
        for (const auto& [c, iv] : plans[net].trunk)
            channel_items[static_cast<size_t>(c)].push_back(
                {iv.first, iv.second, net, c});

    std::vector<int> channel_tracks(static_cast<size_t>(rows + 1), 0);
    for (auto& items : channel_items) {
        std::sort(items.begin(), items.end(),
                  [](const Item& a, const Item& b) { return a.x1 < b.x1; });
        std::vector<std::int64_t> track_end;  // last x2 on each track
        for (const Item& it : items) {
            int assigned = -1;
            for (size_t t = 0; t < track_end.size(); ++t) {
                if (it.x1 - 1 >= track_end[t] + 2 + rules.m1_space) {
                    assigned = static_cast<int>(t);
                    break;
                }
            }
            if (assigned < 0) {
                assigned = static_cast<int>(track_end.size());
                track_end.push_back(0);
            }
            track_end[static_cast<size_t>(assigned)] = it.x2;
            plans[it.net].track[it.channel] = assigned;
        }
        if (!items.empty())
            channel_tracks[static_cast<size_t>(items[0].channel)] =
                static_cast<int>(track_end.size());
    }

    // ---------------- vertical geometry ------------------------------
    const std::int64_t m1_pitch = rules.m1_pitch();
    const std::int64_t pad_strip = 12;  // extra space for I/O pads
    std::vector<std::int64_t> channel_base(static_cast<size_t>(rows + 2), 0);
    std::vector<std::int64_t> row_base(static_cast<size_t>(rows), 0);
    std::int64_t y = 0;
    for (int c = 0; c <= rows; ++c) {
        channel_base[static_cast<size_t>(c)] = y;
        std::int64_t h = 2 * options.channel_margin +
                         channel_tracks[static_cast<size_t>(c)] * m1_pitch;
        if (c == 0 || c == rows) h += pad_strip;
        y += h;
        if (c < rows) {
            row_base[static_cast<size_t>(c)] = y;
            y += rules.cell_height;
        }
    }
    const std::int64_t die_top = y;
    for (auto& pc : chip.cells) pc.y = row_base[static_cast<size_t>(pc.row)];

    const auto trunk_y = [&](int c, int track) {
        std::int64_t base = channel_base[static_cast<size_t>(c)] +
                            options.channel_margin +
                            static_cast<std::int64_t>(track) * m1_pitch;
        if (c == 0) base += pad_strip;  // pads below the bottom trunks
        return base;
    };

    // ---------------- emit routing shapes ----------------------------
    const auto emit = [&chip](Layer layer, Rect r, netlist::NetId net,
                              int sink) {
        if (!r.valid()) throw std::logic_error("invalid routing rect");
        chip.routing.push_back({layer, r, net, sink});
    };

    for (netlist::NetId net = 0; net < circuit.gate_count(); ++net) {
        NetPlan& plan = plans[net];
        if (plan.terms.empty()) continue;

        // Trunks.
        for (const auto& [c, iv] : plan.trunk) {
            const std::int64_t ty = trunk_y(c, plan.track.at(c));
            emit(Layer::Metal1, {iv.first - 1, ty, iv.second + 2, ty + 3},
                 net, -1);
        }
        // Links between channels.
        for (const Link& link : plan.links) {
            const std::int64_t y_lo = trunk_y(link.c_lo, plan.track.at(link.c_lo));
            const std::int64_t y_hi = trunk_y(link.c_hi, plan.track.at(link.c_hi));
            emit(Layer::Metal2, {link.x, y_lo, link.x + 3, y_hi + 3}, net, -1);
            emit(Layer::Via, {link.x, y_lo, link.x + 2, y_lo + 2}, net, -1);
            emit(Layer::Via, {link.x, y_hi + 1, link.x + 2, y_hi + 3}, net, -1);
        }
        // Terminals.
        for (const Term& t : plan.terms) {
            const std::int64_t ty = trunk_y(t.channel, plan.track.at(t.channel));
            const int sink_tag = t.is_driver ? -2 : t.sink_ordinal;
            if (t.is_pi_pad) {
                const std::int64_t pad_y1 =
                    channel_base[static_cast<size_t>(t.channel)] +
                    2 * options.channel_margin +
                    channel_tracks[static_cast<size_t>(t.channel)] * m1_pitch;
                emit(Layer::Metal1, {t.x - 4, pad_y1, t.x + 4, pad_y1 + 8},
                     net, sink_tag);
                emit(Layer::Metal2, {t.x - 1, ty, t.x + 2, pad_y1 + 2}, net,
                     sink_tag);
                emit(Layer::Via, {t.x - 1, pad_y1, t.x + 1, pad_y1 + 2}, net,
                     sink_tag);
                emit(Layer::Via, {t.x - 1, ty, t.x + 1, ty + 2}, net, sink_tag);
            } else if (t.is_po_pad) {
                const std::int64_t pad_y2 =
                    channel_base[0] + options.channel_margin + 8;
                emit(Layer::Metal1,
                     {t.x - 4, pad_y2 - 8, t.x + 4, pad_y2}, net, sink_tag);
                emit(Layer::Metal2, {t.x - 1, pad_y2 - 2, t.x + 2, ty + 3},
                     net, sink_tag);
                emit(Layer::Via, {t.x - 1, pad_y2 - 2, t.x + 1, pad_y2}, net,
                     sink_tag);
                emit(Layer::Via, {t.x - 1, ty, t.x + 1, ty + 2}, net, sink_tag);
            } else {
                const PlacedCell& pc =
                    chip.cells[static_cast<size_t>(t.instance)];
                const cell::Pin& pin =
                    t.is_driver ? pc.cell->output_pin()
                                : pc.cell->input_pin(
                                      chip.sinks[net][static_cast<size_t>(
                                                          t.sink_ordinal)]
                                          .pin);
                const std::int64_t py = pc.y + pin.y;
                emit(Layer::Metal2, {t.x - 1, ty, t.x + 2, py + 2}, net,
                     sink_tag);
                emit(Layer::Via, {t.x - 1, py - 1, t.x + 1, py + 1}, net,
                     sink_tag);
                emit(Layer::Via, {t.x - 1, ty, t.x + 1, ty + 2}, net, sink_tag);
            }
        }
    }

    chip.die = {0, 0,
                std::max(max_row_end,
                         die_x_hint - options.corridor_pitch) +
                    options.corridor_width,
                die_top};
    return chip;
}

}  // namespace

}  // namespace dlp::layout
