// DRC-lite: verifies that the generated layout is electrically sound.
// The one non-negotiable rule is that shapes of *different* nets never
// overlap on the same conducting layer (that would be a designed-in short
// and would corrupt every bridge weight the extractor computes).
#pragma once

#include <string>
#include <vector>

#include "layout/chip.h"

namespace dlp::layout {

struct DrcViolation {
    std::string message;
    cell::Rect a;
    cell::Rect b;
};

/// Returns all different-net same-layer overlaps (empty = clean).
std::vector<DrcViolation> check_overlaps(const ChipLayout& chip);

/// Returns pairs closer than the layer's minimum spacing (informational:
/// cell-internal geometry is intentionally dense).
std::vector<DrcViolation> check_spacing(const ChipLayout& chip);

}  // namespace dlp::layout
