#include "layout/svg.h"

#include <fstream>
#include <sstream>

namespace dlp::layout {

namespace {

using cell::Layer;

const char* layer_color(Layer layer) {
    switch (layer) {
        case Layer::NDiff: return "#2e7d32";
        case Layer::PDiff: return "#ef6c00";
        case Layer::Poly: return "#d32f2f";
        case Layer::Contact: return "#212121";
        case Layer::Metal1: return "#1565c0";
        case Layer::Via: return "#4a148c";
        case Layer::Metal2: return "#8e24aa";
    }
    return "#000000";
}

double layer_opacity(Layer layer) {
    switch (layer) {
        case Layer::Contact:
        case Layer::Via: return 0.9;
        case Layer::Metal2: return 0.45;
        default: return 0.6;
    }
}

}  // namespace

std::string render_svg(const ChipLayout& chip, const SvgOptions& options) {
    const double s = options.scale;
    const double width = static_cast<double>(chip.die.width()) * s;
    const double height = static_cast<double>(chip.die.height()) * s;
    std::ostringstream out;
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
        << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
        << height << "\">\n";
    out << "<rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n";

    // SVG y grows downward; flip so the die's y=0 is at the bottom.
    const auto emit_rect = [&](const cell::Rect& r, Layer layer) {
        const double x = static_cast<double>(r.x1) * s;
        const double y = height - static_cast<double>(r.y2) * s;
        out << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
            << static_cast<double>(r.width()) * s << "\" height=\""
            << static_cast<double>(r.height()) * s << "\" fill=\""
            << layer_color(layer) << "\" fill-opacity=\""
            << layer_opacity(layer) << "\"/>\n";
    };

    // Draw in fabrication order so upper layers overlay lower ones.
    static constexpr Layer kOrder[] = {
        Layer::NDiff, Layer::PDiff, Layer::Poly, Layer::Contact,
        Layer::Metal1, Layer::Via, Layer::Metal2};
    const auto flat = flatten(chip);
    for (Layer layer : kOrder) {
        for (const FlatShape& f : flat) {
            if (f.layer != layer) continue;
            if (options.routing_only && f.instance >= 0) continue;
            emit_rect(f.rect, layer);
        }
    }

    if (options.label_cells && !options.routing_only) {
        for (const PlacedCell& pc : chip.cells) {
            const double x =
                (static_cast<double>(pc.x) +
                 static_cast<double>(pc.cell->width) / 2.0) * s;
            const double y =
                height - (static_cast<double>(pc.y) + 20.0) * s;
            out << "<text x=\"" << x << "\" y=\"" << y
                << "\" font-size=\"" << 4.0 * s
                << "\" text-anchor=\"middle\" fill=\"#000\" "
                   "fill-opacity=\"0.5\">"
                << pc.cell->name << "</text>\n";
        }
    }
    out << "</svg>\n";
    return out.str();
}

void write_svg(const ChipLayout& chip, const std::string& path,
               const SvgOptions& options) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    f << render_svg(chip, options);
    if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace dlp::layout
