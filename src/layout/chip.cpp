#include "layout/chip.h"

namespace dlp::layout {

cell::NetRef resolve_local_net(const ChipLayout& chip, std::int32_t instance,
                               int local_net) {
    const PlacedCell& pc = chip.cells[static_cast<size_t>(instance)];
    if (local_net == cell::Cell::kGnd) return cell::NetRef::power(false);
    if (local_net == cell::Cell::kVdd) return cell::NetRef::power(true);
    for (size_t p = 0; p < pc.cell->pins.size(); ++p) {
        if (pc.cell->pins[p].net != local_net) continue;
        if (pc.cell->pins[p].name == "Y")
            return cell::NetRef::circuit(pc.gate);
        return cell::NetRef::circuit(pc.input_nets[p]);
    }
    return cell::NetRef::internal(instance, local_net);
}

std::vector<FlatShape> flatten(const ChipLayout& chip) {
    std::vector<FlatShape> out;
    for (size_t inst = 0; inst < chip.cells.size(); ++inst) {
        const PlacedCell& pc = chip.cells[inst];
        for (const cell::LocalShape& s : pc.cell->shapes) {
            FlatShape f;
            f.layer = s.layer;
            f.rect = s.rect.translated(pc.x, pc.y);
            f.instance = static_cast<std::int32_t>(inst);
            f.info = s.info;
            f.net = resolve_local_net(chip, static_cast<std::int32_t>(inst),
                                      s.net);
            out.push_back(f);
        }
    }
    for (const RouteShape& r : chip.routing) {
        FlatShape f;
        f.layer = r.layer;
        f.rect = r.rect;
        f.net = cell::NetRef::circuit(r.net);
        f.instance = -1;
        f.route_sink = r.sink;
        out.push_back(f);
    }
    return out;
}

std::vector<FlatGateRegion> flatten_gate_regions(const ChipLayout& chip) {
    std::vector<FlatGateRegion> out;
    for (size_t inst = 0; inst < chip.cells.size(); ++inst) {
        const PlacedCell& pc = chip.cells[inst];
        for (const cell::GateRegion& g : pc.cell->gate_regions)
            out.push_back({g.rect.translated(pc.x, pc.y),
                           static_cast<std::int32_t>(inst), g.transistor});
    }
    return out;
}

std::vector<std::int64_t> layer_areas(const ChipLayout& chip) {
    std::vector<std::int64_t> areas(cell::kLayerCount, 0);
    for (const FlatShape& s : flatten(chip))
        areas[static_cast<size_t>(s.layer)] += s.rect.area();
    return areas;
}

}  // namespace dlp::layout
