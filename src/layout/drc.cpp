#include "layout/drc.h"

#include <algorithm>
#include <map>

namespace dlp::layout {

namespace {

using cell::Layer;

/// Simple sweep by x over shapes of one layer: yields candidate pairs whose
/// x-ranges (grown by `slack`) overlap.
template <typename Fn>
void for_near_pairs(std::vector<const FlatShape*>& shapes,
                    std::int64_t slack, Fn&& fn) {
    std::sort(shapes.begin(), shapes.end(),
              [](const FlatShape* a, const FlatShape* b) {
                  return a->rect.x1 < b->rect.x1;
              });
    for (size_t i = 0; i < shapes.size(); ++i) {
        for (size_t j = i + 1; j < shapes.size(); ++j) {
            if (shapes[j]->rect.x1 > shapes[i]->rect.x2 + slack) break;
            fn(*shapes[i], *shapes[j]);
        }
    }
}

std::int64_t gap(const cell::Rect& a, const cell::Rect& b) {
    const std::int64_t dx =
        std::max<std::int64_t>({a.x1 - b.x2, b.x1 - a.x2, 0});
    const std::int64_t dy =
        std::max<std::int64_t>({a.y1 - b.y2, b.y1 - a.y2, 0});
    return std::max(dx, dy);  // Manhattan-style corner gap
}

std::int64_t min_spacing(const cell::Rules& rules, Layer layer) {
    switch (layer) {
        case Layer::Poly: return rules.poly_space;
        case Layer::Metal1: return rules.m1_space;
        case Layer::Metal2: return rules.m2_space;
        case Layer::NDiff:
        case Layer::PDiff: return 3;
        default: return 2;
    }
}

}  // namespace

std::vector<DrcViolation> check_overlaps(const ChipLayout& chip) {
    std::vector<DrcViolation> out;
    const auto flat = flatten(chip);
    std::map<Layer, std::vector<const FlatShape*>> by_layer;
    for (const FlatShape& s : flat) by_layer[s.layer].push_back(&s);

    for (auto& [layer, shapes] : by_layer) {
        for_near_pairs(shapes, 0, [&](const FlatShape& a, const FlatShape& b) {
            if (a.net == b.net) return;
            if (!a.rect.intersects(b.rect)) return;
            out.push_back({std::string("different-net overlap on ") +
                               cell::layer_name(layer) + ": " +
                               cell::net_ref_name(a.net) + " vs " +
                               cell::net_ref_name(b.net),
                           a.rect, b.rect});
        });
    }
    return out;
}

std::vector<DrcViolation> check_spacing(const ChipLayout& chip) {
    std::vector<DrcViolation> out;
    const auto flat = flatten(chip);
    std::map<Layer, std::vector<const FlatShape*>> by_layer;
    for (const FlatShape& s : flat) by_layer[s.layer].push_back(&s);

    for (auto& [layer, shapes] : by_layer) {
        const std::int64_t spacing = min_spacing(chip.rules, layer);
        for_near_pairs(shapes, spacing,
                       [&](const FlatShape& a, const FlatShape& b) {
                           if (a.net == b.net) return;
                           const std::int64_t g = gap(a.rect, b.rect);
                           if (g >= spacing || a.rect.intersects(b.rect))
                               return;
                           out.push_back(
                               {std::string("spacing ") + std::to_string(g) +
                                    " < " + std::to_string(spacing) + " on " +
                                    cell::layer_name(layer),
                                a.rect, b.rect});
                       });
    }
    return out;
}

}  // namespace dlp::layout
