// Chip-level layout: placed standard cells + channel routing.
//
// The physical style matches the paper's experimental setup ("2-metal CMOS
// implementation ... obtained with a commercial standard cell design
// system"): rows of cells, horizontal metal1 trunks in routing channels,
// metal2 risers from cell pins, vertical metal2 feedthrough corridors
// between cell groups for row crossings, and I/O pads at the top (PIs) and
// bottom (POs).
#pragma once

#include <cstdint>
#include <vector>

#include "cell/cell.h"
#include "netlist/circuit.h"

namespace dlp::layout {

using netlist::Circuit;
using netlist::NetId;

/// A placed cell instance.
struct PlacedCell {
    const cell::Cell* cell = nullptr;
    NetId gate = 0;                    ///< circuit gate this instance implements
    std::vector<NetId> input_nets;     ///< circuit nets, in pin order
    int row = 0;
    std::int64_t x = 0;                ///< lower-left origin
    std::int64_t y = 0;
};

/// A sink (reader) of a routed net.
struct Sink {
    std::int32_t instance = -1;  ///< reading cell instance, -1 for a PO pad
    int pin = 0;                 ///< input pin ordinal, or PO ordinal if pad
    bool is_po_pad() const { return instance < 0; }
};

/// A top-level routing shape.  `sink` tells the extractor which sinks an
/// open (missing material) defect in this shape disconnects:
///   -1 : trunk/link - all sinks of the net
///   -2 : driver stub - all sinks of the net
///  >=0 : only sink ordinal `sink`
struct RouteShape {
    cell::Layer layer = cell::Layer::Metal1;
    cell::Rect rect;
    NetId net = 0;
    int sink = -1;
};

struct ChipLayout {
    Circuit circuit;  ///< the placed netlist (owned copy: layouts outlive
                      ///< the netlists they were generated from)
    cell::Rules rules;
    std::vector<PlacedCell> cells;            ///< instance id = index
    std::vector<std::int32_t> instance_of;    ///< per NetId; -1 if none (PI)
    std::vector<std::vector<Sink>> sinks;     ///< per NetId
    std::vector<RouteShape> routing;
    cell::Rect die;
    int rows = 0;

    /// Total area in lambda^2.
    std::int64_t area() const { return die.area(); }
};

/// A flattened, globally-positioned shape with extraction metadata.
struct FlatShape {
    cell::Layer layer = cell::Layer::Metal1;
    cell::Rect rect;
    cell::NetRef net;
    std::int32_t instance = -1;       ///< owning cell instance, -1 = routing
    cell::ShapeInfo info;             ///< cell-shape open semantics
    int route_sink = -3;              ///< RouteShape::sink, -3 = not routing
};

/// A flattened gate-oxide region.
struct FlatGateRegion {
    cell::Rect rect;
    std::int32_t instance = 0;
    int transistor = 0;  ///< local transistor index within the instance
};

/// Resolves a cell-local net of an instance to a global NetRef (pins alias
/// the bound circuit nets; true internals stay instance-scoped).
cell::NetRef resolve_local_net(const ChipLayout& chip, std::int32_t instance,
                               int local_net);

/// Flattens cells + routing into global shapes for extraction.
std::vector<FlatShape> flatten(const ChipLayout& chip);
std::vector<FlatGateRegion> flatten_gate_regions(const ChipLayout& chip);

/// Per-layer total shape area (lambda^2), for reporting.
std::vector<std::int64_t> layer_areas(const ChipLayout& chip);

}  // namespace dlp::layout
