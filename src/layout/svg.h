// SVG rendering of a chip layout, for documentation and debugging.
// Layers draw in fabrication order with translucent fills so overlaps
// (contacts over diffusion, metal2 over metal1) stay readable.
#pragma once

#include <string>

#include "layout/chip.h"

namespace dlp::layout {

struct SvgOptions {
    double scale = 2.0;        ///< pixels per lambda
    bool routing_only = false; ///< skip cell internals
    bool label_cells = true;   ///< print instance names over cells
};

/// Renders the layout as a standalone SVG document.
std::string render_svg(const ChipLayout& chip, const SvgOptions& options = {});

/// Renders and writes to a file; throws std::runtime_error on I/O failure.
void write_svg(const ChipLayout& chip, const std::string& path,
               const SvgOptions& options = {});

}  // namespace dlp::layout
