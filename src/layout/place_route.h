// Row placement + channel routing (see chip.h for the physical style).
#pragma once

#include "layout/chip.h"

namespace dlp::layout {

struct LayoutOptions {
    int target_rows = 0;                ///< 0 = choose from aspect ratio
    std::int64_t corridor_pitch = 80;   ///< vertical feedthrough grid
    std::int64_t corridor_width = 16;   ///< feedthrough corridor width
    std::int64_t channel_margin = 4;    ///< clearance above/below trunks
    cell::Rules rules;
};

/// Places and routes a tech-mapped circuit (every gate must have a library
/// cell; run netlist::techmap first).  Throws std::runtime_error on
/// unmappable gates or routing congestion (exhausted feedthrough corridors).
ChipLayout place_and_route(const Circuit& mapped,
                           const LayoutOptions& options = {});

}  // namespace dlp::layout
