// Parallel-pattern single-fault-propagation (PPSFP) stuck-at fault
// simulator with fault dropping.
//
// Vectors are applied in sequence; for every fault the simulator records the
// 1-based index of the first detecting vector, which directly yields the
// coverage-vs-test-length curve T(k) the paper plots (fig. 4).
//
// On top of the 64-wide pattern parallelism, the collapsed fault universe is
// partitioned across the shared thread pool per pattern block: the good
// machine is simulated once per block, then workers fan out over faults with
// per-worker scratch.  Each fault's detection index depends only on the
// block and its own cone resimulation, so results are bit-identical to the
// serial path for any worker count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gatesim/faults.h"
#include "gatesim/logic_sim.h"
#include "parallel/parallel_for.h"
#include "support/cancel.h"

namespace dlp::gatesim {

class FaultSimulator {
public:
    /// `ndetect` is the n-detection target: a fault is dropped only after
    /// `ndetect` vector positions have detected it (1 = classic behavior).
    /// `untestable` (parallel to `faults`; empty = none) marks statically
    /// proven-untestable faults that are never simulated — their detection
    /// index stays -1 and their count 0.
    FaultSimulator(const Circuit& circuit, std::vector<StuckAtFault> faults,
                   parallel::ParallelOptions parallel = {}, int ndetect = 1,
                   std::vector<std::uint8_t> untestable = {});

    /// Worker count for subsequent apply() calls (0 = scoped/env default).
    void set_parallel(parallel::ParallelOptions parallel) {
        parallel_ = parallel;
    }

    /// Applies vectors (appending to the sequence seen so far); returns the
    /// number of newly detected faults.  Detected faults are dropped from
    /// subsequent simulation.
    int apply(std::span<const Vector> vectors);

    /// Budget-aware apply: the budget is checked before every 64-vector
    /// pattern block and `budget.max_vectors` caps the cumulative sequence,
    /// so a stopped call commits a whole number of blocks and everything
    /// recorded (detection indices, curves) is a bit-identical prefix of
    /// the unbounded run.
    support::ApplyResult apply(std::span<const Vector> vectors,
                               const support::RunBudget& budget);

    const Circuit& circuit() const { return circuit_; }
    std::span<const StuckAtFault> faults() const { return faults_; }

    /// Per fault: 1-based index of the first detecting vector, -1 if still
    /// undetected.
    std::span<const int> first_detected_at() const { return detected_at_; }

    /// The n-detection target faults are simulated toward.
    int ndetect_target() const { return ndetect_; }

    /// Per fault: detecting vector positions seen so far, saturated at the
    /// target (monotone in the applied prefix and in the target).
    std::span<const int> detection_counts() const { return counts_; }

    /// Per fault: 1-based index of the vector at which the count reached
    /// the target, -1 while below; equals first_detected_at() at target 1.
    std::span<const int> nth_detected_at() const { return nth_at_; }

    int vectors_applied() const { return vectors_applied_; }
    std::size_t detected_count() const { return detected_count_; }
    double coverage() const;

    /// Fault coverage after each prefix of the applied sequence:
    /// result[k-1] = fraction of faults detected by the first k vectors.
    std::vector<double> coverage_curve() const;

    /// Indices (into faults()) of still-undetected faults.
    std::vector<std::size_t> undetected() const;

private:
    const Circuit& circuit_;
    std::vector<StuckAtFault> faults_;
    int ndetect_ = 1;
    std::vector<int> detected_at_;
    std::vector<int> counts_;  ///< detections so far, saturated at ndetect_
    std::vector<int> nth_at_;  ///< vector index reaching the target; -1 below
    std::vector<std::uint8_t> untestable_;  ///< skip mask (empty = none)
    int vectors_applied_ = 0;
    std::size_t detected_count_ = 0;
    parallel::ParallelOptions parallel_;
};

/// One-shot convenience: simulate the whole sequence and return the
/// detection table.
std::vector<int> run_fault_simulation(const Circuit& circuit,
                                      std::span<const StuckAtFault> faults,
                                      std::span<const Vector> vectors);

}  // namespace dlp::gatesim
