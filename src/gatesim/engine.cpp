#include "gatesim/engine.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "gatesim/fault_sim.h"
#include "gatesim/levelized.h"

namespace dlp::sim {

// ---- Session derived accessors -------------------------------------------
// One definition shared by every engine, computed from the detection table,
// so curves cannot drift between implementations.

std::size_t Session::detected_count() const {
    std::size_t n = 0;
    for (int at : first_detected_at())
        if (at >= 0) ++n;
    return n;
}

double Session::coverage() const {
    const auto f = faults();
    return f.empty() ? 0.0
                     : static_cast<double>(detected_count()) /
                           static_cast<double>(f.size());
}

std::vector<double> Session::coverage_curve() const {
    const int applied = vectors_applied();
    const auto f = faults();
    std::vector<int> hits(static_cast<std::size_t>(applied) + 1, 0);
    for (int at : first_detected_at())
        if (at >= 1 && at <= applied) ++hits[static_cast<std::size_t>(at)];
    std::vector<double> curve(static_cast<std::size_t>(applied));
    long cum = 0;
    for (int k = 1; k <= applied; ++k) {
        cum += hits[static_cast<std::size_t>(k)];
        curve[static_cast<std::size_t>(k - 1)] =
            f.empty() ? 0.0
                      : static_cast<double>(cum) /
                            static_cast<double>(f.size());
    }
    return curve;
}

std::vector<std::size_t> Session::undetected() const {
    const auto table = first_detected_at();
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < table.size(); ++i)
        if (table[i] < 0) out.push_back(i);
    return out;
}

// Base-class n-detection defaults: a target of 1, with the count table
// derived from the first-detection table, so engines that only support the
// classic drop-on-first-detection behavior need no override.

std::vector<int> Session::detection_counts() const {
    const auto table = first_detected_at();
    std::vector<int> counts(table.size(), 0);
    for (std::size_t i = 0; i < table.size(); ++i)
        if (table[i] >= 0) counts[i] = 1;
    return counts;
}

std::vector<int> Session::nth_detected_at() const {
    const auto table = first_detected_at();
    return std::vector<int>(table.begin(), table.end());
}

std::size_t Session::fully_detected_count() const {
    std::size_t n = 0;
    for (int at : nth_detected_at())
        if (at >= 0) ++n;
    return n;
}

// ---- Builtin engines ------------------------------------------------------

namespace {

using gatesim::Circuit;
using gatesim::StuckAtFault;
using gatesim::Vector;

/// Adapter: the PPSFP FaultSimulator behind the Session interface.  The
/// "serial" engine is the same simulator pinned to one worker — it exists
/// so benches and bug bisection can separate algorithm from threading.
class PpsfpSession final : public Session {
public:
    PpsfpSession(const Circuit& circuit, std::vector<StuckAtFault> faults,
                 parallel::ParallelOptions parallel, SessionOptions options)
        : sim_(circuit, std::move(faults), parallel, options.ndetect,
               std::move(options.untestable)) {}

    std::span<const StuckAtFault> faults() const override {
        return sim_.faults();
    }
    std::span<const int> first_detected_at() const override {
        return sim_.first_detected_at();
    }
    int vectors_applied() const override { return sim_.vectors_applied(); }
    support::ApplyResult apply(std::span<const Vector> vectors,
                               const support::RunBudget& budget) override {
        return sim_.apply(vectors, budget);
    }
    using Session::apply;

    int ndetect_target() const override { return sim_.ndetect_target(); }
    std::vector<int> detection_counts() const override {
        const auto counts = sim_.detection_counts();
        return std::vector<int>(counts.begin(), counts.end());
    }
    std::vector<int> nth_detected_at() const override {
        const auto table = sim_.nth_detected_at();
        return std::vector<int>(table.begin(), table.end());
    }

private:
    gatesim::FaultSimulator sim_;
};

/// The reference oracle: scalar, one vector at a time, whole-circuit
/// re-simulation per fault.  Shares nothing with the fast engines except
/// the netlist IR, which is what makes it a meaningful differential
/// baseline.  Same block/budget boundaries as every other engine, so
/// interrupted runs are comparable too.  O(faults x vectors x gates) —
/// test-sized circuits only.
class NaiveSession final : public Session {
public:
    NaiveSession(const Circuit& circuit, std::vector<StuckAtFault> faults,
                 SessionOptions options)
        : circuit_(circuit),
          faults_(std::move(faults)),
          ndetect_(std::max(1, options.ndetect)),
          untestable_(std::move(options.untestable)) {
        if (!untestable_.empty() && untestable_.size() != faults_.size())
            throw std::invalid_argument(
                "NaiveSession: untestable mask size mismatch");
        detected_at_.assign(faults_.size(), -1);
        counts_.assign(faults_.size(), 0);
        nth_at_.assign(faults_.size(), -1);
    }

    std::span<const StuckAtFault> faults() const override { return faults_; }
    std::span<const int> first_detected_at() const override {
        return detected_at_;
    }
    int vectors_applied() const override { return vectors_applied_; }

    int ndetect_target() const override { return ndetect_; }
    std::vector<int> detection_counts() const override { return counts_; }
    std::vector<int> nth_detected_at() const override { return nth_at_; }

    support::ApplyResult apply(std::span<const Vector> vectors,
                               const support::RunBudget& budget) override {
        const int before_applied = vectors_applied_;
        support::ApplyResult result;
        const std::size_t allowed =
            budget.allowed_vectors(vectors.size(), vectors_applied_);
        if (allowed < vectors.size()) {
            vectors = vectors.first(allowed);
            result.stop = support::StopReason::VectorBudget;
        }
        std::size_t completed = 0;
        for (std::size_t base = 0; base < vectors.size(); base += 64) {
            const support::StopReason stop = budget.check();
            if (stop != support::StopReason::None) {
                result.stop = stop;
                break;
            }
            const std::size_t take =
                std::min<std::size_t>(64, vectors.size() - base);
            std::vector<std::vector<bool>> good(take);
            for (std::size_t k = 0; k < take; ++k)
                good[k] = good_outputs(vectors[base + k]);
            for (std::size_t fi = 0; fi < faults_.size(); ++fi) {
                if (counts_[fi] >= ndetect_) continue;  // fault dropping
                if (!untestable_.empty() && untestable_[fi])
                    continue;  // statically proven undetectable
                for (std::size_t k = 0; k < take; ++k)
                    if (faulty_outputs(vectors[base + k], faults_[fi]) !=
                        good[k]) {
                        const int pos =
                            before_applied + static_cast<int>(base + k) + 1;
                        if (detected_at_[fi] < 0) detected_at_[fi] = pos;
                        if (++counts_[fi] == ndetect_) {
                            nth_at_[fi] = pos;
                            break;
                        }
                    }
            }
            completed = base + take;
        }
        vectors_applied_ += static_cast<int>(completed);
        for (int at : detected_at_)
            if (at > before_applied) ++result.newly_detected;
        result.vectors_applied = static_cast<int>(completed);
        return result;
    }
    using Session::apply;

private:
    std::vector<bool> good_outputs(const Vector& v) const {
        const std::vector<bool> nets = gatesim::simulate(circuit_, v);
        std::vector<bool> outs;
        for (const netlist::NetId po : circuit_.outputs())
            outs.push_back(nets[po]);
        return outs;
    }

    std::vector<bool> faulty_outputs(const Vector& v,
                                     const StuckAtFault& f) const {
        std::vector<std::uint64_t> value(circuit_.gate_count(), 0);
        std::size_t next_input = 0;
        for (netlist::NetId id = 0; id < circuit_.gate_count(); ++id) {
            const netlist::Gate& g = circuit_.gate(id);
            if (g.type == netlist::GateType::Input) {
                value[id] = v[next_input++] ? 1 : 0;
            } else {
                std::vector<std::uint64_t> fanin;
                for (std::size_t pin = 0; pin < g.fanin.size(); ++pin) {
                    std::uint64_t bit = value[g.fanin[pin]] & 1;
                    if (!f.is_stem() && f.reader == id &&
                        f.pin == static_cast<int>(pin))
                        bit = f.stuck_value ? 1 : 0;
                    fanin.push_back(bit);
                }
                value[id] = netlist::eval_gate(g.type, fanin) & 1;
            }
            if (f.is_stem() && f.net == id) value[id] = f.stuck_value ? 1 : 0;
        }
        std::vector<bool> outs;
        for (const netlist::NetId po : circuit_.outputs())
            outs.push_back(value[po] & 1);
        return outs;
    }

    const Circuit& circuit_;
    std::vector<StuckAtFault> faults_;
    const int ndetect_;
    std::vector<std::uint8_t> untestable_;  ///< skip mask (empty = none)
    std::vector<int> detected_at_;
    std::vector<int> counts_;  ///< detections so far, saturated at ndetect_
    std::vector<int> nth_at_;  ///< vector index reaching the target; -1 below
    int vectors_applied_ = 0;
};

class NaiveEngine final : public Engine {
public:
    std::string_view name() const override { return "naive"; }
    std::string_view description() const override {
        return "scalar per-vector reference oracle (slow; differential "
               "baseline)";
    }
    std::unique_ptr<Session> open(
        const Circuit& circuit, std::vector<StuckAtFault> faults,
        parallel::ParallelOptions, SessionOptions options) const override {
        return std::make_unique<NaiveSession>(circuit, std::move(faults),
                                              options);
    }
};

class SerialEngine final : public Engine {
public:
    std::string_view name() const override { return "serial"; }
    std::string_view description() const override {
        return "PPSFP suffix-walk simulator pinned to one worker";
    }
    std::unique_ptr<Session> open(
        const Circuit& circuit, std::vector<StuckAtFault> faults,
        parallel::ParallelOptions, SessionOptions options) const override {
        return std::make_unique<PpsfpSession>(circuit, std::move(faults),
                                              parallel::ParallelOptions{1},
                                              options);
    }
};

class PpsfpEngine final : public Engine {
public:
    std::string_view name() const override { return "ppsfp"; }
    std::string_view description() const override {
        return "thread-pooled PPSFP simulator (64 patterns/word, "
               "suffix-walk cones)";
    }
    std::unique_ptr<Session> open(
        const Circuit& circuit, std::vector<StuckAtFault> faults,
        parallel::ParallelOptions parallel,
        SessionOptions options) const override {
        return std::make_unique<PpsfpSession>(circuit, std::move(faults),
                                              parallel, options);
    }
};

class LevelizedEngine final : public Engine {
public:
    std::string_view name() const override { return "levelized"; }
    std::string_view description() const override {
        return "levelized SoA engine: event-driven cone propagation over a "
               "flat compiled circuit";
    }
    std::unique_ptr<Session> open(
        const Circuit& circuit, std::vector<StuckAtFault> faults,
        parallel::ParallelOptions parallel,
        SessionOptions options) const override {
        return std::make_unique<gatesim::LevelizedFaultSimulator>(
            circuit, std::move(faults), parallel, options.ndetect,
            std::move(options.untestable));
    }
};

// ---- Registry -------------------------------------------------------------

struct Registry {
    std::mutex mu;
    std::vector<std::unique_ptr<Engine>> engines;

    Registry() {
        engines.push_back(std::make_unique<NaiveEngine>());
        engines.push_back(std::make_unique<SerialEngine>());
        engines.push_back(std::make_unique<PpsfpEngine>());
        engines.push_back(std::make_unique<LevelizedEngine>());
    }
};

Registry& registry() {
    static Registry r;  // thread-safe init registers the builtins
    return r;
}

}  // namespace

void register_engine(std::unique_ptr<Engine> engine) {
    if (!engine) throw std::invalid_argument("register_engine: null engine");
    Registry& r = registry();
    const std::scoped_lock lock(r.mu);
    for (const auto& e : r.engines)
        if (e->name() == engine->name())
            throw std::invalid_argument(
                "register_engine: duplicate engine name '" +
                std::string(engine->name()) + "'");
    r.engines.push_back(std::move(engine));
}

std::vector<std::string_view> engine_names() {
    Registry& r = registry();
    const std::scoped_lock lock(r.mu);
    std::vector<std::string_view> names;
    names.reserve(r.engines.size());
    for (const auto& e : r.engines) names.push_back(e->name());
    return names;
}

const Engine* find_engine(std::string_view name) {
    Registry& r = registry();
    const std::scoped_lock lock(r.mu);
    for (const auto& e : r.engines)
        if (e->name() == name) return e.get();  // engines are never removed
    return nullptr;
}

const Engine& engine(std::string_view name) {
    if (const Engine* e = find_engine(name)) return *e;
    std::ostringstream msg;
    msg << "unknown fault-sim engine '" << name << "' (registered:";
    for (const auto n : engine_names()) msg << " " << n;
    msg << ")";
    throw std::invalid_argument(msg.str());
}

const Engine& resolve_engine(std::string_view name) {
    if (!name.empty()) return engine(name);
    if (const char* env = std::getenv("DLPROJ_ENGINE"); env && *env)
        return engine(env);
    return engine(kDefaultEngine);
}

}  // namespace dlp::sim
