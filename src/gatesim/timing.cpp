#include "gatesim/timing.h"

#include <algorithm>
#include <stdexcept>

namespace dlp::gatesim {

double DelayModel::gate_delay(GateType type, int arity, int fanout) const {
    double base = 0.0;
    switch (type) {
        case GateType::Input: return input_delay;
        case GateType::Buf: base = buf_delay; break;
        case GateType::Not: base = inv_delay; break;
        case GateType::Nand: base = nand_delay; break;
        case GateType::Nor: base = nor_delay; break;
        case GateType::And: base = and_delay; break;
        case GateType::Or: base = or_delay; break;
        case GateType::Xor:
        case GateType::Xnor: base = xor_delay; break;
    }
    const int extra = std::max(0, arity - 2);
    return base + per_extra_input * extra +
           per_fanout * std::max(0, fanout - 1);
}

double TimingAnalysis::min_slack() const {
    if (slack.empty()) return 0.0;
    return *std::min_element(slack.begin(), slack.end());
}

TimingAnalysis analyze_timing(const Circuit& circuit, const DelayModel& model,
                              double clock_period) {
    TimingAnalysis t;
    const size_t n = circuit.gate_count();
    t.arrival.assign(n, 0.0);
    const auto fanouts = circuit.fanouts();

    // Forward pass: latest arrival per net (NetId order is topological).
    for (NetId g = 0; g < n; ++g) {
        const auto& gate = circuit.gate(g);
        double in_arr = 0.0;
        for (NetId f : gate.fanin) in_arr = std::max(in_arr, t.arrival[f]);
        t.arrival[g] =
            in_arr + model.gate_delay(gate.type,
                                      static_cast<int>(gate.fanin.size()),
                                      static_cast<int>(fanouts[g].size()));
    }
    for (NetId po : circuit.outputs())
        t.critical_delay = std::max(t.critical_delay, t.arrival[po]);

    t.clock_period = clock_period > 0.0 ? clock_period : t.critical_delay;

    // Backward pass: required times, then slack per net.
    std::vector<double> required(n, 1e300);
    for (NetId po : circuit.outputs())
        required[po] = std::min(required[po], t.clock_period);
    for (NetId g = static_cast<NetId>(n); g-- > 0;) {
        const auto& gate = circuit.gate(g);
        if (gate.type == netlist::GateType::Input) continue;
        const double own = model.gate_delay(
            gate.type, static_cast<int>(gate.fanin.size()),
            static_cast<int>(fanouts[g].size()));
        for (NetId f : gate.fanin)
            required[f] = std::min(required[f], required[g] - own);
    }
    t.slack.assign(n, 0.0);
    for (NetId g = 0; g < n; ++g) {
        // Nets nobody reads and that are not POs keep a huge slack.
        t.slack[g] = required[g] >= 1e299 ? t.clock_period
                                          : required[g] - t.arrival[g];
    }
    return t;
}

}  // namespace dlp::gatesim
