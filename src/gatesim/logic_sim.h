// Bit-parallel (64 patterns/word) gate-level logic simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.h"

namespace dlp::gatesim {

using netlist::Circuit;
using netlist::NetId;

/// One test vector: one bit per primary input, in circuit input order.
using Vector = std::vector<bool>;

/// 64 packed test vectors: word i holds input i's bit for each of the 64
/// pattern lanes (lane b = bit b of the word).
struct PatternBlock {
    std::vector<std::uint64_t> input_words;  ///< one word per primary input
    int pattern_count = 64;                  ///< valid lanes (1..64)
};

/// Packs up to 64 vectors into one block (vectors.size() <= 64).
PatternBlock pack_vectors(const Circuit& circuit,
                          std::span<const Vector> vectors);

/// Evaluates the full circuit over a pattern block; returns one word per net
/// (indexed by NetId).  Lanes beyond pattern_count contain garbage.
std::vector<std::uint64_t> simulate_block(const Circuit& circuit,
                                          const PatternBlock& block);

/// Convenience scalar simulation of a single vector; returns one bool per
/// net.
std::vector<bool> simulate(const Circuit& circuit, const Vector& vector);

/// Extracts primary-output values (one word per PO) from a net-word table.
std::vector<std::uint64_t> output_words(
    const Circuit& circuit, std::span<const std::uint64_t> net_words);

}  // namespace dlp::gatesim
