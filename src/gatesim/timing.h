// Static timing analysis over the gate-level netlist: arrival times,
// required times against a clock period, and per-line slacks.  Substrate
// for the statistical delay-fault model (paper ref. [8], Park, Mercer &
// Williams, "A Statistical Model for Delay-Fault Testing").
#pragma once

#include <vector>

#include "netlist/circuit.h"

namespace dlp::gatesim {

using netlist::Circuit;
using netlist::GateType;
using netlist::NetId;

/// Simple gate delay model: intrinsic delay per type plus a load term per
/// fanout (all in arbitrary time units).
struct DelayModel {
    double input_delay = 0.0;   ///< PI arrival
    double buf_delay = 0.6;
    double inv_delay = 0.5;
    double nand_delay = 1.0;    ///< 2-input; wider gates add per-input cost
    double nor_delay = 1.2;
    double and_delay = 1.5;     ///< NAND + inverter
    double or_delay = 1.7;
    double xor_delay = 2.2;
    double per_extra_input = 0.25;
    double per_fanout = 0.15;

    double gate_delay(GateType type, int arity, int fanout) const;
};

struct TimingAnalysis {
    std::vector<double> arrival;   ///< per net, latest transition
    std::vector<double> slack;     ///< per net, vs the clock period
    double critical_delay = 0.0;   ///< max PO arrival
    double clock_period = 0.0;

    double min_slack() const;
};

/// Computes arrival times and slacks.  `clock_period <= 0` means "use the
/// critical delay" (zero slack on the critical path).
TimingAnalysis analyze_timing(const Circuit& circuit,
                              const DelayModel& model = {},
                              double clock_period = 0.0);

}  // namespace dlp::gatesim
