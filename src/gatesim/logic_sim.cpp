#include "gatesim/logic_sim.h"

#include <stdexcept>

namespace dlp::gatesim {

PatternBlock pack_vectors(const Circuit& circuit,
                          std::span<const Vector> vectors) {
    if (vectors.empty() || vectors.size() > 64)
        throw std::invalid_argument("need 1..64 vectors per block");
    const size_t pi_count = circuit.inputs().size();
    PatternBlock block;
    block.pattern_count = static_cast<int>(vectors.size());
    block.input_words.assign(pi_count, 0);
    for (size_t lane = 0; lane < vectors.size(); ++lane) {
        if (vectors[lane].size() != pi_count)
            throw std::invalid_argument("vector width != primary input count");
        for (size_t i = 0; i < pi_count; ++i)
            if (vectors[lane][i])
                block.input_words[i] |= 1ULL << lane;
    }
    return block;
}

std::vector<std::uint64_t> simulate_block(const Circuit& circuit,
                                          const PatternBlock& block) {
    if (block.input_words.size() != circuit.inputs().size())
        throw std::invalid_argument("block width != primary input count");
    std::vector<std::uint64_t> words(circuit.gate_count(), 0);
    size_t next_input = 0;
    std::vector<std::uint64_t> operands;
    for (NetId g = 0; g < circuit.gate_count(); ++g) {
        const auto& gate = circuit.gate(g);
        if (gate.type == netlist::GateType::Input) {
            words[g] = block.input_words[next_input++];
            continue;
        }
        operands.clear();
        for (NetId f : gate.fanin) operands.push_back(words[f]);
        words[g] = netlist::eval_gate(gate.type, operands);
    }
    return words;
}

std::vector<bool> simulate(const Circuit& circuit, const Vector& vector) {
    const Vector* one = &vector;
    const PatternBlock block = pack_vectors(circuit, std::span(one, 1));
    const auto words = simulate_block(circuit, block);
    std::vector<bool> values(words.size());
    for (size_t i = 0; i < words.size(); ++i) values[i] = words[i] & 1ULL;
    return values;
}

std::vector<std::uint64_t> output_words(
    const Circuit& circuit, std::span<const std::uint64_t> net_words) {
    std::vector<std::uint64_t> out;
    out.reserve(circuit.outputs().size());
    for (NetId po : circuit.outputs()) out.push_back(net_words[po]);
    return out;
}

}  // namespace dlp::gatesim
