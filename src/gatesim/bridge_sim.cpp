#include "gatesim/bridge_sim.h"

#include <stdexcept>

namespace dlp::gatesim {

namespace {

bool resolve(BridgeRule rule, bool va, bool vb) {
    switch (rule) {
        case BridgeRule::WiredAnd: return va && vb;
        case BridgeRule::WiredOr: return va || vb;
        case BridgeRule::ADominates: return va;
        case BridgeRule::BDominates: return vb;
    }
    throw std::logic_error("unknown bridge rule");
}

}  // namespace

std::vector<bool> simulate_bridge(const Circuit& circuit,
                                  const Vector& vector,
                                  const GateBridgeFault& fault,
                                  bool* oscillated) {
    if (oscillated) *oscillated = false;
    if (vector.size() != circuit.inputs().size())
        throw std::invalid_argument("vector width != primary input count");

    // Scalar evaluation with the bridge override, iterated to a fixpoint:
    // the resolved value replaces both nets *as seen by their readers*,
    // and feeds back into the drivers' logic cones on the next pass.
    std::vector<bool> values(circuit.gate_count(), false);
    bool va = false;
    bool vb = false;
    bool have_bridge_values = false;

    const int kMaxPasses = 8;
    std::vector<bool> prev;
    for (int pass = 0; pass < kMaxPasses; ++pass) {
        size_t next_input = 0;
        for (NetId g = 0; g < circuit.gate_count(); ++g) {
            const auto& gate = circuit.gate(g);
            if (gate.type == netlist::GateType::Input) {
                values[g] = vector[next_input++];
            } else {
                std::vector<std::uint64_t> ops;
                ops.reserve(gate.fanin.size());
                for (NetId f : gate.fanin) {
                    bool v = values[f];
                    if (have_bridge_values && (f == fault.a || f == fault.b))
                        v = resolve(fault.rule, va, vb);
                    ops.push_back(v ? ~0ULL : 0ULL);
                }
                values[g] = netlist::eval_gate(gate.type, ops) & 1ULL;
            }
            // Record the *driven* values of the bridged nets this pass.
            if (g == fault.a) va = values[g];
            if (g == fault.b) vb = values[g];
        }
        have_bridge_values = true;
        if (!prev.empty() && prev == values) break;
        if (pass == kMaxPasses - 1) {
            if (oscillated) *oscillated = true;
            break;
        }
        prev = values;
    }

    std::vector<bool> outs;
    outs.reserve(circuit.outputs().size());
    const bool resolved = resolve(fault.rule, va, vb);
    for (NetId po : circuit.outputs()) {
        bool v = values[po];
        if (po == fault.a || po == fault.b) v = resolved;
        outs.push_back(v);
    }
    return outs;
}

GateBridgeSimulator::GateBridgeSimulator(const Circuit& circuit,
                                         std::vector<GateBridgeFault> faults)
    : circuit_(circuit), faults_(std::move(faults)) {
    detected_at_.assign(faults_.size(), -1);
    for (const auto& f : faults_)
        if (f.a >= circuit.gate_count() || f.b >= circuit.gate_count())
            throw std::invalid_argument("bridge net out of range");
}

int GateBridgeSimulator::apply(std::span<const Vector> vectors) {
    int newly = 0;
    for (const Vector& v : vectors) {
        ++vectors_applied_;
        std::vector<bool> good;
        bool good_ready = false;
        for (size_t fi = 0; fi < faults_.size(); ++fi) {
            if (detected_at_[fi] >= 0) continue;
            if (!good_ready) {
                const auto net_vals = simulate(circuit_, v);
                good.clear();
                for (NetId po : circuit_.outputs())
                    good.push_back(net_vals[po]);
                good_ready = true;
            }
            bool osc = false;
            const auto faulty = simulate_bridge(circuit_, v, faults_[fi],
                                                &osc);
            if (osc) continue;  // no guaranteed detection
            if (faulty != good) {
                detected_at_[fi] = vectors_applied_;
                ++newly;
            }
        }
    }
    return newly;
}

double GateBridgeSimulator::coverage() const {
    if (faults_.empty()) return 0.0;
    size_t hit = 0;
    for (int d : detected_at_) hit += d >= 0;
    return static_cast<double>(hit) / static_cast<double>(faults_.size());
}

}  // namespace dlp::gatesim
