#include "gatesim/patterns.h"

namespace dlp::gatesim {

std::uint64_t RandomPatternGenerator::next_word() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Vector RandomPatternGenerator::next_vector(const Circuit& circuit) {
    const size_t width = circuit.inputs().size();
    Vector v(width);
    std::uint64_t bits = 0;
    int have = 0;
    for (size_t i = 0; i < width; ++i) {
        if (have == 0) {
            bits = next_word();
            have = 64;
        }
        v[i] = bits & 1ULL;
        bits >>= 1;
        --have;
    }
    return v;
}

std::vector<Vector> RandomPatternGenerator::vectors(const Circuit& circuit,
                                                    int n) {
    std::vector<Vector> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) out.push_back(next_vector(circuit));
    return out;
}

}  // namespace dlp::gatesim
