// Levelized bit-parallel stuck-at fault simulation over a flat SoA IR.
//
// compile step (levelize): the per-gate-object netlist::Circuit is lowered
// into arena-style flat arrays — CSR fanin/fanout adjacency, one gate-type
// byte per net, a topological level per net, and an evaluation schedule
// bucketed level by level — so the hot loops touch contiguous memory
// instead of chasing std::string/std::vector gate objects.
//
// run step (LevelizedFaultSimulator): 64 patterns per word, good machine
// evaluated level by level (wide levels fan out across the shared thread
// pool; writes are per-net, so results are worker-count-invariant), then
// faults partitioned across the pool.  Each fault is propagated
// EVENT-DRIVEN through its actually-diverging cone — seed the fault site,
// push reader gates through the CSR fanout lists, evaluate strictly in
// level order (a gate's fanins are all at lower levels, so one evaluation
// per gate suffices), and stop where the faulty words reconverge with the
// good machine — instead of re-evaluating the whole topological suffix the
// way the PPSFP engine does.  Per-fault state is epoch-stamped, so setup
// cost per fault is O(cone), not O(nets).
//
// Detection semantics are bit-identical to gatesim::FaultSimulator (and
// the naive oracle): same block boundaries, same budget checks, same
// first-detection lane per fault, per-block fault dropping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gatesim/engine.h"
#include "gatesim/fault_sim.h"

namespace dlp::gatesim {

/// Flat, topologically levelized compilation of a Circuit.  Net ids are
/// preserved (net j == gate j, as in the source IR), so detection tables
/// and fault lists need no translation.
struct LevelizedCircuit {
    std::size_t net_count = 0;
    int depth = 0;  ///< maximum level (primary inputs are level 0)

    // Per net, indexed by NetId.
    std::vector<netlist::GateType> type;
    std::vector<std::int32_t> level;
    std::vector<std::uint8_t> is_output;

    // CSR fanin adjacency: net g's driving nets are
    // fanin[fanin_begin[g] .. fanin_begin[g+1]), in pin order.
    std::vector<std::uint32_t> fanin_begin;  ///< net_count + 1 offsets
    std::vector<netlist::NetId> fanin;

    // CSR fanout adjacency: the gates reading net n are
    // fanout[fanout_begin[n] .. fanout_begin[n+1]) (one entry per reading
    // gate, deduplicated; pin multiplicity lives in the fanin rows).
    std::vector<std::uint32_t> fanout_begin;  ///< net_count + 1 offsets
    std::vector<netlist::NetId> fanout;

    // Evaluation schedule: every non-input gate, level-major and in NetId
    // order within a level.  Level l spans
    // schedule[level_begin[l] .. level_begin[l + 1]).
    std::vector<netlist::NetId> schedule;
    std::vector<std::uint32_t> level_begin;  ///< depth + 2 offsets

    std::vector<netlist::NetId> inputs;
    std::vector<netlist::NetId> outputs;

    std::size_t logic_gate_count() const {
        return net_count - inputs.size();
    }
};

/// Compiles a circuit; O(nets + edges).
LevelizedCircuit levelize(const Circuit& circuit);

/// Evaluates gate `g` of the compiled circuit over `words` (one 64-lane
/// word per net).  `g` must be a logic gate.
std::uint64_t eval_flat(const LevelizedCircuit& lc, netlist::NetId g,
                        const std::uint64_t* words);

/// Good-machine simulation of a pattern block over the compiled circuit,
/// level by level; `words` is resized to one word per net.  Levels wider
/// than an internal threshold are evaluated in parallel on the shared
/// pool; results are bit-identical for any worker count.
void simulate_block_levelized(const LevelizedCircuit& lc,
                              const PatternBlock& block,
                              std::vector<std::uint64_t>& words,
                              parallel::ParallelOptions parallel = {});

/// The levelized engine session; also usable directly (bench, tests).
class LevelizedFaultSimulator final : public sim::Session {
public:
    /// `ndetect` is the n-detection target: a fault is dropped only after
    /// `ndetect` vector positions have detected it (1 = classic behavior).
    /// `untestable` (parallel to `faults`; empty = none) marks statically
    /// proven-untestable faults that are never simulated.
    LevelizedFaultSimulator(const Circuit& circuit,
                            std::vector<StuckAtFault> faults,
                            parallel::ParallelOptions parallel = {},
                            int ndetect = 1,
                            std::vector<std::uint8_t> untestable = {});

    std::span<const StuckAtFault> faults() const override { return faults_; }
    std::span<const int> first_detected_at() const override {
        return detected_at_;
    }
    int vectors_applied() const override { return vectors_applied_; }
    support::ApplyResult apply(std::span<const Vector> vectors,
                               const support::RunBudget& budget) override;
    using sim::Session::apply;

    int ndetect_target() const override { return ndetect_; }
    std::vector<int> detection_counts() const override { return counts_; }
    std::vector<int> nth_detected_at() const override { return nth_at_; }

    /// The compiled IR (tests and benches introspect it).
    const LevelizedCircuit& compiled() const { return lc_; }

private:
    /// Per-worker propagation scratch, reused across faults via epoch
    /// stamping (no O(nets) clearing between faults).
    struct Scratch {
        std::vector<std::uint64_t> value;   ///< faulty word, valid @ epoch
        std::vector<std::uint64_t> stamp;   ///< value[] validity epoch
        std::vector<std::uint64_t> queued;  ///< enqueue-dedup epoch
        std::vector<std::vector<netlist::NetId>> bucket;  ///< per level
        std::uint64_t epoch = 0;
    };

    /// Propagates fault `fi` through one good-machine block; returns the
    /// PO difference word (unmasked).
    std::uint64_t propagate(std::size_t fi, Scratch& s,
                            std::span<const std::uint64_t> good) const;

    const Circuit& circuit_;
    LevelizedCircuit lc_;
    std::vector<StuckAtFault> faults_;
    int ndetect_ = 1;
    std::vector<int> detected_at_;
    std::vector<int> counts_;  ///< detections so far, saturated at ndetect_
    std::vector<int> nth_at_;  ///< vector index reaching the target; -1 below
    std::vector<std::uint8_t> untestable_;  ///< skip mask (empty = none)
    int vectors_applied_ = 0;
    parallel::ParallelOptions parallel_;
};

}  // namespace dlp::gatesim
