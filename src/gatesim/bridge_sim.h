// Gate-level (abstract) bridging-fault simulation, for comparison with the
// switch-level electrical reference.
//
// The classic logic-level abstractions force both bridged nets to a common
// resolved value: wired-AND, wired-OR, or one driver dominating.  The
// paper's argument is that such abstractions (like the stuck-at model) are
// only approximations of the electrical behaviour; the ablation bench
// quantifies how often they disagree with nodal analysis.
//
// Bridges can create topological cycles at the logic level (the resolved
// value feeds logic driving one of the bridged nets).  Those are evaluated
// to a fixpoint; an oscillating fixpoint is treated as undetected by the
// vector (no guaranteed voltage difference).
#pragma once

#include <span>
#include <vector>

#include "gatesim/logic_sim.h"

namespace dlp::gatesim {

/// Resolution rule of a gate-level bridge.
enum class BridgeRule : std::uint8_t {
    WiredAnd,
    WiredOr,
    ADominates,  ///< net a's value wins on conflict
    BDominates,
};

struct GateBridgeFault {
    NetId a = 0;
    NetId b = 0;
    BridgeRule rule = BridgeRule::WiredAnd;
};

/// Simulates one vector under a gate-level bridge; returns the primary
/// output values, or nothing if the bridge oscillates on this vector.
/// Exposed mainly for tests; use GateBridgeSimulator for sequences.
std::vector<bool> simulate_bridge(const Circuit& circuit,
                                  const Vector& vector,
                                  const GateBridgeFault& fault,
                                  bool* oscillated = nullptr);

/// Sequence simulator with fault dropping, mirroring FaultSimulator.
class GateBridgeSimulator {
public:
    GateBridgeSimulator(const Circuit& circuit,
                        std::vector<GateBridgeFault> faults);

    int apply(std::span<const Vector> vectors);

    std::span<const GateBridgeFault> faults() const { return faults_; }
    std::span<const int> first_detected_at() const { return detected_at_; }
    double coverage() const;

private:
    const Circuit& circuit_;
    std::vector<GateBridgeFault> faults_;
    std::vector<int> detected_at_;
    int vectors_applied_ = 0;
};

}  // namespace dlp::gatesim
