#include "gatesim/transition.h"

#include <algorithm>
#include <bit>

namespace dlp::gatesim {

std::string transition_fault_name(const Circuit& circuit,
                                  const TransitionFault& fault) {
    return circuit.gate(fault.line).name +
           (fault.slow_to_rise ? "/STR" : "/STF");
}

std::vector<TransitionFault> full_transition_universe(
    const Circuit& circuit) {
    std::vector<TransitionFault> faults;
    faults.reserve(circuit.gate_count() * 2);
    for (NetId n = 0; n < circuit.gate_count(); ++n) {
        faults.push_back({n, true});
        faults.push_back({n, false});
    }
    return faults;
}

TransitionFaultSimulator::TransitionFaultSimulator(
    const Circuit& circuit, std::vector<TransitionFault> faults)
    : circuit_(circuit), faults_(std::move(faults)) {
    detected_at_.assign(faults_.size(), -1);
}

int TransitionFaultSimulator::apply(std::span<const Vector> vectors) {
    int newly = 0;
    std::vector<std::uint64_t> operands;

    for (size_t base = 0; base < vectors.size(); base += 64) {
        const size_t take = std::min<size_t>(64, vectors.size() - base);
        const PatternBlock block =
            pack_vectors(circuit_, vectors.subspan(base, take));
        const auto good = simulate_block(circuit_, block);
        // Line values of the vector preceding this block (for lane 0 pairs).
        std::vector<bool> prev_vals;
        if (has_last_) prev_vals = simulate(circuit_, last_vector_);

        // Detection mask of the stem stuck-at fault (line, value) for every
        // lane of this block, computed on demand and cached per line+value.
        struct MaskCache {
            bool ready = false;
            std::uint64_t mask = 0;
        };
        std::vector<MaskCache> cache(circuit_.gate_count() * 2);
        const auto detect_mask = [&](NetId line, bool value) {
            MaskCache& mc =
                cache[static_cast<size_t>(line) * 2 + (value ? 1 : 0)];
            if (mc.ready) return mc.mask;
            std::vector<std::uint64_t> fwords = good;
            fwords[line] = value ? ~0ULL : 0ULL;
            for (NetId g = line + 1;
                 g < static_cast<NetId>(circuit_.gate_count()); ++g) {
                const auto& gate = circuit_.gate(g);
                if (gate.type == netlist::GateType::Input) continue;
                bool touched = false;
                operands.clear();
                for (NetId f : gate.fanin) {
                    operands.push_back(fwords[f]);
                    touched |= fwords[f] != good[f];
                }
                if (touched)
                    fwords[g] = netlist::eval_gate(gate.type, operands);
            }
            std::uint64_t diff = 0;
            for (NetId po : circuit_.outputs()) diff |= fwords[po] ^ good[po];
            mc.mask = diff;
            mc.ready = true;
            return diff;
        };

        for (size_t fi = 0; fi < faults_.size(); ++fi) {
            if (detected_at_[fi] >= 0) continue;
            const TransitionFault& f = faults_[fi];
            const bool init = !f.slow_to_rise;  // STR: init 0; STF: init 1
            // Lane j detects iff line == init at lane j-1 (or in the carried
            // last vector for j == 0) and the stuck-at-init fault is
            // detected at lane j.
            const std::uint64_t line_vals = good[f.line];
            const std::uint64_t want = init ? line_vals : ~line_vals;
            std::uint64_t init_ok = want << 1;  // predecessor within block
            // Predecessor of lane 0 is the last vector before this block.
            if (has_last_ && prev_vals[f.line] == init) init_ok |= 1ULL;
            const std::uint64_t mask =
                detect_mask(f.line, init) & init_ok &
                (take == 64 ? ~0ULL : (1ULL << take) - 1);
            if (mask != 0) {
                const int lane = std::countr_zero(mask);
                detected_at_[fi] =
                    vectors_applied_ + static_cast<int>(base) + lane + 1;
                ++newly;
            }
        }

        last_vector_ = vectors[base + take - 1];
        has_last_ = true;
    }
    vectors_applied_ += static_cast<int>(vectors.size());
    return newly;
}

double TransitionFaultSimulator::coverage() const {
    if (faults_.empty()) return 0.0;
    size_t hit = 0;
    for (int d : detected_at_) hit += d >= 0;
    return static_cast<double>(hit) / static_cast<double>(faults_.size());
}

std::vector<double> TransitionFaultSimulator::coverage_curve() const {
    std::vector<int> hits(static_cast<size_t>(vectors_applied_) + 1, 0);
    for (int at : detected_at_)
        if (at >= 1 && at <= vectors_applied_) ++hits[static_cast<size_t>(at)];
    std::vector<double> curve(static_cast<size_t>(vectors_applied_));
    double cum = 0;
    for (int k = 1; k <= vectors_applied_; ++k) {
        cum += hits[static_cast<size_t>(k)];
        curve[static_cast<size_t>(k - 1)] =
            faults_.empty() ? 0.0
                            : cum / static_cast<double>(faults_.size());
    }
    return curve;
}

}  // namespace dlp::gatesim
