#include "gatesim/bist.h"

#include <stdexcept>

namespace dlp::gatesim {

namespace {

std::uint64_t width_mask(int width) {
    // Total over any int: member initializers run before the constructor
    // body can reject an out-of-range width, so the shift must be guarded.
    if (width <= 0) return 0;
    if (width >= 64) return ~0ULL;
    return (1ULL << width) - 1;
}

}  // namespace

std::uint64_t Lfsr::primitive_taps(int width) {
    // Right-shift Galois masks of primitive polynomials.
    switch (width) {
        case 3: return 0x6;
        case 4: return 0xC;
        case 5: return 0x14;
        case 6: return 0x30;
        case 7: return 0x60;
        case 8: return 0xB8;
        case 15: return 0x6000;
        case 16: return 0xB400;
        case 24: return 0xE10000;
        case 32: return 0x80200003;
        default: return 0;
    }
}

Lfsr::Lfsr(int width, std::uint64_t taps, std::uint64_t seed)
    : width_(width),
      taps_(taps ? taps : primitive_taps(width)),
      mask_(width_mask(width)),
      state_(seed & mask_) {
    if (width < 1 || width > 64)
        throw std::invalid_argument("LFSR width must be in [1,64]");
    if (taps_ == 0)
        // Fall back to a simple two-tap feedback; not necessarily maximal.
        taps_ = 1ULL | (1ULL << (width_ - 1));
    taps_ &= mask_;
    if (state_ == 0) state_ = 1;
}

std::uint64_t Lfsr::step() {
    // Right-shift Galois form: the outgoing bit conditions the taps XOR.
    const std::uint64_t out = state_ & 1ULL;
    state_ >>= 1;
    if (out) state_ ^= taps_;
    state_ &= mask_;
    if (state_ == 0) state_ = 1;  // lockup guard for non-maximal taps
    return state_;
}

Vector Lfsr::next_vector(const Circuit& circuit) {
    step();
    const size_t n = circuit.inputs().size();
    Vector v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = (state_ >> (i % static_cast<size_t>(width_))) & 1ULL;
    return v;
}

std::uint64_t Lfsr::period() const {
    Lfsr probe(width_, taps_, state_);
    std::uint64_t count = 0;
    do {
        probe.step();
        ++count;
        if (count > (mask_ + 2)) break;  // safety for degenerate taps
    } while (probe.state() != state_);
    return count;
}

Misr::Misr(int width, std::uint64_t taps, std::uint64_t seed)
    : width_(width),
      taps_(taps ? taps : Lfsr::primitive_taps(width)),
      mask_(width_mask(width)),
      state_(seed & mask_) {
    if (width < 1 || width > 64)
        throw std::invalid_argument("MISR width must be in [1,64]");
    if (taps_ == 0) taps_ = 1ULL | (1ULL << (width_ - 1));
    taps_ &= mask_;
}

void Misr::absorb(std::uint64_t response) {
    const std::uint64_t out = state_ & 1ULL;
    state_ >>= 1;
    if (out) state_ ^= taps_;
    state_ = (state_ ^ response) & mask_;
}

std::uint64_t pack_response(const Circuit& circuit,
                            const std::vector<bool>& net_values) {
    std::uint64_t word = 0;
    const auto outs = circuit.outputs();
    for (size_t o = 0; o < outs.size() && o < 64; ++o)
        if (net_values[outs[o]]) word |= 1ULL << o;
    return word;
}

}  // namespace dlp::gatesim
