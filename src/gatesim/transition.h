// Transition (gate-delay) fault model and simulator.
//
// The paper's conclusions call for "delay and/or current testing" to reach
// zero-defect quality: static stuck-at vectors leave stuck-open and
// resistive defects undetected.  The classic logic-level abstraction is the
// transition fault: a line is slow-to-rise or slow-to-fall, and a pair of
// consecutive vectors (v1, v2) detects it iff
//   * v1 sets the line to the initial value (0 for slow-to-rise), and
//   * v2 detects the corresponding stuck-at fault (s-a-0 for slow-to-rise)
//     at a primary output.
// This launch-on-shift-free formulation matches combinational testing with
// an implicit vector-to-vector transition, which is also exactly the
// mechanism that detects stuck-open transistors at switch level.
#pragma once

#include <span>
#include <vector>

#include "gatesim/fault_sim.h"

namespace dlp::gatesim {

/// A transition fault on a stem line.
struct TransitionFault {
    NetId line = 0;
    bool slow_to_rise = false;  ///< false: slow-to-fall

    bool operator==(const TransitionFault&) const = default;
};

/// Human-readable name, e.g. "N12/STR".
std::string transition_fault_name(const Circuit& circuit,
                                  const TransitionFault& fault);

/// Both transition faults on every stem (2 per net).
std::vector<TransitionFault> full_transition_universe(const Circuit& circuit);

/// Simulates a vector sequence against transition faults.  Unlike the
/// stuck-at simulator this cannot drop faults eagerly across blocks (pair
/// detection depends on consecutive vectors), but the cost is one stuck-at
/// detection table per polarity.
class TransitionFaultSimulator {
public:
    TransitionFaultSimulator(const Circuit& circuit,
                             std::vector<TransitionFault> faults);

    /// Applies vectors in sequence (appending to the history).
    /// Returns the number of newly detected faults.
    int apply(std::span<const Vector> vectors);

    std::span<const TransitionFault> faults() const { return faults_; }
    std::span<const int> first_detected_at() const { return detected_at_; }
    int vectors_applied() const { return vectors_applied_; }
    double coverage() const;
    std::vector<double> coverage_curve() const;

private:
    const Circuit& circuit_;
    std::vector<TransitionFault> faults_;
    std::vector<int> detected_at_;
    Vector last_vector_;  ///< carries the pair across apply() calls
    bool has_last_ = false;
    int vectors_applied_ = 0;
};

}  // namespace dlp::gatesim
