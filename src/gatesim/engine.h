// Unified fault-simulation engine API (namespace dlp::sim).
//
// With the simulators multiplying (naive scalar reference, serial
// suffix-walk, thread-pooled PPSFP, levelized bit-parallel), every layer
// that grades stuck-at coverage — ATPG test generation, vector compaction,
// the experiment flow, campaigns, the CLIs — selects its simulator through
// ONE interface: a named `Engine` in a process-wide registry opens a
// `Session` bound to (circuit, fault list), and the session applies test
// vectors under the standard budget/cancellation contract.
//
// The load-bearing invariant: every registered engine produces BIT-IDENTICAL
// results — the same first-detection index per fault, hence byte-identical
// coverage curves — for any vector sequence, worker count, and budget.
// Engine identity is therefore a pure performance choice: campaign artifact
// keys deliberately exclude it, so a cache warmed by one engine is hit by
// every other (tests/test_campaign.cpp enforces this, and the differential
// suite in tests/test_engine.cpp enforces cross-engine identity against the
// naive oracle).
//
// Selection resolves in one place (resolve_engine): an explicit name
// (campaign spec `engine =` key, dlproj_campaign --engine, an options
// field) wins, else the DLPROJ_ENGINE environment variable, else the
// default ("levelized").  Unknown names throw with the registered list.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gatesim/faults.h"
#include "gatesim/logic_sim.h"
#include "parallel/parallel_for.h"
#include "parallel/progress.h"
#include "support/cancel.h"

namespace dlp::sim {

/// Per-session knobs passed to Engine::open().
struct SessionOptions {
    /// n-detection target: a fault is dropped from simulation only after
    /// it has been detected by `ndetect` vector positions (Pomeranz &
    /// Reddy n-detection test sets).  1 recovers the classic single-
    /// detection behavior exactly — same dropping, same work, same bytes.
    int ndetect = 1;
    /// Optional per-fault untestability marks (parallel to the fault list;
    /// empty = no marks).  A marked fault is proven undetectable by the
    /// static analysis pass (analysis::find_untestable) and is never
    /// simulated: its detection index stays -1 and its count stays 0, for
    /// every engine.  The marks only *skip* work — they never preset
    /// counts — so detection_counts()/coverage stay honest.
    std::vector<std::uint8_t> untestable;
};

/// A fault-simulation run over one (circuit, stuck-at fault list) pair.
/// Vectors are applied in sequence (appending); per fault the session
/// records the 1-based index of the first detecting vector.  Faults are
/// dropped from subsequent simulation once detected `ndetect` times
/// (SessionOptions; default 1 = classic drop-on-first-detection).
///
/// Contract (shared by every engine, enforced by the differential suite):
///   * apply() consumes vectors in 64-wide pattern blocks and checks the
///     budget at block boundaries only, so a stopped call commits a whole
///     number of blocks and everything recorded is a bit-identical prefix
///     of the unbounded run (see support/cancel.h).
///   * Results are independent of the worker count.
///   * first_detected_at() — and, for engines that support n-detection,
///     detection_counts() / nth_detected_at() — are bit-identical across
///     engines.
class Session {
public:
    virtual ~Session() = default;

    /// The fault universe this session grades (in construction order).
    virtual std::span<const gatesim::StuckAtFault> faults() const = 0;

    /// Per fault: 1-based index of the first detecting vector, -1 if still
    /// undetected.
    virtual std::span<const int> first_detected_at() const = 0;

    virtual int vectors_applied() const = 0;

    /// Budget-aware apply; see the class contract.
    virtual support::ApplyResult apply(
        std::span<const gatesim::Vector> vectors,
        const support::RunBudget& budget) = 0;

    /// Unbounded apply; returns the number of newly detected faults.
    int apply(std::span<const gatesim::Vector> vectors) {
        return apply(vectors, support::RunBudget{}).newly_detected;
    }

    // ---- n-detection accounting ------------------------------------------
    // Defaults implement the classic target of 1, derived from the first-
    // detection table, so single-detection engines need no override.

    /// The session's n-detection target (SessionOptions::ndetect).
    virtual int ndetect_target() const { return 1; }

    /// Per fault: number of detecting vector positions seen so far,
    /// saturated at ndetect_target().  Monotone in the applied prefix and
    /// (for a fixed sequence) in the target n.
    virtual std::vector<int> detection_counts() const;

    /// Per fault: 1-based index of the vector at which the detection count
    /// reached ndetect_target(); -1 while still below target.  Equals
    /// first_detected_at() when the target is 1.
    virtual std::vector<int> nth_detected_at() const;

    // Derived accessors, computed from the detection table so every engine
    // shares one definition.
    std::size_t detected_count() const;
    double coverage() const;
    /// Coverage after each prefix: result[k-1] = fraction detected by the
    /// first k vectors.
    std::vector<double> coverage_curve() const;
    /// Indices (into faults()) of still-undetected faults.
    std::vector<std::size_t> undetected() const;
    /// Faults whose detection count reached the n-detection target.
    std::size_t fully_detected_count() const;
};

/// Switch-level (realistic-defect) session: the interface the experiment
/// flow drives.  There is exactly one switch-level implementation today
/// (switchsim::SwitchFaultSimulator) and it is shared by all engines — the
/// seam exists so flow::ExperimentRunner never constructs a simulator
/// directly and a future engine can specialize the switch-level path; see
/// switchsim::open_switch_session().
class SwitchSession {
public:
    virtual ~SwitchSession() = default;

    virtual support::ApplyResult apply(
        std::span<const gatesim::Vector> vectors,
        const support::RunBudget& budget) = 0;

    virtual std::span<const int> first_detected_at() const = 0;
    virtual std::span<const int> iddq_detected_at() const = 0;
    virtual std::vector<double> weighted_coverage_curve() const = 0;
    virtual std::vector<double> unweighted_coverage_curve() const = 0;
    virtual std::vector<double> weighted_coverage_curve_with_iddq() const = 0;
    virtual void set_progress(parallel::ProgressFn progress) = 0;
};

/// A named fault-simulation engine: a factory for Sessions.
class Engine {
public:
    virtual ~Engine() = default;

    /// Registry name (stable, lowercase; "levelized", "ppsfp", ...).
    virtual std::string_view name() const = 0;
    /// One-line description for --help output and docs.
    virtual std::string_view description() const = 0;

    /// Opens a session.  `circuit` must outlive the session; `parallel` is
    /// the worker-count request for engines that use the shared pool
    /// (serial engines ignore it; results never depend on it).  `options`
    /// carries per-session knobs such as the n-detection target.
    virtual std::unique_ptr<Session> open(
        const gatesim::Circuit& circuit,
        std::vector<gatesim::StuckAtFault> faults,
        parallel::ParallelOptions parallel = {},
        SessionOptions options = {}) const = 0;
};

/// Registry default when neither an explicit name nor DLPROJ_ENGINE is set.
inline constexpr std::string_view kDefaultEngine = "levelized";

/// Registers an engine; throws std::invalid_argument on a duplicate name.
/// The built-in engines (naive, serial, ppsfp, levelized) are registered
/// on first registry access.
void register_engine(std::unique_ptr<Engine> engine);

/// Registered engine names, in registration order (built-ins first).
std::vector<std::string_view> engine_names();

/// The engine registered under `name`; nullptr when unknown.
const Engine* find_engine(std::string_view name);

/// The engine registered under `name`; throws std::invalid_argument naming
/// the registered engines when unknown.
const Engine& engine(std::string_view name);

/// One-stop selection: a non-empty `name` wins, else the DLPROJ_ENGINE
/// environment variable, else kDefaultEngine.  Throws like engine() on an
/// unknown name (including an unknown DLPROJ_ENGINE value).
const Engine& resolve_engine(std::string_view name = {});

}  // namespace dlp::sim
