#include "gatesim/levelized.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/telemetry.h"

namespace dlp::gatesim {

using netlist::GateType;
using netlist::NetId;

LevelizedCircuit levelize(const Circuit& circuit) {
    LevelizedCircuit lc;
    lc.net_count = circuit.gate_count();
    lc.type.reserve(lc.net_count);
    lc.level.reserve(lc.net_count);
    lc.is_output.assign(lc.net_count, 0);

    // Pass 1: types, levels, fanin CSR (gate order is topological by
    // construction, so a single forward sweep levelizes).
    std::size_t edge_count = 0;
    for (NetId g = 0; g < lc.net_count; ++g)
        edge_count += circuit.gate(g).fanin.size();
    lc.fanin_begin.reserve(lc.net_count + 1);
    lc.fanin.reserve(edge_count);
    lc.fanin_begin.push_back(0);
    for (NetId g = 0; g < lc.net_count; ++g) {
        const netlist::Gate& gate = circuit.gate(g);
        lc.type.push_back(gate.type);
        std::int32_t lv = 0;
        for (NetId f : gate.fanin) {
            lc.fanin.push_back(f);
            lv = std::max(lv, lc.level[f] + 1);
        }
        lc.level.push_back(gate.type == GateType::Input ? 0 : lv);
        lc.fanin_begin.push_back(static_cast<std::uint32_t>(lc.fanin.size()));
        lc.depth = std::max(lc.depth, lc.level.back());
    }

    // Pass 2: fanout CSR (counting sort over the fanin rows), one entry
    // per reading gate — a gate reading the same net on two pins still
    // gets one fanout entry, so event pushes stay naturally deduplicated.
    std::vector<std::uint32_t> counts(lc.net_count + 1, 0);
    const auto each_read = [&](auto&& fn) {
        for (NetId g = 0; g < lc.net_count; ++g) {
            const auto b = lc.fanin_begin[g], e = lc.fanin_begin[g + 1];
            for (auto i = b; i < e; ++i) {
                const NetId f = lc.fanin[i];
                bool dup = false;
                for (auto j = b; j < i; ++j) dup |= lc.fanin[j] == f;
                if (!dup) fn(f, g);
            }
        }
    };
    each_read([&](NetId f, NetId) { ++counts[f + 1]; });
    for (std::size_t n = 1; n <= lc.net_count; ++n) counts[n] += counts[n - 1];
    lc.fanout_begin = counts;
    lc.fanout.resize(counts.back());
    each_read([&](NetId f, NetId g) { lc.fanout[counts[f]++] = g; });

    // Pass 3: the level-major evaluation schedule (counting sort by level;
    // NetId order within a level is preserved, so the schedule is stable).
    std::vector<std::uint32_t> per_level(
        static_cast<std::size_t>(lc.depth) + 2, 0);
    for (NetId g = 0; g < lc.net_count; ++g)
        if (lc.type[g] != GateType::Input)
            ++per_level[static_cast<std::size_t>(lc.level[g]) + 1];
    for (std::size_t l = 1; l < per_level.size(); ++l)
        per_level[l] += per_level[l - 1];
    lc.level_begin = per_level;
    lc.schedule.resize(per_level.back());
    for (NetId g = 0; g < lc.net_count; ++g)
        if (lc.type[g] != GateType::Input)
            lc.schedule[per_level[static_cast<std::size_t>(lc.level[g])]++] =
                g;

    lc.inputs.assign(circuit.inputs().begin(), circuit.inputs().end());
    lc.outputs.assign(circuit.outputs().begin(), circuit.outputs().end());
    for (NetId po : lc.outputs) lc.is_output[po] = 1;
    return lc;
}

std::uint64_t eval_flat(const LevelizedCircuit& lc, NetId g,
                        const std::uint64_t* words) {
    const std::uint32_t b = lc.fanin_begin[g];
    const std::uint32_t e = lc.fanin_begin[g + 1];
    switch (lc.type[g]) {
        case GateType::Buf:
            return words[lc.fanin[b]];
        case GateType::Not:
            return ~words[lc.fanin[b]];
        case GateType::And:
        case GateType::Nand: {
            std::uint64_t v = ~0ULL;
            for (std::uint32_t i = b; i < e; ++i) v &= words[lc.fanin[i]];
            return lc.type[g] == GateType::And ? v : ~v;
        }
        case GateType::Or:
        case GateType::Nor: {
            std::uint64_t v = 0ULL;
            for (std::uint32_t i = b; i < e; ++i) v |= words[lc.fanin[i]];
            return lc.type[g] == GateType::Or ? v : ~v;
        }
        case GateType::Xor:
        case GateType::Xnor: {
            std::uint64_t v = 0ULL;
            for (std::uint32_t i = b; i < e; ++i) v ^= words[lc.fanin[i]];
            return lc.type[g] == GateType::Xor ? v : ~v;
        }
        case GateType::Input:
            break;
    }
    throw std::invalid_argument("eval_flat: not a logic gate");
}

namespace {

/// Below this width a level is evaluated inline: the per-region pool
/// overhead would dwarf a few hundred word operations.
constexpr std::size_t kParallelLevelThreshold = 4096;

}  // namespace

void simulate_block_levelized(const LevelizedCircuit& lc,
                              const PatternBlock& block,
                              std::vector<std::uint64_t>& words,
                              parallel::ParallelOptions parallel) {
    words.resize(lc.net_count);
    for (std::size_t i = 0; i < lc.inputs.size(); ++i)
        words[lc.inputs[i]] = block.input_words[i];
    for (int l = 1; l <= lc.depth; ++l) {
        const std::uint32_t b = lc.level_begin[static_cast<std::size_t>(l)];
        const std::uint32_t e =
            lc.level_begin[static_cast<std::size_t>(l) + 1];
        const auto eval_range = [&](std::size_t rb, std::size_t re) {
            for (std::size_t i = rb; i < re; ++i) {
                const NetId g = lc.schedule[b + i];
                words[g] = eval_flat(lc, g, words.data());
            }
        };
        const std::size_t width = e - b;
        // Gates within a level are independent (all fanins sit at lower
        // levels) and write disjoint slots, so a parallel sweep is
        // bit-identical to the serial one.
        if (width >= kParallelLevelThreshold &&
            parallel::resolve_threads(parallel) > 1)
            parallel::parallel_for(
                width, kParallelLevelThreshold / 8,
                [&](std::size_t rb, std::size_t re, int) {
                    eval_range(rb, re);
                },
                parallel.threads);
        else
            eval_range(0, width);
    }
}

LevelizedFaultSimulator::LevelizedFaultSimulator(
    const Circuit& circuit, std::vector<StuckAtFault> faults,
    parallel::ParallelOptions parallel, int ndetect,
    std::vector<std::uint8_t> untestable)
    : circuit_(circuit),
      lc_(levelize(circuit)),
      faults_(std::move(faults)),
      ndetect_(std::max(1, ndetect)),
      untestable_(std::move(untestable)),
      parallel_(parallel) {
    if (!untestable_.empty() && untestable_.size() != faults_.size())
        throw std::invalid_argument(
            "LevelizedFaultSimulator: untestable mask size mismatch");
    detected_at_.assign(faults_.size(), -1);
    counts_.assign(faults_.size(), 0);
    nth_at_.assign(faults_.size(), -1);
}

std::uint64_t LevelizedFaultSimulator::propagate(
    std::size_t fi, Scratch& s, std::span<const std::uint64_t> good) const {
    const StuckAtFault& fault = faults_[fi];
    const std::uint64_t stuck_word = fault.stuck_value ? ~0ULL : 0ULL;
    const std::uint64_t epoch = ++s.epoch;

    // Faulty value of a net: the divergent word when stamped this fault,
    // else the shared good-machine word.
    const auto value = [&](NetId n) {
        return s.stamp[n] == epoch ? s.value[n] : good[n];
    };
    int lo = lc_.depth + 1;
    int hi = 0;  ///< highest level with a queued gate; the cone's frontier
    const auto push_readers = [&](NetId n) {
        const std::uint32_t b = lc_.fanout_begin[n];
        const std::uint32_t e = lc_.fanout_begin[n + 1];
        for (std::uint32_t i = b; i < e; ++i) {
            const NetId r = lc_.fanout[i];
            if (s.queued[r] == epoch) continue;
            s.queued[r] = epoch;
            const int lv = lc_.level[r];
            s.bucket[static_cast<std::size_t>(lv)].push_back(r);
            lo = std::min(lo, lv);
            hi = std::max(hi, lv);
        }
    };

    std::uint64_t diff = 0;
    std::uint32_t forced_pin = ~0u;  ///< CSR slot carrying the stuck word
    if (fault.is_stem()) {
        s.value[fault.net] = stuck_word;
        s.stamp[fault.net] = epoch;
        if (lc_.is_output[fault.net]) diff |= stuck_word ^ good[fault.net];
        push_readers(fault.net);
    } else {
        forced_pin = lc_.fanin_begin[fault.reader] +
                     static_cast<std::uint32_t>(fault.pin);
        s.queued[fault.reader] = epoch;
        const int lv = lc_.level[fault.reader];
        s.bucket[static_cast<std::size_t>(lv)].push_back(fault.reader);
        lo = hi = lv;
    }

    // Strict level order: every fanin of a level-l gate lives below l, so
    // each activated gate is final after one evaluation.  Fanout pushes
    // always target higher levels, so bucket[l] is complete when reached.
    // `hi` chases the frontier — the loop ends as soon as the cone dies
    // instead of scanning the remaining (empty) levels of a deep circuit.
    for (int l = lo; l <= hi; ++l) {
        auto& bucket = s.bucket[static_cast<std::size_t>(l)];
        for (const NetId g : bucket) {
            const std::uint32_t b = lc_.fanin_begin[g];
            const std::uint32_t e = lc_.fanin_begin[g + 1];
            std::uint64_t v;
            const auto operand = [&](std::uint32_t i) {
                return i == forced_pin ? stuck_word : value(lc_.fanin[i]);
            };
            switch (lc_.type[g]) {
                case GateType::Buf:
                    v = operand(b);
                    break;
                case GateType::Not:
                    v = ~operand(b);
                    break;
                case GateType::And:
                case GateType::Nand:
                    v = ~0ULL;
                    for (std::uint32_t i = b; i < e; ++i) v &= operand(i);
                    if (lc_.type[g] == GateType::Nand) v = ~v;
                    break;
                case GateType::Or:
                case GateType::Nor:
                    v = 0ULL;
                    for (std::uint32_t i = b; i < e; ++i) v |= operand(i);
                    if (lc_.type[g] == GateType::Nor) v = ~v;
                    break;
                case GateType::Xor:
                case GateType::Xnor:
                    v = 0ULL;
                    for (std::uint32_t i = b; i < e; ++i) v ^= operand(i);
                    if (lc_.type[g] == GateType::Xnor) v = ~v;
                    break;
                case GateType::Input:
                default:
                    continue;  // unreachable: inputs have no fanin edges
            }
            if (v == good[g]) continue;  // reconverged: cone ends here
            s.value[g] = v;
            s.stamp[g] = epoch;
            if (lc_.is_output[g]) diff |= v ^ good[g];
            push_readers(g);
        }
        bucket.clear();
        // Once lane 0 differs at an output the detection index (lowest
        // differing lane, always inside the lane mask) can't improve —
        // deeper propagation only ORs in higher lanes.  Drain the pending
        // buckets and stop.  Only valid at a target of 1: n-detection
        // counts every set lane, so the full diff word must be computed.
        if (ndetect_ == 1 && (diff & 1ULL)) {
            for (int r = l + 1; r <= hi; ++r)
                s.bucket[static_cast<std::size_t>(r)].clear();
            break;
        }
    }
    return diff;
}

support::ApplyResult LevelizedFaultSimulator::apply(
    std::span<const Vector> vectors, const support::RunBudget& budget) {
    const int before_applied = vectors_applied_;
    support::ApplyResult result;
    const std::size_t allowed =
        budget.allowed_vectors(vectors.size(), vectors_applied_);
    if (allowed < vectors.size()) {
        vectors = vectors.first(allowed);
        result.stop = support::StopReason::VectorBudget;
    }

    const int workers = parallel::resolve_threads(parallel_);
    std::vector<Scratch> scratch(static_cast<std::size_t>(workers));
    for (Scratch& s : scratch) {
        s.value.assign(lc_.net_count, 0);
        s.stamp.assign(lc_.net_count, 0);
        s.queued.assign(lc_.net_count, 0);
        s.bucket.resize(static_cast<std::size_t>(lc_.depth) + 1);
    }
    const std::size_t grain = std::max<std::size_t>(
        16, faults_.size() / (static_cast<std::size_t>(workers) * 8));

    // Same telemetry surface as the PPSFP engine (counted at block
    // boundaries → thread-count-invariant), plus the engine's own span.
    DLP_OBS_SPAN(apply_span, "gatesim.levelized.apply");
    DLP_OBS_COUNTER(c_vectors, "faultsim.gate.vectors");
    DLP_OBS_COUNTER(c_blocks, "faultsim.gate.blocks");
    DLP_OBS_COUNTER(c_dropped, "faultsim.gate.dropped");
    DLP_OBS_GAUGE(g_remaining, "faultsim.gate.remaining");

    std::vector<std::uint64_t> good;
    std::size_t completed = 0;
    for (std::size_t base = 0; base < vectors.size(); base += 64) {
        // Budget checked at block boundaries only: a stopped call commits
        // a whole number of blocks (the shared prefix contract).
        const support::StopReason stop = budget.check();
        if (stop != support::StopReason::None) {
            result.stop = stop;
            break;
        }
        const std::size_t take = std::min<std::size_t>(64, vectors.size() - base);
        const PatternBlock block =
            pack_vectors(circuit_, vectors.subspan(base, take));
        simulate_block_levelized(lc_, block, good, parallel_);
        const std::uint64_t lane_mask =
            take == 64 ? ~0ULL : (1ULL << take) - 1;

        parallel::parallel_for(
            faults_.size(), grain,
            [&](std::size_t fb, std::size_t fe, int w) {
                Scratch& s = scratch[static_cast<std::size_t>(w)];
                for (std::size_t fi = fb; fi < fe; ++fi) {
                    if (counts_[fi] >= ndetect_) continue;  // fault dropping
                    if (!untestable_.empty() && untestable_[fi])
                        continue;  // statically proven undetectable
                    const StuckAtFault& fault = faults_[fi];
                    if (fault.is_stem()) {
                        // Not excited in any valid lane: no propagation
                        // (mirrors the PPSFP excitation shortcut).
                        const std::uint64_t stuck_word =
                            fault.stuck_value ? ~0ULL : 0ULL;
                        if (((stuck_word ^ good[fault.net]) & lane_mask) == 0)
                            continue;
                    }
                    const std::uint64_t diff =
                        propagate(fi, s, good) & lane_mask;
                    if (diff != 0) {
                        // Same accounting as the PPSFP engine: every set
                        // lane is one detecting vector position; the count
                        // saturates at the target and the target-reaching
                        // lane is the `need`-th set bit of diff.
                        const int block_base =
                            before_applied + static_cast<int>(base);
                        if (detected_at_[fi] < 0)
                            detected_at_[fi] =
                                block_base + std::countr_zero(diff) + 1;
                        const int need = ndetect_ - counts_[fi];
                        const int got = std::popcount(diff);
                        if (got >= need) {
                            std::uint64_t d = diff;
                            for (int i = 1; i < need; ++i) d &= d - 1;
                            nth_at_[fi] =
                                block_base + std::countr_zero(d) + 1;
                            counts_[fi] = ndetect_;
                        } else {
                            counts_[fi] += got;
                        }
                    }
                }
            },
            parallel_.threads);
        completed = base + take;
        DLP_OBS_ADD(c_vectors, static_cast<long long>(take));
        DLP_OBS_ADD(c_blocks, 1);
    }
    vectors_applied_ += static_cast<int>(completed);
    int newly_detected = 0;
    std::size_t still_undetected = 0;
    for (int at : detected_at_) {
        if (at > before_applied) ++newly_detected;
        if (at < 0) ++still_undetected;
    }
    result.newly_detected = newly_detected;
    result.vectors_applied = static_cast<int>(completed);
    DLP_OBS_ADD(c_dropped, newly_detected);
    DLP_OBS_SET(g_remaining, static_cast<double>(still_undetected));
#if DLPROJ_OBS_ENABLED
    if (result.stop != support::StopReason::None)
        DLP_OBS_ANNOTATE("stopped: " +
                         std::string(support::stop_reason_name(result.stop)));
#endif
    return result;
}

}  // namespace dlp::gatesim
