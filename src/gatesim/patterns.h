// Deterministic pseudo-random test pattern generation.
#pragma once

#include <cstdint>
#include <vector>

#include "gatesim/logic_sim.h"

namespace dlp::gatesim {

/// splitmix64-based pattern source: fast, seedable, no global state.
class RandomPatternGenerator {
public:
    explicit RandomPatternGenerator(std::uint64_t seed) : state_(seed) {}

    /// Next raw 64-bit word.
    std::uint64_t next_word();

    /// Next uniformly random test vector for a circuit.
    Vector next_vector(const Circuit& circuit);

    /// A batch of n vectors.
    std::vector<Vector> vectors(const Circuit& circuit, int n);

private:
    std::uint64_t state_;
};

}  // namespace dlp::gatesim
