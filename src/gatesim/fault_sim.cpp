#include "gatesim/fault_sim.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.h"

namespace dlp::gatesim {

FaultSimulator::FaultSimulator(const Circuit& circuit,
                               std::vector<StuckAtFault> faults,
                               parallel::ParallelOptions parallel, int ndetect,
                               std::vector<std::uint8_t> untestable)
    : circuit_(circuit),
      faults_(std::move(faults)),
      ndetect_(std::max(1, ndetect)),
      untestable_(std::move(untestable)),
      parallel_(parallel) {
    if (!untestable_.empty() && untestable_.size() != faults_.size())
        throw std::invalid_argument(
            "FaultSimulator: untestable mask size mismatch");
    detected_at_.assign(faults_.size(), -1);
    counts_.assign(faults_.size(), 0);
    nth_at_.assign(faults_.size(), -1);
}

int FaultSimulator::apply(std::span<const Vector> vectors) {
    return apply(vectors, support::RunBudget{}).newly_detected;
}

support::ApplyResult FaultSimulator::apply(std::span<const Vector> vectors,
                                           const support::RunBudget& budget) {
    const int before_applied = vectors_applied_;
    support::ApplyResult result;
    // The vector budget caps the cumulative sequence; a mid-block cut is
    // fine (detection indices are per lane, so a shorter block is still a
    // prefix of the full one).
    const size_t allowed =
        budget.allowed_vectors(vectors.size(), vectors_applied_);
    if (allowed < vectors.size()) {
        vectors = vectors.first(allowed);
        result.stop = support::StopReason::VectorBudget;
    }
    struct Scratch {
        std::vector<std::uint64_t> fwords;
        std::vector<std::uint64_t> operands;
    };
    const int workers = parallel::resolve_threads(parallel_);
    std::vector<Scratch> scratch(static_cast<size_t>(workers));
    const size_t grain = std::max<size_t>(
        16, faults_.size() / (static_cast<size_t>(workers) * 8));

    // Counted at block boundaries, so values are thread-count-invariant.
    DLP_OBS_SPAN(apply_span, "gatesim.apply");
    DLP_OBS_COUNTER(c_vectors, "faultsim.gate.vectors");
    DLP_OBS_COUNTER(c_blocks, "faultsim.gate.blocks");
    DLP_OBS_COUNTER(c_dropped, "faultsim.gate.dropped");
    DLP_OBS_GAUGE(g_remaining, "faultsim.gate.remaining");
    DLP_OBS_GAUGE(g_rate, "faultsim.gate.blocks_per_sec");
#if DLPROJ_OBS_ENABLED
    const std::int64_t t0 = obs::enabled() ? obs::now_ns() : 0;
#endif

    size_t completed = 0;
    for (size_t base = 0; base < vectors.size(); base += 64) {
        // Cancellation / deadline: checked at block boundaries only, so a
        // stopped call commits a whole number of blocks.
        const support::StopReason stop = budget.check();
        if (stop != support::StopReason::None) {
            result.stop = stop;
            break;
        }
        const size_t take = std::min<size_t>(64, vectors.size() - base);
        const PatternBlock block =
            pack_vectors(circuit_, vectors.subspan(base, take));
        const auto good = simulate_block(circuit_, block);
        const std::uint64_t lane_mask =
            take == 64 ? ~0ULL : (1ULL << take) - 1;

        // Fault-partitioned: each worker resimulates its faults' fanout
        // cones against the shared good-machine words; detected_at_ slots
        // are disjoint per fault, so detection stays order-independent.
        parallel::parallel_for(
            faults_.size(), grain,
            [&](size_t fb, size_t fe, int w) {
                auto& [fwords, operands] = scratch[static_cast<size_t>(w)];
                for (size_t fi = fb; fi < fe; ++fi) {
                    if (counts_[fi] >= ndetect_) continue;  // fault dropping
                    if (!untestable_.empty() && untestable_[fi])
                        continue;  // statically proven undetectable
                    const StuckAtFault& fault = faults_[fi];
                    const std::uint64_t stuck_word =
                        fault.stuck_value ? ~0ULL : 0ULL;

                    fwords = good;
                    NetId first_gate;
                    if (fault.is_stem()) {
                        fwords[fault.net] = stuck_word;
                        if (((fwords[fault.net] ^ good[fault.net]) &
                             lane_mask) == 0)
                            continue;  // fault not excited by any lane
                        first_gate = fault.net + 1;
                    } else {
                        first_gate = fault.reader;
                    }

                    // Recompute the fanout cone (NetId order is topological).
                    for (NetId g = first_gate;
                         g < static_cast<NetId>(circuit_.gate_count()); ++g) {
                        const auto& gate = circuit_.gate(g);
                        if (gate.type == netlist::GateType::Input) continue;
                        bool touched = false;
                        operands.clear();
                        for (int pin = 0;
                             pin < static_cast<int>(gate.fanin.size());
                             ++pin) {
                            const NetId f =
                                gate.fanin[static_cast<size_t>(pin)];
                            std::uint64_t word = fwords[f];
                            if (!fault.is_stem() && g == fault.reader &&
                                pin == fault.pin) {
                                word = stuck_word;
                                touched = true;
                            } else if (word != good[f]) {
                                touched = true;
                            }
                            operands.push_back(word);
                        }
                        if (touched)
                            fwords[g] = netlist::eval_gate(gate.type, operands);
                    }

                    std::uint64_t diff = 0;
                    for (NetId po : circuit_.outputs())
                        diff |= (fwords[po] ^ good[po]);
                    diff &= lane_mask;
                    if (diff != 0) {
                        // Every set lane is one detecting vector position.
                        // The count saturates at the target; when this block
                        // carries the target-reaching detection, its lane is
                        // the `need`-th set bit of diff.
                        const int block_base =
                            before_applied + static_cast<int>(base);
                        if (detected_at_[fi] < 0)
                            detected_at_[fi] =
                                block_base + std::countr_zero(diff) + 1;
                        const int need = ndetect_ - counts_[fi];
                        const int got = std::popcount(diff);
                        if (got >= need) {
                            std::uint64_t d = diff;
                            for (int i = 1; i < need; ++i) d &= d - 1;
                            nth_at_[fi] =
                                block_base + std::countr_zero(d) + 1;
                            counts_[fi] = ndetect_;
                        } else {
                            counts_[fi] += got;
                        }
                    }
                }
            },
            parallel_.threads);
        completed = base + take;
        DLP_OBS_ADD(c_vectors, static_cast<long long>(take));
        DLP_OBS_ADD(c_blocks, 1);
    }
    vectors_applied_ += static_cast<int>(completed);
    int newly_detected = 0;
    for (int at : detected_at_)
        if (at > before_applied) ++newly_detected;
    detected_count_ += static_cast<std::size_t>(newly_detected);
    result.newly_detected = newly_detected;
    result.vectors_applied = static_cast<int>(completed);
    DLP_OBS_ADD(c_dropped, newly_detected);
    DLP_OBS_SET(g_remaining, static_cast<double>(faults_.size()) -
                                 static_cast<double>(detected_count_));
#if DLPROJ_OBS_ENABLED
    if (t0 != 0) {
        const double secs =
            static_cast<double>(obs::now_ns() - t0) / 1e9;
        if (secs > 0)
            DLP_OBS_SET(g_rate, std::ceil(static_cast<double>(completed) /
                                          64.0) / secs);
    }
    if (result.stop != support::StopReason::None)
        DLP_OBS_ANNOTATE("stopped: " +
                         std::string(support::stop_reason_name(result.stop)));
#endif
    return result;
}

double FaultSimulator::coverage() const {
    return faults_.empty() ? 0.0
                           : static_cast<double>(detected_count_) /
                                 static_cast<double>(faults_.size());
}

std::vector<double> FaultSimulator::coverage_curve() const {
    std::vector<int> hits(static_cast<size_t>(vectors_applied_) + 1, 0);
    for (int at : detected_at_)
        if (at >= 1 && at <= vectors_applied_) ++hits[static_cast<size_t>(at)];
    std::vector<double> curve(static_cast<size_t>(vectors_applied_));
    long cum = 0;
    for (int k = 1; k <= vectors_applied_; ++k) {
        cum += hits[static_cast<size_t>(k)];
        curve[static_cast<size_t>(k - 1)] =
            faults_.empty() ? 0.0
                            : static_cast<double>(cum) /
                                  static_cast<double>(faults_.size());
    }
    return curve;
}

std::vector<std::size_t> FaultSimulator::undetected() const {
    std::vector<std::size_t> out;
    for (size_t i = 0; i < faults_.size(); ++i)
        if (detected_at_[i] < 0) out.push_back(i);
    return out;
}

std::vector<int> run_fault_simulation(const Circuit& circuit,
                                      std::span<const StuckAtFault> faults,
                                      std::span<const Vector> vectors) {
    FaultSimulator sim(circuit,
                       std::vector<StuckAtFault>(faults.begin(), faults.end()));
    sim.apply(vectors);
    return std::vector<int>(sim.first_detected_at().begin(),
                            sim.first_detected_at().end());
}

}  // namespace dlp::gatesim
