#include "gatesim/faults.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <tuple>

namespace dlp::gatesim {

std::string fault_name(const Circuit& circuit, const StuckAtFault& fault) {
    std::string name = circuit.gate(fault.net).name;
    if (!fault.is_stem())
        name += "->" + circuit.gate(fault.reader).name + "." +
                std::to_string(fault.pin);
    return name + (fault.stuck_value ? "/SA1" : "/SA0");
}

std::vector<StuckAtFault> full_fault_universe(const Circuit& circuit) {
    std::vector<StuckAtFault> faults;
    const auto fanouts = circuit.fanouts();
    for (NetId net = 0; net < circuit.gate_count(); ++net) {
        faults.push_back({net, netlist::kNoNet, -1, false});
        faults.push_back({net, netlist::kNoNet, -1, true});
        if (fanouts[net].size() > 1) {
            for (NetId reader : fanouts[net]) {
                const auto& fanin = circuit.gate(reader).fanin;
                for (int pin = 0; pin < static_cast<int>(fanin.size()); ++pin) {
                    if (fanin[static_cast<size_t>(pin)] != net) continue;
                    faults.push_back({net, reader, pin, false});
                    faults.push_back({net, reader, pin, true});
                }
            }
        }
    }
    return faults;
}

namespace {

struct UnionFind {
    std::vector<size_t> parent;
    explicit UnionFind(size_t n) : parent(n) {
        std::iota(parent.begin(), parent.end(), size_t{0});
    }
    size_t find(size_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
    }
    void merge(size_t a, size_t b) { parent[find(a)] = find(b); }
};

using FaultKey = std::tuple<NetId, NetId, int, bool>;

FaultKey key_of(const StuckAtFault& f) {
    return {f.net, f.reader, f.pin, f.stuck_value};
}

}  // namespace

std::vector<std::size_t> equivalence_classes(
    const Circuit& circuit, std::span<const StuckAtFault> faults) {
    std::map<FaultKey, size_t> index;
    for (size_t i = 0; i < faults.size(); ++i) index[key_of(faults[i])] = i;
    const auto fanouts = circuit.fanouts();

    // The fault on gate g's input pin: the branch fault if the driving net
    // fans out, otherwise the driver's stem fault.
    const auto input_fault = [&](NetId gate, int pin,
                                 bool value) -> std::optional<size_t> {
        const NetId driver = circuit.gate(gate).fanin[static_cast<size_t>(pin)];
        const FaultKey key = fanouts[driver].size() > 1
                                 ? FaultKey{driver, gate, pin, value}
                                 : FaultKey{driver, netlist::kNoNet, -1, value};
        const auto it = index.find(key);
        if (it == index.end()) return std::nullopt;
        return it->second;
    };
    const auto stem_fault = [&](NetId net, bool value) -> std::optional<size_t> {
        const auto it = index.find(FaultKey{net, netlist::kNoNet, -1, value});
        if (it == index.end()) return std::nullopt;
        return it->second;
    };

    UnionFind uf(faults.size());
    const auto merge = [&](std::optional<size_t> a, std::optional<size_t> b) {
        if (a && b) uf.merge(*a, *b);
    };

    using netlist::GateType;
    for (NetId g = 0; g < circuit.gate_count(); ++g) {
        const auto& gate = circuit.gate(g);
        const int arity = static_cast<int>(gate.fanin.size());
        switch (gate.type) {
            case GateType::Input:
                break;
            case GateType::Buf:
                merge(input_fault(g, 0, false), stem_fault(g, false));
                merge(input_fault(g, 0, true), stem_fault(g, true));
                break;
            case GateType::Not:
                merge(input_fault(g, 0, false), stem_fault(g, true));
                merge(input_fault(g, 0, true), stem_fault(g, false));
                break;
            case GateType::And:
                for (int p = 0; p < arity; ++p)
                    merge(input_fault(g, p, false), stem_fault(g, false));
                break;
            case GateType::Nand:
                for (int p = 0; p < arity; ++p)
                    merge(input_fault(g, p, false), stem_fault(g, true));
                break;
            case GateType::Or:
                for (int p = 0; p < arity; ++p)
                    merge(input_fault(g, p, true), stem_fault(g, true));
                break;
            case GateType::Nor:
                for (int p = 0; p < arity; ++p)
                    merge(input_fault(g, p, true), stem_fault(g, false));
                break;
            case GateType::Xor:
            case GateType::Xnor:
                break;  // XOR gates have no equivalent input/output faults
        }
    }

    // Dense class ids, numbered in first-occurrence order.
    std::vector<std::size_t> cls(faults.size());
    std::map<size_t, size_t> id_of_root;
    for (size_t i = 0; i < faults.size(); ++i) {
        const size_t root = uf.find(i);
        const auto [it, inserted] = id_of_root.emplace(root, id_of_root.size());
        cls[i] = it->second;
    }
    return cls;
}

std::vector<StuckAtFault> collapse_faults(const Circuit& circuit,
                                          std::vector<StuckAtFault> faults) {
    const auto cls = equivalence_classes(circuit, faults);
    const size_t nclasses =
        cls.empty() ? 0 : *std::max_element(cls.begin(), cls.end()) + 1;

    // Keep one representative per class, preferring stems, then low net ids.
    constexpr size_t kNone = static_cast<size_t>(-1);
    std::vector<size_t> best_of_class(nclasses, kNone);
    const auto better = [&](size_t a, size_t b) {
        const bool stem_a = faults[a].is_stem();
        const bool stem_b = faults[b].is_stem();
        if (stem_a != stem_b) return stem_a;
        return std::tie(faults[a].net, faults[a].reader, faults[a].pin) <
               std::tie(faults[b].net, faults[b].reader, faults[b].pin);
    };
    for (size_t i = 0; i < faults.size(); ++i) {
        if (best_of_class[cls[i]] == kNone ||
            better(i, best_of_class[cls[i]]))
            best_of_class[cls[i]] = i;
    }
    std::vector<StuckAtFault> collapsed;
    for (size_t i = 0; i < faults.size(); ++i)
        if (best_of_class[cls[i]] == i) collapsed.push_back(faults[i]);
    return collapsed;
}

std::vector<std::uint8_t> expand_untestable_marks(
    const Circuit& circuit, std::span<const StuckAtFault> universe,
    std::span<const StuckAtFault> collapsed,
    std::span<const std::uint8_t> collapsed_marks) {
    if (collapsed_marks.size() != collapsed.size())
        throw std::invalid_argument(
            "expand_untestable_marks: mask size mismatch");
    const auto cls = equivalence_classes(circuit, universe);
    const size_t nclasses =
        cls.empty() ? 0 : *std::max_element(cls.begin(), cls.end()) + 1;
    std::map<FaultKey, size_t> index;
    for (size_t i = 0; i < universe.size(); ++i)
        index[key_of(universe[i])] = i;

    std::vector<std::uint8_t> class_marked(nclasses, 0);
    for (size_t j = 0; j < collapsed.size(); ++j) {
        if (!collapsed_marks[j]) continue;
        const auto it = index.find(key_of(collapsed[j]));
        if (it == index.end())
            throw std::invalid_argument(
                "expand_untestable_marks: marked fault '" +
                fault_name(circuit, collapsed[j]) + "' not in the universe");
        class_marked[cls[it->second]] = 1;
    }
    std::vector<std::uint8_t> out(universe.size(), 0);
    for (size_t i = 0; i < universe.size(); ++i)
        out[i] = class_marked[cls[i]];
    return out;
}

}  // namespace dlp::gatesim
