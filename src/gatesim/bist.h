// Built-in self-test substrate: LFSR pattern generation and MISR response
// compaction.  The paper's coverage-growth law (eq. 7) comes from ref. [19]
// (T.W. Williams, "Test Length in a Self-testing Environment"), where the
// vectors are pseudo-random LFSR patterns and detection is judged from a
// compacted signature - including the aliasing risk a MISR introduces.
#pragma once

#include <cstdint>
#include <vector>

#include "gatesim/logic_sim.h"

namespace dlp::gatesim {

/// Fibonacci LFSR over a programmable feedback polynomial.
/// The polynomial is given by its taps mask: bit i set means stage i feeds
/// the XOR (x^width term is implicit).  Default taps give maximal-length
/// sequences for the common widths used in the tests/benches.
class Lfsr {
public:
    /// @param width  register length in bits (1..64)
    /// @param taps   feedback mask; 0 = pick a built-in primitive polynomial
    /// @param seed   initial state (must be nonzero; masked to width)
    Lfsr(int width, std::uint64_t taps = 0, std::uint64_t seed = 1);

    std::uint64_t state() const { return state_; }
    int width() const { return width_; }

    /// Advances one clock; returns the new state.
    std::uint64_t step();

    /// Produces a test vector for a circuit by clocking the LFSR once per
    /// vector and fanning the register out to the inputs (wrapping when
    /// the circuit has more inputs than stages, as scan BIST does).
    Vector next_vector(const Circuit& circuit);

    /// Period until the state repeats (exhaustive walk; width <= 24
    /// recommended).  A maximal LFSR returns 2^width - 1.
    std::uint64_t period() const;

    /// A known-primitive taps mask for the width, or 0 if not tabulated.
    static std::uint64_t primitive_taps(int width);

private:
    int width_;
    std::uint64_t taps_;
    std::uint64_t mask_;
    std::uint64_t state_;
};

/// Multiple-input signature register: compacts PO responses; equal
/// signatures after N vectors mean "pass" (with aliasing probability
/// ~2^-width for random error streams).
class Misr {
public:
    Misr(int width, std::uint64_t taps = 0, std::uint64_t seed = 0);

    /// Absorbs one response word (one bit per PO, packed little-endian).
    void absorb(std::uint64_t response);

    std::uint64_t signature() const { return state_; }

private:
    int width_;
    std::uint64_t taps_;
    std::uint64_t mask_;
    std::uint64_t state_;
};

/// Packs PO values (as returned by simulate()) into a MISR response word.
std::uint64_t pack_response(const Circuit& circuit,
                            const std::vector<bool>& net_values);

}  // namespace dlp::gatesim
