// Single stuck-at fault universe and equivalence collapsing.
//
// Fault sites are *lines*: the output stem of every gate (including primary
// inputs) and every gate input pin (fanout branch).  Equivalence collapsing
// follows the classic rules (e.g. for a NAND, any input s-a-0 is equivalent
// to the output s-a-1; for a NOT/BUF, input faults are equivalent to the
// corresponding output faults).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace dlp::gatesim {

using netlist::Circuit;
using netlist::NetId;

/// A single stuck-at fault on a line.
struct StuckAtFault {
    NetId net = 0;       ///< the driving net of the faulted line
    NetId reader = netlist::kNoNet;  ///< gate whose input pin is faulted, or
                                     ///< kNoNet for the output stem
    int pin = -1;        ///< pin index within reader's fanin (stem: -1)
    bool stuck_value = false;

    bool is_stem() const { return reader == netlist::kNoNet; }
    bool operator==(const StuckAtFault&) const = default;
};

/// Human-readable fault name, e.g. "N12/SA0" or "N12->G7.1/SA1".
std::string fault_name(const Circuit& circuit, const StuckAtFault& fault);

/// The complete (uncollapsed) single stuck-at universe of a circuit:
/// 2 faults per stem + 2 per gate input pin of nets with fanout > 1
/// (single-fanout branch faults are structurally identical to the stem).
std::vector<StuckAtFault> full_fault_universe(const Circuit& circuit);

/// Partition of `faults` into structural-equivalence classes under the
/// classic rules: result[i] is a dense class id in [0, class count),
/// assigned in first-occurrence order; equal ids = equivalent faults.
/// collapse_faults() keeps one representative per class, and the lint
/// layer cross-validates a collapsed list against this partition.
std::vector<std::size_t> equivalence_classes(
    const Circuit& circuit, std::span<const StuckAtFault> faults);

/// Equivalence-collapsed fault list (a representative per class).
std::vector<StuckAtFault> collapse_faults(const Circuit& circuit,
                                          std::vector<StuckAtFault> faults);

/// Expands untestability marks from a collapsed list onto `universe`:
/// result[i] is 1 iff universe[i] is structurally equivalent to a marked
/// collapsed fault.  Sound because equivalent faults are detected by
/// exactly the same vectors — an untestable representative makes its whole
/// class untestable.  `collapsed_marks` is parallel to `collapsed`; every
/// marked collapsed fault must appear in `universe` (throws otherwise).
std::vector<std::uint8_t> expand_untestable_marks(
    const Circuit& circuit, std::span<const StuckAtFault> universe,
    std::span<const StuckAtFault> collapsed,
    std::span<const std::uint8_t> collapsed_marks);

}  // namespace dlp::gatesim
