#include "flow/experiment.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "gatesim/fault_sim.h"
#include "model/dl_models.h"
#include "model/yield.h"
#include "obs/telemetry.h"

namespace dlp::flow {

std::vector<switchsim::WeightedFault> to_switch_faults(
    const extract::ExtractionResult& extraction,
    const layout::ChipLayout& chip, const switchsim::SwitchNetlist& net) {
    using EK = extract::ExtractedFault::Kind;
    using SK = switchsim::SwitchFault::Kind;

    // Gates of a sink pin: the transistors of the reading instance whose
    // gate is that pin's local net.
    const auto sink_gate_transistors = [&](const layout::Sink& sink,
                                           std::vector<int>& out) {
        const std::int32_t inst = sink.instance;
        const cell::Cell& c = *net.cells[static_cast<size_t>(inst)];
        const int pin_net = c.input_pin(sink.pin).net;
        for (size_t t = 0; t < c.transistors.size(); ++t)
            if (c.transistors[t].gate == pin_net)
                out.push_back(net.global_transistor(inst,
                                                    static_cast<int>(t)));
    };

    std::vector<switchsim::WeightedFault> out;
    out.reserve(extraction.faults.size());
    for (const auto& ef : extraction.faults) {
        switchsim::WeightedFault wf;
        wf.weight = ef.weight;
        wf.name = ef.description;
        // Trapped charge of a floating gate varies per defect instance:
        // assign low/high/mid-band deterministically from the fault
        // identity (3:3:2 - mid-band floats defeat static voltage testing
        // and contribute to the residual defect level).
        switch (std::hash<std::string>{}(ef.description) % 8u) {
            case 0: case 1: case 2:
                wf.fault.float_level = switchsim::SwitchFault::FloatLevel::Low;
                break;
            case 3: case 4: case 5:
                wf.fault.float_level = switchsim::SwitchFault::FloatLevel::High;
                break;
            default:
                wf.fault.float_level = switchsim::SwitchFault::FloatLevel::Mid;
                break;
        }
        switch (ef.kind) {
            case EK::Bridge:
                wf.fault.kind = SK::Bridge;
                wf.fault.a = net.node_of(ef.a);
                wf.fault.b = net.node_of(ef.b);
                if (!ef.c.is_none()) wf.fault.c = net.node_of(ef.c);
                break;
            case EK::Gross:
                wf.fault.kind = SK::Gross;
                break;
            case EK::TransistorOpen:
                wf.fault.kind = SK::TransistorOpen;
                for (const auto& [inst, t] : ef.transistors)
                    wf.fault.transistors.push_back(
                        net.global_transistor(inst, t));
                break;
            case EK::GateFloat:
                wf.fault.kind = SK::GateFloat;
                for (const auto& [inst, t] : ef.transistors)
                    wf.fault.transistors.push_back(
                        net.global_transistor(inst, t));
                break;
            case EK::PoFloat:
                wf.fault.kind = SK::None;
                wf.fault.po_float = ef.po;
                break;
            case EK::NetOpen: {
                wf.fault.kind = SK::GateFloat;
                const auto& sinks = chip.sinks[ef.net];
                if (ef.sink >= 0) {
                    const auto& s = sinks[static_cast<size_t>(ef.sink)];
                    if (s.is_po_pad()) {
                        wf.fault.kind = SK::None;
                        wf.fault.po_float = s.pin;
                    } else {
                        sink_gate_transistors(s, wf.fault.transistors);
                    }
                } else {
                    for (const auto& s : sinks) {
                        if (s.is_po_pad())
                            wf.fault.po_float = s.pin;
                        else
                            sink_gate_transistors(s, wf.fault.transistors);
                    }
                    if (wf.fault.transistors.empty())
                        wf.fault.kind = SK::None;
                }
                break;
            }
        }
        out.push_back(std::move(wf));
    }
    return out;
}

namespace {

/// Samples a coverage curve into fallout points, thinning long curves to
/// keep the model fit balanced across the k axis (log-spaced).
std::vector<size_t> sample_indices(size_t n) {
    std::vector<size_t> idx;
    if (n == 0) return idx;  // interrupted runs can hand us empty curves
    size_t k = 1;
    while (k <= n) {
        idx.push_back(k - 1);
        const size_t step = std::max<size_t>(1, k / 8);
        k += step;
    }
    if (idx.back() != n - 1) idx.push_back(n - 1);
    return idx;
}

}  // namespace

ExperimentRunner::ExperimentRunner(netlist::Circuit circuit,
                                   ExperimentOptions options)
    : circuit_(std::move(circuit)), options_(std::move(options)) {
    // Process-wide default wall-clock budget for runs that set none.
    if (!options_.budget.deadline.active()) {
        const long long ms = support::env_deadline_ms();
        if (ms > 0)
            options_.budget.deadline = support::Deadline::after_ms(ms);
    }
    // DLPROJ_LINT=0/off turns the static-analysis gate off process-wide;
    // an explicit lint_enabled=false in the options always wins.
    if (options_.lint_enabled)
        options_.lint_enabled = lint::lint_enabled_from_env();
    // DLPROJ_ANALYSIS=0/off disables the untestability stage the same way.
    if (options_.analysis)
        options_.analysis = analysis::analysis_enabled_from_env();
}

lint::LintReport ExperimentRunner::lint_report() const {
    lint::LintReport merged;
    for (const auto* part : {&circuit_lint_, &rules_lint_, &faults_lint_}) {
        if (!part->has_value()) continue;
        const lint::LintReport& r = **part;
        merged.diagnostics.insert(merged.diagnostics.end(),
                                  r.diagnostics.begin(),
                                  r.diagnostics.end());
        merged.errors += r.errors;
        merged.warnings += r.warnings;
        merged.infos += r.infos;
        merged.suppressed += r.suppressed;
    }
    return merged;
}

void ExperimentRunner::fail_lint() {
    // Cache a diagnostics-only result so fit()/run() after the throw
    // still hand back an ExperimentResult carrying the findings.
    ExperimentResult r;
    r.lint = lint_report();
    r.interruption = ExperimentResult::Interruption{
        "lint", support::StopReason::LintFailed, 0, 0};
    result_ = std::move(r);
    DLP_OBS_ANNOTATE("lint failed: " +
                     std::to_string(result_->lint.errors) + " error(s)");
    throw lint::LintError(
        "static analysis rejected the experiment inputs:\n" +
            lint::render_text(result_->lint.diagnostics),
        result_->lint);
}

void ExperimentRunner::run_lint_gate(bool circuit_sweep) {
    DLP_OBS_SPAN(lint_span, "flow.lint");
    DLP_OBS_COUNTER(c_err, "lint.errors");
    DLP_OBS_COUNTER(c_warn, "lint.warnings");
    DLP_OBS_COUNTER(c_info, "lint.infos");
    const lint::SuppressionSet suppress{options_.lint.suppress};
    if (circuit_sweep) {
        lint::DiagnosticEngine engine{suppress};
        lint::lint_circuit(circuit_, engine, options_.lint);
        DLP_OBS_ADD(c_err, static_cast<long long>(engine.errors()));
        DLP_OBS_ADD(c_warn, static_cast<long long>(engine.warnings()));
        DLP_OBS_ADD(c_info, static_cast<long long>(engine.infos()));
        circuit_lint_ = lint::make_report(engine);
    }
    {
        lint::DiagnosticEngine engine{suppress};
        lint::lint_rules(options_.defects, engine);
        DLP_OBS_ADD(c_err, static_cast<long long>(engine.errors()));
        DLP_OBS_ADD(c_warn, static_cast<long long>(engine.warnings()));
        DLP_OBS_ADD(c_info, static_cast<long long>(engine.infos()));
        rules_lint_ = lint::make_report(engine);
    }
    if ((circuit_lint_ && !circuit_lint_->ok()) ||
        (rules_lint_ && !rules_lint_->ok()))
        fail_lint();
}

void ExperimentRunner::report(std::string_view stage, std::size_t done,
                              std::size_t total) {
    if (progress_) progress_(stage, done, total);
}

void ExperimentRunner::invalidate_all() {
    prepared_.reset();
    extraction_dirty_ = true;
    circuit_lint_.reset();
    injected_stuck_.reset();
    invalidate_analysis();
}

void ExperimentRunner::inject_collapsed_faults(
    std::vector<gatesim::StuckAtFault> stuck) {
    injected_stuck_ = std::move(stuck);
    invalidate_analysis();
}

void ExperimentRunner::inject_analysis(AnalysisData analysis) {
    analysis_ = std::move(analysis);
    invalidate_tests();
}

void ExperimentRunner::inject_tests(TestSet tests) {
    tests_ = std::move(tests);
    faults_lint_.reset();
    invalidate_simulation();
}

void ExperimentRunner::inject_simulation(SimulationData sim) {
    sim_data_ = std::move(sim);
    result_.reset();
}

void ExperimentRunner::invalidate_extraction() {
    extraction_dirty_ = true;
    rules_lint_.reset();
    invalidate_simulation();
}

void ExperimentRunner::invalidate_analysis() {
    analysis_.reset();
    invalidate_tests();
}

void ExperimentRunner::invalidate_tests() {
    tests_.reset();
    faults_lint_.reset();
    invalidate_simulation();
}

void ExperimentRunner::invalidate_simulation() {
    sim_data_.reset();
    result_.reset();
}

const ExperimentRunner::PreparedDesign& ExperimentRunner::prepare() {
    DLP_OBS_COUNTER(c_hit, "flow.prepare.cache_hit");
    DLP_OBS_COUNTER(c_miss, "flow.prepare.cache_miss");
    if (prepared_ && !extraction_dirty_) {
        DLP_OBS_ADD(c_hit, 1);
        return *prepared_;
    }
    DLP_OBS_ADD(c_miss, 1);
    DLP_OBS_SPAN(stage_span, "flow.prepare");
    // Static analysis first: reject bad inputs before the expensive
    // physical-design work.  The circuit sweep runs once; the rules sweep
    // re-runs whenever the extraction inputs changed.
    if (options_.lint_enabled) run_lint_gate(/*circuit_sweep=*/!prepared_);
    if (!prepared_) {
        PreparedDesign p;
        report("techmap", 0, 1);
        {
            DLP_OBS_SPAN(s, "techmap");
            p.mapped = netlist::techmap(circuit_, options_.techmap);
        }
        report("techmap", 1, 1);
        report("layout", 0, 1);
        {
            DLP_OBS_SPAN(s, "layout");
            p.chip = layout::place_and_route(p.mapped, options_.layout);
        }
        report("layout", 1, 1);
        p.swnet = switchsim::build_switch_netlist(p.mapped);
        prepared_ = std::move(p);
        extraction_dirty_ = true;
    }
    if (extraction_dirty_) {
        DLP_OBS_SPAN(s, "extract");
        report("extract", 0, 1);
        PreparedDesign& p = *prepared_;
        p.extraction =
            extract_faults(p.chip, options_.defects, options_.extract);
        p.raw_total_weight = p.extraction.total_weight;
        p.weight_by_class = p.extraction.weight_by_class;
        // Yield scaling ("different size, same testability", paper sec. 3).
        if (options_.target_yield > 0.0) {
            const double scale = model::yield_scale_factor(
                p.extraction.total_weight, options_.target_yield);
            for (auto& f : p.extraction.faults) f.weight *= scale;
            p.extraction.total_weight *= scale;
        }
        p.yield = std::exp(-p.extraction.total_weight);
        extraction_dirty_ = false;
        report("extract", 1, 1);
    }
    return *prepared_;
}

const ExperimentRunner::AnalysisData& ExperimentRunner::analyze() {
    DLP_OBS_COUNTER(c_hit, "flow.analyze.cache_hit");
    DLP_OBS_COUNTER(c_miss, "flow.analyze.cache_miss");
    if (analysis_) DLP_OBS_ADD(c_hit, 1);
    if (!analysis_) {
        DLP_OBS_ADD(c_miss, 1);
        const PreparedDesign& p = prepare();
        DLP_OBS_SPAN(stage_span, "flow.analyze");
        report("analysis", 0, 1);
        AnalysisData a;
        a.stuck = injected_stuck_
                      ? *injected_stuck_
                      : gatesim::collapse_faults(
                            p.mapped, gatesim::full_fault_universe(p.mapped));
        analysis::AnalysisOptions opts = options_.analysis_options;
        opts.budget = options_.budget;
        analysis::AnalysisResult r =
            analysis::find_untestable(p.mapped, a.stuck, opts);
        a.untestable = std::move(r.untestable);
        a.proofs = std::move(r.proofs);
        a.stats = r.stats;
        a.stop = r.stop;
        DLP_OBS_SPAN_NOTE(stage_span,
                          std::to_string(a.stats.proofs) + " of " +
                              std::to_string(a.stuck.size()) +
                              " faults proven untestable");
        if (a.stop != support::StopReason::None)
            DLP_OBS_SPAN_NOTE(
                stage_span,
                "interrupted: " +
                    std::string(support::stop_reason_name(a.stop)));
        report("analysis", 1, 1);
        analysis_ = std::move(a);
    }
    return *analysis_;
}

const ExperimentRunner::TestSet& ExperimentRunner::generate_tests() {
    DLP_OBS_COUNTER(c_hit, "flow.generate_tests.cache_hit");
    DLP_OBS_COUNTER(c_miss, "flow.generate_tests.cache_miss");
    if (tests_) DLP_OBS_ADD(c_hit, 1);
    if (!tests_) {
        DLP_OBS_ADD(c_miss, 1);
        const PreparedDesign& p = prepare();
        // The analysis stage runs first when enabled: its marks settle
        // proven-untestable faults before ATPG ever targets them.
        const AnalysisData* a = options_.analysis ? &analyze() : nullptr;
        DLP_OBS_SPAN(stage_span, "flow.generate_tests");
        TestSet t;
        report("atpg", 0, 1);
        t.stuck = a ? a->stuck
                    : (injected_stuck_
                           ? *injected_stuck_
                           : gatesim::collapse_faults(
                                 p.mapped,
                                 gatesim::full_fault_universe(p.mapped)));
        // Cross-validate the collapse before spending ATPG time on it: a
        // lost or duplicated equivalence class would skew every weighted
        // coverage ratio downstream.
        if (options_.lint_enabled) {
            DLP_OBS_SPAN(lint_span, "flow.lint");
            DLP_OBS_COUNTER(c_err, "lint.errors");
            DLP_OBS_COUNTER(c_warn, "lint.warnings");
            DLP_OBS_COUNTER(c_info, "lint.infos");
            lint::DiagnosticEngine engine{
                lint::SuppressionSet(options_.lint.suppress)};
            lint::lint_faults(p.mapped, t.stuck, engine);
            DLP_OBS_ADD(c_err, static_cast<long long>(engine.errors()));
            DLP_OBS_ADD(c_warn, static_cast<long long>(engine.warnings()));
            DLP_OBS_ADD(c_info, static_cast<long long>(engine.infos()));
            faults_lint_ = lint::make_report(engine);
            if (!engine.ok()) fail_lint();
        }
        atpg::TestGenOptions atpg_opts = options_.atpg;
        atpg_opts.engine = options_.engine;
        atpg_opts.parallel = options_.parallel;
        atpg_opts.budget = options_.budget;
        if (a) atpg_opts.untestable = a->untestable;
        t.tests = atpg::generate_test_set(p.mapped, t.stuck, atpg_opts);
        report("atpg", 1, 1);

        // T(k) over the full sequence, from the ATPG detection table.  Like
        // the paper, proven-redundant faults are neglected (fault
        // efficiency); with the analysis stage on, the statically proven
        // faults join the redundant set, so this curve is the testability-
        // corrected one and the raw (no-exclusion) curve rides alongside.
        const double testable =
            static_cast<double>(t.stuck.size() - t.tests.redundant);
        const double total = static_cast<double>(t.stuck.size());
        std::vector<int> hits(t.tests.vectors.size() + 1, 0);
        for (int at : t.tests.first_detected_at)
            if (at >= 1) ++hits[static_cast<size_t>(at)];
        t.t_curve.values.resize(t.tests.vectors.size());
        if (a) t.t_curve_raw.values.resize(t.tests.vectors.size());
        double cum = 0;
        for (size_t k = 1; k <= t.tests.vectors.size(); ++k) {
            cum += hits[k];
            t.t_curve.values[k - 1] = testable == 0.0 ? 0.0 : cum / testable;
            if (a)
                t.t_curve_raw.values[k - 1] =
                    total == 0.0 ? 0.0 : cum / total;
        }
        if (t.tests.stop != support::StopReason::None)
            DLP_OBS_SPAN_NOTE(
                stage_span,
                "interrupted: " +
                    std::string(support::stop_reason_name(t.tests.stop)));
        tests_ = std::move(t);
    }
    return *tests_;
}

const ExperimentRunner::SimulationData& ExperimentRunner::simulate() {
    DLP_OBS_COUNTER(c_hit, "flow.simulate.cache_hit");
    DLP_OBS_COUNTER(c_miss, "flow.simulate.cache_miss");
    if (sim_data_) DLP_OBS_ADD(c_hit, 1);
    if (!sim_data_) {
        DLP_OBS_ADD(c_miss, 1);
        const TestSet& t = generate_tests();
        const PreparedDesign& p = prepare();
        DLP_OBS_SPAN(stage_span, "flow.simulate");
        SimulationData d;
        const switchsim::SwitchSim sim(p.swnet, options_.sim);
        auto swfaults = to_switch_faults(p.extraction, p.chip, p.swnet);
        if (!options_.weighted)
            for (auto& f : swfaults) f.weight = 1.0;
        const std::unique_ptr<sim::SwitchSession> swsim =
            switchsim::open_switch_session(
                sim::resolve_engine(options_.engine), sim,
                std::move(swfaults), options_.parallel);
        swsim->set_progress(progress_);
        const auto ares = swsim->apply(
            std::span<const switchsim::Vector>(t.tests.vectors),
            options_.budget);
        d.stop = ares.stop;
        d.vectors_done = static_cast<std::size_t>(ares.vectors_applied);
        d.vectors_total = t.tests.vectors.size();
        d.theta_curve = CoverageCurve(swsim->weighted_coverage_curve());
        d.gamma_curve = CoverageCurve(swsim->unweighted_coverage_curve());
        d.theta_iddq_curve =
            CoverageCurve(swsim->weighted_coverage_curve_with_iddq());
        d.first_detected_at.assign(swsim->first_detected_at().begin(),
                                   swsim->first_detected_at().end());
        d.iddq_detected_at.assign(swsim->iddq_detected_at().begin(),
                                  swsim->iddq_detected_at().end());
        if (d.stop != support::StopReason::None)
            DLP_OBS_SPAN_NOTE(
                stage_span,
                "interrupted: " +
                    std::string(support::stop_reason_name(d.stop)) + " at " +
                    std::to_string(d.vectors_done) + "/" +
                    std::to_string(d.vectors_total) + " vectors");
        sim_data_ = std::move(d);
    }
    return *sim_data_;
}

const ExperimentResult& ExperimentRunner::fit() {
    DLP_OBS_COUNTER(c_hit, "flow.fit.cache_hit");
    DLP_OBS_COUNTER(c_miss, "flow.fit.cache_miss");
    if (result_) DLP_OBS_ADD(c_hit, 1);
    if (!result_) {
        DLP_OBS_ADD(c_miss, 1);
        const SimulationData& d = simulate();
        // Via stage accessors, not the raw optionals: with an injected
        // simulation artifact the upstream stages may not have run yet.
        const TestSet& t = generate_tests();
        const PreparedDesign& p = prepare();
        DLP_OBS_SPAN(stage_span, "flow.fit");
        report("fit", 0, 1);

        ExperimentResult r;
        r.mapped_gates = p.mapped.logic_gate_count();
        r.stuck_faults = t.stuck.size();
        r.realistic_faults = p.extraction.faults.size();
        r.transistors = p.swnet.transistors.size();
        r.vector_count = static_cast<int>(t.tests.vectors.size());
        r.random_vectors = t.tests.random_count;
        r.yield = p.yield;
        r.raw_total_weight = p.raw_total_weight;
        r.die_area = p.chip.area();
        r.weight_by_class = p.weight_by_class;
        r.fault_weights = p.extraction.weights();
        r.first_detected_at = d.first_detected_at;
        r.iddq_detected_at = d.iddq_detected_at;
        r.t_curve = t.t_curve;
        r.t_curve_raw = t.t_curve_raw;
        r.theta_curve = d.theta_curve;
        r.gamma_curve = d.gamma_curve;
        r.theta_iddq_curve = d.theta_iddq_curve;
        r.lint = lint_report();
        // Analysis-stage outcome; read from the cached optional (never
        // recomputed here) so an injected test set without an injected
        // analysis artifact still fits, just without the counters.
        if (analysis_) {
            r.untestable_faults = analysis_->stats.proofs;
            r.analysis_stats = analysis_->stats;
        }

        // n-detection quality of the stuck-at set: grade the per-fault
        // detection counts against the ATPG target, excluding redundant
        // faults so coverage figures match TestGenResult::coverage().
        {
            std::vector<std::uint8_t> redundant(t.tests.status.size(), 0);
            for (std::size_t i = 0; i < t.tests.status.size(); ++i)
                if (t.tests.status[i] == atpg::FaultStatus::Redundant)
                    redundant[i] = 1;
            r.ndetect = model::ndetect_profile(t.tests.detection_counts,
                                               t.tests.ndetect, redundant);
        }

        // Record where a budget stopped the run (earliest stage wins; a
        // sticky stop in analysis or ATPG also stops the later stages
        // immediately).
        if (analysis_ && analysis_->stop != support::StopReason::None) {
            r.interruption = ExperimentResult::Interruption{
                "analysis", analysis_->stop, analysis_->stats.pivots_done,
                analysis_->stats.pivots_total};
        } else if (t.tests.stop != support::StopReason::None) {
            r.interruption = ExperimentResult::Interruption{
                "atpg", t.tests.stop, t.stuck.size() - t.tests.untargeted,
                t.stuck.size()};
        } else if (d.stop != support::StopReason::None) {
            r.interruption = ExperimentResult::Interruption{
                "switch-sim", d.stop, d.vectors_done, d.vectors_total};
        }
        if (r.interruption)
            DLP_OBS_SPAN_NOTE(
                stage_span,
                "run interrupted in " + r.interruption->stage + ": " +
                    std::string(
                        support::stop_reason_name(r.interruption->reason)));

        // Defect-level points DL(theta(k)) against T(k) and Gamma(k), over
        // the prefix both simulators completed (an interrupted switch-level
        // pass yields shorter theta/Gamma curves than T).
        const size_t usable =
            std::min(r.t_curve.size(),
                     std::min(r.theta_curve.size(), r.gamma_curve.size()));
        // Defect-statistics backend: the explicit option wins, else the
        // rules deck's cluster_* directives, else Poisson.  lambda is the
        // scaled total weight (Y = e^-lambda under Poisson).
        r.defect_stats = options_.defect_stats.is_poisson()
                             ? options_.defects.clustering
                             : options_.defect_stats;
        const double lambda = p.extraction.total_weight;
        r.stat_yield = r.defect_stats.yield(lambda);
        const bool clustered = !r.defect_stats.is_poisson();
        for (size_t i : sample_indices(usable)) {
            const double dl = model::weighted_dl(r.yield, r.theta_curve[i]);
            r.dl_vs_t.push_back({r.t_curve[i], dl});
            r.dl_vs_gamma.push_back({r.gamma_curve[i], dl});
            if (i < r.t_curve_raw.size())
                r.dl_vs_t_raw.push_back({r.t_curve_raw[i], dl});
            if (clustered)
                r.dl_vs_t_clustered.push_back(
                    {r.t_curve[i],
                     r.defect_stats.dl(lambda, r.theta_curve[i])});
        }

        // Fits: eq (11) parameters and the coverage-law susceptibilities,
        // on whatever prefix is available (fitting needs data; a run
        // stopped before any vector completed keeps the default fits).
        try {
            r.fit = model::fit_proposed_model(r.yield, r.dl_vs_t);
        } catch (const std::exception&) {
            r.fit = {};
        }
        if (!r.dl_vs_t_raw.empty()) {
            try {
                r.fit_raw = model::fit_proposed_model(r.yield, r.dl_vs_t_raw);
            } catch (const std::exception&) {
                r.fit_raw = {};
            }
        }
        if (!r.dl_vs_t_clustered.empty()) {
            try {
                r.fit_clustered =
                    model::fit_clustered_model(lambda, r.dl_vs_t_clustered);
            } catch (const std::exception&) {
                r.fit_clustered = {};
            }
        }
        {
            std::vector<model::CoveragePoint> t_pts;
            std::vector<model::CoveragePoint> th_pts;
            for (size_t i : sample_indices(usable)) {
                t_pts.push_back({static_cast<double>(i + 1), r.t_curve[i]});
                th_pts.push_back(
                    {static_cast<double>(i + 1), r.theta_curve[i]});
            }
            try {
                r.t_law = model::fit_coverage_law(t_pts, false);
            } catch (const std::exception&) {
                r.t_law = {};
            }
            try {
                r.theta_law = model::fit_coverage_law(th_pts, true);
            } catch (const std::exception&) {
                r.theta_law = {};
            }
        }
        result_ = std::move(r);
        report("fit", 1, 1);
    }
    return *result_;
}

ExperimentResult run_experiment(const netlist::Circuit& circuit,
                                const ExperimentOptions& options) {
    ExperimentRunner runner(circuit, options);
    return runner.run();
}

}  // namespace dlp::flow
