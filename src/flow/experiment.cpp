#include "flow/experiment.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "gatesim/fault_sim.h"
#include "model/dl_models.h"
#include "model/yield.h"

namespace dlp::flow {

std::vector<switchsim::WeightedFault> to_switch_faults(
    const extract::ExtractionResult& extraction,
    const layout::ChipLayout& chip, const switchsim::SwitchNetlist& net) {
    using EK = extract::ExtractedFault::Kind;
    using SK = switchsim::SwitchFault::Kind;

    // Gates of a sink pin: the transistors of the reading instance whose
    // gate is that pin's local net.
    const auto sink_gate_transistors = [&](const layout::Sink& sink,
                                           std::vector<int>& out) {
        const std::int32_t inst = sink.instance;
        const cell::Cell& c = *net.cells[static_cast<size_t>(inst)];
        const int pin_net = c.input_pin(sink.pin).net;
        for (size_t t = 0; t < c.transistors.size(); ++t)
            if (c.transistors[t].gate == pin_net)
                out.push_back(net.global_transistor(inst,
                                                    static_cast<int>(t)));
    };

    std::vector<switchsim::WeightedFault> out;
    out.reserve(extraction.faults.size());
    for (const auto& ef : extraction.faults) {
        switchsim::WeightedFault wf;
        wf.weight = ef.weight;
        wf.name = ef.description;
        // Trapped charge of a floating gate varies per defect instance:
        // assign low/high/mid-band deterministically from the fault
        // identity (3:3:2 - mid-band floats defeat static voltage testing
        // and contribute to the residual defect level).
        switch (std::hash<std::string>{}(ef.description) % 8u) {
            case 0: case 1: case 2:
                wf.fault.float_level = switchsim::SwitchFault::FloatLevel::Low;
                break;
            case 3: case 4: case 5:
                wf.fault.float_level = switchsim::SwitchFault::FloatLevel::High;
                break;
            default:
                wf.fault.float_level = switchsim::SwitchFault::FloatLevel::Mid;
                break;
        }
        switch (ef.kind) {
            case EK::Bridge:
                wf.fault.kind = SK::Bridge;
                wf.fault.a = net.node_of(ef.a);
                wf.fault.b = net.node_of(ef.b);
                if (!ef.c.is_none()) wf.fault.c = net.node_of(ef.c);
                break;
            case EK::Gross:
                wf.fault.kind = SK::Gross;
                break;
            case EK::TransistorOpen:
                wf.fault.kind = SK::TransistorOpen;
                for (const auto& [inst, t] : ef.transistors)
                    wf.fault.transistors.push_back(
                        net.global_transistor(inst, t));
                break;
            case EK::GateFloat:
                wf.fault.kind = SK::GateFloat;
                for (const auto& [inst, t] : ef.transistors)
                    wf.fault.transistors.push_back(
                        net.global_transistor(inst, t));
                break;
            case EK::PoFloat:
                wf.fault.kind = SK::None;
                wf.fault.po_float = ef.po;
                break;
            case EK::NetOpen: {
                wf.fault.kind = SK::GateFloat;
                const auto& sinks = chip.sinks[ef.net];
                if (ef.sink >= 0) {
                    const auto& s = sinks[static_cast<size_t>(ef.sink)];
                    if (s.is_po_pad()) {
                        wf.fault.kind = SK::None;
                        wf.fault.po_float = s.pin;
                    } else {
                        sink_gate_transistors(s, wf.fault.transistors);
                    }
                } else {
                    for (const auto& s : sinks) {
                        if (s.is_po_pad())
                            wf.fault.po_float = s.pin;
                        else
                            sink_gate_transistors(s, wf.fault.transistors);
                    }
                    if (wf.fault.transistors.empty())
                        wf.fault.kind = SK::None;
                }
                break;
            }
        }
        out.push_back(std::move(wf));
    }
    return out;
}

namespace {

/// Samples a coverage curve into fallout points, thinning long curves to
/// keep the model fit balanced across the k axis (log-spaced).
std::vector<size_t> sample_indices(size_t n) {
    std::vector<size_t> idx;
    size_t k = 1;
    while (k <= n) {
        idx.push_back(k - 1);
        const size_t step = std::max<size_t>(1, k / 8);
        k += step;
    }
    if (idx.empty() || idx.back() != n - 1) idx.push_back(n - 1);
    return idx;
}

}  // namespace

ExperimentResult run_experiment(const netlist::Circuit& circuit,
                                const ExperimentOptions& options) {
    ExperimentResult r;

    // 1. Technology map so every gate has a cell.
    const netlist::Circuit mapped = netlist::techmap(circuit, options.techmap);
    r.mapped_gates = mapped.logic_gate_count();

    // 2. Stuck-at test generation (random prefix + PODEM tail).
    auto stuck = gatesim::collapse_faults(
        mapped, gatesim::full_fault_universe(mapped));
    r.stuck_faults = stuck.size();
    const atpg::TestGenResult tests =
        atpg::generate_test_set(mapped, stuck, options.atpg);
    r.vector_count = static_cast<int>(tests.vectors.size());
    r.random_vectors = tests.random_count;

    // T(k) over the full sequence, from the ATPG detection table.  Like the
    // paper, proven-redundant faults are neglected (fault efficiency).
    {
        const double testable =
            static_cast<double>(stuck.size() - tests.redundant);
        std::vector<int> hits(tests.vectors.size() + 1, 0);
        for (int at : tests.first_detected_at)
            if (at >= 1) ++hits[static_cast<size_t>(at)];
        r.t_curve.resize(tests.vectors.size());
        double cum = 0;
        for (size_t k = 1; k <= tests.vectors.size(); ++k) {
            cum += hits[k];
            r.t_curve[k - 1] = testable == 0.0 ? 0.0 : cum / testable;
        }
    }

    // 3. Layout and fault extraction.
    const layout::ChipLayout chip =
        layout::place_and_route(mapped, options.layout);
    r.die_area = chip.area();
    extract::ExtractionResult extraction =
        extract_faults(chip, options.defects, options.extract);
    r.raw_total_weight = extraction.total_weight;
    r.weight_by_class = extraction.weight_by_class;
    r.realistic_faults = extraction.faults.size();

    // 4. Yield scaling ("different size, same testability", paper sec. 3).
    double scale = 1.0;
    if (options.target_yield > 0.0) {
        scale = model::yield_scale_factor(extraction.total_weight,
                                          options.target_yield);
        for (auto& f : extraction.faults) f.weight *= scale;
        extraction.total_weight *= scale;
    }
    r.yield = std::exp(-extraction.total_weight);
    r.fault_weights = extraction.weights();

    // 5. Switch-level fault simulation of the same vector sequence.
    const switchsim::SwitchNetlist swnet = switchsim::build_switch_netlist(mapped);
    r.transistors = swnet.transistors.size();
    const switchsim::SwitchSim sim(swnet, options.sim);
    auto swfaults = to_switch_faults(extraction, chip, swnet);
    if (!options.weighted)
        for (auto& f : swfaults) f.weight = 1.0;
    switchsim::SwitchFaultSimulator swsim(sim, std::move(swfaults));
    swsim.apply(tests.vectors);
    r.theta_curve = swsim.weighted_coverage_curve();
    r.gamma_curve = swsim.unweighted_coverage_curve();
    r.theta_iddq_curve = swsim.weighted_coverage_curve_with_iddq();

    // 6. Defect-level points DL(theta(k)) against T(k) and Gamma(k).
    for (size_t i : sample_indices(r.t_curve.size())) {
        const double dl = model::weighted_dl(r.yield, r.theta_curve[i]);
        r.dl_vs_t.push_back({r.t_curve[i], dl});
        r.dl_vs_gamma.push_back({r.gamma_curve[i], dl});
    }

    // 7. Fits: eq (11) parameters and the coverage-law susceptibilities.
    r.fit = model::fit_proposed_model(r.yield, r.dl_vs_t);
    {
        std::vector<model::CoveragePoint> t_pts;
        std::vector<model::CoveragePoint> th_pts;
        for (size_t i : sample_indices(r.t_curve.size())) {
            t_pts.push_back({static_cast<double>(i + 1), r.t_curve[i]});
            th_pts.push_back({static_cast<double>(i + 1), r.theta_curve[i]});
        }
        try {
            r.t_law = model::fit_coverage_law(t_pts, false);
        } catch (const std::exception&) {
            r.t_law = {};
        }
        try {
            r.theta_law = model::fit_coverage_law(th_pts, true);
        } catch (const std::exception&) {
            r.theta_law = {};
        }
    }
    return r;
}

}  // namespace dlp::flow
