#include "flow/wafer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/telemetry.h"

namespace dlp::flow {

namespace {

struct Rng {
    std::uint64_t state;
    std::uint64_t next() {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Knuth Poisson sampler (lambda is small here: ~0.3 defects/die).
    long poisson(double lambda) {
        const double limit = std::exp(-lambda);
        long k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }

    /// Marsaglia-Tsang gamma(alpha, 1) for alpha >= 1; boost for alpha < 1.
    double gamma(double alpha) {
        if (alpha < 1.0) {
            const double u = uniform();
            return gamma(alpha + 1.0) * std::pow(u, 1.0 / alpha);
        }
        const double d = alpha - 1.0 / 3.0;
        const double c = 1.0 / std::sqrt(9.0 * d);
        while (true) {
            // Box-Muller normal.
            const double u1 = uniform();
            const double u2 = uniform();
            const double n = std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
                             std::cos(6.283185307179586 * u2);
            const double v = std::pow(1.0 + c * n, 3.0);
            if (v <= 0.0) continue;
            const double u = uniform();
            if (std::log(u + 1e-300) < 0.5 * n * n + d - d * v +
                                           d * std::log(v))
                return d * v;
        }
    }
};

}  // namespace

WaferResult simulate_wafer(std::span<const double> weights,
                           std::span<const bool> detected,
                           const WaferOptions& options) {
    if (weights.size() != detected.size())
        throw std::invalid_argument("weights/detected size mismatch");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0) throw std::invalid_argument("negative weight");
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("empty fault list");

    // Cumulative table for defect placement (faults are few; binary search).
    std::vector<double> cumulative(weights.size());
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        cumulative[i] = acc;
    }

    using Kind = model::DefectStatsModel::Kind;
    const bool hierarchical = options.stats.kind == Kind::Hierarchical;
    const bool negbin = options.stats.kind == Kind::NegBin;
    if (negbin &&
        (!std::isfinite(options.stats.alpha) || options.stats.alpha <= 0.0))
        throw std::invalid_argument("negbin backend needs alpha > 0");
    // Hierarchical setup: region fractions partition the die; an empty map
    // is one full-die region, mirroring DefectStatsModel.
    std::vector<model::RegionDensity> regions;
    if (hierarchical) {
        regions = options.stats.regions;
        if (regions.empty()) regions.push_back({1.0, 0.0});
        for (const auto& region : regions)
            if (!std::isfinite(region.fraction) || region.fraction <= 0.0 ||
                !std::isfinite(region.alpha) || region.alpha < 0.0)
                throw std::invalid_argument("bad hierarchical region");
    }
    const long dies_per_wafer =
        options.dies_per_wafer > 0 ? options.dies_per_wafer : 1;

    Rng rng{options.seed};
    WaferResult result;
    result.dies = options.dies;
    if (options.record_die_counts)
        result.die_defects.reserve(static_cast<size_t>(
            std::max<long>(options.dies, 0)));
    DLP_OBS_SPAN(wafer_span, "wafer.simulate");
    DLP_OBS_COUNTER(c_dies, "wafer.dies");
    DLP_OBS_ADD(c_dies, options.dies);
    // Draws one defect and classifies it against the detection table.
    const auto place_defect = [&](bool& caught, bool& escaped) {
        const double u = rng.uniform() * total;
        const size_t j = static_cast<size_t>(
            std::lower_bound(cumulative.begin(), cumulative.end(), u) -
            cumulative.begin());
        const size_t idx = std::min(j, weights.size() - 1);
        if (detected[idx])
            caught = true;
        else
            escaped = true;
    };
    double wafer_factor = 1.0;
    for (long die = 0; die < options.dies; ++die) {
        long defects = 0;
        bool caught = false;
        bool escaped = false;
        if (hierarchical) {
            // Lambda_i = total * f_i * S_wafer * S_die * S_region, each S
            // a mean-1 gamma(alpha)/alpha (1 when the level is disabled).
            if (die % dies_per_wafer == 0)
                wafer_factor = options.stats.wafer_alpha > 0.0
                                   ? rng.gamma(options.stats.wafer_alpha) /
                                         options.stats.wafer_alpha
                                   : 1.0;
            const double die_factor =
                options.stats.die_alpha > 0.0
                    ? rng.gamma(options.stats.die_alpha) /
                          options.stats.die_alpha
                    : 1.0;
            for (const auto& region : regions) {
                double lambda =
                    total * region.fraction * wafer_factor * die_factor;
                if (region.alpha > 0.0)
                    lambda *= rng.gamma(region.alpha) / region.alpha;
                const long region_defects = rng.poisson(lambda);
                defects += region_defects;
                for (long d = 0; d < region_defects; ++d)
                    place_defect(caught, escaped);
            }
        } else {
            // Poisson / negbin path: bit-exact legacy RNG call sequence
            // (the historical clustering_alpha knob IS the negbin
            // backend; the explicit backend wins when both are set).
            double lambda = total;
            const double alpha =
                negbin ? options.stats.alpha : options.clustering_alpha;
            if (alpha > 0.0) lambda *= rng.gamma(alpha) / alpha;
            defects = rng.poisson(lambda);
            for (long d = 0; d < defects; ++d)
                place_defect(caught, escaped);
        }
        if (options.record_die_counts) result.die_defects.push_back(defects);
        if (defects == 0) {
            ++result.defect_free;
            ++result.passing;  // nothing to detect
            continue;
        }
        if (!caught) {
            ++result.passing;
            if (escaped) ++result.shipped_defective;
        }
    }
    return result;
}

}  // namespace dlp::flow
