// The paper's end-to-end experiment:
//   circuit -> techmap -> {stuck-at ATPG, layout -> fault extraction ->
//   switch-level fault simulation} -> T(k), theta(k), Gamma(k) ->
//   DL curves -> model fit (R, theta_max).
//
// The pipeline is staged (ExperimentRunner): prepare() builds the physical
// design, generate_tests() the vector set, simulate() the realistic
// coverage curves, fit() the models.  Each stage caches its artifact, so a
// sweep can edit options() and invalidate only the stages downstream of the
// change instead of re-running the whole flow per point.  run_experiment()
// remains the one-call wrapper.
#pragma once

#include <optional>

#include "analysis/untestable.h"
#include "atpg/generate.h"
#include "extract/extractor.h"
#include "layout/place_route.h"
#include "lint/checks.h"
#include "model/coverage_laws.h"
#include "model/defect_stats_model.h"
#include "model/fit.h"
#include "model/ndetect.h"
#include "netlist/techmap.h"
#include "parallel/parallel_for.h"
#include "parallel/progress.h"
#include "support/cancel.h"
#include "switchsim/switch_fault_sim.h"

namespace dlp::flow {

using ProgressFn = parallel::ProgressFn;

struct ExperimentOptions {
    double target_yield = 0.75;  ///< scale weights to this Y (0 = no scaling)
    /// Fault-sim engine for both simulators, resolved through the
    /// sim::Engine registry ("" = DLPROJ_ENGINE, else the registry
    /// default).  Engines are bit-identical, so this is a pure performance
    /// knob — it never changes any result.
    std::string engine;
    atpg::TestGenOptions atpg;
    extract::DefectStatistics defects =
        extract::DefectStatistics::cmos_bridging_dominant();
    extract::ExtractOptions extract;
    layout::LayoutOptions layout;
    netlist::TechmapOptions techmap;
    switchsim::SimParams sim;  ///< switch-level electrical parameters
    bool weighted = true;  ///< false: ablation, all realistic faults equal
    /// Worker count for both fault simulators (0 = scoped/env default).
    /// Results are bit-identical for any worker count.
    parallel::ParallelOptions parallel;
    /// Bounded execution for the whole run: cancel token, wall-clock
    /// deadline, vector cap, ATPG backtrack override.  Checked at every
    /// stage boundary and inside the long stages (ATPG, both fault
    /// simulators).  A stopped run still yields an ExperimentResult whose
    /// curves are bit-identical prefixes of the unbounded run's;
    /// ExperimentResult::interruption says which stage stopped and how far
    /// it got.  When no deadline is set, the DLPROJ_DEADLINE_MS environment
    /// variable (milliseconds) supplies a process-wide default.
    support::RunBudget budget;
    /// Static-analysis gate (src/lint): prepare() lints the circuit and
    /// the defect rule deck, generate_tests() cross-validates the
    /// collapsed fault list — all before any expensive work.  Errors throw
    /// lint::LintError and cache a diagnostics-carrying ExperimentResult
    /// (fit()/run() return it); warnings are recorded on
    /// ExperimentResult::lint and counted through src/obs (lint.errors /
    /// lint.warnings / lint.infos).  DLPROJ_LINT=0/off disables the gate
    /// process-wide when this flag is left true.
    bool lint_enabled = true;
    lint::LintOptions lint;  ///< suppression string + check thresholds
    /// Static untestability analysis (src/analysis): when true, an
    /// analyze() stage between prepare() and generate_tests() runs the
    /// implication-based untestable-fault identifier over the collapsed
    /// stuck-at universe.  Proven faults are settled Redundant upfront in
    /// ATPG (no PODEM targeting, no simulation), so t_curve becomes the
    /// testability-corrected curve; the uncorrected curve and its fit are
    /// reported alongside (t_curve_raw / fit_raw / dl_vs_t_raw) to expose
    /// the paper's silent bias.  DLPROJ_ANALYSIS=0/off disables the stage
    /// process-wide when this flag is left true.
    bool analysis = false;
    /// Knobs for the analysis stage (its budget is overridden by `budget`).
    analysis::AnalysisOptions analysis_options;
    /// Defect-count statistics backend for the DL/yield projections
    /// (model/defect_stats_model.h).  Default Poisson — exactly the paper.
    /// A non-Poisson backend set here overrides any cluster_* directives
    /// carried by the rules deck (`defects.clustering`); when left Poisson
    /// the deck's clustering applies.  The backend changes only the fit
    /// stage: weight scaling to target_yield stays Poisson-based either
    /// way, so the prepared design, test set and simulation artifacts are
    /// backend-independent (and cache-shareable across backends).
    model::DefectStatsModel defect_stats;
};

/// A coverage-vs-test-length curve: values[k-1] = coverage after k vectors.
/// One value type for all four measures (T, theta, Gamma, theta_IDDQ).
struct CoverageCurve {
    std::vector<double> values;

    CoverageCurve() = default;
    explicit CoverageCurve(std::vector<double> v) : values(std::move(v)) {}

    std::size_t size() const { return values.size(); }
    bool empty() const { return values.empty(); }
    double operator[](std::size_t i) const { return values[i]; }
    /// Coverage after the full sequence (0 if no vectors were applied).
    double final() const { return values.empty() ? 0.0 : values.back(); }
};

struct ExperimentResult {
    /// Record of a budget stop: which stage ran out, why, and how far it
    /// got (units are stage-specific: target faults for "atpg", vectors
    /// for "switch-sim"; stage "lint" with reason LintFailed means static
    /// analysis rejected the inputs before anything ran).  Everything in
    /// the result reflects the completed prefix; absent when the run
    /// completed naturally.
    struct Interruption {
        std::string stage;
        support::StopReason reason = support::StopReason::None;
        std::size_t completed = 0;
        std::size_t total = 0;
    };

    // Workload facts.
    std::size_t mapped_gates = 0;
    std::size_t stuck_faults = 0;       ///< collapsed stuck-at universe
    std::size_t realistic_faults = 0;   ///< extracted fault list
    std::size_t transistors = 0;
    int vector_count = 0;
    int random_vectors = 0;
    double yield = 1.0;                 ///< after scaling
    double raw_total_weight = 0.0;      ///< before scaling
    std::int64_t die_area = 0;
    std::map<std::string, double> weight_by_class;
    std::vector<double> fault_weights;  ///< per realistic fault (scaled)
    /// Per realistic fault (parallel to fault_weights): 1-based index of
    /// the first vector whose static response detects the fault, -1 if the
    /// whole sequence never does.  Copied from the simulate() stage so
    /// wafer-level Monte Carlo studies can rebuild exact per-fault
    /// verdicts at any truncated test length k ("detected within k"
    /// means 1 <= first_detected_at[i] <= k).
    std::vector<int> first_detected_at;
    /// Same convention for IDDQ detection (-1 for opens: no current
    /// signature).
    std::vector<int> iddq_detected_at;

    // Coverage curves, index k-1 = after k vectors.
    CoverageCurve t_curve;      ///< stuck-at T(k); testability-corrected
                                ///< when the analysis stage ran
    /// Uncorrected stuck-at coverage detected / |universe| (no redundancy
    /// exclusion — the paper's silent bias).  Only computed when the
    /// analysis stage ran; empty otherwise.
    CoverageCurve t_curve_raw;
    CoverageCurve theta_curve;  ///< weighted realistic theta(k)
    CoverageCurve gamma_curve;  ///< unweighted realistic Gamma(k)
    /// theta(k) when static voltage testing is complemented by IDDQ
    /// measurements (the paper's zero-defect recommendation).
    CoverageCurve theta_iddq_curve;

    // Defect-level points (T(k), DL(theta(k))) and (Gamma(k), DL(theta(k))).
    std::vector<model::FalloutPoint> dl_vs_t;
    std::vector<model::FalloutPoint> dl_vs_gamma;
    /// DL(theta(k)) against the uncorrected T(k) (analysis stage only).
    std::vector<model::FalloutPoint> dl_vs_t_raw;

    // Fits.
    model::ProposedFit fit;           ///< (R, theta_max) of eq (11)
    /// Eq (11) fit against the uncorrected curve (analysis stage only);
    /// comparing fit_raw.R to fit.R quantifies the redundancy bias.
    model::ProposedFit fit_raw;
    model::CoverageLaw t_law;         ///< fitted stuck-at susceptibility
    model::CoverageLaw theta_law;     ///< fitted realistic susceptibility

    /// Faults proven untestable by the analysis stage (0 when it did not
    /// run), plus the stage's work counters.
    std::size_t untestable_faults = 0;
    analysis::AnalysisStats analysis_stats;

    /// The defect-statistics backend the projections below used:
    /// options.defect_stats when non-Poisson, else the rules deck's
    /// clustering, else Poisson.
    model::DefectStatsModel defect_stats;
    /// Yield under the backend, Y = E[e^-Lambda] at the scaled total
    /// weight (bit-identical to `yield` for the Poisson backend).
    double stat_yield = 1.0;
    /// Clustered DL(theta(k)) against T(k) under a non-Poisson backend
    /// (empty for Poisson — dl_vs_t already is the Poisson projection).
    /// Same sample indices as dl_vs_t, so the two are directly
    /// comparable point by point.
    std::vector<model::FalloutPoint> dl_vs_t_clustered;
    /// Joint (R, theta_max, alpha) fit of the clustered eq (11) to
    /// dl_vs_t_clustered (non-Poisson backends only; a self-consistency
    /// check that the clustered fitter recovers the generating shape).
    model::ClusteredFit fit_clustered;

    /// n-detection quality of the stuck-at test set, graded against the
    /// options.atpg.ndetect target over testable (non-redundant) faults
    /// (Pomeranz & Reddy worst/average case; trivial at the default n=1).
    model::NDetectProfile ndetect;

    /// Static-analysis findings for the inputs this result was computed
    /// from (empty when the lint gate is disabled).  A lint failure leaves
    /// everything else in the result empty and sets interruption to stage
    /// "lint".
    lint::LintReport lint;

    /// Set when a budget stopped the run early; fits cover the completed
    /// prefix of the curves.
    std::optional<Interruption> interruption;
};

/// Staged experiment pipeline with per-stage artifact caching.
///
/// Stages form a dependency chain; calling a later stage runs the earlier
/// ones on demand:
///   prepare()        techmap -> layout -> switch netlist -> extraction
///   analyze()        static implication analysis -> untestability marks
///                    (optional; run by generate_tests() when
///                    options().analysis is set)
///   generate_tests() collapsed stuck-at universe -> ATPG vectors -> T(k)
///   simulate()       switch-level fault simulation -> theta/Gamma curves
///   fit()            DL points, eq (11) and coverage-law fits -> result
///
/// For sweeps, edit options() and invalidate the first stage whose inputs
/// changed (later stages are dropped automatically); everything upstream is
/// reused.  E.g. a defect-statistics sweep keeps the layout and the ATPG
/// test set and re-runs only extraction + simulation + fit per point.
///
/// Thread-safety: a runner is single-driver — exactly one thread calls the
/// stage methods / options() / invalidate_*(); the returned references are
/// invalidated by the matching invalidate_*() call.  The two thread-safe
/// entry points for *other* threads are options().budget.cancel.request()
/// (cooperative stop at the next unit boundary) and the progress callback,
/// which is invoked on the driving thread but may relay to anything.
///
/// Determinism: for fixed options (including parallel.threads — see the
/// prefix contract in support/cancel.h), every artifact is bit-identical
/// run to run; an interrupted run's artifacts are bit-identical prefixes
/// of the unbounded run's.
///
/// Telemetry: each stage that actually runs records a span
/// (flow.prepare/generate_tests/simulate/fit, with techmap/layout/extract
/// children under prepare) and flow.<stage>.cache_hit/cache_miss counters;
/// budget stops annotate the active stage span (src/obs/telemetry.h).
class ExperimentRunner {
public:
    explicit ExperimentRunner(netlist::Circuit circuit,
                              ExperimentOptions options = {});

    struct PreparedDesign {
        netlist::Circuit mapped;
        layout::ChipLayout chip;
        switchsim::SwitchNetlist swnet;
        extract::ExtractionResult extraction;  ///< weights yield-scaled
        double yield = 1.0;
        double raw_total_weight = 0.0;
        std::map<std::string, double> weight_by_class;  ///< pre-scaling
    };
    struct AnalysisData {
        std::vector<gatesim::StuckAtFault> stuck;  ///< collapsed universe
        std::vector<std::uint8_t> untestable;  ///< parallel marks
        std::vector<analysis::UntestableProof> proofs;
        analysis::AnalysisStats stats;
        /// Budget outcome: marks cover the exact pivot prefix the stage
        /// completed (stats.pivots_done of stats.pivots_total).
        support::StopReason stop = support::StopReason::None;
    };
    struct TestSet {
        std::vector<gatesim::StuckAtFault> stuck;  ///< collapsed universe
        atpg::TestGenResult tests;
        CoverageCurve t_curve;  ///< corrected when analysis marks were used
        CoverageCurve t_curve_raw;  ///< uncorrected; empty unless analysis
    };
    struct SimulationData {
        CoverageCurve theta_curve;
        CoverageCurve gamma_curve;
        CoverageCurve theta_iddq_curve;
        std::vector<int> first_detected_at;  ///< per realistic fault
        std::vector<int> iddq_detected_at;
        /// Budget outcome: vectors_done of vectors_total were simulated;
        /// the curves have vectors_done entries.
        support::StopReason stop = support::StopReason::None;
        std::size_t vectors_done = 0;
        std::size_t vectors_total = 0;
    };

    const PreparedDesign& prepare();
    /// Static untestability analysis over the collapsed universe of the
    /// mapped circuit.  generate_tests() runs it on demand when
    /// options().analysis is set; calling it directly always analyzes.
    const AnalysisData& analyze();
    const TestSet& generate_tests();
    const SimulationData& simulate();
    const ExperimentResult& fit();
    /// All stages; equivalent to fit().
    const ExperimentResult& run() { return fit(); }

    // External-cache seeding (src/campaign): hand this runner a stage
    // artifact computed by an identical configuration in an earlier
    // process, so the corresponding stage is skipped.  The runner trusts
    // the caller to match artifact and configuration — the campaign store
    // guarantees it by content-addressing artifacts with a hash of every
    // input — and the artifact counts as a cache hit for the stage's
    // flow.*.cache_hit counter.  Each call drops all downstream artifacts.
    /// Seeds the collapsed stuck-at universe; generate_tests() will skip
    /// the collapse but still run ATPG (and, when the lint gate is on,
    /// still cross-validate the injected list against the circuit).
    void inject_collapsed_faults(std::vector<gatesim::StuckAtFault> stuck);
    /// Seeds the analysis artifact (collapsed universe + untestability
    /// marks); generate_tests() will consume the marks without re-running
    /// the implication engine.
    void inject_analysis(AnalysisData analysis);
    /// Seeds the whole test-generation artifact (fault list, vectors,
    /// T(k)).  The faults lint sweep is not re-run: the artifact was
    /// linted when first computed from the same inputs.
    void inject_tests(TestSet tests);
    /// Seeds the switch-level simulation artifact (theta/Gamma curves and
    /// detection tables).
    void inject_simulation(SimulationData sim);

    /// Mutable options for sweeps; pair edits with the matching
    /// invalidate_*() call.
    ExperimentOptions& options() { return options_; }
    const ExperimentOptions& options() const { return options_; }

    /// Drop cached artifacts after an options edit.  Each call also drops
    /// every stage downstream of the named one.
    void invalidate_all();         ///< techmap/layout options changed
    void invalidate_extraction();  ///< defect stats / extract options
    void invalidate_analysis();    ///< analysis options changed
    void invalidate_tests();       ///< ATPG options changed
    void invalidate_simulation();  ///< sim params / weighted / parallel

    /// Observer for stage transitions and long-run simulation progress.
    void set_progress(ProgressFn progress) { progress_ = std::move(progress); }

    /// Merged static-analysis findings gathered so far (circuit + rules
    /// sweeps from prepare(), fault sweep from generate_tests()).  Valid
    /// after the corresponding stage ran — including after it threw
    /// lint::LintError.
    lint::LintReport lint_report() const;

private:
    void report(std::string_view stage, std::size_t done, std::size_t total);
    /// Runs the prepare-stage lint sweeps (circuit when `circuit_sweep`,
    /// rules always); throws lint::LintError on error findings after
    /// caching a diagnostics-only result_.
    void run_lint_gate(bool circuit_sweep);
    /// Caches the diagnostics-carrying failure result and throws.
    [[noreturn]] void fail_lint();

    netlist::Circuit circuit_;
    ExperimentOptions options_;
    ProgressFn progress_;

    /// Cache-injected collapsed fault universe (inject_collapsed_faults);
    /// used by generate_tests() in place of the collapse.
    std::optional<std::vector<gatesim::StuckAtFault>> injected_stuck_;
    std::optional<PreparedDesign> prepared_;
    bool extraction_dirty_ = true;  ///< prepared_'s extraction needs redo
    std::optional<AnalysisData> analysis_;
    std::optional<TestSet> tests_;
    std::optional<SimulationData> sim_data_;
    std::optional<ExperimentResult> result_;

    // Per-artifact lint findings; reset by the matching invalidate_*().
    std::optional<lint::LintReport> circuit_lint_;
    std::optional<lint::LintReport> rules_lint_;
    std::optional<lint::LintReport> faults_lint_;
};

/// Runs the full experiment on a circuit in one call.  Deterministic in
/// options (including options.parallel.threads).
ExperimentResult run_experiment(const netlist::Circuit& circuit,
                                const ExperimentOptions& options = {});

/// Maps extracted faults onto the switch-level fault model.
std::vector<switchsim::WeightedFault> to_switch_faults(
    const extract::ExtractionResult& extraction,
    const layout::ChipLayout& chip, const switchsim::SwitchNetlist& net);

}  // namespace dlp::flow
