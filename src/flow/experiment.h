// The paper's end-to-end experiment as one call:
//   circuit -> techmap -> {stuck-at ATPG, layout -> fault extraction ->
//   switch-level fault simulation} -> T(k), theta(k), Gamma(k) ->
//   DL curves -> model fit (R, theta_max).
#pragma once

#include "atpg/generate.h"
#include "extract/extractor.h"
#include "layout/place_route.h"
#include "model/coverage_laws.h"
#include "model/fit.h"
#include "netlist/techmap.h"
#include "switchsim/switch_fault_sim.h"

namespace dlp::flow {

struct ExperimentOptions {
    double target_yield = 0.75;  ///< scale weights to this Y (0 = no scaling)
    atpg::TestGenOptions atpg;
    extract::DefectStatistics defects =
        extract::DefectStatistics::cmos_bridging_dominant();
    extract::ExtractOptions extract;
    layout::LayoutOptions layout;
    netlist::TechmapOptions techmap;
    switchsim::SimParams sim;  ///< switch-level electrical parameters
    bool weighted = true;  ///< false: ablation, all realistic faults equal
};

struct ExperimentResult {
    // Workload facts.
    std::size_t mapped_gates = 0;
    std::size_t stuck_faults = 0;       ///< collapsed stuck-at universe
    std::size_t realistic_faults = 0;   ///< extracted fault list
    std::size_t transistors = 0;
    int vector_count = 0;
    int random_vectors = 0;
    double yield = 1.0;                 ///< after scaling
    double raw_total_weight = 0.0;      ///< before scaling
    std::int64_t die_area = 0;
    std::map<std::string, double> weight_by_class;
    std::vector<double> fault_weights;  ///< per realistic fault (scaled)

    // Coverage curves, index k-1 = after k vectors.
    std::vector<double> t_curve;      ///< stuck-at T(k)
    std::vector<double> theta_curve;  ///< weighted realistic theta(k)
    std::vector<double> gamma_curve;  ///< unweighted realistic Gamma(k)
    /// theta(k) when static voltage testing is complemented by IDDQ
    /// measurements (the paper's zero-defect recommendation).
    std::vector<double> theta_iddq_curve;

    // Defect-level points (T(k), DL(theta(k))) and (Gamma(k), DL(theta(k))).
    std::vector<model::FalloutPoint> dl_vs_t;
    std::vector<model::FalloutPoint> dl_vs_gamma;

    // Fits.
    model::ProposedFit fit;           ///< (R, theta_max) of eq (11)
    model::CoverageLaw t_law;         ///< fitted stuck-at susceptibility
    model::CoverageLaw theta_law;     ///< fitted realistic susceptibility

    double final_t() const { return t_curve.empty() ? 0.0 : t_curve.back(); }
    double final_theta() const {
        return theta_curve.empty() ? 0.0 : theta_curve.back();
    }
    double final_gamma() const {
        return gamma_curve.empty() ? 0.0 : gamma_curve.back();
    }
    double final_theta_iddq() const {
        return theta_iddq_curve.empty() ? 0.0 : theta_iddq_curve.back();
    }
};

/// Runs the full experiment on a circuit.  Deterministic in options.
ExperimentResult run_experiment(const netlist::Circuit& circuit,
                                const ExperimentOptions& options = {});

/// Maps extracted faults onto the switch-level fault model.
std::vector<switchsim::WeightedFault> to_switch_faults(
    const extract::ExtractionResult& extraction,
    const layout::ChipLayout& chip, const switchsim::SwitchNetlist& net);

}  // namespace dlp::flow
