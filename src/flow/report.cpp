#include "flow/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "model/dl_models.h"
#include "model/stats.h"

namespace dlp::flow {

std::string curves_csv(const ExperimentResult& result) {
    std::ostringstream out;
    out << "k,T,theta,gamma,dl_ppm,wb_ppm,fit_ppm\n";
    const model::ProposedModel fit{result.yield, result.fit.r,
                                   result.fit.theta_max};
    // A budget-stopped run can leave the curves at different lengths (e.g.
    // vectors generated but never switch-simulated); emit the common prefix.
    const size_t rows = std::min({result.t_curve.size(),
                                  result.theta_curve.size(),
                                  result.gamma_curve.size()});
    for (size_t i = 0; i < rows; ++i) {
        const double t = result.t_curve[i];
        const double theta = result.theta_curve[i];
        out << (i + 1) << ',' << t << ',' << theta << ','
            << result.gamma_curve[i] << ','
            << model::to_ppm(model::weighted_dl(result.yield, theta)) << ','
            << model::to_ppm(model::williams_brown_dl(result.yield, t)) << ','
            << model::to_ppm(fit.dl(t)) << '\n';
    }
    return out.str();
}

std::string weight_histogram_csv(const ExperimentResult& result, int bins) {
    std::ostringstream out;
    out << "w_lo,w_hi,count\n";
    if (result.fault_weights.empty()) return out.str();
    const auto [lo, hi] = std::minmax_element(result.fault_weights.begin(),
                                              result.fault_weights.end());
    model::LogHistogram hist(*lo * 0.99, *hi * 1.01, bins);
    hist.add_all(result.fault_weights);
    for (int b = 0; b < hist.bin_count(); ++b)
        out << hist.bin_lo(b) << ',' << hist.bin_hi(b) << ',' << hist.count(b)
            << '\n';
    return out.str();
}

std::string summary_text(const ExperimentResult& result) {
    std::ostringstream out;
    out << "gates=" << result.mapped_gates
        << " transistors=" << result.transistors
        << " die_area=" << result.die_area << " lambda^2\n";
    out << "stuck_faults=" << result.stuck_faults
        << " realistic_faults=" << result.realistic_faults
        << " vectors=" << result.vector_count << " (" << result.random_vectors
        << " random)\n";
    out << "yield=" << result.yield << " (raw total weight "
        << result.raw_total_weight << ")\n";
    out << "T_end=" << result.t_curve.final()
        << " theta_end=" << result.theta_curve.final()
        << " gamma_end=" << result.gamma_curve.final() << "\n";
    out << "fit: R=" << result.fit.r << " theta_max=" << result.fit.theta_max
        << " (log-DL rms " << result.fit.rms_error << ")\n";
    const model::ProposedModel m{result.yield, result.fit.r,
                                 result.fit.theta_max};
    out << "residual DL floor=" << model::to_ppm(m.residual_dl()) << " ppm\n";
    out << "weight by mechanism:\n";
    for (const auto& [cls, w] : result.weight_by_class)
        out << "  " << cls << " " << 100.0 * w / result.raw_total_weight
            << "%\n";
    return out.str();
}

void write_file(const std::string& path, const std::string& contents) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    f << contents;
    if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace dlp::flow
