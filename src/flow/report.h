// Report emission for experiment results: CSV curves (gnuplot/pandas
// friendly) and a human-readable summary.
#pragma once

#include <string>

#include "flow/experiment.h"

namespace dlp::flow {

/// CSV with one row per test vector:
/// k,T,theta,gamma,dl_ppm,wb_ppm,fit_ppm
std::string curves_csv(const ExperimentResult& result);

/// CSV of the fault-weight histogram (log bins): lo,hi,count.
std::string weight_histogram_csv(const ExperimentResult& result,
                                 int bins = 16);

/// Multi-line human-readable summary of the experiment.
std::string summary_text(const ExperimentResult& result);

/// Writes a string to a file; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace dlp::flow
