// Die-level Monte-Carlo validation of the defect-level equations.
//
// The paper derives DL = 1 - Y^(1-theta) (eq. 3) analytically from Poisson
// statistics over the weighted fault list.  Here we simulate actual dies:
// each die draws a Poisson number of defects (mean = total fault weight),
// each defect lands on fault j with probability w_j / sum(w); the die fails
// the test iff any of its defects is test-detected.  The observed shipped
// defect level among passing dies must match eq. (3), and with a gamma
// die-to-die rate (clustering alpha) it must match the negative-binomial
// generalization in model/planning.h.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/defect_stats_model.h"

namespace dlp::flow {

struct WaferOptions {
    long dies = 200000;
    std::uint64_t seed = 1;
    /// 0 = Poisson; > 0 = gamma-mixed (Stapper clustering parameter).
    /// Kept for back-compat; equivalent to stats = negbin:alpha but with
    /// its own (stable) RNG call sequence.
    double clustering_alpha = 0.0;
    /// Defect-statistics backend to sample from
    /// (model/defect_stats_model.h).  Poisson (the default) preserves the
    /// legacy behaviour above bit for bit; a non-Poisson backend takes
    /// precedence over clustering_alpha.  Hierarchical backends draw a
    /// shared gamma factor per wafer (wafer_alpha), one per die
    /// (die_alpha) and one per region per die, exactly the composition
    /// DefectStatsModel::pass_probability integrates in closed form — the
    /// simulated marginals must match the projections within sampling
    /// error.
    model::DefectStatsModel stats;
    /// Dies sharing one wafer-level gamma factor (hierarchical backends).
    /// <= 0 means every die is its own wafer: single-die marginals —
    /// yield, DL — are unaffected by the grouping (only cross-die
    /// correlation changes), so this is the variance-friendly default.
    long dies_per_wafer = 0;
    /// Record the sampled per-die defect count in
    /// WaferResult::die_defects (for dispersion fitting; off by default
    /// to keep large runs allocation-free).
    bool record_die_counts = false;
};

struct WaferResult {
    long dies = 0;
    long defect_free = 0;
    long passing = 0;           ///< dies the test ships
    long shipped_defective = 0; ///< passing dies with an undetected defect
    /// Per-die sampled defect counts (only when
    /// WaferOptions::record_die_counts; empty otherwise).
    std::vector<long> die_defects;

    double observed_yield() const {
        return dies == 0 ? 0.0
                         : static_cast<double>(defect_free) /
                               static_cast<double>(dies);
    }
    double observed_dl() const {
        return passing == 0 ? 0.0
                            : static_cast<double>(shipped_defective) /
                                  static_cast<double>(passing);
    }
};

/// Simulates dies against a weighted fault list with per-fault detection
/// verdicts (true = the test catches that fault).
WaferResult simulate_wafer(std::span<const double> weights,
                           std::span<const bool> detected,
                           const WaferOptions& options = {});

}  // namespace dlp::flow
