// The campaign projection service: a long-lived daemon that accepts
// concurrent projection/campaign requests over the length-prefixed JSON
// protocol (protocol.h) and executes them on the campaign runner with a
// per-request RunBudget.
//
// Robustness model:
//   * Admission control — accepted connections wait in a bounded queue;
//     when it is full (or the service is draining) the request is shed
//     immediately with a retry_after_ms hint instead of queueing without
//     bound.  Shedding costs one small frame; the expensive work never
//     starts.
//   * Deadlines — every request runs under a RunBudget whose deadline
//     comes from its envelope (clamped by the server's max); a watchdog
//     thread additionally trips the cancel token of any run that outlives
//     its deadline, so even code paths between cooperative checks get
//     reined in.  Over-deadline requests answer "cancelled" with the
//     exact-prefix partial results the budget contract guarantees.
//   * Crash safety — artifact-store commits are journaled (store.h);
//     start() replays the journal and self-heals before accepting work,
//     so a SIGKILLed predecessor leaves at most a quarantined object and
//     a recomputation, never a wrong answer.
//   * Graceful drain — stop() stops accepting, sheds the queued backlog,
//     gives in-flight runs drain_ms to finish (their store commits are
//     per-stage, so even a cancelled run checkpoints), then trips their
//     cancel tokens and joins every thread.
//   * Slow/byzantine peers — all socket I/O is timeout-bounded (wire.h);
//     a progress write that fails cancels the run (the client is gone,
//     the work is wasted).
//
// Telemetry: service.accepted / shed / completed / errors /
// deadline_cancelled / replays counters and a service.queue_depth gauge.
//
// Thread-safety: start()/stop() are for the owning thread;
// stats()/request_shutdown()/wait_shutdown_requested() are safe from any
// thread.  The class is also used in-process by the soak tests — nothing
// here touches signals or global state beyond src/obs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/store.h"
#include "service/protocol.h"
#include "service/wire.h"
#include "support/cancel.h"

namespace dlp::service {

struct ServiceConfig {
    std::string socket_path;
    int workers = 2;              ///< executor threads
    std::size_t queue_max = 16;   ///< admission-queue bound
    long long default_deadline_ms = 0;  ///< for envelopes without one (0 = none)
    long long max_deadline_ms = 0;      ///< clamp on envelope deadlines (0 = none)
    long long retry_after_ms = 50;      ///< shed-reply backpressure hint
    int io_timeout_ms = 5000;     ///< per-frame read/write bound
    long long drain_ms = 2000;    ///< grace for in-flight work in stop()
    std::string cache_dir;        ///< shared artifact store ("" = none)
    std::string engine;           ///< default fault-sim engine override
    int cell_threads = 0;         ///< per-run worker threads (0 = default)
    std::size_t idempotency_capacity = 256;  ///< replay-cache bound
};

/// Config defaults from the DLPROJ_SERVE_* environment knobs (hardened
/// parsing — garbage values throw support::EnvError) on top of DLPROJ_CACHE.
ServiceConfig config_from_env();

/// A stats() snapshot; mirrored by the `stats` op's reply body.
struct ServiceStats {
    long long accepted = 0;    ///< connections admitted to the queue
    long long completed = 0;   ///< requests answered (any status)
    long long shed = 0;        ///< requests rejected by admission control
    long long errors = 0;      ///< protocol/transport/request failures
    long long deadline_cancelled = 0;  ///< watchdog-tripped runs
    long long replays = 0;     ///< idempotency-cache replays
    std::size_t queue_depth = 0;
    std::size_t in_flight = 0;
    bool draining = false;
};

class Service {
public:
    explicit Service(ServiceConfig config);
    ~Service();  ///< stop()s if still running

    /// Recovers the artifact store, binds the socket, starts the
    /// acceptor/worker/watchdog threads.  Throws on bind failure.
    void start();

    /// Graceful drain; idempotent.  See the file comment.
    void stop();

    bool running() const;
    ServiceStats stats() const;
    const ServiceConfig& config() const { return config_; }
    /// The store-recovery outcome from start().
    const campaign::RecoveryReport& recovery() const { return recovery_; }

    /// `shutdown` op support: flags a shutdown request and wakes
    /// wait_shutdown_requested().  The daemon's main thread then calls
    /// stop() — a worker must not join itself.
    void request_shutdown();
    /// Blocks until request_shutdown() (returns true) or stop() (false).
    bool wait_shutdown_requested();

private:
    struct InFlight {
        support::CancelToken cancel;
        support::Deadline deadline;
        bool fired = false;  ///< watchdog already tripped this run
    };

    void accept_loop();
    void worker_loop();
    void watchdog_loop();
    void handle_connection(Fd conn);
    void execute_run(const Request& request, int fd);
    void run_linger(const Request& request, int fd);
    void shed(int fd, const std::string& id, std::string_view why);
    void send_result(int fd, const std::string& payload);
    std::string stats_body() const;
    void set_queue_gauge(std::size_t depth);

    ServiceConfig config_;
    campaign::RecoveryReport recovery_;

    Fd listen_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;      ///< workers: queue / stop
    std::condition_variable idle_cv_;      ///< stop(): drain progress
    std::condition_variable shutdown_cv_;  ///< `shutdown` op relay
    std::deque<Fd> queue_;
    bool running_ = false;
    bool draining_ = false;
    bool stop_workers_ = false;
    bool shutdown_requested_ = false;
    std::size_t in_flight_ = 0;
    std::uint64_t next_run_id_ = 0;
    std::map<std::uint64_t, InFlight> inflight_runs_;
    /// Idempotency replay cache: completed responses by key, FIFO-bounded,
    /// plus the keys currently executing (duplicates of those shed).
    std::map<std::string, std::string> idem_done_;
    std::deque<std::string> idem_order_;
    std::set<std::string> idem_running_;

    std::thread acceptor_;
    std::thread watchdog_;
    std::vector<std::thread> workers_;

    // Monotonic stats (lock-free reads for stats()).
    std::atomic<long long> accepted_{0};
    std::atomic<long long> completed_{0};
    std::atomic<long long> shed_{0};
    std::atomic<long long> errors_{0};
    std::atomic<long long> deadline_cancelled_{0};
    std::atomic<long long> replays_{0};
};

}  // namespace dlp::service
