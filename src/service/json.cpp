#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dlp::service {

Json Json::boolean(bool b) {
    Json j;
    j.type_ = Type::Bool;
    j.bool_ = b;
    return j;
}

Json Json::number(double v) {
    Json j;
    j.type_ = Type::Number;
    j.num_ = v;
    return j;
}

Json Json::number(long long v) { return number(static_cast<double>(v)); }

Json Json::string(std::string s) {
    Json j;
    j.type_ = Type::String;
    j.str_ = std::move(s);
    return j;
}

Json Json::array() {
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json Json::object() {
    Json j;
    j.type_ = Type::Object;
    return j;
}

namespace {
[[noreturn]] void type_error(const char* want) {
    throw std::runtime_error(std::string("json: value is not ") + want);
}
}  // namespace

bool Json::as_bool() const {
    if (type_ != Type::Bool) type_error("a bool");
    return bool_;
}

double Json::as_number() const {
    if (type_ != Type::Number) type_error("a number");
    return num_;
}

long long Json::as_int() const {
    const double v = as_number();
    if (!std::isfinite(v)) type_error("a finite integer");
    return static_cast<long long>(v);
}

const std::string& Json::as_string() const {
    if (type_ != Type::String) type_error("a string");
    return str_;
}

const std::vector<Json>& Json::items() const {
    if (type_ != Type::Array) type_error("an array");
    return items_;
}

const std::vector<Json::Member>& Json::members() const {
    if (type_ != Type::Object) type_error("an object");
    return members_;
}

const Json* Json::get(std::string_view key) const {
    if (type_ != Type::Object) return nullptr;
    for (const auto& [k, v] : members_)
        if (k == key) return &v;
    return nullptr;
}

void Json::push_back(Json v) {
    if (type_ != Type::Array) type_error("an array");
    items_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
    if (type_ != Type::Object) type_error("an object");
    for (auto& [k, old] : members_)
        if (k == key) {
            old = std::move(v);
            return;
        }
    members_.emplace_back(std::move(key), std::move(v));
}

std::string Json::str_or(std::string_view key, const std::string& fb) const {
    const Json* v = get(key);
    return v && v->type() == Type::String ? v->as_string() : fb;
}

long long Json::int_or(std::string_view key, long long fb) const {
    const Json* v = get(key);
    return v && v->type() == Type::Number ? v->as_int() : fb;
}

bool Json::bool_or(std::string_view key, bool fb) const {
    const Json* v = get(key);
    return v && v->type() == Type::Bool ? v->as_bool() : fb;
}

// ---- parser ---------------------------------------------------------------

namespace {

class Parser {
public:
    Parser(std::string_view text, int max_depth)
        : text_(text), max_depth_(max_depth) {}

    Json parse_document() {
        Json v = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw JsonError(message, pos_);
    }

    char peek() const {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    void expect_word(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word)
            fail("invalid literal");
        pos_ += word.size();
    }

    Json parse_value(int depth) {
        if (depth > max_depth_) fail("nesting too deep");
        skip_ws();
        switch (peek()) {
            case '{': return parse_object(depth);
            case '[': return parse_array(depth);
            case '"': return Json::string(parse_string());
            case 't': expect_word("true"); return Json::boolean(true);
            case 'f': expect_word("false"); return Json::boolean(false);
            case 'n': expect_word("null"); return Json();
            default: return parse_number();
        }
    }

    Json parse_object(int depth) {
        take();  // {
        Json obj = Json::object();
        skip_ws();
        if (peek() == '}') {
            take();
            return obj;
        }
        while (true) {
            skip_ws();
            if (peek() != '"') fail("expected object key");
            std::string key = parse_string();
            skip_ws();
            if (take() != ':') fail("expected ':'");
            obj.set(std::move(key), parse_value(depth + 1));
            skip_ws();
            const char c = take();
            if (c == '}') return obj;
            if (c != ',') fail("expected ',' or '}'");
        }
    }

    Json parse_array(int depth) {
        take();  // [
        Json arr = Json::array();
        skip_ws();
        if (peek() == ']') {
            take();
            return arr;
        }
        while (true) {
            arr.push_back(parse_value(depth + 1));
            skip_ws();
            const char c = take();
            if (c == ']') return arr;
            if (c != ',') fail("expected ',' or ']'");
        }
    }

    unsigned parse_hex4() {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = take();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return v;
    }

    void append_utf8(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    std::string parse_string() {
        take();  // "
        std::string out;
        while (true) {
            const char c = take();
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char e = take();
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned cp = parse_hex4();
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: a low surrogate must follow.
                        if (take() != '\\' || take() != 'u')
                            fail("unpaired surrogate");
                        const unsigned lo = parse_hex4();
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            fail("unpaired surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        fail("unpaired surrogate");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: fail("invalid escape");
            }
        }
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') take();
        if (peek() == '0') {
            take();
        } else if (peek() >= '1' && peek() <= '9') {
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        } else {
            fail("invalid number");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
                fail("invalid number");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
                fail("invalid number");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(v))
            fail("number out of range");
        return Json::number(v);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int max_depth_;
};

}  // namespace

Json parse_json(std::string_view text, int max_depth) {
    return Parser(text, max_depth).parse_document();
}

// ---- writer ---------------------------------------------------------------

std::string json_quote(std::string_view s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned char>(c));
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

void write_value(const Json& v, std::string& out) {
    switch (v.type()) {
        case Json::Type::Null: out += "null"; break;
        case Json::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
        case Json::Type::Number: {
            const double d = v.as_number();
            // Integers (the common envelope case) print exactly; other
            // values get shortest-round-trip via %.17g.
            if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
                char buf[32];
                std::snprintf(buf, sizeof buf, "%lld",
                              static_cast<long long>(d));
                out += buf;
            } else {
                char buf[40];
                std::snprintf(buf, sizeof buf, "%.17g", d);
                out += buf;
            }
            break;
        }
        case Json::Type::String: out += json_quote(v.as_string()); break;
        case Json::Type::Array: {
            out.push_back('[');
            bool first = true;
            for (const Json& item : v.items()) {
                if (!first) out.push_back(',');
                first = false;
                write_value(item, out);
            }
            out.push_back(']');
            break;
        }
        case Json::Type::Object: {
            out.push_back('{');
            bool first = true;
            for (const auto& [key, value] : v.members()) {
                if (!first) out.push_back(',');
                first = false;
                out += json_quote(key);
                out.push_back(':');
                write_value(value, out);
            }
            out.push_back('}');
            break;
        }
    }
}

}  // namespace

std::string write_json(const Json& value) {
    std::string out;
    write_value(value, out);
    return out;
}

}  // namespace dlp::service
