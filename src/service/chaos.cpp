#include "service/chaos.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>

namespace dlp::service {

namespace {

constexpr int kPollMs = 20;
constexpr std::size_t kChunk = 4096;

/// xorshift64* [0, 1) — deterministic per stream, no global state.
double next_uniform(std::uint64_t& state) {
    std::uint64_t x = state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state = x;
    return static_cast<double>((x * 2685821657736338717ull) >> 11) /
           static_cast<double>(1ull << 53);
}

}  // namespace

FaultProxy::FaultProxy(ChaosConfig config) : config_(std::move(config)) {}

FaultProxy::~FaultProxy() { stop(); }

void FaultProxy::start() {
    stopping_.store(false, std::memory_order_relaxed);
    listen_ = unix_listen(config_.listen_path, 64);
    acceptor_ = std::thread([this] { accept_loop(); });
}

void FaultProxy::stop() {
    stopping_.store(true, std::memory_order_relaxed);
    if (acceptor_.joinable()) acceptor_.join();
    listen_.reset();
    std::vector<std::thread> pumps;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pumps.swap(pumps_);
    }
    for (std::thread& t : pumps) t.join();
    if (!config_.listen_path.empty())
        ::unlink(config_.listen_path.c_str());
}

void FaultProxy::accept_loop() {
    std::uint64_t accept_seed =
        0x9E3779B97F4A7C15ull ^ (static_cast<std::uint64_t>(config_.seed));
    while (!stopping_.load(std::memory_order_relaxed)) {
        Fd client = accept_one(listen_.get(), kPollMs);
        if (!client.valid()) continue;
        const std::size_t index =
            connections_.fetch_add(1, std::memory_order_relaxed);
        if (next_uniform(accept_seed) < config_.refuse_p) {
            faults_.fetch_add(1, std::memory_order_relaxed);
            continue;  // closing the fd refuses the conversation
        }
        Fd server;
        try {
            server = unix_connect(config_.target_path);
        } catch (const WireError&) {
            continue;  // daemon down: client sees an immediate close
        }
        const std::uint64_t stream_seed =
            (static_cast<std::uint64_t>(config_.seed) << 32) ^
            (index * 0x9E3779B97F4A7C15ull) ^ 1;
        std::lock_guard<std::mutex> lock(mu_);
        pumps_.emplace_back([this, c = std::move(client),
                             s = std::move(server), stream_seed]() mutable {
            pump(std::move(c), std::move(s), stream_seed);
        });
    }
}

void FaultProxy::pump(Fd client, Fd server, std::uint64_t stream_seed) {
    std::uint64_t rng = stream_seed;
    char buf[kChunk];
    while (!stopping_.load(std::memory_order_relaxed)) {
        struct pollfd fds[2];
        fds[0] = {client.get(), POLLIN, 0};
        fds[1] = {server.get(), POLLIN, 0};
        const int rc = ::poll(fds, 2, kPollMs);
        if (rc < 0) {
            if (errno == EINTR) continue;
            return;
        }
        if (rc == 0) continue;
        for (int side = 0; side < 2; ++side) {
            if (!(fds[side].revents & (POLLIN | POLLHUP | POLLERR))) continue;
            const int from = side == 0 ? client.get() : server.get();
            const int to = side == 0 ? server.get() : client.get();
            const ssize_t n = ::recv(from, buf, sizeof buf, 0);
            if (n <= 0) return;  // EOF or error: sever both directions
            std::size_t forward = static_cast<std::size_t>(n);
            bool sever = false;
            if (next_uniform(rng) < config_.drop_p) {
                faults_.fetch_add(1, std::memory_order_relaxed);
                return;  // drop the chunk and the connection
            }
            if (next_uniform(rng) < config_.truncate_p) {
                faults_.fetch_add(1, std::memory_order_relaxed);
                forward = static_cast<std::size_t>(
                    next_uniform(rng) * static_cast<double>(forward));
                sever = true;
            }
            if (next_uniform(rng) < config_.delay_p) {
                faults_.fetch_add(1, std::memory_order_relaxed);
                const auto ms = static_cast<long long>(
                    next_uniform(rng) *
                    static_cast<double>(config_.delay_ms_max));
                std::this_thread::sleep_for(std::chrono::milliseconds(ms));
            }
            std::size_t sent = 0;
            while (sent < forward) {
                const ssize_t w = ::send(to, buf + sent, forward - sent,
                                         MSG_NOSIGNAL);
                if (w < 0) {
                    if (errno == EINTR) continue;
                    return;
                }
                sent += static_cast<std::size_t>(w);
            }
            if (sever) return;
        }
    }
}

}  // namespace dlp::service
