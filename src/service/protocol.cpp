#include "service/protocol.h"

#include <limits>

#include "model/defect_stats_model.h"

namespace dlp::service {

std::string encode_frame_header(std::uint32_t n) {
    std::string h(kFrameHeader, '\0');
    h[0] = static_cast<char>((n >> 24) & 0xFF);
    h[1] = static_cast<char>((n >> 16) & 0xFF);
    h[2] = static_cast<char>((n >> 8) & 0xFF);
    h[3] = static_cast<char>(n & 0xFF);
    return h;
}

std::uint32_t decode_frame_header(const unsigned char header[kFrameHeader]) {
    const std::uint32_t n = (static_cast<std::uint32_t>(header[0]) << 24) |
                            (static_cast<std::uint32_t>(header[1]) << 16) |
                            (static_cast<std::uint32_t>(header[2]) << 8) |
                            static_cast<std::uint32_t>(header[3]);
    if (n > kMaxFrame)
        throw std::runtime_error("frame length " + std::to_string(n) +
                                 " exceeds the " + std::to_string(kMaxFrame) +
                                 "-byte cap");
    return n;
}

std::string_view op_name(Op op) {
    switch (op) {
        case Op::Ping: return "ping";
        case Op::Stats: return "stats";
        case Op::Project: return "project";
        case Op::Campaign: return "campaign";
        case Op::Shutdown: return "shutdown";
    }
    return "unknown";
}

namespace {

Op parse_op(const std::string& name) {
    if (name == "ping") return Op::Ping;
    if (name == "stats") return Op::Stats;
    if (name == "project") return Op::Project;
    if (name == "campaign") return Op::Campaign;
    if (name == "shutdown") return Op::Shutdown;
    throw ProtocolError("unknown op \"" + name + "\"");
}

long long require_range(const Json& doc, std::string_view key,
                        long long fallback, long long min, long long max) {
    const long long v = doc.int_or(key, fallback);
    if (v < min || v > max)
        throw ProtocolError(std::string(key) + " out of range [" +
                            std::to_string(min) + ", " + std::to_string(max) +
                            "]: " + std::to_string(v));
    return v;
}

}  // namespace

Request parse_request(std::string_view payload) {
    Json doc;
    try {
        doc = parse_json(payload);
    } catch (const JsonError& e) {
        throw ProtocolError(std::string("malformed request: ") + e.what());
    }
    if (doc.type() != Json::Type::Object)
        throw ProtocolError("request must be a JSON object");
    const Json* op = doc.get("op");
    if (op == nullptr || op->type() != Json::Type::String)
        throw ProtocolError("request is missing the \"op\" field");

    constexpr long long kMaxMs = 1ll << 40;  // ~35 years, overflow guard
    Request r;
    r.op = parse_op(op->as_string());
    r.id = doc.str_or("id", "");
    r.idempotency_key = doc.str_or("idempotency_key", "");
    r.deadline_ms = require_range(doc, "deadline_ms", 0, 0, kMaxMs);
    r.max_vectors =
        require_range(doc, "max_vectors", -1, -1, (1ll << 40));
    r.engine = doc.str_or("engine", "");
    r.threads =
        static_cast<int>(require_range(doc, "threads", 0, 0, 256));
    r.progress = doc.bool_or("progress", false);
    r.linger_ms = require_range(doc, "linger_ms", 0, 0, kMaxMs);
    r.spec = doc.str_or("spec", "");
    r.circuit = doc.str_or("circuit", "");
    r.rules = doc.str_or("rules", "");
    r.seed = static_cast<std::uint64_t>(require_range(
        doc, "seed", 1, 0, std::numeric_limits<std::int64_t>::max() >> 12));
    r.ndetect = static_cast<int>(require_range(doc, "ndetect", 0, 0, 64));
    r.analysis = doc.bool_or("analysis", false);
    r.defect_stats = doc.str_or("defect_stats", "");
    if (!r.defect_stats.empty()) {
        try {
            model::parse_defect_stats(r.defect_stats);
        } catch (const std::invalid_argument& e) {
            throw ProtocolError(std::string("bad defect_stats: ") + e.what());
        }
    }

    if (r.op == Op::Campaign && r.spec.empty())
        throw ProtocolError("campaign request is missing \"spec\"");
    if (r.op == Op::Project && (r.circuit.empty() || r.rules.empty()))
        throw ProtocolError(
            "project request needs \"circuit\" and \"rules\"");
    return r;
}

std::string request_json(const Request& r) {
    Json doc = Json::object();
    doc.set("op", Json::string(std::string(op_name(r.op))));
    if (!r.id.empty()) doc.set("id", Json::string(r.id));
    if (!r.idempotency_key.empty())
        doc.set("idempotency_key", Json::string(r.idempotency_key));
    if (r.deadline_ms > 0) doc.set("deadline_ms", Json::number(r.deadline_ms));
    if (r.max_vectors >= 0)
        doc.set("max_vectors", Json::number(r.max_vectors));
    if (!r.engine.empty()) doc.set("engine", Json::string(r.engine));
    if (r.threads > 0)
        doc.set("threads", Json::number(static_cast<long long>(r.threads)));
    if (r.progress) doc.set("progress", Json::boolean(true));
    if (r.linger_ms > 0) doc.set("linger_ms", Json::number(r.linger_ms));
    if (!r.spec.empty()) doc.set("spec", Json::string(r.spec));
    if (!r.circuit.empty()) doc.set("circuit", Json::string(r.circuit));
    if (!r.rules.empty()) doc.set("rules", Json::string(r.rules));
    if (r.seed != 1)
        doc.set("seed",
                Json::number(static_cast<long long>(r.seed)));
    if (r.ndetect > 0)
        doc.set("ndetect", Json::number(static_cast<long long>(r.ndetect)));
    if (r.analysis) doc.set("analysis", Json::boolean(true));
    if (!r.defect_stats.empty())
        doc.set("defect_stats", Json::string(r.defect_stats));
    return write_json(doc);
}

// ---- reply builders -------------------------------------------------------
// Result frames embed the (potentially large) report documents as raw
// pre-rendered JSON rather than re-parsing them into the value model.

namespace {

std::string reply_head(std::string_view event, const std::string& id) {
    std::string out = "{\"event\":" + json_quote(event);
    out += ",\"id\":" + json_quote(id);
    return out;
}

void append_docs(std::string& out, const std::string& body,
                 const std::string& stats) {
    if (!body.empty()) out += ",\"body\":" + body;
    if (!stats.empty()) out += ",\"stats\":" + stats;
}

}  // namespace

std::string progress_json(const std::string& id, std::string_view stage,
                          std::size_t done, std::size_t total) {
    std::string out = reply_head("progress", id);
    out += ",\"stage\":" + json_quote(stage);
    out += ",\"done\":" + std::to_string(done);
    out += ",\"total\":" + std::to_string(total);
    out += "}";
    return out;
}

std::string result_ok_json(const std::string& id, const std::string& body,
                           const std::string& stats) {
    std::string out = reply_head("result", id);
    out += ",\"status\":\"ok\"";
    append_docs(out, body, stats);
    out += "}";
    return out;
}

std::string result_cancelled_json(const std::string& id,
                                  std::string_view stop,
                                  const std::string& body,
                                  const std::string& stats) {
    std::string out = reply_head("result", id);
    out += ",\"status\":\"cancelled\",\"stop\":" + json_quote(stop);
    append_docs(out, body, stats);
    out += "}";
    return out;
}

std::string result_shed_json(const std::string& id, long long retry_after_ms,
                             std::string_view why) {
    std::string out = reply_head("result", id);
    out += ",\"status\":\"shed\",\"retry_after_ms\":" +
           std::to_string(retry_after_ms);
    out += ",\"error\":" + json_quote(why);
    out += "}";
    return out;
}

std::string result_error_json(const std::string& id,
                              const std::string& message) {
    std::string out = reply_head("result", id);
    out += ",\"status\":\"error\",\"error\":" + json_quote(message);
    out += "}";
    return out;
}

Reply parse_reply(std::string_view payload) {
    Json doc;
    try {
        doc = parse_json(payload);
    } catch (const JsonError& e) {
        throw ProtocolError(std::string("malformed reply: ") + e.what());
    }
    if (doc.type() != Json::Type::Object)
        throw ProtocolError("reply must be a JSON object");
    Reply r;
    r.event = doc.str_or("event", "");
    if (r.event != "progress" && r.event != "result")
        throw ProtocolError("reply has no valid \"event\" field");
    r.id = doc.str_or("id", "");
    r.stage = doc.str_or("stage", "");
    r.done = static_cast<std::size_t>(doc.int_or("done", 0));
    r.total = static_cast<std::size_t>(doc.int_or("total", 0));
    r.status = doc.str_or("status", "");
    r.stop = doc.str_or("stop", "");
    r.retry_after_ms = doc.int_or("retry_after_ms", 0);
    r.error = doc.str_or("error", "");
    if (r.event == "result" && r.status.empty())
        throw ProtocolError("result reply is missing \"status\"");
    if (const Json* body = doc.get("body")) r.body = write_json(*body);
    if (const Json* stats = doc.get("stats")) r.stats = write_json(*stats);
    r.raw = std::string(payload);
    return r;
}

}  // namespace dlp::service
