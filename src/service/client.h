// Client side of the campaign projection service: connect, send one
// request, collect progress events and the result — wrapped in a retry
// loop that survives a flaky transport and an overloaded server.
//
// Retry policy:
//   * connect failures and torn replies (WireError mid-stream) retry with
//     exponential backoff + deterministic jitter (support/backoff.h);
//   * "shed" results retry too, honoring the server's retry_after_ms as a
//     floor for the next delay;
//   * "ok" / "cancelled" / "error" results and protocol violations are
//     final — retrying a malformed request cannot fix it.
// Every retried request carries an idempotency key (auto-derived from the
// request content when the caller sets none), so a retry whose
// predecessor actually executed replays the stored response instead of
// re-running the campaign.  Obs counter: service.client.retries.
#pragma once

#include <functional>
#include <string>

#include "service/protocol.h"
#include "support/backoff.h"

namespace dlp::service {

struct ClientOptions {
    std::string socket_path;       ///< daemon unix socket (required)
    int max_attempts = 5;          ///< total tries (first + retries)
    int io_timeout_ms = 30000;     ///< per-frame read/write bound
    support::BackoffOptions backoff;  ///< retry pacing (seeded jitter)
    bool retry_on_shed = true;     ///< false: report shed to the caller
    /// Progress observer (stage, done, total), invoked on the calling
    /// thread as event frames arrive.
    std::function<void(const std::string&, std::size_t, std::size_t)>
        on_progress;
    /// Test seam: invoked with the computed delay instead of sleeping.
    std::function<void(long long)> sleep_fn;
};

struct CallResult {
    /// "ok" | "cancelled" | "shed" | "error" | "unreachable".
    /// "unreachable": every attempt failed at the transport layer.
    std::string status;
    std::string stop;            ///< cancelled: stop reason
    std::string error;           ///< error/unreachable/shed diagnostic
    std::string body;            ///< report document (re-rendered JSON)
    std::string stats;           ///< accounting document
    std::string raw;             ///< verbatim result-frame payload
    long long retry_after_ms = 0;
    int attempts = 0;            ///< connection attempts consumed

    bool ok() const { return status == "ok"; }
};

/// Derives a stable idempotency key from the request content (used when
/// the caller leaves Request::idempotency_key empty, salted per process
/// so two unrelated client processes never collide).
std::string derive_idempotency_key(const Request& request);

/// Executes one request against the service.  Never throws for transport
/// or server-side failures — those come back in CallResult; throws only
/// on caller bugs (empty socket path).
CallResult call_service(Request request, const ClientOptions& options);

}  // namespace dlp::service
