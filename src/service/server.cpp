#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "campaign/report.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "gatesim/engine.h"
#include "model/defect_stats_model.h"
#include "obs/telemetry.h"
#include "support/env.h"

namespace dlp::service {

namespace {

/// Poll cadence for loops that must notice drain/deadline flags promptly
/// without busy-waiting.
constexpr int kAcceptPollMs = 50;
constexpr int kWatchdogPollMs = 20;
constexpr int kLingerSliceMs = 5;

}  // namespace

ServiceConfig config_from_env() {
    ServiceConfig cfg;
    cfg.socket_path = support::env_str("DLPROJ_SERVE_SOCKET");
    cfg.workers = static_cast<int>(
        support::env_int("DLPROJ_SERVE_WORKERS", cfg.workers, 1, 64));
    cfg.queue_max = static_cast<std::size_t>(support::env_int(
        "DLPROJ_SERVE_QUEUE_MAX", static_cast<long long>(cfg.queue_max), 1,
        4096));
    cfg.drain_ms = support::env_int("DLPROJ_SERVE_DRAIN_MS", cfg.drain_ms, 0,
                                    1ll << 40);
    // One knob, two guards: requests without a deadline get this one, and
    // requests asking for more are clamped to it.
    cfg.default_deadline_ms = support::env_int(
        "DLPROJ_SERVE_DEADLINE_MS", cfg.default_deadline_ms, 0, 1ll << 40);
    cfg.max_deadline_ms = cfg.default_deadline_ms;
    cfg.cache_dir = campaign::env_cache_dir();
    return cfg;
}

Service::Service(ServiceConfig config) : config_(std::move(config)) {
    if (config_.workers < 1) config_.workers = 1;
    if (config_.queue_max < 1) config_.queue_max = 1;
}

Service::~Service() { stop(); }

void Service::set_queue_gauge(std::size_t depth) {
    DLP_OBS_GAUGE(g_depth, "service.queue_depth");
    DLP_OBS_SET(g_depth, static_cast<double>(depth));
}

void Service::start() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (running_) return;
        running_ = true;
        draining_ = false;
        stop_workers_ = false;
        shutdown_requested_ = false;
    }
    // Heal the crash window of a SIGKILLed predecessor before any client
    // can race a lookup against a torn object.
    if (!config_.cache_dir.empty())
        recovery_ = campaign::recover_store(config_.cache_dir);
    listen_ = unix_listen(config_.socket_path, 64);
    acceptor_ = std::thread([this] { accept_loop(); });
    watchdog_ = std::thread([this] { watchdog_loop(); });
    workers_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

void Service::stop() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!running_) return;
        draining_ = true;
    }
    shutdown_cv_.notify_all();
    if (acceptor_.joinable()) acceptor_.join();
    listen_.reset();

    // Shed the queued backlog: those clients never started, they can
    // retry against the next incarnation.
    std::deque<Fd> backlog;
    {
        std::lock_guard<std::mutex> lock(mu_);
        backlog.swap(queue_);
        set_queue_gauge(0);
    }
    for (Fd& fd : backlog) shed(fd.get(), "", "draining");
    backlog.clear();

    // Give in-flight runs their grace, then trip every cancel token: the
    // per-stage store commits mean a cancelled run still checkpoints.
    {
        std::unique_lock<std::mutex> lock(mu_);
        idle_cv_.wait_for(lock, std::chrono::milliseconds(config_.drain_ms),
                          [this] { return in_flight_ == 0; });
        for (auto& [id, run] : inflight_runs_) run.cancel.request();
        stop_workers_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    if (watchdog_.joinable()) watchdog_.join();
    if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
    {
        std::lock_guard<std::mutex> lock(mu_);
        running_ = false;
    }
    shutdown_cv_.notify_all();
}

bool Service::running() const {
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
}

ServiceStats Service::stats() const {
    ServiceStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.deadline_cancelled = deadline_cancelled_.load(std::memory_order_relaxed);
    s.replays = replays_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
    s.in_flight = in_flight_;
    s.draining = draining_;
    return s;
}

void Service::request_shutdown() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
}

bool Service::wait_shutdown_requested() {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [this] {
        return shutdown_requested_ || draining_ || !running_;
    });
    return shutdown_requested_;
}

// ---- admission ------------------------------------------------------------

void Service::shed(int fd, const std::string& id, std::string_view why) {
    DLP_OBS_COUNTER(c_shed, "service.shed");
    DLP_OBS_ADD(c_shed, 1);
    shed_.fetch_add(1, std::memory_order_relaxed);
    try {
        // A short timeout: the reply is one small frame; a client too
        // stalled to take it was not going to honor retry-after anyway.
        write_frame(fd, result_shed_json(id, config_.retry_after_ms, why),
                    std::min(config_.io_timeout_ms, 1000));
    } catch (const WireError&) {
        // The peer is gone; shedding it is a no-op.
    }
}

void Service::accept_loop() {
    obs::set_thread_name("svc-accept");
    while (true) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (draining_) return;
        }
        Fd conn = accept_one(listen_.get(), kAcceptPollMs);
        if (!conn.valid()) continue;
        bool admitted = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!draining_ && queue_.size() < config_.queue_max) {
                queue_.push_back(std::move(conn));
                set_queue_gauge(queue_.size());
                admitted = true;
            }
        }
        if (admitted) {
            DLP_OBS_COUNTER(c_acc, "service.accepted");
            DLP_OBS_ADD(c_acc, 1);
            accepted_.fetch_add(1, std::memory_order_relaxed);
            work_cv_.notify_one();
        } else {
            // Queue full or draining: shed before reading the payload —
            // backpressure must stay cheap under overload.
            shed(conn.get(), "", "overloaded");
        }
    }
}

// ---- execution ------------------------------------------------------------

void Service::worker_loop() {
    obs::set_thread_name("svc-worker");
    while (true) {
        Fd conn;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stop_workers_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stop_workers_) return;
                continue;
            }
            conn = std::move(queue_.front());
            queue_.pop_front();
            set_queue_gauge(queue_.size());
            ++in_flight_;
        }
        handle_connection(std::move(conn));
        {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
        }
        idle_cv_.notify_all();
    }
}

void Service::watchdog_loop() {
    obs::set_thread_name("svc-watchdog");
    while (true) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stop_workers_) return;
            for (auto& [id, run] : inflight_runs_) {
                if (run.fired || !run.deadline.expired()) continue;
                // The budget's own cooperative checks normally stop the
                // run first; the watchdog is the backstop for stretches
                // between check points.
                run.cancel.request();
                run.fired = true;
                DLP_OBS_COUNTER(c_dl, "service.deadline_cancelled");
                DLP_OBS_ADD(c_dl, 1);
                deadline_cancelled_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kWatchdogPollMs));
    }
}

void Service::send_result(int fd, const std::string& payload) {
    // Count before the write so a client that reads this reply and
    // immediately asks for stats sees itself included.
    DLP_OBS_COUNTER(c_done, "service.completed");
    DLP_OBS_ADD(c_done, 1);
    completed_.fetch_add(1, std::memory_order_relaxed);
    try {
        write_frame(fd, payload, config_.io_timeout_ms);
    } catch (const WireError&) {
        // The client vanished between request and reply.  The work (and
        // its store commits) stands; an idempotent retry replays it.
    }
}

std::string Service::stats_body() const {
    const ServiceStats s = stats();
    Json doc = Json::object();
    doc.set("accepted", Json::number(s.accepted));
    doc.set("completed", Json::number(s.completed));
    doc.set("shed", Json::number(s.shed));
    doc.set("errors", Json::number(s.errors));
    doc.set("deadline_cancelled", Json::number(s.deadline_cancelled));
    doc.set("replays", Json::number(s.replays));
    doc.set("queue_depth",
            Json::number(static_cast<long long>(s.queue_depth)));
    doc.set("in_flight", Json::number(static_cast<long long>(s.in_flight)));
    doc.set("draining", Json::boolean(s.draining));
    doc.set("workers", Json::number(static_cast<long long>(config_.workers)));
    doc.set("queue_max",
            Json::number(static_cast<long long>(config_.queue_max)));
    Json rec = Json::object();
    rec.set("intents", Json::number(static_cast<long long>(recovery_.intents)));
    rec.set("unpaired",
            Json::number(static_cast<long long>(recovery_.unpaired)));
    rec.set("verified",
            Json::number(static_cast<long long>(recovery_.verified)));
    rec.set("quarantined",
            Json::number(static_cast<long long>(recovery_.quarantined)));
    rec.set("stale_tmps",
            Json::number(static_cast<long long>(recovery_.stale_tmps)));
    doc.set("recovery", std::move(rec));
    return write_json(doc);
}

void Service::handle_connection(Fd conn) {
    std::string payload;
    try {
        if (!read_frame(conn.get(), payload, config_.io_timeout_ms))
            return;  // clean close without a request
    } catch (const WireError&) {
        // Timeout, truncation, oversize length: drop the connection — the
        // protocol's one-request-per-connection shape makes this safe.
        DLP_OBS_COUNTER(c_err, "service.errors");
        DLP_OBS_ADD(c_err, 1);
        errors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Request request;
    try {
        request = parse_request(payload);
    } catch (const ProtocolError& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        send_result(conn.get(), result_error_json("", e.what()));
        return;
    }
    switch (request.op) {
        case Op::Ping:
            run_linger(request, conn.get());
            return;
        case Op::Stats:
            send_result(conn.get(),
                        result_ok_json(request.id, stats_body(), ""));
            return;
        case Op::Shutdown:
            send_result(conn.get(),
                        result_ok_json(request.id, "{\"stopping\":true}", ""));
            request_shutdown();
            return;
        case Op::Project:
        case Op::Campaign:
            execute_run(request, conn.get());
            return;
    }
}

namespace {

support::Deadline make_deadline(const Request& request,
                                const ServiceConfig& cfg) {
    long long ms = request.deadline_ms;
    if (ms <= 0) ms = cfg.default_deadline_ms;
    if (cfg.max_deadline_ms > 0)
        ms = ms > 0 ? std::min(ms, cfg.max_deadline_ms) : cfg.max_deadline_ms;
    return ms > 0 ? support::Deadline::after_ms(ms) : support::Deadline();
}

}  // namespace

void Service::run_linger(const Request& request, int fd) {
    // Diagnostic op: occupy this worker for linger_ms under the normal
    // budget/watchdog regime.  The soak and overload tests use it to
    // create precisely-shaped load.
    support::RunBudget budget;
    budget.deadline = make_deadline(request, config_);
    std::uint64_t run_id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        run_id = ++next_run_id_;
        inflight_runs_[run_id] = {budget.cancel, budget.deadline, false};
    }
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(request.linger_ms);
    support::StopReason stop = support::StopReason::None;
    while (std::chrono::steady_clock::now() < until) {
        stop = budget.check();
        if (stop != support::StopReason::None) break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kLingerSliceMs));
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_runs_.erase(run_id);
    }
    if (stop == support::StopReason::None)
        send_result(fd, result_ok_json(request.id, "{\"pong\":true}", ""));
    else
        send_result(fd, result_cancelled_json(
                            request.id, support::stop_reason_name(stop),
                            "{\"pong\":false}", ""));
}

void Service::execute_run(const Request& request, int fd) {
    // Idempotency: a completed response replays verbatim; a key still
    // executing sheds the duplicate (retrying it would double-execute).
    const std::string& key = request.idempotency_key;
    if (!key.empty()) {
        std::lock_guard<std::mutex> lock(mu_);
        if (const auto it = idem_done_.find(key); it != idem_done_.end()) {
            DLP_OBS_COUNTER(c_rep, "service.replays");
            DLP_OBS_ADD(c_rep, 1);
            replays_.fetch_add(1, std::memory_order_relaxed);
            send_result(fd, it->second);
            return;
        }
        if (!idem_running_.insert(key).second) {
            shed_.fetch_add(1, std::memory_order_relaxed);
            try {
                write_frame(fd,
                            result_shed_json(request.id,
                                             config_.retry_after_ms,
                                             "duplicate in flight"),
                            config_.io_timeout_ms);
            } catch (const WireError&) {
            }
            return;
        }
    }

    support::RunBudget budget;
    budget.deadline = make_deadline(request, config_);
    std::uint64_t run_id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        run_id = ++next_run_id_;
        inflight_runs_[run_id] = {budget.cancel, budget.deadline, false};
    }

    std::string response;
    // Set when a progress write fails: the client is gone, so the run was
    // cancelled *because of the disconnect* — its "cancelled" response
    // must not enter the replay cache, or the client's retry (the whole
    // point of its idempotency key) would replay the failure instead of
    // re-executing.
    auto broken = std::make_shared<bool>(false);
    try {
        campaign::CampaignSpec spec;
        if (request.op == Op::Campaign) {
            spec = campaign::parse_campaign_spec(request.spec);
        } else {
            spec.name = "project";
            spec.circuits = {request.circuit};
            spec.rules = {request.rules};
            spec.seeds = {request.seed};
            if (request.ndetect >= 1) spec.ndetect = {request.ndetect};
            if (request.analysis) spec.analysis = {1};
            if (!request.defect_stats.empty())
                spec.defect_stats = {
                    model::parse_defect_stats(request.defect_stats)
                        .describe()};
        }
        if (request.max_vectors >= 0) spec.max_vectors = request.max_vectors;
        const std::string engine =
            request.engine.empty() ? config_.engine : request.engine;
        if (!engine.empty() && !sim::find_engine(engine))
            throw ProtocolError("unknown engine \"" + engine + "\"");

        campaign::CampaignOptions opt;
        opt.cache_dir = config_.cache_dir;
        opt.use_cache = !config_.cache_dir.empty();
        opt.budget = budget;
        opt.engine = engine;
        opt.parallel.threads =
            request.threads > 0 ? request.threads : config_.cell_threads;
        if (request.progress) {
            // Stream cell-boundary progress.  A failed write means the
            // client is gone: cancel the run rather than compute for
            // nobody (the per-stage store commits are already durable).
            auto cancel = budget.cancel;
            const std::string id = request.id;
            const int timeout = config_.io_timeout_ms;
            opt.progress = [fd, cancel, broken, id, timeout](
                               std::string_view stage, std::size_t done,
                               std::size_t total) mutable {
                if (*broken || stage != "campaign") return;
                try {
                    write_frame(fd, progress_json(id, stage, done, total),
                                timeout);
                } catch (const WireError&) {
                    *broken = true;
                    cancel.request();
                }
            };
        }

        const campaign::CampaignReport report = campaign::run_campaign(spec, opt);
        const std::string body = campaign::report_json(report);
        const std::string stats = campaign::stats_json(report.stats);
        if (report.stats.stop == support::StopReason::None)
            response = result_ok_json(request.id, body, stats);
        else
            response = result_cancelled_json(
                request.id, support::stop_reason_name(report.stats.stop),
                body, stats);
    } catch (const std::exception& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        response = result_error_json(request.id, e.what());
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_runs_.erase(run_id);
        if (!key.empty()) {
            idem_running_.erase(key);
        }
        if (!key.empty() && !*broken) {
            // Bounded FIFO replay cache: the oldest response falls out.
            if (idem_done_.size() >= config_.idempotency_capacity &&
                !idem_order_.empty()) {
                idem_done_.erase(idem_order_.front());
                idem_order_.pop_front();
            }
            if (idem_done_.emplace(key, response).second)
                idem_order_.push_back(key);
        }
    }
    send_result(fd, response);
}

}  // namespace dlp::service
