#include "service/client.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "campaign/store.h"  // fnv1a64/hex64
#include "obs/telemetry.h"
#include "service/wire.h"

namespace dlp::service {

std::string derive_idempotency_key(const Request& request) {
    static std::atomic<std::uint64_t> counter{0};
    // Content hash x process identity: retries of the *same* call share
    // the key; distinct calls (even with identical content) do not,
    // because each call_service() invocation derives exactly once.
    const std::uint64_t content = campaign::fnv1a64(request_json(request));
    const std::uint64_t salt =
        campaign::fnv1a64("pid " + std::to_string(::getpid()) + " n " +
                          std::to_string(counter.fetch_add(1)));
    return "auto-" + campaign::hex64(content ^ salt);
}

namespace {

/// One attempt: connect, send, drain progress frames, return the result
/// reply.  Throws WireError/ProtocolError on transport/protocol failure.
Reply attempt_once(const Request& request, const ClientOptions& options) {
    Fd conn = unix_connect(options.socket_path);
    // A failed request write is not yet a failed attempt: an overloaded
    // server sheds *before reading the payload* and closes, so our write
    // can die on EPIPE while the shed frame (with its retry-after hint)
    // is already sitting in the receive buffer.  Hold the error, try to
    // read anyway, and re-throw only if no reply is there either.
    bool write_failed = false;
    std::string write_error;
    try {
        write_frame(conn.get(), request_json(request), options.io_timeout_ms);
    } catch (const WireError& e) {
        write_failed = true;
        write_error = e.what();
    }
    while (true) {
        std::string payload;
        bool got = false;
        try {
            got = read_frame(conn.get(), payload, options.io_timeout_ms);
        } catch (const WireError&) {
            if (write_failed) throw WireError(write_error);
            throw;
        }
        if (!got) {
            if (write_failed) throw WireError(write_error);
            throw WireError("server closed before sending a result");
        }
        Reply reply = parse_reply(payload);
        if (reply.event == "progress") {
            if (options.on_progress)
                options.on_progress(reply.stage, reply.done, reply.total);
            continue;
        }
        return reply;
    }
}

}  // namespace

CallResult call_service(Request request, const ClientOptions& options) {
    if (options.socket_path.empty())
        throw std::invalid_argument("call_service: empty socket path");
    const bool retryable =
        options.max_attempts > 1 || options.retry_on_shed;
    if (request.idempotency_key.empty() && retryable &&
        (request.op == Op::Project || request.op == Op::Campaign))
        request.idempotency_key = derive_idempotency_key(request);

    DLP_OBS_COUNTER(c_retry, "service.client.retries");
    support::Backoff backoff(options.backoff);
    const int attempts_max = std::max(1, options.max_attempts);
    CallResult result;
    std::string last_error = "no attempt made";
    long long floor_ms = 0;
    for (int attempt = 0; attempt < attempts_max; ++attempt) {
        if (attempt > 0) {
            DLP_OBS_ADD(c_retry, 1);
            const long long delay = backoff.next_ms(floor_ms);
            if (options.sleep_fn)
                options.sleep_fn(delay);
            else
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
        }
        ++result.attempts;
        Reply reply;
        try {
            reply = attempt_once(request, options);
        } catch (const std::exception& e) {
            // Connect refused/absent, timeout, truncated frame, garbage
            // payload: the transport failed, the request may or may not
            // have executed — exactly what the idempotency key is for.
            last_error = e.what();
            floor_ms = 0;
            continue;
        }
        result.status = reply.status;
        result.stop = reply.stop;
        result.error = reply.error;
        result.body = reply.body;
        result.stats = reply.stats;
        result.raw = reply.raw;
        result.retry_after_ms = reply.retry_after_ms;
        if (reply.status == "shed" && options.retry_on_shed) {
            // Honor the server's backpressure hint as a delay floor.
            floor_ms = reply.retry_after_ms;
            last_error = "shed: " + reply.error;
            continue;
        }
        return result;
    }
    if (result.status.empty() || result.status == "shed") {
        if (result.status.empty()) {
            result.status = "unreachable";
            result.error = last_error;
        }
    }
    return result;
}

}  // namespace dlp::service
