// Minimal JSON value model + strict parser/writer for the service
// protocol (protocol.h).
//
// Scope is deliberately small: the request/response envelopes are flat
// objects of scalars plus a few nested arrays, and the daemon must never
// trust a byte a client sent.  The parser is strict RFC 8259 (no
// comments, no trailing commas, UTF-16 escapes decoded to UTF-8 including
// surrogate pairs) with a hard nesting-depth cap, and every failure
// throws JsonError with the byte offset — a fuzzer-friendly contract the
// robustness suite leans on.  Numbers are held as double (the envelope
// carries nothing beyond 2^53).
//
// Object members preserve insertion order, so write_json() output is
// deterministic in construction order.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dlp::service {

class JsonError : public std::runtime_error {
public:
    JsonError(const std::string& message, std::size_t offset)
        : std::runtime_error("json: " + message + " at offset " +
                             std::to_string(offset)),
          offset_(offset) {}
    std::size_t offset() const { return offset_; }

private:
    std::size_t offset_;
};

class Json {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };
    using Member = std::pair<std::string, Json>;

    Json() = default;  // null
    static Json boolean(bool b);
    static Json number(double v);
    static Json number(long long v);
    static Json string(std::string s);
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::Null; }

    // Typed accessors; throw std::runtime_error on a type mismatch.
    bool as_bool() const;
    double as_number() const;
    long long as_int() const;  ///< as_number() truncated; throws on NaN/inf
    const std::string& as_string() const;
    const std::vector<Json>& items() const;        ///< array elements
    const std::vector<Member>& members() const;    ///< object members

    /// Object member lookup; nullptr when absent or not an object.
    const Json* get(std::string_view key) const;

    // Builders (valid on the matching type only).
    void push_back(Json v);                     ///< array append
    void set(std::string key, Json v);          ///< object insert/replace

    // Convenience: member with a scalar default.
    std::string str_or(std::string_view key, const std::string& fb) const;
    long long int_or(std::string_view key, long long fb) const;
    bool bool_or(std::string_view key, bool fb) const;

private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<Member> members_;
};

/// Parses a complete JSON document (trailing garbage is an error).
/// `max_depth` bounds array/object nesting.  Throws JsonError.
Json parse_json(std::string_view text, int max_depth = 64);

/// Compact serialization (no whitespace); object members in insertion
/// order, numbers in shortest round-trip form.
std::string write_json(const Json& value);

/// Escapes `s` as a JSON string literal including the quotes.
std::string json_quote(std::string_view s);

}  // namespace dlp::service
