// The campaign projection service wire protocol.
//
// Transport: a stream of frames over a local (unix-domain) socket.  Each
// frame is a 4-byte big-endian payload length followed by that many bytes
// of UTF-8 JSON.  A connection carries exactly one request: the client
// sends one request frame, the server replies with zero or more progress
// event frames followed by exactly one result frame, then closes.  One
// request per connection keeps request framing trivially recoverable
// under fault injection — a torn connection can only ever lose one
// request, and idempotency keys make the retry safe.
//
// Request envelope (all fields optional unless noted):
//   op              (required) ping | stats | project | campaign | shutdown
//   id              client-chosen request id, echoed on every reply frame
//   idempotency_key retries with the same key replay the stored response
//                   instead of re-executing
//   deadline_ms     per-request wall-clock budget from the moment of
//                   admission; the watchdog cancels the run past it
//   max_vectors     per-cell vector budget override (-1 = spec's own)
//   engine          fault-sim engine name (registry-validated)
//   threads         worker threads inside the run (0 = server default)
//   progress        true: stream progress event frames
//   linger_ms       diagnostic: hold the worker this long before replying
//                   (cancellable; used by the soak/overload harnesses)
//   spec            campaign op: inline campaign spec text
//   circuit, rules  project op: grid names or file paths (resolved by
//                   campaign::resolve_circuit / resolve_rules)
//   seed            project op: ATPG seed (default 1)
//   ndetect         project op: n-detection target in [1, 64] (0/absent =
//                   classic single detection); campaign specs carry their
//                   own [grid] ndetect axis instead
//   analysis        project op: true = run the static untestability
//                   analysis for the cell (default false); campaign specs
//                   carry their own [grid] analysis axis instead
//   defect_stats    project op: defect-statistics backend descriptor
//                   ("poisson" | "negbin:A" | "hier[:...]"; see
//                   model/defect_stats_model.h); absent = Poisson.
//                   Campaign specs carry their own [grid] defect_stats
//                   axis instead
//
// Reply frames:
//   {"event":"progress","id":...,"stage":...,"done":N,"total":N}
//   {"event":"result","id":...,"status":"ok"|"cancelled"|"shed"|"error",
//    "stop":<reason>,          (cancelled: why the run stopped)
//    "retry_after_ms":N,       (shed: backpressure hint)
//    "error":"...",            (error: diagnostic)
//    "body":{...},             (ok/cancelled: campaign report document)
//    "stats":{...}}            (ok/cancelled: cache/run accounting)
//
// Overload semantics: a server whose admission queue is full (or which is
// draining) sheds the request *before* reading its payload body with
// status "shed" and a retry_after_ms hint; clients back off (with jitter)
// at least that long before retrying.  Shedding is cheap by design — the
// reply is a single small frame and the connection closes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/json.h"

namespace dlp::service {

/// Frame length prefix: 4-byte big-endian.  kMaxFrame bounds a single
/// payload; a peer announcing more is protocol-corrupt and the connection
/// is dropped (the length field is attacker-controlled input).
constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB
constexpr std::size_t kFrameHeader = 4;

/// Renders the 4-byte length prefix for a payload of `n` bytes.
std::string encode_frame_header(std::uint32_t n);

/// Decodes a length prefix; throws std::runtime_error past kMaxFrame.
std::uint32_t decode_frame_header(const unsigned char header[kFrameHeader]);

class ProtocolError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

enum class Op : std::uint8_t { Ping, Stats, Project, Campaign, Shutdown };

std::string_view op_name(Op op);

struct Request {
    Op op = Op::Ping;
    std::string id;
    std::string idempotency_key;
    long long deadline_ms = 0;   ///< 0 = server default (possibly none)
    long long max_vectors = -1;  ///< <0 = keep the spec's value
    std::string engine;
    int threads = 0;
    bool progress = false;
    long long linger_ms = 0;
    std::string spec;     // campaign
    std::string circuit;  // project
    std::string rules;    // project
    std::uint64_t seed = 1;
    int ndetect = 0;  ///< project op target; 0 = classic (n = 1)
    /// project op: run the static untestability analysis (the flow's
    /// analyze() stage) for the cell; campaign specs carry their own
    /// [grid] analysis axis instead.
    bool analysis = false;
    /// project op: defect-statistics backend descriptor; "" = Poisson.
    /// Validated (parse_defect_stats) at parse time so a bad descriptor
    /// is rejected before admission.
    std::string defect_stats;
};

/// Parses a request payload; throws ProtocolError (bad JSON, unknown op,
/// missing required fields, out-of-range scalars).
Request parse_request(std::string_view payload);

/// Serializes a request envelope (the client side of parse_request).
std::string request_json(const Request& request);

// ---- reply builders (server side) ----------------------------------------

std::string progress_json(const std::string& id, std::string_view stage,
                          std::size_t done, std::size_t total);
/// `body` and `stats` are raw pre-rendered JSON documents ("" = omitted).
std::string result_ok_json(const std::string& id, const std::string& body,
                           const std::string& stats);
std::string result_cancelled_json(const std::string& id,
                                  std::string_view stop,
                                  const std::string& body,
                                  const std::string& stats);
std::string result_shed_json(const std::string& id, long long retry_after_ms,
                             std::string_view why);
std::string result_error_json(const std::string& id,
                              const std::string& message);

// ---- reply view (client side) ---------------------------------------------

struct Reply {
    std::string event;   ///< "progress" | "result"
    std::string id;
    // progress fields
    std::string stage;
    std::size_t done = 0;
    std::size_t total = 0;
    // result fields
    std::string status;  ///< ok | cancelled | shed | error
    std::string stop;
    long long retry_after_ms = 0;
    std::string error;
    std::string body;    ///< re-rendered report document ("" if absent)
    std::string stats;
    std::string raw;     ///< the verbatim frame payload (byte-exact checks)
};

/// Parses a reply frame; throws ProtocolError on malformed payloads.
Reply parse_reply(std::string_view payload);

}  // namespace dlp::service
