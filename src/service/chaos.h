// Fault-injection proxy for the service soak harness: sits between
// clients and the daemon on a second unix socket and mistreats the byte
// stream on purpose — refused connections, mid-stream drops, truncated
// forwards, and injected delays, all deterministic in the seed.
//
// The proxy is transport-level on purpose: it never parses frames, so its
// faults land at arbitrary byte positions — exactly the torn-header /
// torn-body cases the wire layer must classify as truncation and the
// client retry loop must absorb.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/wire.h"

namespace dlp::service {

struct ChaosConfig {
    std::string listen_path;  ///< clients connect here
    std::string target_path;  ///< the real daemon socket
    std::uint32_t seed = 1;
    // Per-event probabilities (evaluated independently, in this order).
    double refuse_p = 0.0;    ///< accept, then close without forwarding
    double drop_p = 0.0;      ///< per chunk: sever both directions
    double truncate_p = 0.0;  ///< per chunk: forward a prefix, then sever
    double delay_p = 0.0;     ///< per chunk: sleep before forwarding
    int delay_ms_max = 10;    ///< max injected delay per chunk
};

/// The proxy itself: one acceptor thread plus one pump thread per
/// connection direction.  start()/stop() bracket the lifetime; counters
/// are readable at any time (including while running).
class FaultProxy {
public:
    explicit FaultProxy(ChaosConfig config);
    ~FaultProxy();  ///< stop()s

    /// Binds listen_path and starts accepting.  Throws std::runtime_error
    /// if the socket cannot be bound.
    void start();
    /// Stops accepting, severs every live connection, joins all threads.
    /// Idempotent.
    void stop();

    /// Client connections accepted so far.
    std::size_t connections() const {
        return connections_.load(std::memory_order_relaxed);
    }
    /// Faults actually injected (refusals + drops + truncations + delays);
    /// a run with probabilities > 0 but zero injections exercised nothing.
    std::size_t faults_injected() const {
        return faults_.load(std::memory_order_relaxed);
    }

private:
    void accept_loop();
    void pump(Fd client, Fd server, std::uint64_t stream_seed);

    ChaosConfig config_;
    Fd listen_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> connections_{0};
    std::atomic<std::size_t> faults_{0};
    std::thread acceptor_;
    std::mutex mu_;
    std::vector<std::thread> pumps_;
};

}  // namespace dlp::service
