// Fault-injection proxy for the service soak harness: sits between
// clients and the daemon on a second unix socket and mistreats the byte
// stream on purpose — refused connections, mid-stream drops, truncated
// forwards, and injected delays, all deterministic in the seed.
//
// The proxy is transport-level on purpose: it never parses frames, so its
// faults land at arbitrary byte positions — exactly the torn-header /
// torn-body cases the wire layer must classify as truncation and the
// client retry loop must absorb.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/wire.h"

namespace dlp::service {

struct ChaosConfig {
    std::string listen_path;  ///< clients connect here
    std::string target_path;  ///< the real daemon socket
    std::uint32_t seed = 1;
    // Per-event probabilities (evaluated independently, in this order).
    double refuse_p = 0.0;    ///< accept, then close without forwarding
    double drop_p = 0.0;      ///< per chunk: sever both directions
    double truncate_p = 0.0;  ///< per chunk: forward a prefix, then sever
    double delay_p = 0.0;     ///< per chunk: sleep before forwarding
    int delay_ms_max = 10;    ///< max injected delay per chunk
};

class FaultProxy {
public:
    explicit FaultProxy(ChaosConfig config);
    ~FaultProxy();  ///< stop()s

    void start();
    void stop();

    std::size_t connections() const {
        return connections_.load(std::memory_order_relaxed);
    }
    std::size_t faults_injected() const {
        return faults_.load(std::memory_order_relaxed);
    }

private:
    void accept_loop();
    void pump(Fd client, Fd server, std::uint64_t stream_seed);

    ChaosConfig config_;
    Fd listen_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> connections_{0};
    std::atomic<std::size_t> faults_{0};
    std::thread acceptor_;
    std::mutex mu_;
    std::vector<std::thread> pumps_;
};

}  // namespace dlp::service
