// POSIX plumbing for the service protocol: unix-domain sockets and timed,
// truncation-detecting frame I/O.
//
// Every read and write runs under a poll() timeout so a stalled or
// byzantine peer (the fault-injection proxy delays, drops, and truncates
// traffic on purpose) can never wedge a worker thread: the call throws
// WireError and the connection is abandoned.  A clean EOF before the
// first header byte is a normal close; EOF anywhere else is a truncated
// frame and throws.  All writes use MSG_NOSIGNAL — a dead peer surfaces
// as EPIPE, never SIGPIPE.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dlp::service {

class WireError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Owning fd wrapper (move-only).
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    Fd(Fd&& other) noexcept : fd_(other.release()) {}
    Fd& operator=(Fd&& other) noexcept;
    ~Fd() { reset(); }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int release();
    void reset(int fd = -1);

    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

private:
    int fd_ = -1;
};

/// Binds and listens on a unix-domain socket, unlinking a stale socket
/// file first.  Throws WireError (path too long, bind/listen failure).
Fd unix_listen(const std::string& path, int backlog);

/// Connects to a unix-domain socket; throws WireError on failure (the
/// message distinguishes "absent" from "refused" for retry decisions).
Fd unix_connect(const std::string& path);

/// Accepts one connection; -1 (invalid Fd) when `timeout_ms` elapses or
/// the listener was shut down.  Throws WireError on a hard accept error.
Fd accept_one(int listen_fd, int timeout_ms);

/// Reads one complete frame into `payload`.
///   true  = a frame arrived;
///   false = the peer closed cleanly before any header byte.
/// Throws WireError on timeout, mid-frame EOF (truncation), an oversize
/// length prefix, or a socket error.
bool read_frame(int fd, std::string& payload, int timeout_ms);

/// Writes one complete frame; throws WireError on timeout or error.
void write_frame(int fd, std::string_view payload, int timeout_ms);

}  // namespace dlp::service
