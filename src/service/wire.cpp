#include "service/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/protocol.h"

namespace dlp::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw WireError(what + ": " + std::strerror(errno));
}

/// Blocks until `fd` is ready for `events` or `timeout_ms` passes.
/// Returns false on timeout; throws on poll error or socket error/hangup
/// when waiting to read would never succeed.
bool wait_ready(int fd, short events, int timeout_ms) {
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    while (true) {
        const int rc = ::poll(&p, 1, timeout_ms);
        if (rc > 0) return true;  // readable/writable OR error/hup: let the
                                  // actual recv/send surface the condition
        if (rc == 0) return false;
        if (errno == EINTR) continue;
        throw_errno("poll");
    }
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
}

int Fd::release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

void Fd::reset(int fd) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
}

Fd unix_listen(const std::string& path, int backlog) {
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path))
        throw WireError("socket path too long: " + path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) throw_errno("socket");
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // a stale socket file from a crashed daemon
    if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
               sizeof addr) != 0)
        throw_errno("bind " + path);
    if (::listen(fd.get(), backlog) != 0) throw_errno("listen " + path);
    return fd;
}

Fd unix_connect(const std::string& path) {
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path))
        throw WireError("socket path too long: " + path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) throw_errno("socket");
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof addr) != 0)
        throw_errno("connect " + path);
    return fd;
}

Fd accept_one(int listen_fd, int timeout_ms) {
    if (!wait_ready(listen_fd, POLLIN, timeout_ms)) return Fd();
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK || errno == EINVAL)
            return Fd();  // EINVAL: listener shut down during drain
        throw_errno("accept");
    }
    return Fd(fd);
}

namespace {

/// Reads exactly `n` bytes.  Returns the count read before a clean EOF
/// (== n on success); throws on timeout or socket error.
std::size_t read_exact(int fd, char* buf, std::size_t n, int timeout_ms) {
    std::size_t got = 0;
    while (got < n) {
        if (!wait_ready(fd, POLLIN, timeout_ms))
            throw WireError("read timeout after " +
                            std::to_string(timeout_ms) + " ms");
        const ssize_t rc = ::recv(fd, buf + got, n - got, 0);
        if (rc > 0) {
            got += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc == 0) return got;  // EOF
        if (errno == EINTR) continue;
        throw_errno("recv");
    }
    return got;
}

}  // namespace

bool read_frame(int fd, std::string& payload, int timeout_ms) {
    unsigned char header[kFrameHeader];
    const std::size_t got =
        read_exact(fd, reinterpret_cast<char*>(header), kFrameHeader,
                   timeout_ms);
    if (got == 0) return false;  // clean close between frames
    if (got < kFrameHeader)
        throw WireError("truncated frame header (" + std::to_string(got) +
                        " of " + std::to_string(kFrameHeader) + " bytes)");
    std::uint32_t n = 0;
    try {
        n = decode_frame_header(header);
    } catch (const std::exception& e) {
        throw WireError(e.what());
    }
    payload.resize(n);
    if (n == 0) return true;
    const std::size_t body = read_exact(fd, payload.data(), n, timeout_ms);
    if (body < n)
        throw WireError("truncated frame body (" + std::to_string(body) +
                        " of " + std::to_string(n) + " bytes)");
    return true;
}

void write_frame(int fd, std::string_view payload, int timeout_ms) {
    if (payload.size() > kMaxFrame)
        throw WireError("frame payload too large: " +
                        std::to_string(payload.size()));
    const std::string header =
        encode_frame_header(static_cast<std::uint32_t>(payload.size()));
    std::string buf;
    buf.reserve(header.size() + payload.size());
    buf += header;
    buf += payload;
    std::size_t sent = 0;
    while (sent < buf.size()) {
        if (!wait_ready(fd, POLLOUT, timeout_ms))
            throw WireError("write timeout after " +
                            std::to_string(timeout_ms) + " ms");
        const ssize_t rc =
            ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
        if (rc >= 0) {
            sent += static_cast<std::size_t>(rc);
            continue;
        }
        if (errno == EINTR) continue;
        throw_errno("send");
    }
}

}  // namespace dlp::service
