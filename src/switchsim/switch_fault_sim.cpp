#include "switchsim/switch_fault_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>

#include "obs/telemetry.h"

namespace dlp::switchsim {

SwitchFaultSimulator::SwitchFaultSimulator(const SwitchSim& sim,
                                           std::vector<WeightedFault> faults,
                                           parallel::ParallelOptions parallel)
    : sim_(&sim), faults_(std::move(faults)), parallel_(parallel) {
    const SwitchNetlist& net = sim.netlist();
    detected_at_.assign(faults_.size(), -1);
    iddq_at_.assign(faults_.size(), -1);
    per_fault_.resize(faults_.size());
    po_mask_.assign(static_cast<size_t>(net.node_count), 0);
    for (NodeId po : net.output_nodes) po_mask_[static_cast<size_t>(po)] = 1;

    const auto comp_of_node = [&](NodeId v) {
        return sim.component_of()[static_cast<size_t>(v)];
    };
    for (size_t fi = 0; fi < faults_.size(); ++fi) {
        const SwitchFault& f = faults_[fi].fault;
        total_weight_ += faults_[fi].weight;
        PerFault& pf = per_fault_[fi];
        switch (f.kind) {
            case SwitchFault::Kind::Bridge: {
                std::vector<NodeId> ends{f.a, f.b};
                if (f.c >= 0) ends.push_back(f.c);
                for (NodeId n : ends) {
                    const std::int32_t c = comp_of_node(n);
                    if (c >= 0 && std::find(pf.seed_comps.begin(),
                                            pf.seed_comps.end(),
                                            c) == pf.seed_comps.end())
                        pf.seed_comps.push_back(c);
                }
                if (pf.seed_comps.size() >= 2) pf.merged = pf.seed_comps;
                break;
            }
            case SwitchFault::Kind::TransistorOpen:
            case SwitchFault::Kind::GateFloat:
                for (int t : f.transistors) {
                    const auto& tr =
                        sim.netlist().transistors[static_cast<size_t>(t)];
                    const NodeId probe =
                        (tr.source == SwitchNetlist::kGnd ||
                         tr.source == SwitchNetlist::kVdd)
                            ? tr.drain
                            : tr.source;
                    const std::int32_t c = comp_of_node(probe);
                    if (c >= 0 &&
                        std::find(pf.seed_comps.begin(), pf.seed_comps.end(),
                                  c) == pf.seed_comps.end())
                        pf.seed_comps.push_back(c);
                }
                break;
            case SwitchFault::Kind::Gross:
            case SwitchFault::Kind::None:
                break;
        }
    }

    good_ = sim.initial_state();
}

void SwitchFaultSimulator::simulate_fault(std::size_t fi, int vector_index,
                                          Scratch& scratch,
                                          const SwitchSim::State& good,
                                          const SwitchSim::State& good_prev) {
    const SwitchFault& fault = faults_[fi].fault;
    if (fault.kind == SwitchFault::Kind::Gross) {
        detected_at_[fi] = vector_index;  // fails any test immediately
        return;
    }
    if (fault.kind == SwitchFault::Kind::None) return;  // pure pad float: X
    PerFault& pf = per_fault_[fi];
    SwitchSim::State& cur = scratch.cur;
    SwitchSim::State& prev = scratch.prev;

    SwitchSim::FaultView fv;
    fv.fault = &fault;

    // Patch the scratch previous-state with this fault's retained charge.
    for (const auto& [node, value] : pf.divergence)
        prev[static_cast<size_t>(node)] = value;

    // Seed the worklist.  A component entering the working set restarts
    // from X, matching the reference simulation's ternary least-fixpoint
    // iteration: bridges can create feedback loops with several fixpoints,
    // and starting from X is the only order-independent choice.
    // Initialization that changes a node's visible value must notify that
    // node's readers, or a component whose solve happens to equal its
    // initialization would never trigger the re-solve of components that
    // already read the mirror value.
    std::deque<std::int32_t> work;
    std::vector<std::int32_t> touched;
    std::vector<NodeId> fixed_overrides;
    std::vector<std::int32_t> pending;
    const auto enqueue = [&pending](std::int32_t c) {
        if (c >= 0) pending.push_back(c);
    };
    const auto drain = [&]() {
        while (!pending.empty()) {
            const std::int32_t c = pending.back();
            pending.pop_back();
            work.push_back(c);
            if (std::find(touched.begin(), touched.end(), c) != touched.end())
                continue;
            touched.push_back(c);
            for (NodeId v : sim_->component_nodes(c)) {
                if (cur[static_cast<size_t>(v)] == SV::X) continue;
                cur[static_cast<size_t>(v)] = SV::X;
                for (std::int32_t dep : sim_->gate_dependents(v))
                    pending.push_back(dep);
            }
        }
    };
    for (std::int32_t c : pf.seed_comps) enqueue(c);
    drain();
    for (const auto& [node, value] : pf.divergence) {
        const std::int32_t c = sim_->component_of()[static_cast<size_t>(node)];
        if (c >= 0)
            enqueue(c);
        else {
            // Divergence at a component-less node (bridged PI): reapply.
            cur[static_cast<size_t>(node)] = value;
            fixed_overrides.push_back(node);
        }
        for (std::int32_t dep : sim_->gate_dependents(node)) enqueue(dep);
        drain();
    }

    // Bridged component-less (fixed) nodes: shorted driven inputs resolve
    // wired-AND (supplies always win), mirroring SwitchSim::run.
    if (fault.kind == SwitchFault::Kind::Bridge &&
        pf.seed_comps.empty()) {
        std::vector<NodeId> ends{fault.a, fault.b};
        if (fault.c >= 0) ends.push_back(fault.c);
        SV want = good[static_cast<size_t>(ends[0])];
        bool supply_found = false;
        for (NodeId n : ends)
            if (n == SwitchNetlist::kGnd || n == SwitchNetlist::kVdd) {
                want = good[static_cast<size_t>(n)];
                supply_found = true;
                break;
            }
        if (!supply_found) {
            for (NodeId n : ends) {
                const SV v = good[static_cast<size_t>(n)];
                if (v == want) continue;
                want = (v == SV::X || want == SV::X) ? SV::X : SV::Zero;
            }
        }
        for (const NodeId n : ends) {
            if (n == SwitchNetlist::kGnd || n == SwitchNetlist::kVdd)
                continue;
            if (cur[static_cast<size_t>(n)] != want) {
                cur[static_cast<size_t>(n)] = want;
                fixed_overrides.push_back(n);
                for (std::int32_t dep : sim_->gate_dependents(n))
                    enqueue(dep);
            }
        }
    }
    drain();

    // Process the worklist to a fixpoint.
    const int cap = sim_->params().max_sweeps;
    std::vector<SV>& before = scratch.before;
    while (!work.empty()) {
        const std::int32_t c = work.front();
        work.pop_front();
        if (scratch.comp_visits[static_cast<size_t>(c)] >= cap) continue;
        ++scratch.comp_visits[static_cast<size_t>(c)];

        std::span<const std::int32_t> group(&c, 1);
        if (!pf.merged.empty() &&
            std::find(pf.merged.begin(), pf.merged.end(), c) !=
                pf.merged.end())
            group = pf.merged;

        before.clear();
        for (std::int32_t gc : group)
            for (NodeId v : sim_->component_nodes(gc))
                before.push_back(cur[static_cast<size_t>(v)]);
        sim_->solve_component(cur, prev, group, fv);
        size_t idx = 0;
        for (std::int32_t gc : group)
            for (NodeId v : sim_->component_nodes(gc)) {
                if (cur[static_cast<size_t>(v)] != before[idx])
                    for (std::int32_t dep : sim_->gate_dependents(v))
                        enqueue(dep);
                ++idx;
            }
        drain();
    }

    // Collect the new divergence, check detection, then repair the scratch
    // arrays back to the fault-free state.
    pf.divergence.clear();
    bool detected = false;
    const NodeId excluded_po =
        fault.po_float >= 0
            ? sim_->netlist().output_nodes[static_cast<size_t>(fault.po_float)]
            : -1;
    const auto scan_node = [&](NodeId v) {
        const SV fv_val = cur[static_cast<size_t>(v)];
        const SV gv = good[static_cast<size_t>(v)];
        if (fv_val != gv) {
            pf.divergence.push_back({v, fv_val});
            if (po_mask_[static_cast<size_t>(v)] && v != excluded_po &&
                fv_val != SV::X && gv != SV::X)
                detected = true;
        }
        cur[static_cast<size_t>(v)] = gv;
        prev[static_cast<size_t>(v)] = good_prev[static_cast<size_t>(v)];
    };
    for (std::int32_t c : touched) {
        scratch.comp_visits[static_cast<size_t>(c)] = 0;
        for (NodeId v : sim_->component_nodes(c)) scan_node(v);
    }
    for (NodeId v : fixed_overrides) scan_node(v);
    // Divergent nodes outside touched comps (from earlier vectors whose
    // comps were not re-solved): still divergent - should not happen since
    // divergence seeds its comps, but repair defensively.
    // (seeded comps are always in `touched`.)

    if (detected) detected_at_[fi] = vector_index;
}

int SwitchFaultSimulator::apply(std::span<const Vector> vectors) {
    return apply(vectors, support::RunBudget{}).newly_detected;
}

support::ApplyResult SwitchFaultSimulator::apply(
    std::span<const Vector> vectors, const support::RunBudget& budget) {
    const int before_applied = vectors_applied_;
    support::ApplyResult result;
    // The vector budget caps the cumulative sequence; a shorter final batch
    // is still a prefix (faulty-machine state and detection indices are per
    // vector, independent of batching).
    const size_t allowed =
        budget.allowed_vectors(vectors.size(), vectors_applied_);
    if (allowed < vectors.size()) {
        vectors = vectors.first(allowed);
        result.stop = support::StopReason::VectorBudget;
    }
    // Vectors are simulated in batches: the fault-free trace of the batch
    // is computed once up front, then faults fan out across workers, each
    // replaying its faults over the whole batch against the shared
    // read-only trace.  kBatch bounds trace memory (kBatch+1 full states).
    constexpr size_t kBatch = 64;
    const int workers = parallel::resolve_threads(parallel_);
    std::vector<Scratch> scratch(static_cast<size_t>(workers));
    // Stealing quantum: coarse enough that the per-chunk state resync cost
    // (two full-state copies per vector) stays negligible, fine enough to
    // balance skewed per-fault cost across workers.
    const size_t grain = std::max<size_t>(
        4, faults_.size() / (static_cast<size_t>(workers) * 8));

    // std::vector<bool> is bit-packed; unpack into a plain array for the span.
    std::unique_ptr<bool[]> barr;
    size_t barr_size = 0;
    std::vector<SwitchSim::State> trace;

    // Counted at batch boundaries, so values are thread-count-invariant.
    DLP_OBS_SPAN(apply_span, "switchsim.apply");
    DLP_OBS_COUNTER(c_vectors, "faultsim.switch.vectors");
    DLP_OBS_COUNTER(c_batches, "faultsim.switch.batches");
    DLP_OBS_COUNTER(c_dropped, "faultsim.switch.dropped");
    DLP_OBS_GAUGE(g_remaining, "faultsim.switch.remaining");
    DLP_OBS_GAUGE(g_rate, "faultsim.switch.batches_per_sec");
#if DLPROJ_OBS_ENABLED
    const std::int64_t t0 = obs::enabled() ? obs::now_ns() : 0;
#endif

    size_t completed = 0;
    for (size_t base = 0; base < vectors.size(); base += kBatch) {
        // Cancellation / deadline: checked at batch boundaries, before the
        // fault-free machine advances, so a stopped call commits a whole
        // number of batches and good_ matches the committed prefix.
        const support::StopReason stop = budget.check();
        if (stop != support::StopReason::None) {
            result.stop = stop;
            break;
        }
        const size_t m = std::min(kBatch, vectors.size() - base);
        // Fault-free trace: trace[v] is the state before the batch's
        // vector v, trace[v+1] the state after it.
        trace.resize(m + 1);
        trace[0] = good_;
        for (size_t v = 0; v < m; ++v) {
            const Vector& in = vectors[base + v];
            if (barr_size < in.size()) {
                barr = std::make_unique<bool[]>(in.size());
                barr_size = in.size();
            }
            for (size_t i = 0; i < in.size(); ++i) barr[i] = in[i];
            sim_->step(good_, std::span<const bool>(barr.get(), in.size()));
            trace[v + 1] = good_;
        }

        parallel::parallel_for(
            faults_.size(), grain,
            [&](size_t fb, size_t fe, int w) {
                Scratch& ws = scratch[static_cast<size_t>(w)];
                if (ws.comp_visits.empty())
                    ws.comp_visits.assign(
                        static_cast<size_t>(sim_->component_count()), 0);
                for (size_t v = 0; v < m; ++v) {
                    const int k =
                        before_applied + static_cast<int>(base + v) + 1;
                    const SwitchSim::State& good = trace[v + 1];
                    const SwitchSim::State& good_prev = trace[v];
                    bool synced = false;
                    for (size_t fi = fb; fi < fe; ++fi) {
                        if (iddq_at_[fi] < 0) check_iddq(fi, k, good);
                        if (detected_at_[fi] >= 0) continue;
                        if (!synced) {
                            // simulate_fault repairs cur/prev back to the
                            // fault-free pair, so one resync per vector
                            // serves every fault in the chunk.
                            ws.cur = good;
                            ws.prev = good_prev;
                            synced = true;
                        }
                        simulate_fault(fi, k, ws, good, good_prev);
                    }
                }
            },
            parallel_.threads);

        completed = base + m;
        DLP_OBS_ADD(c_vectors, static_cast<long long>(m));
        DLP_OBS_ADD(c_batches, 1);
        if (progress_)
            progress_("switch-sim", completed, vectors.size());
    }

    vectors_applied_ += static_cast<int>(completed);
    int newly = 0;
    long long detected_total = 0;
    for (int at : detected_at_) {
        if (at > before_applied) ++newly;
        if (at >= 0) ++detected_total;
    }
    result.newly_detected = newly;
    result.vectors_applied = static_cast<int>(completed);
    DLP_OBS_ADD(c_dropped, newly);
    DLP_OBS_SET(g_remaining, static_cast<double>(faults_.size()) -
                                 static_cast<double>(detected_total));
#if DLPROJ_OBS_ENABLED
    if (t0 != 0) {
        const double secs = static_cast<double>(obs::now_ns() - t0) / 1e9;
        if (secs > 0)
            DLP_OBS_SET(g_rate,
                        std::ceil(static_cast<double>(completed) / 64.0) /
                            secs);
    }
    if (result.stop != support::StopReason::None)
        DLP_OBS_ANNOTATE("stopped: " +
                         std::string(support::stop_reason_name(result.stop)));
#endif
    return result;
}

void SwitchFaultSimulator::check_iddq(std::size_t fi, int vector_index,
                                      const SwitchSim::State& good) {
    const SwitchFault& f = faults_[fi].fault;
    if (f.kind == SwitchFault::Kind::Gross) {
        iddq_at_[fi] = vector_index;  // a supply short conducts always
        return;
    }
    if (f.kind != SwitchFault::Kind::Bridge) return;
    // Elevated quiescent current whenever the defect-free circuit drives
    // any two of the shorted nodes to opposite levels.
    std::vector<NodeId> ends{f.a, f.b};
    if (f.c >= 0) ends.push_back(f.c);
    bool saw0 = false;
    bool saw1 = false;
    for (NodeId n : ends) {
        const SV v = good[static_cast<size_t>(n)];
        saw0 |= v == SV::Zero;
        saw1 |= v == SV::One;
    }
    if (saw0 && saw1) iddq_at_[fi] = vector_index;
}

std::vector<double> SwitchFaultSimulator::weighted_coverage_curve_with_iddq()
    const {
    std::vector<double> add(static_cast<size_t>(vectors_applied_) + 1, 0.0);
    for (size_t i = 0; i < faults_.size(); ++i) {
        int first = detected_at_[i];
        if (iddq_at_[i] >= 1 && (first < 0 || iddq_at_[i] < first))
            first = iddq_at_[i];
        if (first >= 1) add[static_cast<size_t>(first)] += faults_[i].weight;
    }
    std::vector<double> curve(static_cast<size_t>(vectors_applied_));
    double cum = 0.0;
    for (int k = 1; k <= vectors_applied_; ++k) {
        cum += add[static_cast<size_t>(k)];
        curve[static_cast<size_t>(k - 1)] =
            total_weight_ == 0.0 ? 0.0 : cum / total_weight_;
    }
    return curve;
}

double SwitchFaultSimulator::weighted_coverage() const {
    if (total_weight_ == 0.0) return 0.0;
    double hit = 0.0;
    for (size_t i = 0; i < faults_.size(); ++i)
        if (detected_at_[i] >= 0) hit += faults_[i].weight;
    return hit / total_weight_;
}

double SwitchFaultSimulator::unweighted_coverage() const {
    if (faults_.empty()) return 0.0;
    size_t hit = 0;
    for (int d : detected_at_) hit += d >= 0 ? 1 : 0;
    return static_cast<double>(hit) / static_cast<double>(faults_.size());
}

std::vector<double> SwitchFaultSimulator::weighted_coverage_curve() const {
    std::vector<double> add(static_cast<size_t>(vectors_applied_) + 1, 0.0);
    for (size_t i = 0; i < faults_.size(); ++i)
        if (detected_at_[i] >= 1)
            add[static_cast<size_t>(detected_at_[i])] += faults_[i].weight;
    std::vector<double> curve(static_cast<size_t>(vectors_applied_));
    double cum = 0.0;
    for (int k = 1; k <= vectors_applied_; ++k) {
        cum += add[static_cast<size_t>(k)];
        curve[static_cast<size_t>(k - 1)] =
            total_weight_ == 0.0 ? 0.0 : cum / total_weight_;
    }
    return curve;
}

std::vector<double> SwitchFaultSimulator::unweighted_coverage_curve() const {
    std::vector<int> add(static_cast<size_t>(vectors_applied_) + 1, 0);
    for (int d : detected_at_)
        if (d >= 1) ++add[static_cast<size_t>(d)];
    std::vector<double> curve(static_cast<size_t>(vectors_applied_));
    double cum = 0.0;
    for (int k = 1; k <= vectors_applied_; ++k) {
        cum += add[static_cast<size_t>(k)];
        curve[static_cast<size_t>(k - 1)] =
            faults_.empty() ? 0.0
                            : cum / static_cast<double>(faults_.size());
    }
    return curve;
}

std::unique_ptr<sim::SwitchSession> open_switch_session(
    const sim::Engine& engine, const SwitchSim& sim,
    std::vector<WeightedFault> faults, parallel::ParallelOptions parallel) {
    (void)engine;  // one shared switch-level implementation today
    return std::make_unique<SwitchFaultSimulator>(sim, std::move(faults),
                                                  parallel);
}

}  // namespace dlp::switchsim
