// Weighted switch-level fault simulation over a vector sequence.
//
// Produces the paper's two realistic coverage measures:
//   theta(k) - weighted coverage, eq (6): detected weight / total weight
//   Gamma(k) - unweighted coverage: detected count / total count
// using static voltage detection: a fault is detected by vector k only if
// some primary output settles to a *definite* logic value that differs from
// the fault-free value (X is never a detection).
//
// Each fault's circuit keeps its own node state across the sequence (charge
// retention), tracked as a sparse divergence from the fault-free state so
// the per-vector cost is proportional to the divergent region, not the
// whole chip.
#pragma once

#include <string>

#include "switchsim/switch_sim.h"

namespace dlp::switchsim {

using Vector = std::vector<bool>;

/// A fault with its extraction weight w_j = A_j * D_j.
struct WeightedFault {
    SwitchFault fault;
    double weight = 1.0;
    std::string name;
};

class SwitchFaultSimulator {
public:
    SwitchFaultSimulator(const SwitchSim& sim,
                         std::vector<WeightedFault> faults);

    /// Applies vectors in sequence (appending); returns newly detected
    /// fault count.  Detected faults are dropped.
    int apply(std::span<const Vector> vectors);

    std::span<const WeightedFault> faults() const { return faults_; }
    std::span<const int> first_detected_at() const { return detected_at_; }

    /// First vector at which an IDDQ (quiescent current) measurement flags
    /// the fault: a bridge whose shorted nets are driven to opposite values
    /// conducts statically and raises IDDQ, independent of any logic flip.
    /// Opens have no current signature (-1).  This implements the paper's
    /// conclusion that current testing must complement voltage testing.
    std::span<const int> iddq_detected_at() const { return iddq_at_; }

    int vectors_applied() const { return vectors_applied_; }

    double total_weight() const { return total_weight_; }
    double weighted_coverage() const;    ///< theta after all vectors
    double unweighted_coverage() const;  ///< Gamma after all vectors

    /// theta(k) for k = 1..vectors_applied().
    std::vector<double> weighted_coverage_curve() const;
    /// Gamma(k) for k = 1..vectors_applied().
    std::vector<double> unweighted_coverage_curve() const;
    /// theta(k) when voltage and IDDQ detection are combined.
    std::vector<double> weighted_coverage_curve_with_iddq() const;

private:
    struct PerFault {
        std::vector<std::pair<NodeId, SV>> divergence;  ///< faulty != good
        std::vector<std::int32_t> seed_comps;
        std::vector<std::int32_t> merged;  ///< bridge-merged comp pair
    };

    void simulate_fault(size_t fi, int vector_index);

    void check_iddq(size_t fi, int vector_index);

    const SwitchSim* sim_;
    std::vector<WeightedFault> faults_;
    std::vector<PerFault> per_fault_;
    std::vector<int> detected_at_;
    std::vector<int> iddq_at_;
    double total_weight_ = 0.0;

    SwitchSim::State good_;
    SwitchSim::State good_prev_;
    SwitchSim::State cur_;        ///< scratch, == good_ between faults
    SwitchSim::State prev_scratch_;  ///< scratch, == good_prev_ between faults
    std::vector<int> comp_visits_;   ///< per-component worklist guard
    std::vector<char> po_mask_;      ///< node -> is a PO node
    int vectors_applied_ = 0;
};

}  // namespace dlp::switchsim
