// Weighted switch-level fault simulation over a vector sequence.
//
// Produces the paper's two realistic coverage measures:
//   theta(k) - weighted coverage, eq (6): detected weight / total weight
//   Gamma(k) - unweighted coverage: detected count / total count
// using static voltage detection: a fault is detected by vector k only if
// some primary output settles to a *definite* logic value that differs from
// the fault-free value (X is never a detection).
//
// Each fault's circuit keeps its own node state across the sequence (charge
// retention), tracked as a sparse divergence from the fault-free state so
// the per-vector cost is proportional to the divergent region, not the
// whole chip.
//
// Fault simulations are independent given the fault-free trace, so apply()
// fans faults out across the shared thread pool (parallel/parallel_for.h):
// the good-machine states for a batch of vectors are computed once and
// shared read-only, each worker owns a scratch state pair, and every result
// slot (detected_at_, iddq_at_, divergence) is written only by the worker
// that owns that fault.  Detection indices are per-fault vector positions,
// never completion order, so all results are bit-identical to the serial
// path for any worker count.
#pragma once

#include <memory>
#include <string>

#include "gatesim/engine.h"
#include "parallel/parallel_for.h"
#include "parallel/progress.h"
#include "support/cancel.h"
#include "switchsim/switch_sim.h"

namespace dlp::switchsim {

using Vector = std::vector<bool>;

/// A fault with its extraction weight w_j = A_j * D_j.
struct WeightedFault {
    SwitchFault fault;
    double weight = 1.0;
    std::string name;
};

class SwitchFaultSimulator final : public sim::SwitchSession {
public:
    SwitchFaultSimulator(const SwitchSim& sim,
                         std::vector<WeightedFault> faults,
                         parallel::ParallelOptions parallel = {});

    /// Worker count for subsequent apply() calls (0 = scoped/env default).
    void set_parallel(parallel::ParallelOptions parallel) {
        parallel_ = parallel;
    }
    /// Observer called after each simulated vector batch (stage
    /// "switch-sim", done/total in vectors), from the coordinating thread.
    void set_progress(parallel::ProgressFn progress) override {
        progress_ = std::move(progress);
    }

    /// Applies vectors in sequence (appending); returns newly detected
    /// fault count.  Detected faults are dropped.
    int apply(std::span<const Vector> vectors);

    /// Budget-aware apply: the budget is checked before every vector batch
    /// and `budget.max_vectors` caps the cumulative sequence.  A stopped
    /// call commits whole batches only, so all recorded state (detection
    /// indices, charge-retention divergence, coverage curves) is a
    /// bit-identical prefix of the unbounded run's.
    support::ApplyResult apply(std::span<const Vector> vectors,
                               const support::RunBudget& budget) override;

    std::span<const WeightedFault> faults() const { return faults_; }
    std::span<const int> first_detected_at() const override {
        return detected_at_;
    }

    /// First vector at which an IDDQ (quiescent current) measurement flags
    /// the fault: a bridge whose shorted nets are driven to opposite values
    /// conducts statically and raises IDDQ, independent of any logic flip.
    /// Opens have no current signature (-1).  This implements the paper's
    /// conclusion that current testing must complement voltage testing.
    std::span<const int> iddq_detected_at() const override {
        return iddq_at_;
    }

    int vectors_applied() const { return vectors_applied_; }

    double total_weight() const { return total_weight_; }
    double weighted_coverage() const;    ///< theta after all vectors
    double unweighted_coverage() const;  ///< Gamma after all vectors

    /// theta(k) for k = 1..vectors_applied().
    std::vector<double> weighted_coverage_curve() const override;
    /// Gamma(k) for k = 1..vectors_applied().
    std::vector<double> unweighted_coverage_curve() const override;
    /// theta(k) when voltage and IDDQ detection are combined.
    std::vector<double> weighted_coverage_curve_with_iddq() const override;

private:
    struct PerFault {
        std::vector<std::pair<NodeId, SV>> divergence;  ///< faulty != good
        std::vector<std::int32_t> seed_comps;
        std::vector<std::int32_t> merged;  ///< bridge-merged comp pair
    };

    /// Per-worker scratch: the full-state mirrors the serial simulator kept
    /// as members, plus the component worklist guard and the solve buffer.
    /// Between faults, cur == good and prev == good_prev of the vector
    /// being simulated, and comp_visits is all-zero.
    struct Scratch {
        SwitchSim::State cur;
        SwitchSim::State prev;
        std::vector<int> comp_visits;
        std::vector<SV> before;
    };

    void simulate_fault(std::size_t fi, int vector_index, Scratch& scratch,
                        const SwitchSim::State& good,
                        const SwitchSim::State& good_prev);

    void check_iddq(std::size_t fi, int vector_index,
                    const SwitchSim::State& good);

    const SwitchSim* sim_;
    std::vector<WeightedFault> faults_;
    std::vector<PerFault> per_fault_;
    std::vector<int> detected_at_;
    std::vector<int> iddq_at_;
    double total_weight_ = 0.0;

    SwitchSim::State good_;          ///< fault-free state after the sequence
    std::vector<char> po_mask_;      ///< node -> is a PO node
    int vectors_applied_ = 0;
    parallel::ParallelOptions parallel_;
    parallel::ProgressFn progress_;
};

/// Opens the switch-level session for `engine`.  Every registered engine
/// currently shares the one sparse-divergence implementation above (the
/// engines differ at the gate level only), but the flow goes through this
/// seam so simulator construction happens in exactly one place and a future
/// engine can specialize the switch-level path.
std::unique_ptr<sim::SwitchSession> open_switch_session(
    const sim::Engine& engine, const SwitchSim& sim,
    std::vector<WeightedFault> faults,
    parallel::ParallelOptions parallel = {});

}  // namespace dlp::switchsim
