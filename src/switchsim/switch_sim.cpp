#include "switchsim/switch_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace dlp::switchsim {

namespace {

/// Resolved value of bridged *driven* (component-less) nodes: a supply
/// always wins; tester-driven inputs resolve wired-AND.
SV resolve_fixed_bridge(std::span<const NodeId> nodes,
                        std::span<const SV> values) {
    for (size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i] == SwitchNetlist::kGnd ||
            nodes[i] == SwitchNetlist::kVdd)
            return values[i];
    SV acc = values[0];
    for (size_t i = 1; i < values.size(); ++i) {
        if (values[i] == acc) continue;
        if (values[i] == SV::X || acc == SV::X) return SV::X;
        acc = SV::Zero;  // wired-AND of differing binary drives
    }
    return acc;
}

/// Endpoint nodes of a bridge fault (two or three).
std::vector<NodeId> bridge_nodes(const SwitchFault& fault) {
    std::vector<NodeId> nodes{fault.a, fault.b};
    if (fault.c >= 0) nodes.push_back(fault.c);
    return nodes;
}

}  // namespace

SwitchSim::SwitchSim(const SwitchNetlist& netlist, SimParams params)
    : netlist_(&netlist), params_(params) {
    const size_t n = static_cast<size_t>(netlist.node_count);
    // Union-find over source/drain edges, excluding the supplies.
    std::vector<std::int32_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    const auto find = [&parent](std::int32_t x) {
        while (parent[static_cast<size_t>(x)] != x)
            x = parent[static_cast<size_t>(x)] =
                parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
        return x;
    };
    const auto is_supply = [](NodeId v) {
        return v == SwitchNetlist::kGnd || v == SwitchNetlist::kVdd;
    };
    for (const auto& t : netlist.transistors) {
        if (is_supply(t.source) || is_supply(t.drain)) continue;
        parent[static_cast<size_t>(find(t.source))] = find(t.drain);
    }
    // Nodes that touch a transistor channel belong to a component.
    std::vector<char> in_channel(n, 0);
    for (const auto& t : netlist.transistors) {
        if (!is_supply(t.source)) in_channel[static_cast<size_t>(t.source)] = 1;
        if (!is_supply(t.drain)) in_channel[static_cast<size_t>(t.drain)] = 1;
    }
    component_of_.assign(n, -1);
    std::vector<std::int32_t> comp_id(n, -1);
    for (NodeId v = 0; v < netlist.node_count; ++v) {
        if (!in_channel[static_cast<size_t>(v)]) continue;
        const std::int32_t root = find(v);
        if (comp_id[static_cast<size_t>(root)] < 0) {
            comp_id[static_cast<size_t>(root)] = component_count_++;
            comp_nodes_.emplace_back();
        }
        component_of_[static_cast<size_t>(v)] = comp_id[static_cast<size_t>(root)];
        comp_nodes_[static_cast<size_t>(comp_id[static_cast<size_t>(root)])]
            .push_back(v);
    }
    comp_transistors_.assign(static_cast<size_t>(component_count_), {});
    for (size_t t = 0; t < netlist.transistors.size(); ++t) {
        const auto& tr = netlist.transistors[t];
        const NodeId probe = is_supply(tr.source) ? tr.drain : tr.source;
        const std::int32_t c = component_of_[static_cast<size_t>(probe)];
        if (c >= 0)
            comp_transistors_[static_cast<size_t>(c)].push_back(
                static_cast<int>(t));
    }
    gate_deps_.assign(n, {});
    for (size_t t = 0; t < netlist.transistors.size(); ++t) {
        const auto& tr = netlist.transistors[t];
        const NodeId probe = is_supply(tr.source) ? tr.drain : tr.source;
        const std::int32_t c = component_of_[static_cast<size_t>(probe)];
        if (c < 0) continue;
        auto& deps = gate_deps_[static_cast<size_t>(tr.gate)];
        if (std::find(deps.begin(), deps.end(), c) == deps.end())
            deps.push_back(c);
    }
}

SwitchSim::State SwitchSim::initial_state() const {
    State s(static_cast<size_t>(netlist_->node_count), SV::X);
    s[SwitchNetlist::kGnd] = SV::Zero;
    s[SwitchNetlist::kVdd] = SV::One;
    return s;
}

void SwitchSim::solve_component(State& state, const State& prev,
                                std::span<const std::int32_t> comps,
                                const FaultView& fault) const {
    // Collect the node set and transistor list of the (possibly merged)
    // component group.
    static thread_local std::vector<NodeId> nodes;
    static thread_local std::vector<int> node_slot;
    nodes.clear();
    for (std::int32_t c : comps)
        for (NodeId v : comp_nodes_[static_cast<size_t>(c)]) nodes.push_back(v);
    if (nodes.empty()) return;
    if (node_slot.size() < static_cast<size_t>(netlist_->node_count))
        node_slot.assign(static_cast<size_t>(netlist_->node_count), -1);
    for (size_t i = 0; i < nodes.size(); ++i)
        node_slot[static_cast<size_t>(nodes[i])] = static_cast<int>(i);
    const size_t ns = nodes.size();

    // Unknown boolean variables.  X-valued gate nets are enumerated as
    // *nets*, not per transistor, so complementary N/P pairs stay mutually
    // exclusive - the two-extremes ("all maybe on / all off") shortcut is
    // non-monotone and oscillates on bridge feedback loops.  Fault-floating
    // transistor gates and X-valued bridged-in terminals get their own
    // variables.  The node value is the ternary join over all assignments.
    struct Var {
        char kind;      // 'g' gate net, 'f' floating transistor, 't' terminal
        std::int64_t key;
    };
    static thread_local std::vector<Var> vars;
    vars.clear();
    const auto find_var = [&](char kind, std::int64_t key) {
        for (size_t i = 0; i < vars.size(); ++i)
            if (vars[i].kind == kind && vars[i].key == key)
                return static_cast<int>(i);
        vars.push_back({kind, key});
        return static_cast<int>(vars.size() - 1);
    };

    struct Edge {
        int u, v;       ///< slot indices, or -1 when the end is a terminal
        NodeId tu, tv;  ///< original node ids
        double g;
        int var;        ///< -1: always conducts; else variable index
        bool invert;    ///< edge conducts when the variable is 0 (PMOS)
    };
    static thread_local std::vector<Edge> edges;
    edges.clear();

    for (std::int32_t c : comps)
        for (int t : comp_transistors_[static_cast<size_t>(c)]) {
            const auto& tr = netlist_->transistors[static_cast<size_t>(t)];
            if (fault.removed(t)) continue;
            int var = -1;
            bool invert = false;
            if (fault.floating(t)) {
                if (params_.float_gate == FloatGateModel::Unknown ||
                    fault.fault->float_level ==
                        SwitchFault::FloatLevel::Mid) {
                    var = find_var('f', t);
                } else {
                    const bool high = fault.fault->float_level ==
                                      SwitchFault::FloatLevel::High;
                    if (!(tr.is_pmos ? !high : high)) continue;  // off
                }
            } else {
                const SV gv = state[static_cast<size_t>(tr.gate)];
                if (gv == SV::X) {
                    var = find_var('g', tr.gate);
                    invert = tr.is_pmos;
                } else {
                    const bool high = gv == SV::One;
                    if (!(tr.is_pmos ? !high : high)) continue;  // off
                }
            }
            edges.push_back({node_slot[static_cast<size_t>(tr.source)],
                             node_slot[static_cast<size_t>(tr.drain)],
                             tr.source, tr.drain,
                             tr.is_pmos ? params_.g_pmos : params_.g_nmos,
                             var, invert});
        }
    if (fault.has_bridge()) {
        const auto add_bridge_edge = [&](NodeId a, NodeId b) {
            const int sa = node_slot[static_cast<size_t>(a)];
            const int sb = node_slot[static_cast<size_t>(b)];
            if (sa >= 0 || sb >= 0)
                edges.push_back({sa, sb, a, b, params_.g_bridge, -1, false});
        };
        add_bridge_edge(fault.fault->a, fault.fault->b);
        if (fault.fault->c >= 0)
            add_bridge_edge(fault.fault->b, fault.fault->c);
    }
    // X-valued terminals (a bridged-in PI that was itself forced to X).
    for (const Edge& e : edges) {
        if (e.u < 0 && state[static_cast<size_t>(e.tu)] == SV::X)
            find_var('t', e.tu);
        if (e.v < 0 && state[static_cast<size_t>(e.tv)] == SV::X)
            find_var('t', e.tv);
    }

    static thread_local std::vector<SV> joined;
    joined.assign(ns, SV::X);

    constexpr int kMaxVars = 6;
    if (static_cast<int>(vars.size()) > kMaxVars) {
        // Too many unknowns: nodes that could possibly be driven become X;
        // nodes with no conceivable path to a terminal keep their charge.
        static thread_local std::vector<char> maybe_driven;
        maybe_driven.assign(ns, 0);
        for (const Edge& e : edges) {
            if (e.u < 0 && e.v >= 0) maybe_driven[static_cast<size_t>(e.v)] = 1;
            if (e.v < 0 && e.u >= 0) maybe_driven[static_cast<size_t>(e.u)] = 1;
        }
        bool grew = true;
        while (grew) {
            grew = false;
            for (const Edge& e : edges) {
                if (e.u < 0 || e.v < 0) continue;
                const size_t a = static_cast<size_t>(e.u);
                const size_t b = static_cast<size_t>(e.v);
                if (maybe_driven[a] != maybe_driven[b]) {
                    maybe_driven[a] = maybe_driven[b] = 1;
                    grew = true;
                }
            }
        }
        for (size_t i = 0; i < ns; ++i)
            joined[i] = maybe_driven[i]
                            ? SV::X
                            : prev[static_cast<size_t>(nodes[i])];
        for (size_t i = 0; i < ns; ++i)
            state[static_cast<size_t>(nodes[i])] = joined[i];
        for (NodeId v : nodes) node_slot[static_cast<size_t>(v)] = -1;
        return;
    }

    const auto term_voltage = [&](NodeId v, unsigned assignment) -> double {
        const SV tv = state[static_cast<size_t>(v)];
        if (tv == SV::X) {
            for (size_t i = 0; i < vars.size(); ++i)
                if (vars[i].kind == 't' && vars[i].key == v)
                    return (assignment >> i) & 1u ? 1.0 : 0.0;
        }
        return tv == SV::One ? 1.0 : 0.0;
    };

    static thread_local std::vector<double> a_mat;
    static thread_local std::vector<double> rhs;
    static thread_local std::vector<char> driven;
    static thread_local std::vector<char> active;

    const unsigned combos = 1u << vars.size();
    for (unsigned assignment = 0; assignment < combos; ++assignment) {
        active.assign(edges.size(), 0);
        for (size_t e = 0; e < edges.size(); ++e) {
            const int var = edges[e].var;
            if (var < 0)
                active[e] = 1;
            else {
                const bool bit = (assignment >> var) & 1u;
                active[e] = (bit != edges[e].invert) ? 1 : 0;
            }
        }

        a_mat.assign(ns * ns, 0.0);
        rhs.assign(ns, 0.0);
        driven.assign(ns, 0);
        for (size_t e = 0; e < edges.size(); ++e) {
            if (!active[e]) continue;
            const Edge& ed = edges[e];
            if (ed.u >= 0 && ed.v >= 0) {
                a_mat[static_cast<size_t>(ed.u) * ns + static_cast<size_t>(ed.u)] += ed.g;
                a_mat[static_cast<size_t>(ed.v) * ns + static_cast<size_t>(ed.v)] += ed.g;
                a_mat[static_cast<size_t>(ed.u) * ns + static_cast<size_t>(ed.v)] -= ed.g;
                a_mat[static_cast<size_t>(ed.v) * ns + static_cast<size_t>(ed.u)] -= ed.g;
            } else if (ed.u >= 0 || ed.v >= 0) {
                const int slot = ed.u >= 0 ? ed.u : ed.v;
                const NodeId term = ed.u >= 0 ? ed.tv : ed.tu;
                a_mat[static_cast<size_t>(slot) * ns + static_cast<size_t>(slot)] += ed.g;
                rhs[static_cast<size_t>(slot)] += ed.g * term_voltage(term, assignment);
                driven[static_cast<size_t>(slot)] = 1;
            }
        }
        bool grew = true;
        while (grew) {
            grew = false;
            for (size_t e = 0; e < edges.size(); ++e) {
                if (!active[e]) continue;
                const Edge& ed = edges[e];
                if (ed.u < 0 || ed.v < 0) continue;
                const size_t p = static_cast<size_t>(ed.u);
                const size_t q = static_cast<size_t>(ed.v);
                if (driven[p] != driven[q]) {
                    driven[p] = driven[q] = 1;
                    grew = true;
                }
            }
        }
        for (size_t i = 0; i < ns; ++i)
            if (a_mat[i * ns + i] == 0.0) a_mat[i * ns + i] = 1.0;

        // Gauss-Jordan with partial pivoting.
        for (size_t col = 0; col < ns; ++col) {
            size_t pivot = col;
            for (size_t r = col + 1; r < ns; ++r)
                if (std::abs(a_mat[r * ns + col]) >
                    std::abs(a_mat[pivot * ns + col]))
                    pivot = r;
            if (std::abs(a_mat[pivot * ns + col]) < 1e-12) continue;
            if (pivot != col) {
                for (size_t k = 0; k < ns; ++k)
                    std::swap(a_mat[col * ns + k], a_mat[pivot * ns + k]);
                std::swap(rhs[col], rhs[pivot]);
            }
            const double d = a_mat[col * ns + col];
            for (size_t r = 0; r < ns; ++r) {
                if (r == col) continue;
                const double f = a_mat[r * ns + col] / d;
                if (f == 0.0) continue;
                for (size_t k = col; k < ns; ++k)
                    a_mat[r * ns + k] -= f * a_mat[col * ns + k];
                rhs[r] -= f * rhs[col];
            }
        }

        for (size_t i = 0; i < ns; ++i) {
            SV value;
            if (!driven[i]) {
                value = prev[static_cast<size_t>(nodes[i])];  // charge
            } else {
                const double d = a_mat[i * ns + i];
                const double v = d == 0.0 ? 0.5 : rhs[i] / d;
                value = v >= params_.v_high
                            ? SV::One
                            : (v <= params_.v_low ? SV::Zero : SV::X);
            }
            if (assignment == 0)
                joined[i] = value;
            else if (joined[i] != value)
                joined[i] = SV::X;
        }
    }

    for (size_t i = 0; i < ns; ++i)
        state[static_cast<size_t>(nodes[i])] = joined[i];
    for (NodeId v : nodes) node_slot[static_cast<size_t>(v)] = -1;
}

void SwitchSim::run(State& state, std::span<const bool> inputs,
                    const FaultView& fault) const {
    if (inputs.size() != netlist_->input_nodes.size())
        throw std::invalid_argument("input width mismatch");
    const State prev = state;
    state[SwitchNetlist::kGnd] = SV::Zero;
    state[SwitchNetlist::kVdd] = SV::One;
    for (size_t i = 0; i < inputs.size(); ++i)
        state[static_cast<size_t>(netlist_->input_nodes[i])] =
            inputs[i] ? SV::One : SV::Zero;

    // Bridged fixed (component-less) nodes - shorted driven inputs resolve
    // wired-AND (the standard convention for bridged driven nets; a supply
    // always wins).  Bridged channel components merge into one solve group.
    std::vector<std::int32_t> merged;  // comps merged by a bridge
    if (fault.has_bridge()) {
        const auto nodes = bridge_nodes(*fault.fault);
        for (NodeId n : nodes) {
            const std::int32_t c = component_of_[static_cast<size_t>(n)];
            if (c >= 0 &&
                std::find(merged.begin(), merged.end(), c) == merged.end())
                merged.push_back(c);
        }
        if (merged.size() < 2) merged.clear();
        bool all_fixed = true;
        for (NodeId n : nodes)
            if (component_of_[static_cast<size_t>(n)] >= 0) all_fixed = false;
        if (all_fixed) {
            std::vector<SV> values;
            for (NodeId n : nodes)
                values.push_back(state[static_cast<size_t>(n)]);
            const SV resolved = resolve_fixed_bridge(nodes, values);
            for (NodeId n : nodes)
                if (n != SwitchNetlist::kGnd && n != SwitchNetlist::kVdd)
                    state[static_cast<size_t>(n)] = resolved;
        }
    }

    // Ternary simulation from X: every channel node restarts at X and the
    // sweeps converge to the least fixpoint, which is unique and
    // independent of evaluation order (bridge faults can create feedback
    // loops where other starting points would pick an arbitrary branch).
    // Charge retention is unaffected: it enters through `prev`.
    for (NodeId v = 0; v < netlist_->node_count; ++v)
        if (component_of_[static_cast<size_t>(v)] >= 0)
            state[static_cast<size_t>(v)] = SV::X;

    bool changed = true;
    int sweeps = 0;
    while (changed && sweeps++ < params_.max_sweeps) {
        changed = false;
        for (std::int32_t c = 0; c < component_count_; ++c) {
            if (!merged.empty() &&
                std::find(merged.begin(), merged.end(), c) != merged.end()) {
                if (c != merged[0]) continue;  // solve the group once
                State before = state;
                solve_component(state, prev, merged, fault);
                if (before != state) changed = true;
                continue;
            }
            // Cheap change detection: compare the component's nodes.
            const auto& cn = comp_nodes_[static_cast<size_t>(c)];
            static thread_local std::vector<SV> before;
            before.clear();
            for (NodeId v : cn) before.push_back(state[static_cast<size_t>(v)]);
            const std::int32_t one = c;
            solve_component(state, prev, std::span(&one, 1), fault);
            for (size_t i = 0; i < cn.size(); ++i)
                if (before[i] != state[static_cast<size_t>(cn[i])]) {
                    changed = true;
                    break;
                }
        }
    }
}

void SwitchSim::step(State& state, std::span<const bool> inputs) const {
    FaultView fv;
    run(state, inputs, fv);
}

void SwitchSim::step_faulty(State& state, std::span<const bool> inputs,
                            const SwitchFault& fault) const {
    FaultView fv;
    fv.fault = &fault;
    run(state, inputs, fv);
}

std::vector<SV> SwitchSim::outputs(const State& state) const {
    std::vector<SV> out;
    out.reserve(netlist_->output_nodes.size());
    for (NodeId v : netlist_->output_nodes)
        out.push_back(state[static_cast<size_t>(v)]);
    return out;
}

}  // namespace dlp::switchsim
