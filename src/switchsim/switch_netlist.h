// Transistor-level expansion of a tech-mapped circuit using the cell
// library, with a canonical node numbering shared by the extractor:
//   node 0 = GND, node 1 = VDD,
//   node 2+n = circuit net n (NetId n),
//   then the internal nets of each instance, in instance order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cell/cell.h"
#include "netlist/circuit.h"

namespace dlp::switchsim {

using NodeId = std::int32_t;

struct SwitchTransistor {
    bool is_pmos = false;
    NodeId gate = -1;
    NodeId source = -1;
    NodeId drain = -1;
    std::int32_t instance = -1;  ///< owning cell instance
    int local_index = -1;        ///< index within the cell's transistor list
};

struct SwitchNetlist {
    static constexpr NodeId kGnd = 0;
    static constexpr NodeId kVdd = 1;

    const netlist::Circuit* circuit = nullptr;
    NodeId node_count = 2;
    std::vector<SwitchTransistor> transistors;
    std::vector<std::int32_t> instance_of;      ///< per NetId, -1 = PI
    std::vector<std::int32_t> transistor_base;  ///< per instance
    std::vector<std::vector<NodeId>> local_nodes;  ///< per instance, per local net
    std::vector<NodeId> input_nodes;   ///< PI nodes in circuit input order
    std::vector<NodeId> output_nodes;  ///< PO nodes in circuit output order
    std::vector<const cell::Cell*> cells;  ///< per instance

    NodeId node_of_net(netlist::NetId net) const {
        return static_cast<NodeId>(2 + net);
    }
    /// Resolves an extraction NetRef to a node.
    NodeId node_of(const cell::NetRef& ref) const;
    /// Global transistor index of an instance's local transistor.
    int global_transistor(std::int32_t instance, int local) const {
        return transistor_base[static_cast<size_t>(instance)] + local;
    }
    std::string node_name(NodeId node) const;
};

/// Expands a tech-mapped circuit (see netlist::techmap) to transistors.
SwitchNetlist build_switch_netlist(const netlist::Circuit& mapped);

}  // namespace dlp::switchsim
