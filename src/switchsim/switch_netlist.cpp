#include "switchsim/switch_netlist.h"

#include <stdexcept>

#include "cell/library.h"

namespace dlp::switchsim {

NodeId SwitchNetlist::node_of(const cell::NetRef& ref) const {
    if (ref.is_power()) return ref.index ? kVdd : kGnd;
    if (ref.is_circuit()) return node_of_net(static_cast<netlist::NetId>(ref.index));
    return local_nodes[static_cast<size_t>(ref.instance)]
                      [static_cast<size_t>(ref.index)];
}

std::string SwitchNetlist::node_name(NodeId node) const {
    if (node == kGnd) return "GND";
    if (node == kVdd) return "VDD";
    if (node < static_cast<NodeId>(2 + circuit->gate_count()))
        return circuit->gate(static_cast<netlist::NetId>(node - 2)).name;
    return "$int" + std::to_string(node);
}

SwitchNetlist build_switch_netlist(const netlist::Circuit& mapped) {
    SwitchNetlist net;
    net.circuit = &mapped;
    net.node_count = static_cast<NodeId>(2 + mapped.gate_count());
    net.instance_of.assign(mapped.gate_count(), -1);

    for (netlist::NetId g = 0; g < mapped.gate_count(); ++g) {
        const auto& gate = mapped.gate(g);
        if (gate.type == netlist::GateType::Input) continue;
        const cell::Cell& c =
            cell::library_cell(gate.type, static_cast<int>(gate.fanin.size()));
        const auto instance = static_cast<std::int32_t>(net.cells.size());
        net.instance_of[g] = instance;
        net.cells.push_back(&c);
        net.transistor_base.push_back(
            static_cast<std::int32_t>(net.transistors.size()));

        // Map the cell's local nets to global nodes.
        std::vector<NodeId> local(c.nets.size(), -1);
        local[cell::Cell::kGnd] = SwitchNetlist::kGnd;
        local[cell::Cell::kVdd] = SwitchNetlist::kVdd;
        for (size_t p = 0; p + 1 < c.pins.size(); ++p)  // input pins
            local[static_cast<size_t>(c.pins[p].net)] =
                net.node_of_net(gate.fanin[p]);
        local[static_cast<size_t>(c.output_pin().net)] = net.node_of_net(g);
        for (size_t n = 0; n < local.size(); ++n)
            if (local[n] < 0) local[n] = net.node_count++;
        net.local_nodes.push_back(local);

        for (size_t t = 0; t < c.transistors.size(); ++t) {
            const cell::Transistor& ct = c.transistors[t];
            net.transistors.push_back(
                {ct.is_pmos, local[static_cast<size_t>(ct.gate)],
                 local[static_cast<size_t>(ct.source)],
                 local[static_cast<size_t>(ct.drain)], instance,
                 static_cast<int>(t)});
        }
    }

    for (netlist::NetId pi : mapped.inputs())
        net.input_nodes.push_back(net.node_of_net(pi));
    for (netlist::NetId po : mapped.outputs())
        net.output_nodes.push_back(net.node_of_net(po));
    return net;
}

}  // namespace dlp::switchsim
