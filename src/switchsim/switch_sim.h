// Switch-level simulation with exact nodal analysis, so resistive bridging
// faults resolve the way CMOS bridges do in silicon: parallel pull networks
// add, series stacks divide, and the stronger network wins (typically
// wired-AND, because NMOS conduct better than PMOS).
//
// Node values are ternary {0, 1, X}.  Per vector, each channel-connected
// component (CCC) is solved:
//  * transistors whose gate is a *binary* net are on or off; the component's
//    conductance Laplacian is solved exactly (Gauss-Jordan) and node
//    voltages classify against [v_low, v_high] - the middle band reads X,
//    the conservative answer for a static voltage test;
//  * X-valued gate *nets* are enumerated (both polarities) and the results
//    ternary-joined, keeping complementary N/P pairs mutually exclusive -
//    this is monotone, so the global sweep converges to the least fixpoint
//    regardless of evaluation order, even across bridge-created feedback;
//  * nodes with no conducting path keep their previous value (charge
//    retention) - this is what makes stuck-open faults need two-pattern
//    sequences, the paper's "opens are harder to detect" effect.
#pragma once

#include <span>
#include <vector>

#include "switchsim/switch_netlist.h"

namespace dlp::switchsim {

/// Ternary signal value.
enum class SV : std::uint8_t { Zero = 0, One = 1, X = 2 };

/// A fault being simulated (see extract/extractor.h for provenance).
struct SwitchFault {
    enum class Kind : std::uint8_t {
        None,            ///< no structural change
        Bridge,          ///< resistive short between nodes a and b
        TransistorOpen,  ///< listed transistors never conduct
        GateFloat,       ///< listed transistors' gates float (maybe-conduct)
        Gross,           ///< catastrophic (supply short): fails vector 1
    };
    Kind kind = Kind::None;
    NodeId a = -1;
    NodeId b = -1;
    NodeId c = -1;  ///< third node of a multi-node bridge (-1: two-net)
    std::vector<int> transistors;  ///< global indices (opens/floats)
    /// PO ordinal whose pad floats (reads X, never detects); -1 = none.
    /// Orthogonal to `kind`: a trunk open both floats gates and cuts a pad.
    int po_float = -1;
    /// GateFloat: level the floating gate drifts to.  Trapped charge varies
    /// per defect instance (assigned pseudo-randomly at extraction); a gate
    /// stuck in the mid band (Mid) defeats static voltage testing.
    enum class FloatLevel : std::uint8_t { Low, High, Mid };
    FloatLevel float_level = FloatLevel::Low;
};

/// Behaviour of a defect-floating transistor gate.  Real floating gates
/// drift to a DC level set by leakage and trapped charge; the level varies
/// per defect instance, so `PerFault` (the default) uses the fault's own
/// `float_high` bit.  `Unknown` is the conservative ternary model (the
/// gate may or may not conduct - such faults can never be guaranteed
/// detected by a voltage test) and is kept for ablation.
enum class FloatGateModel : std::uint8_t { PerFault, Unknown };

/// Conductances (arbitrary units; only ratios matter) and the voltage
/// thresholds used to classify solved node voltages.
struct SimParams {
    double g_nmos = 3.0;    ///< NMOS channel conductance
    double g_pmos = 1.0;    ///< PMOS channel conductance
    double g_bridge = 20.0; ///< bridge defect conductance (near-short)
    double v_high = 0.55;   ///< node reads 1 at or above this voltage
    double v_low = 0.45;    ///< node reads 0 at or below this voltage
    int max_sweeps = 64;    ///< global fixpoint cap
    FloatGateModel float_gate = FloatGateModel::PerFault;
};

class SwitchSim {
public:
    /// Internal view of the active fault during a solve (public so the
    /// incremental fault simulator can drive solve_component directly).
    struct FaultView {
        const SwitchFault* fault = nullptr;

        bool removed(int t) const {
            return fault &&
                   fault->kind == SwitchFault::Kind::TransistorOpen &&
                   contains(t);
        }
        bool floating(int t) const {
            return fault && fault->kind == SwitchFault::Kind::GateFloat &&
                   contains(t);
        }
        bool has_bridge() const {
            return fault && fault->kind == SwitchFault::Kind::Bridge;
        }

    private:
        bool contains(int t) const {
            for (int x : fault->transistors)
                if (x == t) return true;
            return false;
        }
    };

    explicit SwitchSim(const SwitchNetlist& netlist, SimParams params = {});

    const SwitchNetlist& netlist() const { return *netlist_; }

    /// Full node-state vector (indexed by NodeId).
    using State = std::vector<SV>;
    State initial_state() const;

    /// Applies one input vector to `state` (previous values provide charge
    /// retention) in the fault-free circuit.
    void step(State& state, std::span<const bool> inputs) const;

    /// Applies one input vector under a fault.  `state` is the fault
    /// circuit's own persistent state.
    void step_faulty(State& state, std::span<const bool> inputs,
                     const SwitchFault& fault) const;

    /// PO values of a state, in circuit output order.
    std::vector<SV> outputs(const State& state) const;

    /// Static channel-connected component of each node (-1 for supplies and
    /// gate-only nodes such as PIs).
    std::span<const std::int32_t> component_of() const { return component_of_; }
    int component_count() const { return component_count_; }

    /// Solves one channel-connected component group in place.  `state`
    /// supplies gate/terminal values and receives the group's new node
    /// values; `prev` supplies charge-retention values.
    void solve_component(State& state, const State& prev,
                         std::span<const std::int32_t> comps,
                         const FaultView& fault) const;

    /// Components a value change on `node` can affect (via gates).
    std::span<const std::int32_t> gate_dependents(NodeId node) const {
        return gate_deps_[static_cast<size_t>(node)];
    }
    std::span<const NodeId> component_nodes(std::int32_t comp) const {
        return comp_nodes_[static_cast<size_t>(comp)];
    }
    const SimParams& params() const { return params_; }

private:
    void run(State& state, std::span<const bool> inputs,
             const FaultView& fault) const;

    const SwitchNetlist* netlist_;
    SimParams params_;
    std::vector<std::int32_t> component_of_;
    int component_count_ = 0;
    std::vector<std::vector<int>> comp_transistors_;   ///< per component
    std::vector<std::vector<NodeId>> comp_nodes_;      ///< per component
    std::vector<std::vector<std::int32_t>> gate_deps_; ///< node -> components gated
};

}  // namespace dlp::switchsim
