#include "analysis/untestable.h"

#include <algorithm>

#include "analysis/implication.h"
#include "gatesim/levelized.h"
#include "support/env.h"

namespace dlp::analysis {

namespace {

using gatesim::LevelizedCircuit;
using gatesim::StuckAtFault;
using netlist::GateType;
using netlist::kNoNet;

int controlling_value(GateType t) {
    switch (t) {
        case GateType::And:
        case GateType::Nand:
            return 0;
        case GateType::Or:
        case GateType::Nor:
            return 1;
        default:
            return -1;
    }
}

/// How a fault fares under one pivot assumption.
enum class Verdict : std::uint8_t {
    Detectable,   ///< no undetectability argument — the pivot fails
    Vacuous,      ///< the closure conflicted (constant line)
    Unexcitable,  ///< site forced to the stuck value
    Blocked,      ///< exact: entry gate cut by a forced side pin
    BlockedCandidate  ///< cheap sweep says unobservable; needs cone check
};

/// Per-branch working state for one pivot assumption.
struct BranchState {
    const Closure* closure = nullptr;
    std::vector<std::int8_t> val;   ///< -1 unknown, else forced value
    std::vector<std::uint8_t> obs;  ///< cheap cone-oblivious observability
    std::vector<std::uint8_t> ctrl_pins;  ///< forced-controlling pin count
};

/// Rebuilds the dense value/observability views for a closure.  The
/// cheap observability sweep counts *every* forced controlling side
/// input as a blocker — an over-approximation of blocking (the sound
/// rule only trusts blockers outside the fault cone), so obs[n] == 1
/// means "certainly not blocked" and obs[n] == 0 only nominates a
/// candidate for the exact cone-aware check.
void build_branch(const LevelizedCircuit& lc, const Closure& closure,
                  BranchState& b) {
    b.closure = &closure;
    b.val.assign(lc.net_count, -1);
    if (closure.conflict) return;
    for (const Literal& l : closure.forced)
        b.val[l.net] = l.value ? 1 : 0;

    b.ctrl_pins.assign(lc.net_count, 0);
    for (NetId g = 0; g < lc.net_count; ++g) {
        const int c = controlling_value(lc.type[g]);
        if (c < 0) continue;
        std::uint8_t count = 0;
        for (std::uint32_t i = lc.fanin_begin[g]; i < lc.fanin_begin[g + 1];
             ++i)
            if (b.val[lc.fanin[i]] == c && count < 255) ++count;
        b.ctrl_pins[g] = count;
    }

    b.obs.assign(lc.net_count, 0);
    for (NetId n = lc.net_count; n-- > 0;) {
        if (lc.is_output[n]) {
            b.obs[n] = 1;
            continue;
        }
        for (std::uint32_t i = lc.fanout_begin[n];
             i < lc.fanout_begin[n + 1] && !b.obs[n]; ++i) {
            const NetId g = lc.fanout[i];
            if (!b.obs[g]) continue;
            const int c = controlling_value(lc.type[g]);
            if (c < 0 || b.ctrl_pins[g] == 0) {
                b.obs[n] = 1;
                continue;
            }
            if (b.val[n] != c) continue;  // all forced pins are side pins
            // n itself is forced controlling: a *side* blocker exists
            // only if some other pin net is forced controlling too.
            for (std::uint32_t j = lc.fanin_begin[g];
                 j < lc.fanin_begin[g + 1]; ++j) {
                const NetId m = lc.fanin[j];
                if (m != n && b.val[m] == c) goto blocked;
            }
            b.obs[n] = 1;
        blocked:;
        }
    }
}

/// Exact entry-gate cut for a branch fault: a side pin of the reading
/// gate forced to its controlling value pins the gate output in both
/// machines (upstream of the entry nothing differs, so side pins carry
/// their good values).  Fills `blocker` when it returns true.
bool entry_blocked(const LevelizedCircuit& lc, const BranchState& b,
                   const StuckAtFault& f, Literal* blocker) {
    const NetId r = f.reader;
    const int c = controlling_value(lc.type[r]);
    if (c < 0) return false;
    for (std::uint32_t i = lc.fanin_begin[r]; i < lc.fanin_begin[r + 1];
         ++i) {
        const int pin = static_cast<int>(i - lc.fanin_begin[r]);
        if (pin == f.pin) continue;
        const NetId m = lc.fanin[i];
        if (b.val[m] == c) {
            if (blocker) *blocker = Literal{m, c != 0};
            return true;
        }
    }
    return false;
}

/// Exact cone-aware propagation check: computes the set D of nets that
/// can differ between the good and the faulty machine, trusting only
/// blockers outside D (a net outside D carries its good value in both
/// machines, so a forced controlling side input outside D pins the gate
/// in both).  Returns true iff no primary output lands in D; collects
/// the blocking literals actually used.
bool verify_blocked(const LevelizedCircuit& lc, const BranchState& b,
                    NetId seed, std::vector<Literal>* blockers) {
    if (lc.is_output[seed]) return false;
    std::vector<std::uint8_t> in_d(lc.net_count, 0);
    in_d[seed] = 1;
    for (NetId g = seed + 1; g < lc.net_count; ++g) {
        if (lc.type[g] == GateType::Input) continue;
        bool any_d = false;
        for (std::uint32_t i = lc.fanin_begin[g]; i < lc.fanin_begin[g + 1];
             ++i)
            if (in_d[lc.fanin[i]]) {
                any_d = true;
                break;
            }
        if (!any_d) continue;
        const int c = controlling_value(lc.type[g]);
        NetId blocker = kNoNet;
        if (c >= 0)
            for (std::uint32_t i = lc.fanin_begin[g];
                 i < lc.fanin_begin[g + 1]; ++i) {
                const NetId m = lc.fanin[i];
                if (!in_d[m] && b.val[m] == c) {
                    blocker = m;
                    break;
                }
            }
        if (blocker != kNoNet) {
            if (blockers)
                blockers->push_back(Literal{blocker, c != 0});
            continue;
        }
        if (lc.is_output[g]) return false;
        in_d[g] = 1;
    }
    return true;
}

/// First-pass verdict for fault `f` under one branch (exact except for
/// BlockedCandidate, which verify_blocked must confirm).
Verdict classify(const LevelizedCircuit& lc, const BranchState& b,
                 const StuckAtFault& f) {
    if (b.closure->conflict) return Verdict::Vacuous;
    if (b.val[f.net] == (f.stuck_value ? 1 : 0)) return Verdict::Unexcitable;
    if (f.is_stem())
        return b.obs[f.net] ? Verdict::Detectable : Verdict::BlockedCandidate;
    if (entry_blocked(lc, b, f, nullptr)) return Verdict::Blocked;
    return b.obs[f.reader] ? Verdict::Detectable : Verdict::BlockedCandidate;
}

/// Assembles the evidence for one confirmed branch.  The chain is the
/// pivot's closure derivation, shared across every fault it proves.
BranchEvidence make_evidence(
    const LevelizedCircuit& lc, const BranchState& b, const StuckAtFault& f,
    Literal assumption, Verdict v,
    const std::shared_ptr<const std::vector<ProofStep>>& chain) {
    BranchEvidence e;
    e.assumption = assumption;
    e.chain = chain;
    switch (v) {
        case Verdict::Vacuous:
            e.reason = BranchReason::Conflict;
            break;
        case Verdict::Unexcitable:
            e.reason = BranchReason::Unexcitable;
            break;
        case Verdict::Blocked: {
            e.reason = BranchReason::Blocked;
            Literal blk;
            entry_blocked(lc, b, f, &blk);
            e.blockers.push_back(blk);
            break;
        }
        case Verdict::BlockedCandidate: {
            e.reason = BranchReason::Blocked;
            const NetId seed = f.is_stem() ? f.net : f.reader;
            verify_blocked(lc, b, seed, &e.blockers);
            break;
        }
        case Verdict::Detectable:
            break;  // unreachable: only confirmed branches get evidence
    }
    return e;
}

}  // namespace

AnalysisResult find_untestable(const netlist::Circuit& circuit,
                               std::span<const StuckAtFault> faults,
                               const AnalysisOptions& options) {
    const LevelizedCircuit lc = gatesim::levelize(circuit);
    ImplicationEngine::Options eopt;
    eopt.learn = options.learn;
    eopt.learn_limit = options.learn_limit;
    ImplicationEngine engine(lc, eopt);

    AnalysisResult result;
    result.untestable.assign(faults.size(), 0);
    result.stats.pivots_total = lc.net_count;

    BranchState b0;
    BranchState b1;
    for (NetId pivot = 0; pivot < lc.net_count; ++pivot) {
        const support::StopReason stop = options.budget.check();
        if (stop != support::StopReason::None) {
            result.stop = stop;
            break;
        }
        Closure c0 = engine.close(Literal{pivot, false});
        Closure c1 = engine.close(Literal{pivot, true});
        if (c0.conflict || c1.conflict) ++result.stats.constant_lines;
        // A closure that only derived its own assumption cannot block or
        // de-excite anything beyond what every other pivot sees; still
        // scan (constant-line vacuous branches matter), but the common
        // single-literal/no-conflict case short-circuits the fault loop.
        if (!c0.conflict && !c1.conflict && c0.forced.size() <= 1 &&
            c1.forced.size() <= 1) {
            ++result.stats.pivots_done;
            continue;
        }
        build_branch(lc, c0, b0);
        build_branch(lc, c1, b1);
        // Shared per-pivot chains, materialized only if a proof lands.
        std::shared_ptr<const std::vector<ProofStep>> chain0;
        std::shared_ptr<const std::vector<ProofStep>> chain1;

        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            if (result.untestable[fi]) continue;  // first pivot wins
            const StuckAtFault& f = faults[fi];
            const Verdict v0 = classify(lc, b0, f);
            if (v0 == Verdict::Detectable) continue;
            const Verdict v1 = classify(lc, b1, f);
            if (v1 == Verdict::Detectable) continue;
            // Confirm the cheap-sweep candidates with the exact
            // cone-aware check before certifying anything.
            const NetId seed = f.is_stem() ? f.net : f.reader;
            if (v0 == Verdict::BlockedCandidate &&
                !verify_blocked(lc, b0, seed, nullptr))
                continue;
            if (v1 == Verdict::BlockedCandidate &&
                !verify_blocked(lc, b1, seed, nullptr))
                continue;

            if (!chain0) {
                chain0 = std::make_shared<const std::vector<ProofStep>>(
                    std::move(c0.chain));
                chain1 = std::make_shared<const std::vector<ProofStep>>(
                    std::move(c1.chain));
            }
            UntestableProof proof;
            proof.fault = f;
            proof.pivot = pivot;
            proof.b0 =
                make_evidence(lc, b0, f, Literal{pivot, false}, v0, chain0);
            proof.b1 =
                make_evidence(lc, b1, f, Literal{pivot, true}, v1, chain1);
            result.untestable[fi] = 1;
            ++result.stats.proofs;
            result.proofs.push_back(std::move(proof));
        }
        ++result.stats.pivots_done;
    }

    result.stats.implications = engine.implications();
    result.stats.learned = engine.learned();
    return result;
}

bool analysis_enabled_from_env() {
    // Recognized off-spellings disable the pass; garbage throws
    // support::EnvError instead of silently leaving it on.
    return support::env_flag("DLPROJ_ANALYSIS", true);
}

}  // namespace dlp::analysis
