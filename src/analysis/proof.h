// Machine-checkable untestability proofs.
//
// The static analysis pass (untestable.h) proves single stuck-at faults
// untestable without simulation.  Every verdict ships with a proof object
// that an independent checker (check_proof) can replay using nothing but
// the circuit structure and gate semantics — the checker shares no
// deduction code with the implication engine that produced the proof, so a
// bug in the engine cannot silently certify itself.
//
// Proof shape.  A proof is a case split on one *pivot* net p: any input
// vector drives p to 0 or to 1, and the proof carries one evidence branch
// per value.  A branch assumes p = v, derives further net values by a
// chain of implication steps, and then shows the fault cannot be detected
// under the assumption for one of three reasons:
//   * Conflict    — p = v is contradictory, so no vector sets p = v and
//                   the branch is vacuously detection-free;
//   * Unexcitable — the chain forces the fault site to its stuck value,
//                   so the fault is never activated;
//   * Blocked     — every path from the fault site to a primary output is
//                   cut by a side input that the chain forces to the
//                   gate's controlling value *outside* the fault's fanout
//                   cone (inside the cone a side input may carry a fault
//                   effect itself, so it cannot be trusted to block).
// If both branches hold, no vector detects the fault.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gatesim/faults.h"
#include "netlist/circuit.h"

namespace dlp::analysis {

using netlist::NetId;

/// A net/value pair ("net carries value in the good machine").
struct Literal {
    NetId net = netlist::kNoNet;
    bool value = false;

    bool operator==(const Literal&) const = default;
};

enum class StepKind : std::uint8_t {
    Assume,   ///< the branch assumption (first step of a chain)
    Implied,  ///< `lit` is forced by `gate`'s semantics given prior steps
    Learned,  ///< `lit` holds in both halves of a case split on `split`
    Conflict  ///< `gate`'s local constraints are unsatisfiable
};

/// One derivation step.  A chain is a vector of steps replayed in order;
/// Learned steps carry their two sub-derivations inline (branch0 assumes
/// `split` = 0, branch1 assumes `split` = 1) and list every literal the
/// split established in `lits` — each must hold in both non-conflicting
/// halves.  A Learned step with no `lits` whose both sub-chains end in a
/// conflict establishes a conflict of the outer chain.
struct ProofStep {
    StepKind kind = StepKind::Implied;
    Literal lit;  ///< derived literal (Assume/Implied)
    NetId gate = netlist::kNoNet;   ///< Implied/Conflict: the forcing gate
    NetId split = netlist::kNoNet;  ///< Learned: the case-split net
    std::vector<Literal> lits;      ///< Learned: literals established
    std::vector<ProofStep> branch0;
    std::vector<ProofStep> branch1;
};

enum class BranchReason : std::uint8_t { Conflict, Unexcitable, Blocked };

/// Evidence that the fault is undetectable whenever `assumption` holds.
/// The chain is shared: every fault a pivot proves reuses the same two
/// closure derivations (immutable once published).
struct BranchEvidence {
    Literal assumption;
    /// Derivation chain, starting with the Assume step.
    std::shared_ptr<const std::vector<ProofStep>> chain;
    BranchReason reason = BranchReason::Conflict;
    /// For Blocked: the forced controlling side inputs that cut the
    /// propagation paths.  Informational (diagnostics name them); the
    /// checker re-derives the blocking cut from the chain itself.
    std::vector<Literal> blockers;
};

/// A complete untestability proof: a case split on `pivot` with one
/// evidence branch per value (b0 assumes pivot = 0, b1 assumes pivot = 1).
struct UntestableProof {
    gatesim::StuckAtFault fault;
    NetId pivot = netlist::kNoNet;
    BranchEvidence b0;
    BranchEvidence b1;
};

/// Independently verifies `proof` against the circuit: replays both
/// chains step by step (each Implied step must be forced by its gate's
/// truth table, each Conflict step locally unsatisfiable, each Learned
/// step validated recursively in both halves of its split) and then
/// checks the claimed branch reason, re-deriving the fanout-cone-aware
/// propagation cut for Blocked branches from scratch.  Returns true iff
/// the proof is valid; on failure `why` (when non-null) names the first
/// offending step.
bool check_proof(const netlist::Circuit& circuit,
                 const UntestableProof& proof, std::string* why = nullptr);

/// One-line human-readable rendering, e.g.
/// "N22/SA0 untestable (pivot N7: 0=>blocked, 1=>unexcitable)".
std::string proof_summary(const netlist::Circuit& circuit,
                          const UntestableProof& proof);

}  // namespace dlp::analysis
