#include "analysis/proof.h"

#include <string>
#include <vector>

#include "gatesim/faults.h"

namespace dlp::analysis {

namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::kNoNet;

int controlling_value(GateType t) {
    switch (t) {
        case GateType::And:
        case GateType::Nand:
            return 0;
        case GateType::Or:
        case GateType::Nor:
            return 1;
        default:
            return -1;
    }
}

/// Replays chains against the bare circuit.  Deduction is validated by
/// brute-force local satisfiability over each step's gate truth table —
/// no rule engine is shared with the prover.
class Checker {
public:
    explicit Checker(const Circuit& circuit)
        : circuit_(circuit), n_(circuit.gate_count()) {}

    bool fail(std::string* why, const std::string& msg) {
        if (why && why->empty()) *why = msg;
        return false;
    }

    /// True iff gate `g`'s local constraints admit no consistent
    /// assignment extending `vals` with `over_net` pinned to `over_val`
    /// (pass kNoNet for no override).  Unknown nets are enumerated; a
    /// gate too wide to enumerate reports through `ok = false`.
    bool locally_unsat(NetId g, const std::vector<std::int8_t>& vals,
                      NetId over_net, int over_val, bool& ok) {
        ok = true;
        const netlist::Gate& gate = circuit_.gate(g);
        std::vector<NetId> free;  // unknown distinct nets, output first
        const auto val_of = [&](NetId net) {
            if (net == over_net) return over_val;
            return static_cast<int>(vals[net]);
        };
        const auto note_free = [&](NetId net) {
            if (val_of(net) >= 0) return;
            for (const NetId f : free)
                if (f == net) return;
            free.push_back(net);
        };
        note_free(g);
        for (const NetId in : gate.fanin) note_free(in);
        if (free.size() > 20) {
            ok = false;
            return false;
        }
        std::vector<std::uint64_t> words(gate.fanin.size());
        for (std::uint64_t m = 0; m < (std::uint64_t{1} << free.size());
             ++m) {
            const auto bit_of = [&](NetId net) -> std::uint64_t {
                const int v = val_of(net);
                if (v >= 0) return static_cast<std::uint64_t>(v);
                for (std::size_t i = 0; i < free.size(); ++i)
                    if (free[i] == net) return (m >> i) & 1u;
                return 0;  // unreachable
            };
            for (std::size_t i = 0; i < gate.fanin.size(); ++i)
                words[i] = bit_of(gate.fanin[i]);
            const std::uint64_t out =
                netlist::eval_gate(gate.type, words) & 1u;
            if (out == bit_of(g)) return false;  // satisfiable
        }
        return true;
    }

    /// Validates one derivation chain under `vals` (mutated in place).
    /// Sets `conflicted` when the chain establishes a contradiction of
    /// its own assumptions.  Nothing may follow a conflict step.
    bool replay(const std::vector<ProofStep>& chain, Literal assumption,
                std::vector<std::int8_t>& vals, bool& conflicted,
                int depth, std::string* why) {
        conflicted = false;
        if (depth > 4) return fail(why, "chain nesting too deep");
        if (chain.empty() || chain.front().kind != StepKind::Assume ||
            !(chain.front().lit == assumption))
            return fail(why, "chain must open with its assumption");
        if (assumption.net >= n_)
            return fail(why, "assumption names an unknown net");
        if (vals[assumption.net] >= 0 &&
            vals[assumption.net] != (assumption.value ? 1 : 0)) {
            // The assumption contradicts the enclosing context: this half
            // of the split is vacuous, so the rest of its chain (recorded
            // in a context where the net was still free) is irrelevant.
            conflicted = true;
            return true;
        }
        vals[assumption.net] = assumption.value ? 1 : 0;

        for (std::size_t si = 1; si < chain.size(); ++si) {
            const ProofStep& step = chain[si];
            if (conflicted)
                return fail(why, "steps after a conflict");
            switch (step.kind) {
                case StepKind::Assume:
                    return fail(why, "assumption mid-chain");
                case StepKind::Implied: {
                    if (step.gate >= n_ ||
                        circuit_.gate(step.gate).type == GateType::Input)
                        return fail(why, "implied step names no gate");
                    if (step.lit.net >= n_)
                        return fail(why, "implied literal names no net");
                    bool ok = true;
                    // Forced iff the opposite value is locally
                    // unsatisfiable at the named gate.
                    if (!locally_unsat(step.gate, vals, step.lit.net,
                                       step.lit.value ? 0 : 1, ok))
                        return fail(why, ok ? "literal not forced by gate"
                                            : "gate too wide to check");
                    if (!record(step.lit, vals, why)) return false;
                    break;
                }
                case StepKind::Conflict: {
                    if (step.gate >= n_ ||
                        circuit_.gate(step.gate).type == GateType::Input)
                        return fail(why, "conflict step names no gate");
                    bool ok = true;
                    if (!locally_unsat(step.gate, vals, kNoNet, 0, ok))
                        return fail(why, ok ? "gate not in conflict"
                                            : "gate too wide to check");
                    conflicted = true;
                    break;
                }
                case StepKind::Learned: {
                    if (step.split >= n_)
                        return fail(why, "split names no net");
                    std::vector<std::int8_t> v0 = vals;
                    std::vector<std::int8_t> v1 = vals;
                    bool c0 = false;
                    bool c1 = false;
                    if (!replay(step.branch0, Literal{step.split, false},
                                v0, c0, depth + 1, why) ||
                        !replay(step.branch1, Literal{step.split, true},
                                v1, c1, depth + 1, why))
                        return false;
                    if (c0 && c1) {
                        conflicted = true;  // exhaustive split refuted
                        break;
                    }
                    for (const Literal& l : step.lits) {
                        if (l.net >= n_)
                            return fail(why,
                                        "learned literal names no net");
                        const std::int8_t want = l.value ? 1 : 0;
                        if (!(c0 || v0[l.net] == want) ||
                            !(c1 || v1[l.net] == want))
                            return fail(
                                why, "literal not derived in both halves");
                        if (!record(l, vals, why)) return false;
                    }
                    break;
                }
            }
        }
        return true;
    }

    bool record(Literal lit, std::vector<std::int8_t>& vals,
                std::string* why) {
        const std::int8_t v = lit.value ? 1 : 0;
        if (vals[lit.net] >= 0 && vals[lit.net] != v)
            return fail(why, "derived literal contradicts the chain");
        vals[lit.net] = v;
        return true;
    }

    /// Exact cone-aware propagation cut, re-derived from the chain's
    /// assignments alone: no primary output may land in the set of nets
    /// that can differ between the good and the faulty machine.
    bool blocked(const gatesim::StuckAtFault& f,
                 const std::vector<std::int8_t>& vals, std::string* why) {
        NetId seed = f.net;
        if (!f.is_stem()) {
            const netlist::Gate& r = circuit_.gate(f.reader);
            const int c = controlling_value(r.type);
            for (std::size_t q = 0; q < r.fanin.size(); ++q) {
                if (static_cast<int>(q) == f.pin) continue;
                if (c >= 0 && vals[r.fanin[q]] == c)
                    return true;  // entry gate pinned in both machines
            }
            seed = f.reader;
        }
        if (circuit_.is_output(seed))
            return fail(why, "fault effect reaches an output directly");
        std::vector<std::uint8_t> in_d(n_, 0);
        in_d[seed] = 1;
        for (NetId g = seed + 1; g < n_; ++g) {
            const netlist::Gate& gate = circuit_.gate(g);
            if (gate.type == GateType::Input) continue;
            bool any_d = false;
            for (const NetId in : gate.fanin)
                if (in_d[in]) {
                    any_d = true;
                    break;
                }
            if (!any_d) continue;
            const int c = controlling_value(gate.type);
            bool cut = false;
            if (c >= 0)
                for (const NetId in : gate.fanin)
                    if (!in_d[in] && vals[in] == c) {
                        cut = true;
                        break;
                    }
            if (cut) continue;
            if (circuit_.is_output(g))
                return fail(why, "a propagation path is not blocked");
            in_d[g] = 1;
        }
        return true;
    }

    bool check_branch(const UntestableProof& proof,
                      const BranchEvidence& e, bool pivot_value,
                      std::string* why) {
        if (!(e.assumption == Literal{proof.pivot, pivot_value}))
            return fail(why, "branch assumes the wrong pivot literal");
        if (!e.chain) return fail(why, "branch carries no chain");
        std::vector<std::int8_t> vals(n_, -1);
        bool conflicted = false;
        if (!replay(*e.chain, e.assumption, vals, conflicted, 0, why))
            return false;
        if (conflicted) return true;  // vacuous: assumption unsatisfiable
        switch (e.reason) {
            case BranchReason::Conflict:
                return fail(why, "conflict claimed but chain is consistent");
            case BranchReason::Unexcitable:
                if (vals[proof.fault.net] ==
                    (proof.fault.stuck_value ? 1 : 0))
                    return true;
                return fail(why, "site not forced to the stuck value");
            case BranchReason::Blocked:
                return blocked(proof.fault, vals, why);
        }
        return fail(why, "unknown branch reason");
    }

    bool check(const UntestableProof& proof, std::string* why) {
        const gatesim::StuckAtFault& f = proof.fault;
        if (f.net >= n_) return fail(why, "fault names no net");
        if (!f.is_stem()) {
            if (f.reader >= n_ || f.pin < 0 ||
                static_cast<std::size_t>(f.pin) >=
                    circuit_.gate(f.reader).fanin.size() ||
                circuit_.gate(f.reader).fanin[static_cast<std::size_t>(
                    f.pin)] != f.net)
                return fail(why, "fault pin does not read the fault net");
        }
        if (proof.pivot >= n_) return fail(why, "pivot names no net");
        return check_branch(proof, proof.b0, false, why) &&
               check_branch(proof, proof.b1, true, why);
    }

private:
    const Circuit& circuit_;
    const NetId n_;
};

}  // namespace

bool check_proof(const netlist::Circuit& circuit,
                 const UntestableProof& proof, std::string* why) {
    if (why) why->clear();
    return Checker(circuit).check(proof, why);
}

std::string proof_summary(const netlist::Circuit& circuit,
                          const UntestableProof& proof) {
    const auto reason = [](const BranchEvidence& e) {
        switch (e.reason) {
            case BranchReason::Conflict:
                return "conflict";
            case BranchReason::Unexcitable:
                return "unexcitable";
            case BranchReason::Blocked:
                return "blocked";
        }
        return "?";
    };
    return gatesim::fault_name(circuit, proof.fault) +
           " untestable (pivot " + circuit.gate(proof.pivot).name + ": 0=>" +
           reason(proof.b0) + ", 1=>" + reason(proof.b1) + ")";
}

}  // namespace dlp::analysis
