// Static ternary implication engine over the levelized SoA circuit IR.
//
// close(l) computes the implication closure of a single-line assignment:
// every net value forced by gate semantics when `l` holds in the good
// machine, by worklist fixpoint over local gate rules (forward controlling
// values and full evaluation, plus the classic backward rules — e.g. an
// AND output at 1 forces every input to 1, an AND output at 0 with all
// side inputs at 1 forces the last input to 0).  On top of the fixpoint a
// bounded recursive-learning lite pass (depth 1) case-splits unjustified
// gates on one unknown fanin and keeps the literals common to both
// halves; an all-conflict split proves the assumption contradictory.
//
// Scratch is epoch-stamped (value/stamp arrays, one bump per closure), so
// a closure costs O(work), not O(nets) — the same trick the levelized
// fault simulator uses for per-fault cones.  Every derivation is recorded
// as a proof step (proof.h), so callers can emit machine-checkable
// untestability proofs without re-deriving anything.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/proof.h"
#include "gatesim/levelized.h"

namespace dlp::analysis {

/// Result of one implication closure.  `forced` lists every derived
/// literal (the assumption first, then trail order); `chain` is the
/// machine-checkable derivation of exactly those literals.  On a
/// conflict, `forced` holds the prefix derived before the contradiction
/// and the chain ends with the refuting step.
struct Closure {
    bool conflict = false;
    std::vector<Literal> forced;
    std::vector<ProofStep> chain;
};

class ImplicationEngine {
public:
    struct Options {
        bool learn = true;  ///< enable the recursive-learning lite pass
        int learn_limit = 32;  ///< case splits per closure (depth 1)
    };

    explicit ImplicationEngine(const gatesim::LevelizedCircuit& lc)
        : ImplicationEngine(lc, Options()) {}
    ImplicationEngine(const gatesim::LevelizedCircuit& lc, Options options);

    /// Implication closure of `assumption`; deterministic for a fixed
    /// circuit and options.
    Closure close(Literal assumption);

    /// Literals derived across all closures so far (telemetry).
    std::uint64_t implications() const { return implications_; }
    /// Learned literals derived by case splits so far.
    std::uint64_t learned() const { return learned_; }

private:
    bool assigned(NetId n) const { return stamp_[n] == epoch_; }
    bool value(NetId n) const { return val_[n] != 0; }

    /// Records `lit` and queues the affected gates; false on
    /// contradiction with an earlier assignment.
    bool assign_nostep(Literal lit);
    /// Records `lit` (with its derivation step) and queues the affected
    /// gates; returns false on contradiction with an earlier assignment,
    /// appending the Conflict step.
    bool assign(Literal lit, ProofStep step);
    /// Exhaustive local deduction for gate `g`; false on conflict.
    bool propagate_gate(NetId g);
    /// Drains the worklist to fixpoint; false on conflict.
    bool run_fixpoint();
    /// One depth-1 learning round over currently unjustified gates;
    /// returns true if it derived anything new (or found a conflict,
    /// reported through conflict_).
    bool learn_round(int& splits_left);
    /// Assumes `split` = v on top of the current assignment, runs the
    /// fixpoint, records the branch derivation, then retracts everything.
    /// Returns true if the branch ended in a conflict.
    bool run_branch(NetId split, bool v, std::vector<ProofStep>& chain,
                    std::vector<Literal>& derived);
    /// True if `g`'s known output is already implied by its fanins.
    bool justified(NetId g) const;

    const gatesim::LevelizedCircuit& lc_;
    Options options_;

    // Epoch-stamped ternary assignment.
    std::vector<std::uint8_t> val_;
    std::vector<std::uint64_t> stamp_;
    std::uint64_t epoch_ = 0;

    std::vector<std::uint64_t> split_stamp_;  ///< gate split this closure

    std::vector<NetId> trail_;  ///< nets in assignment order
    std::vector<NetId> queue_;  ///< gates pending propagation
    std::size_t qhead_ = 0;     ///< next queue_ entry to propagate
    std::vector<ProofStep>* chain_ = nullptr;  ///< current derivation sink
    bool conflict_ = false;

    std::uint64_t implications_ = 0;
    std::uint64_t learned_ = 0;
};

}  // namespace dlp::analysis
