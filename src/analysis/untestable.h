// FIRE-style static identification of untestable single stuck-at faults.
//
// For every pivot net p the pass computes the implication closures of
// p = 0 and p = 1 (implication.h) and classifies each fault under each
// assumption: *unexcitable* when the closure forces the fault site to its
// stuck value, *blocked* when every propagation path to a primary output
// is cut by a side input forced to its gate's controlling value outside
// the fault's fanout cone, or vacuous when the closure itself conflicts
// (the assumption is unsatisfiable, i.e. p is a constant line).  A fault
// undetectable under both p = 0 and p = 1 needs a conflicting single-line
// assignment to be detected at all — it is untestable, and the pass emits
// a machine-checkable proof (proof.h).
//
// The cone restriction is what makes the blocking argument sound: a side
// input inside the fault's fanout cone may itself carry a fault effect in
// the faulty machine, so only blockers whose nets cannot differ between
// the two machines count.  The pass runs a cheap cone-oblivious
// observability sweep first (an over-approximation of blocking, hence a
// safe candidate filter) and re-verifies each surviving candidate with
// the exact cone-aware difference propagation — the same computation
// check_proof performs independently.
//
// Determinism and interruption: pivots are processed in net-id order and
// the budget is checked at pivot boundaries only, so a cancelled or
// deadline-stopped run yields proofs that are an exact prefix of the
// unbounded run's (the support/cancel.h contract).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analysis/proof.h"
#include "gatesim/faults.h"
#include "support/cancel.h"

namespace dlp::analysis {

struct AnalysisOptions {
    /// Enable the bounded recursive-learning lite pass inside each
    /// closure (depth-1 case splits on unjustified gates).
    bool learn = true;
    /// Case splits per closure when learning is on.
    int learn_limit = 32;
    /// Cancel token / deadline, checked at pivot boundaries.
    support::RunBudget budget;
};

struct AnalysisStats {
    std::size_t pivots_done = 0;   ///< nets whose closures completed
    std::size_t pivots_total = 0;  ///< = circuit net count
    std::uint64_t implications = 0;  ///< literals derived across closures
    std::uint64_t learned = 0;       ///< of which by case splits
    std::size_t constant_lines = 0;  ///< pivots with a conflicting closure
    std::size_t proofs = 0;          ///< faults proven untestable
};

struct AnalysisResult {
    /// One proof per untestable fault, ordered by proving pivot (first
    /// proving pivot wins when several would prove the same fault).
    std::vector<UntestableProof> proofs;
    /// Parallel to the input fault list: 1 = proven untestable.
    std::vector<std::uint8_t> untestable;
    AnalysisStats stats;
    /// None on completion; Cancelled/DeadlineExpired on an early stop
    /// (proofs then cover exactly stats.pivots_done pivots).
    support::StopReason stop = support::StopReason::None;

    std::size_t untestable_count() const { return stats.proofs; }
};

/// Runs the pass over `faults` (any list — typically the collapsed
/// universe).  Deterministic for fixed circuit/faults/options.
AnalysisResult find_untestable(const netlist::Circuit& circuit,
                               std::span<const gatesim::StuckAtFault> faults,
                               const AnalysisOptions& options = {});

/// The DLPROJ_ANALYSIS kill switch: returns false when the environment
/// variable is set to 0/off/false, true otherwise (mirrors
/// lint::lint_enabled_from_env for DLPROJ_LINT).
bool analysis_enabled_from_env();

}  // namespace dlp::analysis
