#include "analysis/implication.h"

#include <algorithm>

namespace dlp::analysis {

namespace {

using netlist::GateType;

/// Controlling input value for the AND/OR families; -1 for gate types
/// without one (XOR parity, buffers).
int controlling_value(GateType t) {
    switch (t) {
        case GateType::And:
        case GateType::Nand:
            return 0;
        case GateType::Or:
        case GateType::Nor:
            return 1;
        default:
            return -1;
    }
}

/// Output value when some input is at the controlling value.
bool controlled_output(GateType t) {
    return t == GateType::Nand || t == GateType::Or;
}

bool inverting(GateType t) {
    return t == GateType::Not || t == GateType::Nand ||
           t == GateType::Nor || t == GateType::Xnor;
}

}  // namespace

ImplicationEngine::ImplicationEngine(const gatesim::LevelizedCircuit& lc,
                                     Options options)
    : lc_(lc), options_(options) {
    val_.assign(lc_.net_count, 0);
    stamp_.assign(lc_.net_count, 0);
    // Epoch-stamped per-closure "already case-split" marks ride in the
    // high bit-free space of a second stamp array.
    split_stamp_.assign(lc_.net_count, 0);
}

bool ImplicationEngine::assign_nostep(Literal lit) {
    if (assigned(lit.net)) return value(lit.net) == lit.value;
    val_[lit.net] = lit.value ? 1 : 0;
    stamp_[lit.net] = epoch_;
    trail_.push_back(lit.net);
    ++implications_;
    // Affected gates: every reader of the net, plus the net's own gate
    // (backward rules).
    if (lc_.type[lit.net] != GateType::Input) queue_.push_back(lit.net);
    for (std::uint32_t i = lc_.fanout_begin[lit.net];
         i < lc_.fanout_begin[lit.net + 1]; ++i)
        queue_.push_back(lc_.fanout[i]);
    return true;
}

bool ImplicationEngine::assign(Literal lit, ProofStep step) {
    if (assigned(lit.net)) {
        if (value(lit.net) == lit.value) return true;  // redundant
        // The forcing gate's local constraints are unsatisfiable under
        // the pre-existing opposite assignment.
        ProofStep conflict;
        conflict.kind = StepKind::Conflict;
        conflict.gate = step.gate;
        chain_->push_back(std::move(conflict));
        conflict_ = true;
        return false;
    }
    chain_->push_back(std::move(step));
    return assign_nostep(lit);
}

bool ImplicationEngine::propagate_gate(NetId g) {
    const GateType t = lc_.type[g];
    const std::uint32_t fb = lc_.fanin_begin[g];
    const std::uint32_t fe = lc_.fanin_begin[g + 1];
    const auto imply = [&](NetId net, bool v) {
        ProofStep step;
        step.kind = StepKind::Implied;
        step.lit = Literal{net, v};
        step.gate = g;
        return assign(step.lit, std::move(step));
    };

    if (t == GateType::Buf || t == GateType::Not) {
        const NetId in = lc_.fanin[fb];
        const bool inv = inverting(t);
        if (assigned(in) && !assigned(g)) {
            if (!imply(g, value(in) != inv)) return false;
        }
        if (assigned(g) && !assigned(in)) {
            if (!imply(in, value(g) != inv)) return false;
        }
        // Both assigned: consistency was enforced when the second side
        // was set (the forward/backward implication conflicts if not).
        if (assigned(g) && assigned(in) && value(g) != (value(in) != inv))
            return imply(g, value(in) != inv);  // records the conflict
        return true;
    }

    const int c = controlling_value(t);
    if (c >= 0) {
        const bool ctrl = c != 0;
        const bool out_ctrl = controlled_output(t);
        std::size_t unknown = 0;
        NetId last_unknown = netlist::kNoNet;
        bool any_ctrl = false;
        for (std::uint32_t i = fb; i < fe; ++i) {
            const NetId in = lc_.fanin[i];
            if (!assigned(in)) {
                ++unknown;
                last_unknown = in;
            } else if (value(in) == ctrl) {
                any_ctrl = true;
            }
        }
        if (any_ctrl) {
            if (!imply(g, out_ctrl)) return false;
        } else if (unknown == 0) {
            if (!imply(g, !out_ctrl)) return false;
        }
        if (assigned(g)) {
            if (value(g) == !out_ctrl) {
                // All-noncontrolled output: every input is forced away
                // from the controlling value.
                for (std::uint32_t i = fb; i < fe; ++i)
                    if (!assigned(lc_.fanin[i])) {
                        if (!imply(lc_.fanin[i], !ctrl)) return false;
                    }
            } else if (!any_ctrl && unknown == 1) {
                // Controlled output with one candidate left: it must be
                // the controlling one.
                if (!imply(last_unknown, ctrl)) return false;
            }
        }
        return true;
    }

    // XOR/XNOR parity: deducible only with at most one unknown among
    // {inputs, output}.
    std::size_t unknown = 0;
    NetId last_unknown = netlist::kNoNet;
    bool parity = inverting(t);  // fold the XNOR inversion into the parity
    for (std::uint32_t i = fb; i < fe; ++i) {
        const NetId in = lc_.fanin[i];
        if (!assigned(in)) {
            ++unknown;
            last_unknown = in;
        } else if (value(in)) {
            parity = !parity;
        }
    }
    if (unknown == 0) {
        if (!imply(g, parity)) return false;
    } else if (unknown == 1 && assigned(g)) {
        if (!imply(last_unknown, value(g) != parity)) return false;
    }
    return true;
}

bool ImplicationEngine::run_fixpoint() {
    while (qhead_ < queue_.size()) {
        const NetId g = queue_[qhead_++];
        if (!propagate_gate(g)) {
            queue_.clear();
            qhead_ = 0;
            return false;
        }
    }
    queue_.clear();
    qhead_ = 0;
    return true;
}

bool ImplicationEngine::justified(NetId g) const {
    const GateType t = lc_.type[g];
    const std::uint32_t fb = lc_.fanin_begin[g];
    const std::uint32_t fe = lc_.fanin_begin[g + 1];
    if (t == GateType::Buf || t == GateType::Not)
        return true;  // single input: the backward rule always fires
    const int c = controlling_value(t);
    if (c >= 0) {
        if (value(g) != controlled_output(t))
            return true;  // all inputs backward-forced noncontrolling
        const bool ctrl = c != 0;
        for (std::uint32_t i = fb; i < fe; ++i)
            if (assigned(lc_.fanin[i]) && value(lc_.fanin[i]) == ctrl)
                return true;
        return false;
    }
    // Parity gates: justified once every input is known.
    for (std::uint32_t i = fb; i < fe; ++i)
        if (!assigned(lc_.fanin[i])) return false;
    return true;
}

bool ImplicationEngine::learn_round(int& splits_left) {
    bool progress = false;
    // Trail order is deterministic, and the trail may grow as learned
    // literals land; index-based iteration picks the growth up.
    for (std::size_t i = 0; i < trail_.size(); ++i) {
        if (conflict_ || splits_left <= 0) break;
        const NetId g = trail_[i];
        if (lc_.type[g] == GateType::Input) continue;
        if (split_stamp_[g] == epoch_) continue;  // already split here
        if (justified(g)) continue;
        // Split on the first unknown fanin of the unjustified gate.
        NetId split = netlist::kNoNet;
        for (std::uint32_t j = lc_.fanin_begin[g];
             j < lc_.fanin_begin[g + 1]; ++j)
            if (!assigned(lc_.fanin[j])) {
                split = lc_.fanin[j];
                break;
            }
        if (split == netlist::kNoNet) continue;
        split_stamp_[g] = epoch_;
        --splits_left;

        std::vector<ProofStep> chain0;
        std::vector<ProofStep> chain1;
        std::vector<Literal> derived0;
        std::vector<Literal> derived1;
        const bool conflict0 = run_branch(split, false, chain0, derived0);
        const bool conflict1 = run_branch(split, true, chain1, derived1);

        if (conflict0 && conflict1) {
            // Both halves of an exhaustive split refute: the outer
            // assumption is contradictory.
            ProofStep step;
            step.kind = StepKind::Learned;
            step.split = split;
            step.branch0 = std::move(chain0);
            step.branch1 = std::move(chain1);
            chain_->push_back(std::move(step));
            conflict_ = true;
            return true;
        }

        std::vector<Literal> learned;
        if (conflict0) {
            learned = std::move(derived1);
        } else if (conflict1) {
            learned = std::move(derived0);
        } else {
            for (const Literal& l : derived0)
                if (std::find(derived1.begin(), derived1.end(), l) !=
                    derived1.end())
                    learned.push_back(l);
        }
        // One batched step for the whole split: every literal it
        // establishes shares the two branch derivations.
        ProofStep step;
        step.kind = StepKind::Learned;
        step.split = split;
        for (const Literal& l : learned)
            if (!assigned(l.net)) step.lits.push_back(l);
        if (step.lits.empty()) continue;
        step.branch0 = std::move(chain0);
        step.branch1 = std::move(chain1);
        const std::vector<Literal> lits = step.lits;
        chain_->push_back(std::move(step));
        for (const Literal& l : lits) {
            ++learned_;
            if (!assign_nostep(l)) {
                conflict_ = true;  // unreachable: branches saw the context
                return true;
            }
        }
        progress = true;
        if (!run_fixpoint()) return true;  // conflict
    }
    return progress;
}

bool ImplicationEngine::run_branch(NetId split, bool v,
                                   std::vector<ProofStep>& chain,
                                   std::vector<Literal>& derived) {
    const std::size_t mark = trail_.size();
    std::vector<ProofStep>* outer_chain = chain_;
    chain_ = &chain;
    ProofStep assume;
    assume.kind = StepKind::Assume;
    assume.lit = Literal{split, v};
    const bool ok = assign(assume.lit, std::move(assume)) && run_fixpoint();
    for (std::size_t i = mark; i < trail_.size(); ++i)
        derived.push_back(Literal{trail_[i], value(trail_[i])});
    // Retract: unstamp everything the branch assigned.  Epochs start at
    // 1, so stamp 0 is never "assigned".
    for (std::size_t i = mark; i < trail_.size(); ++i)
        stamp_[trail_[i]] = 0;
    trail_.resize(mark);
    queue_.clear();
    qhead_ = 0;
    conflict_ = false;
    chain_ = outer_chain;
    return !ok;
}

Closure ImplicationEngine::close(Literal assumption) {
    ++epoch_;
    trail_.clear();
    queue_.clear();
    qhead_ = 0;
    conflict_ = false;

    Closure out;
    chain_ = &out.chain;
    ProofStep assume;
    assume.kind = StepKind::Assume;
    assume.lit = assumption;
    if (assign(assumption, std::move(assume))) {
        if (run_fixpoint() && options_.learn) {
            int splits_left = options_.learn_limit;
            while (!conflict_ && splits_left > 0) {
                if (!learn_round(splits_left)) break;
            }
        }
    }
    out.conflict = conflict_;
    out.forced.reserve(trail_.size());
    for (const NetId n : trail_)
        out.forced.push_back(Literal{n, value(n)});
    chain_ = nullptr;
    return out;
}

}  // namespace dlp::analysis
