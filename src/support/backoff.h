// Retry pacing for clients of overloadable services: exponential backoff
// with deterministic, seeded jitter.
//
// Jitter is essential (synchronized retries from N clients re-create the
// very overload spike that shed them), but wall-clock randomness would
// break test reproducibility, so the jitter stream is a seeded xorshift —
// two Backoff instances with the same seed produce the same delay
// sequence.  A server-provided retry-after hint acts as a floor for the
// next delay, never a ceiling: the server knows how long its queue is, the
// client knows how often it has been rebuffed.
#pragma once

#include <cstdint>

namespace dlp::support {

struct BackoffOptions {
    long long initial_ms = 10;   ///< first delay
    long long max_ms = 2000;     ///< delay ceiling
    double factor = 2.0;         ///< growth per attempt
    double jitter = 0.25;        ///< +/- fraction of the base delay
    std::uint64_t seed = 1;      ///< jitter stream seed
};

class Backoff {
public:
    explicit Backoff(BackoffOptions options = {});

    /// Delay before the next attempt, advancing the schedule.  `floor_ms`
    /// (e.g. a shed reply's retry-after hint) raises the result but never
    /// lowers it.  Always >= 0.
    long long next_ms(long long floor_ms = 0);

    /// Attempts scheduled so far (== number of next_ms() calls).
    int attempts() const { return attempts_; }

    /// Restarts the schedule (keeps the jitter stream position, so a
    /// reset-and-retry sequence stays deterministic but not identical).
    void reset() { attempts_ = 0; }

private:
    std::uint64_t next_random();

    BackoffOptions options_;
    std::uint64_t state_;
    int attempts_ = 0;
};

}  // namespace dlp::support
