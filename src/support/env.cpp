#include "support/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace dlp::support {

namespace {

[[noreturn]] void bad_value(const char* name, const std::string& value,
                            const std::string& expected) {
    throw EnvError(std::string(name) + ": invalid value \"" + value +
                   "\" (expected " + expected + ")");
}

std::string range_text(long long min, long long max) {
    return "an integer in [" + std::to_string(min) + ", " +
           std::to_string(max) + "]";
}

}  // namespace

long long env_int(const char* name, long long fallback, long long min,
                  long long max) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    const std::string value(raw);
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(raw, &end, 10);
    // Reject trailing junk ("100ms"), a bare sign, and leading whitespace
    // oddities strtoll tolerates but a config file should not.
    if (end == raw || *end != '\0' ||
        std::isspace(static_cast<unsigned char>(raw[0])))
        bad_value(name, value, range_text(min, max));
    if (errno == ERANGE || v < min || v > max)
        bad_value(name, value, range_text(min, max));
    return v;
}

bool env_flag(const char* name, bool fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    std::string s(raw);
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "1" || s == "on" || s == "true" || s == "yes") return true;
    if (s == "0" || s == "off" || s == "false" || s == "no") return false;
    bad_value(name, raw, "one of 1/on/true/yes or 0/off/false/no");
}

std::string env_str(const char* name, const std::string& fallback) {
    const char* raw = std::getenv(name);
    return raw ? std::string(raw) : fallback;
}

}  // namespace dlp::support
