#include "support/backoff.h"

#include <algorithm>
#include <cmath>

namespace dlp::support {

Backoff::Backoff(BackoffOptions options)
    : options_(options), state_(options.seed ? options.seed : 1) {
    if (options_.initial_ms < 0) options_.initial_ms = 0;
    if (options_.max_ms < options_.initial_ms)
        options_.max_ms = options_.initial_ms;
    if (options_.factor < 1.0) options_.factor = 1.0;
    options_.jitter = std::clamp(options_.jitter, 0.0, 1.0);
}

std::uint64_t Backoff::next_random() {
    // xorshift64* — tiny, seedable, good enough for jitter.
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 2685821657736338717ull;
}

long long Backoff::next_ms(long long floor_ms) {
    const double base =
        static_cast<double>(options_.initial_ms) *
        std::pow(options_.factor, static_cast<double>(attempts_));
    ++attempts_;
    double delay = std::min(base, static_cast<double>(options_.max_ms));
    if (options_.jitter > 0.0) {
        // Uniform in [-jitter, +jitter] of the base delay.
        const double u = static_cast<double>(next_random() >> 11) /
                         static_cast<double>(1ull << 53);  // [0, 1)
        delay *= 1.0 + options_.jitter * (2.0 * u - 1.0);
    }
    const auto ms = static_cast<long long>(delay);
    return std::max({ms, floor_ms, 0ll});
}

}  // namespace dlp::support
