// Hardened environment-knob parsing.
//
// Every DLPROJ_* knob that used to be read with atoi()-and-hope goes
// through these helpers instead: an unset (or empty) variable yields the
// documented default, a well-formed value in range is returned, and
// *anything else* — garbage text, trailing junk, negative values where the
// knob is a count, overflow — throws EnvError with a diagnostic naming the
// variable, the offending value, and the accepted range.  Silent
// defaulting on a typo ("DLPROJ_THREADS=1O") is exactly how a production
// deployment ends up running single-threaded for a month.
//
// Thread-safety: getenv() is safe against concurrent getenv(); callers
// must not setenv() concurrently with a run (the same contract the rest of
// the codebase already assumes).
#pragma once

#include <stdexcept>
#include <string>

namespace dlp::support {

/// A malformed environment variable.  what() is a complete diagnostic:
///   DLPROJ_THREADS: invalid value "1O" (expected an integer in [0, 256])
class EnvError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Reads integer knob `name`.  Unset or empty -> `fallback`.  A value that
/// is not a plain base-10 integer, has trailing junk, overflows long long,
/// or falls outside [min, max] throws EnvError.
long long env_int(const char* name, long long fallback, long long min,
                  long long max);

/// Reads boolean knob `name`.  Unset or empty -> `fallback`.  Accepted
/// spellings (case-insensitive): 1/on/true/yes and 0/off/false/no; anything
/// else throws EnvError.
bool env_flag(const char* name, bool fallback);

/// Reads string knob `name`; unset -> `fallback` (empty values are
/// returned as-is — an empty string is a legal path override).
std::string env_str(const char* name, const std::string& fallback = "");

}  // namespace dlp::support
