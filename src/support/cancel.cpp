#include "support/cancel.h"

#include <limits>

#include "support/env.h"

namespace dlp::support {

std::string_view stop_reason_name(StopReason reason) {
    switch (reason) {
        case StopReason::None: return "none";
        case StopReason::Cancelled: return "cancelled";
        case StopReason::DeadlineExpired: return "deadline-expired";
        case StopReason::VectorBudget: return "vector-budget";
        case StopReason::LintFailed: return "lint-failed";
    }
    return "unknown";
}

long long env_deadline_ms() {
    // Read per call (not cached): each ExperimentRunner reads it once at
    // construction, and tests toggle the variable between runs.  A garbage
    // or negative value throws EnvError rather than silently running
    // unbounded.
    return env_int("DLPROJ_DEADLINE_MS", 0, 0,
                   std::numeric_limits<long long>::max());
}

}  // namespace dlp::support
