#include "support/cancel.h"

#include <cstdlib>

namespace dlp::support {

std::string_view stop_reason_name(StopReason reason) {
    switch (reason) {
        case StopReason::None: return "none";
        case StopReason::Cancelled: return "cancelled";
        case StopReason::DeadlineExpired: return "deadline-expired";
        case StopReason::VectorBudget: return "vector-budget";
        case StopReason::LintFailed: return "lint-failed";
    }
    return "unknown";
}

long long env_deadline_ms() {
    // Read per call (not cached): each ExperimentRunner reads it once at
    // construction, and tests toggle the variable between runs.
    const char* e = std::getenv("DLPROJ_DEADLINE_MS");
    if (!e) return 0;
    const long long v = std::atoll(e);
    return v > 0 ? v : 0;
}

}  // namespace dlp::support
