#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

namespace dlp::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

struct SpanRecord {
    const char* name;
    std::int32_t parent;  ///< index in the same log, -1 = thread root
    std::int64_t start_ns;
    std::int64_t end_ns;  ///< 0 while open
    std::string note;
};

/// Per-thread span log.  Only the owning thread appends; the mutex exists
/// so snapshot readers can run concurrently with an active owner.
struct ThreadLog {
    int tid = 0;
    std::string thread_name;
    std::vector<SpanRecord> records;
    std::int32_t current = -1;  ///< innermost open span, -1 = none
    mutable std::mutex mu;
};

namespace {

struct Registry {
    std::mutex mu;
    // deques: registered metrics keep stable addresses for cached refs.
    std::deque<Counter> counters;
    std::deque<Gauge> gauges;
    std::vector<std::unique_ptr<ThreadLog>> logs;
    std::string trace_path;

    static Registry& instance() {
        static Registry r;
        return r;
    }
};

}  // namespace

ThreadLog* thread_log() {
    thread_local ThreadLog* tl = [] {
        Registry& r = Registry::instance();
        std::lock_guard<std::mutex> lock(r.mu);
        auto log = std::make_unique<ThreadLog>();
        log->tid = static_cast<int>(r.logs.size());
        ThreadLog* p = log.get();
        r.logs.push_back(std::move(log));
        return p;
    }();
    return tl;
}

std::int32_t open_span(ThreadLog* log, const char* name) {
    std::lock_guard<std::mutex> lock(log->mu);
    const auto index = static_cast<std::int32_t>(log->records.size());
    log->records.push_back({name, log->current, now_ns(), 0, {}});
    log->current = index;
    return index;
}

void close_span(ThreadLog* log, std::int32_t index) {
    std::lock_guard<std::mutex> lock(log->mu);
    // A reset() between open and close leaves a dangling index; ignore it.
    if (index < 0 || index >= static_cast<std::int32_t>(log->records.size()))
        return;
    SpanRecord& rec = log->records[static_cast<std::size_t>(index)];
    rec.end_ns = now_ns();
    log->current = rec.parent;
}

void annotate_span(ThreadLog* log, std::int32_t index, std::string_view text) {
    std::lock_guard<std::mutex> lock(log->mu);
    if (index < 0 || index >= static_cast<std::int32_t>(log->records.size()))
        return;
    SpanRecord& rec = log->records[static_cast<std::size_t>(index)];
    if (!rec.note.empty()) rec.note += "; ";
    rec.note += text;
}

}  // namespace detail

namespace {

using detail::Registry;
using detail::SpanRecord;
using detail::ThreadLog;

/// Captures the telemetry epoch; called once before main via EnvInit.
std::int64_t epoch_anchor() {
    static const std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Reads DLPROJ_TRACE / DLPROJ_TELEMETRY once at load time and registers
/// the exit flush, so any binary gets tracing from the environment alone.
struct EnvInit {
    EnvInit() {
        epoch_anchor();  // pin the epoch before any instrumentation runs
        Registry& r = Registry::instance();
        set_thread_name("main");
        if (const char* p = std::getenv("DLPROJ_TRACE"); p && *p) {
            r.trace_path = p;
            detail::g_enabled.store(true, std::memory_order_relaxed);
        }
        if (const char* e = std::getenv("DLPROJ_TELEMETRY");
            e && *e && *e != '0')
            detail::g_enabled.store(true, std::memory_order_relaxed);
        std::atexit([] { flush(); });
    }
};
EnvInit g_env_init;

}  // namespace

std::int64_t now_ns() { return epoch_anchor(); }

void set_enabled(bool on) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

const std::string& trace_path() { return Registry::instance().trace_path; }

Counter& counter(std::string_view name) {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    for (Counter& c : r.counters)
        if (c.name() == name) return c;
    return r.counters.emplace_back(std::string(name));
}

Gauge& gauge(std::string_view name) {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    for (Gauge& g : r.gauges)
        if (g.name() == name) return g;
    return r.gauges.emplace_back(std::string(name));
}

void annotate_current(std::string_view text) {
    if (!enabled()) return;
    ThreadLog* log = detail::thread_log();
    std::lock_guard<std::mutex> lock(log->mu);
    if (log->current >= 0) {
        SpanRecord& rec =
            log->records[static_cast<std::size_t>(log->current)];
        if (!rec.note.empty()) rec.note += "; ";
        rec.note += text;
    }
}

void set_thread_name(std::string name) {
    ThreadLog* log = detail::thread_log();
    std::lock_guard<std::mutex> lock(log->mu);
    log->thread_name = std::move(name);
}

std::vector<SpanInfo> spans_snapshot() {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> registry_lock(r.mu);
    const std::int64_t now = now_ns();
    std::vector<SpanInfo> out;
    for (const auto& log : r.logs) {
        std::lock_guard<std::mutex> log_lock(log->mu);
        std::vector<std::string> paths(log->records.size());
        for (std::size_t i = 0; i < log->records.size(); ++i) {
            const SpanRecord& rec = log->records[i];
            paths[i] = rec.parent < 0
                           ? std::string(rec.name)
                           : paths[static_cast<std::size_t>(rec.parent)] +
                                 "/" + rec.name;
            SpanInfo info;
            info.path = paths[i];
            info.name = rec.name;
            info.note = rec.note;
            info.thread = log->tid;
            info.start_ns = rec.start_ns;
            info.open = rec.end_ns == 0;
            info.dur_ns = (info.open ? now : rec.end_ns) - rec.start_ns;
            out.push_back(std::move(info));
        }
    }
    return out;
}

std::vector<std::pair<std::string, long long>> counters_snapshot() {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::pair<std::string, long long>> out;
    for (const Counter& c : r.counters) out.emplace_back(c.name(), c.value());
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::string, double>> gauges_snapshot() {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::pair<std::string, double>> out;
    for (const Gauge& g : r.gauges) out.emplace_back(g.name(), g.value());
    std::sort(out.begin(), out.end());
    return out;
}

namespace {

std::string format_duration(std::int64_t ns) {
    char buf[32];
    if (ns >= 1'000'000'000)
        std::snprintf(buf, sizeof buf, "%.2f s",
                      static_cast<double>(ns) / 1e9);
    else if (ns >= 1'000'000)
        std::snprintf(buf, sizeof buf, "%.2f ms",
                      static_cast<double>(ns) / 1e6);
    else
        std::snprintf(buf, sizeof buf, "%.1f us",
                      static_cast<double>(ns) / 1e3);
    return buf;
}

}  // namespace

std::string summary_text() {
    // Merge spans across threads by path, then print the tree in
    // first-appearance order (a parent is always registered before its
    // children because its record is older within every log).
    struct Node {
        long long count = 0;
        std::int64_t total_ns = 0;
        bool open = false;
        std::vector<std::string> notes;
        std::vector<std::string> children;  ///< child paths, ordered
    };
    std::map<std::string, Node> nodes;
    std::vector<std::string> roots;
    for (const SpanInfo& s : spans_snapshot()) {
        auto [it, fresh] = nodes.try_emplace(s.path);
        Node& n = it->second;
        if (fresh) {
            const auto slash = s.path.rfind('/');
            if (slash == std::string::npos) {
                roots.push_back(s.path);
            } else {
                nodes[s.path.substr(0, slash)].children.push_back(s.path);
            }
        }
        ++n.count;
        n.total_ns += s.dur_ns;
        n.open |= s.open;
        if (!s.note.empty()) n.notes.push_back(s.note);
    }

    std::string out = "== telemetry summary ==\n";
    if (!nodes.empty()) out += "spans (calls, total wall):\n";
    const auto print_node = [&](const auto& self, const std::string& path,
                                int depth) -> void {
        const Node& n = nodes[path];
        const auto slash = path.rfind('/');
        const std::string name =
            slash == std::string::npos ? path : path.substr(slash + 1);
        char head[160];
        std::snprintf(head, sizeof head, "  %*s%-*s %8lld  %10s%s\n", depth * 2,
                      "", std::max(2, 36 - depth * 2), name.c_str(), n.count,
                      format_duration(n.total_ns).c_str(),
                      n.open ? "  (open)" : "");
        out += head;
        for (const std::string& note : n.notes)
            out += std::string(static_cast<std::size_t>(depth) * 2 + 6, ' ') +
                   "note: " + note + "\n";
        for (const std::string& child : n.children) self(self, child, depth + 1);
    };
    for (const std::string& root : roots) print_node(print_node, root, 0);

    const auto counters = counters_snapshot();
    if (!counters.empty()) out += "counters:\n";
    for (const auto& [name, value] : counters) {
        char line[160];
        std::snprintf(line, sizeof line, "  %-38s %lld\n", name.c_str(),
                      value);
        out += line;
    }
    const auto gauges = gauges_snapshot();
    if (!gauges.empty()) out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
        char line[160];
        std::snprintf(line, sizeof line, "  %-38s %g\n", name.c_str(), value);
        out += line;
    }
    return out;
}

std::string trace_json() {
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string& event) {
        if (!first) out += ",";
        first = false;
        out += "\n";
        out += event;
    };

    {
        Registry& r = Registry::instance();
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& log : r.logs) {
            std::lock_guard<std::mutex> log_lock(log->mu);
            if (log->thread_name.empty()) continue;
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                          "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                          log->tid, json_escape(log->thread_name).c_str());
            emit(buf);
        }
    }

    std::int64_t last_ns = 0;
    for (const SpanInfo& s : spans_snapshot()) {
        last_ns = std::max(last_ns, s.start_ns + s.dur_ns);
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                      "\"dur\":%.3f,\"pid\":1,\"tid\":%d",
                      json_escape(s.name).c_str(),
                      static_cast<double>(s.start_ns) / 1e3,
                      static_cast<double>(s.dur_ns) / 1e3, s.thread);
        std::string event = buf;
        if (!s.note.empty())
            event += ",\"args\":{\"note\":\"" + json_escape(s.note) + "\"}";
        event += "}";
        emit(event);
    }

    for (const auto& [name, value] : counters_snapshot()) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,"
                      "\"tid\":0,\"args\":{\"value\":%lld}}",
                      json_escape(name).c_str(),
                      static_cast<double>(last_ns) / 1e3, value);
        emit(buf);
    }

    out += "\n]}\n";
    return out;
}

bool write_trace(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const std::string json = trace_json();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

void flush() {
    const std::string& path = trace_path();
    if (path.empty()) return;
    if (!write_trace(path))
        std::fprintf(stderr, "[obs] failed to write trace to %s\n",
                     path.c_str());
}

void reset() {
    Registry& r = Registry::instance();
    std::lock_guard<std::mutex> lock(r.mu);
    for (Counter& c : r.counters)
        c.value_.store(0, std::memory_order_relaxed);
    for (Gauge& g : r.gauges)
        g.bits_.store(std::bit_cast<std::uint64_t>(0.0),
                      std::memory_order_relaxed);
    for (const auto& log : r.logs) {
        std::lock_guard<std::mutex> log_lock(log->mu);
        log->records.clear();
        log->current = -1;
    }
}

}  // namespace dlp::obs
